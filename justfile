# Mirrors the Makefile; use whichever runner you have installed.

check: build test doc clippy

build:
    cargo build --release

test:
    cargo test -q

doc:
    RUSTDOCFLAGS="-D warnings" cargo doc --no-deps

clippy:
    cargo clippy --workspace --all-targets -- -D warnings

# Serial-vs-parallel pipeline timing table (see EXPERIMENTS.md).
timing:
    cargo run --release -p aerorem-bench --bin experiments -- timing
