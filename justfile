# Mirrors the Makefile; use whichever runner you have installed.

check: build lint test doc clippy bench-build bench-check faults-check serve-check

build:
    cargo build --release

# Workspace invariant checker: determinism, panic-safety, and hygiene
# contracts (see ARCHITECTURE.md § Static analysis). `--json` emits the
# stable machine-readable report for diffing across commits.
lint:
    cargo run --release -q -p aerorem-lint -- --root .

test:
    cargo test -q

doc:
    RUSTDOCFLAGS="-D warnings" cargo doc --no-deps

clippy:
    cargo clippy --workspace --all-targets -- -D warnings

# Benches must always compile, even when nobody runs them.
bench-build:
    cargo bench --no-run

# Smoke-sized run of the PR-3 bench pair: every bit-identity assertion
# executes, but the workloads are small and BENCH_3.json is left alone.
bench-check:
    AEROREM_BENCH_SMOKE=1 cargo bench -q -p aerorem-bench --bench train_select
    AEROREM_BENCH_SMOKE=1 cargo bench -q -p aerorem-bench --bench sim_campaign

# Serving-layer gate (PR 6): the aerorem-serve unit tests under both
# execution-policy arms, plus a smoke-sized run of the serve bench —
# every snapshot round-trip and serial≡parallel identity assertion
# executes, but BENCH_3.json is left alone.
serve-check:
    cargo test -q -p aerorem-serve
    cargo test -q -p aerorem-serve --no-default-features
    AEROREM_BENCH_SMOKE=1 cargo bench -q -p aerorem-bench --bench serve

# Regenerates the committed bench artifacts at full size: BENCH_2.json
# (lattice fill) and BENCH_3.json (training + campaign + serving).
bench:
    cargo bench -p aerorem-bench --bench rem_lattice
    cargo bench -p aerorem-bench --bench train_select
    cargo bench -p aerorem-bench --bench sim_campaign
    cargo bench -p aerorem-bench --bench serve

# Gates fresh BENCH_3.json stage times against the committed baseline
# (>25 % wall-time regressions fail; see scripts/bench_diff).
bench-diff:
    ./scripts/bench_diff

# Full-size failure-injection suite under both execution-policy arms
# (default features = parallel, --no-default-features = serial): retries,
# lossy-link quarantine, battery abort, checkpoint/resume bit-identity.
faults:
    cargo test -q --test failure_injection
    cargo test -q --no-default-features --test failure_injection

# Smoke-sized variant of `faults` for the `check` gate: same assertions,
# shrunken campaigns (AEROREM_FAULTS_SMOKE=1).
faults-check:
    AEROREM_FAULTS_SMOKE=1 cargo test -q --test failure_injection
    AEROREM_FAULTS_SMOKE=1 cargo test -q --no-default-features --test failure_injection

# Serial-vs-parallel pipeline timing table (see EXPERIMENTS.md).
timing:
    cargo run --release -p aerorem-bench --bin experiments -- timing
