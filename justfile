# Mirrors the Makefile; use whichever runner you have installed.

check: build lint lint-diff test doc clippy bench-build bench-check faults-check serve-check serve-net-check

build:
    cargo build --release

# Workspace invariant checker: determinism, panic-safety, and hygiene
# contracts (see ARCHITECTURE.md § Static analysis). `--json` emits the
# stable machine-readable report for diffing across commits.
lint:
    cargo run --release -q -p aerorem-lint -- --root .

# Ratchet: the current --json report may not contain findings absent from
# the committed baseline (scripts/lint_baseline.json); shrinkage passes.
# Refresh deliberately with scripts/lint_diff --update.
lint-diff:
    ./scripts/lint_diff

test:
    cargo test -q

doc:
    RUSTDOCFLAGS="-D warnings" cargo doc --no-deps

clippy:
    cargo clippy --workspace --all-targets -- -D warnings

# Benches must always compile, even when nobody runs them.
bench-build:
    cargo bench --no-run

# Smoke-sized run of the custom-harness benches: every bit-identity
# assertion executes (including the PR-7 executor scaling sweep and the
# PR-8 kriging fill), but the workloads are small and the committed
# artifacts are left alone.
bench-check:
    AEROREM_BENCH_SMOKE=1 cargo bench -q -p aerorem-bench --bench train_select
    AEROREM_BENCH_SMOKE=1 cargo bench -q -p aerorem-bench --bench sim_campaign
    AEROREM_BENCH_SMOKE=1 cargo bench -q -p aerorem-bench --bench scaling
    AEROREM_BENCH_SMOKE=1 cargo bench -q -p aerorem-bench --bench kriging_fill

# Serving-layer gate (PR 6): the aerorem-serve unit tests under both
# execution-policy arms, plus a smoke-sized run of the serve bench —
# every snapshot round-trip and serial≡parallel identity assertion
# executes, but BENCH_3.json is left alone.
serve-check:
    cargo test -q -p aerorem-serve
    cargo test -q -p aerorem-serve --no-default-features
    AEROREM_BENCH_SMOKE=1 cargo bench -q -p aerorem-bench --bench serve

# Network serving gate (PR 9): the wire codec property tests, the
# end-to-end daemon tests (UDS + TCP loopback: query bit-identity,
# hot-swap, namespaces, shutdown — both ExecPolicy arms), and a
# smoke-sized run of the wire bench; BENCH_6.json is left alone.
serve-net-check:
    cargo test -q --test wire --test serve_net
    cargo test -q --no-default-features --test wire --test serve_net
    AEROREM_BENCH_SMOKE=1 cargo bench -q -p aerorem-bench --bench wire

# Regenerates the committed bench artifacts at full size: BENCH_2.json
# (lattice fill), BENCH_3.json (training + campaign + serving),
# BENCH_4.json (executor scaling), BENCH_5.json (kriging hot path), and
# BENCH_6.json (wire serving).
bench:
    cargo bench -p aerorem-bench --bench rem_lattice
    cargo bench -p aerorem-bench --bench train_select
    cargo bench -p aerorem-bench --bench sim_campaign
    cargo bench -p aerorem-bench --bench serve
    cargo bench -p aerorem-bench --bench scaling
    cargo bench -p aerorem-bench --bench kriging_fill
    cargo bench -p aerorem-bench --bench wire

# Gates fresh BENCH_3.json / BENCH_4.json / BENCH_5.json / BENCH_6.json stage
# times against the committed baselines (>25 % wall-time regressions fail)
# and each stage's parallel arm against its serial pair (parallel must
# never lose; see scripts/bench_diff).
bench-diff:
    ./scripts/bench_diff

# Full-size failure-injection suite under both execution-policy arms
# (default features = parallel, --no-default-features = serial): retries,
# lossy-link quarantine, battery abort, checkpoint/resume bit-identity.
faults:
    cargo test -q --test failure_injection
    cargo test -q --no-default-features --test failure_injection

# Smoke-sized variant of `faults` for the `check` gate: same assertions,
# shrunken campaigns (AEROREM_FAULTS_SMOKE=1).
faults-check:
    AEROREM_FAULTS_SMOKE=1 cargo test -q --test failure_injection
    AEROREM_FAULTS_SMOKE=1 cargo test -q --no-default-features --test failure_injection

# Serial-vs-parallel pipeline timing table (see EXPERIMENTS.md).
timing:
    cargo run --release -p aerorem-bench --bin experiments -- timing
