# Mirrors the Makefile; use whichever runner you have installed.

check: build test doc clippy bench-build

build:
    cargo build --release

test:
    cargo test -q

doc:
    RUSTDOCFLAGS="-D warnings" cargo doc --no-deps

clippy:
    cargo clippy --workspace --all-targets -- -D warnings

# Benches must always compile, even when nobody runs them.
bench-build:
    cargo bench --no-run

# Regenerates BENCH_2.json: per-voxel vs batched REM lattice throughput.
bench:
    cargo bench -p aerorem-bench --bench rem_lattice

# Serial-vs-parallel pipeline timing table (see EXPERIMENTS.md).
timing:
    cargo run --release -p aerorem-bench --bin experiments -- timing
