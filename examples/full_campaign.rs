//! The paper's §III demo, end to end: two Crazyflies, 72 waypoints, the
//! full preprocessing + Figure-8 model comparison, and a REM of the
//! strongest AP.
//!
//! ```sh
//! cargo run --release --example full_campaign [seed]
//! ```

use aerorem::core::pipeline::{PipelineConfig, RemPipeline};
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2206);
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);

    println!("running the 2-UAV / 72-waypoint campaign (seed {seed})...\n");
    let result = RemPipeline::new(PipelineConfig::paper_demo()).run(&mut rng)?;

    println!("{}", result.campaign.stats_summary());
    println!(
        "preprocessing: {} retained / {} dropped (paper: 2565 / 131)\n",
        result.preprocess_report.retained_samples, result.preprocess_report.dropped_samples
    );
    println!("{}", result.figure8_table());

    let mac = result.strongest_mac().expect("campaign observed APs");
    let rem = result.generate_rem(mac)?;
    let (nx, ny, nz) = rem.dims();
    println!(
        "REM of {mac}: {nx}x{ny}x{nz} cells, {:.1} to {:.1} dBm (mean {:.1})",
        rem.min_dbm(),
        rem.max_dbm(),
        rem.mean_dbm()
    );

    let gt = result.ground_truth_rmse(100, &mut rng)?;
    println!("\nRMSE against the hidden ground-truth surface: {gt:.2} dB");
    Ok(())
}
