//! Figure-8 style model bake-off with grid search, including the
//! geostatistical extensions (IDW, ordinary kriging) the paper does not
//! cover.
//!
//! ```sh
//! cargo run --release --example model_comparison
//! ```

use aerorem::core::features::{preprocess, PreprocessConfig};
use aerorem::core::models::{evaluate_all, ModelKind};
use aerorem::mission::campaign::{Campaign, CampaignConfig};
use aerorem::ml::gridsearch::{grid_search, knn_grid, mlp_grid};
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);

    println!("collecting the dataset (full paper campaign)...");
    let report = Campaign::new(CampaignConfig::paper_demo()).run(&mut rng);
    let (data, layout, _) = preprocess(&report.samples, &PreprocessConfig::paper())?;
    println!("dataset: {} rows x {} features\n", data.len(), data.dim());

    // The paper's protocol: grid-search kNN hyperparameters on a validation
    // split carved out of the training data.
    let (train, test) = data.train_test_split(0.75, &mut rng)?;
    println!("grid-searching kNN hyperparameters on the training split...");
    let gs = grid_search(knn_grid(&[1, 3, 5, 8, 16, 32]), &train, 0.25, &mut rng)?;
    println!("top five candidates by validation RMSE:");
    for c in gs.scores.iter().take(5) {
        println!("  {:<24} {:.4} dBm", c.name, c.rmse);
    }
    let best = gs.best().expect("grid evaluated");
    println!("winner: {}\n", best.name);

    // The paper also tuned the neural network's width/activation/optimizer.
    println!("grid-searching MLP architectures (this takes a moment)...");
    let mlp_gs = grid_search(mlp_grid(), &train, 0.25, &mut rng)?;
    for c in mlp_gs.scores.iter().take(3) {
        println!("  {:<24} {:.4} dBm", c.name, c.rmse);
    }
    println!("winner: {}\n", mlp_gs.best().expect("grid evaluated").name);

    // Full comparison, paper models + extensions, shared 75/25 split.
    println!("evaluating the complete model zoo (paper + extensions):");
    let scores = evaluate_all(&ModelKind::ALL, &data, &layout, &mut rng)?;
    println!("{:<32} {:>10}", "model", "RMSE [dBm]");
    for s in &scores {
        println!("{:<32} {:>10.4}", s.kind.label(), s.rmse_dbm);
    }

    // Sanity: the best model reproduces the training points well.
    let mut knn = ModelKind::KnnScaled16.build(&layout)?;
    knn.fit(&train.x, &train.y)?;
    let preds = knn.predict(&test.x)?;
    let rmse = aerorem::numerics::stats::rmse(&preds, &test.y);
    println!("\nbest kNN on the held-out test set: {rmse:.4} dBm (paper: 4.4186)");
    Ok(())
}
