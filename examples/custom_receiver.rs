//! Implementing a custom REM-generating receiver — the paper's §II-A
//! modularity claim, exercised from user code.
//!
//! "For integration with the UAV, the user is required to provide the
//! driver for the REM-generating receiver to react to the four specified
//! instructions" — init, status, measure, parse. This example writes such a
//! driver *outside* the aerorem crates: a narrowband survey receiver that
//! only listens on the three primary Wi-Fi channels (1/6/11) with a long
//! dwell, the kind of trade-off a BLE-class radio would make, and runs it
//! through the same measurement flow as the built-in ESP-01.
//!
//! ```sh
//! cargo run --release --example custom_receiver
//! ```

use aerorem::propagation::building::SyntheticBuilding;
use aerorem::propagation::scan::{perform_scan, BeaconObservation, ScanConfig};
use aerorem::propagation::WifiChannel;
use aerorem::scanner::{
    Esp01Receiver, MeasurementContext, ReceiverError, ReceiverStatus, RemReceiver,
};
use aerorem::spatial::Aabb;
use rand::{RngCore, SeedableRng};

/// A user-defined receiver: primary channels only, triple dwell.
struct PrimaryChannelReceiver {
    status: ReceiverStatus,
    config: ScanConfig,
    pending: Option<Vec<BeaconObservation>>,
}

impl PrimaryChannelReceiver {
    fn new() -> Self {
        PrimaryChannelReceiver {
            status: ReceiverStatus::Uninitialized,
            config: ScanConfig {
                channels: WifiChannel::PRIMARY.to_vec(),
                dwell_ms: 3.0 * ScanConfig::paper_default().dwell_ms,
                ..ScanConfig::paper_default()
            },
            pending: None,
        }
    }
}

// The four-instruction contract of §II-A — this is everything a receiver
// integrator has to write.
impl RemReceiver for PrimaryChannelReceiver {
    fn init(&mut self) -> Result<(), ReceiverError> {
        self.status = ReceiverStatus::Ready; // no hardware to wake up
        Ok(())
    }

    fn status(&self) -> ReceiverStatus {
        self.status
    }

    fn measure(
        &mut self,
        ctx: &MeasurementContext<'_>,
        rng: &mut dyn RngCore,
    ) -> Result<(), ReceiverError> {
        if self.status != ReceiverStatus::Ready {
            return Err(ReceiverError::InvalidState {
                was: self.status,
                instruction: "measure",
            });
        }
        self.pending = Some(perform_scan(
            ctx.environment(),
            ctx.position(),
            ctx.interferers(),
            &self.config,
            rng,
        ));
        Ok(())
    }

    fn take_observations(&mut self) -> Result<Vec<BeaconObservation>, ReceiverError> {
        self.pending.take().ok_or(ReceiverError::NoOutput)
    }

    fn measurement_duration_ms(&self) -> f64 {
        self.config.duration_ms()
    }
}

fn survey(
    rx: &mut dyn RemReceiver,
    ctx: &MeasurementContext<'_>,
    rng: &mut dyn RngCore,
    runs: usize,
) -> (f64, f64) {
    rx.init().expect("receiver initializes");
    let mut rows = 0usize;
    for _ in 0..runs {
        rx.measure(ctx, rng).expect("receiver ready");
        rows += rx.take_observations().expect("output present").len();
    }
    (
        rows as f64 / runs as f64,
        rx.measurement_duration_ms() / 1000.0,
    )
}

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(9);
    let volume = Aabb::paper_volume();
    let env = SyntheticBuilding::paper_like().generate(volume, &mut rng);
    let ctx = MeasurementContext::new(&env, volume.center(), &[]);

    let mut esp = Esp01Receiver::new();
    let (esp_rows, esp_secs) = survey(&mut esp, &ctx, &mut rng, 10);

    let mut custom = PrimaryChannelReceiver::new();
    let (custom_rows, custom_secs) = survey(&mut custom, &ctx, &mut rng, 10);

    println!("receiver comparison at the volume center (10 scans each):\n");
    println!("{:<28} {:>10} {:>12}", "receiver", "APs/scan", "scan time");
    println!("{:<28} {:>10.1} {:>10.2} s", "ESP-01 (13 channels)", esp_rows, esp_secs);
    println!(
        "{:<28} {:>10.1} {:>10.2} s",
        "custom (ch 1/6/11, 3x dwell)", custom_rows, custom_secs
    );
    println!(
        "\nBoth receivers rode the identical four-instruction driver contract;\n\
         swapping technologies costs one `impl RemReceiver` block."
    );
}
