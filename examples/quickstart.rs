//! Quickstart: the smallest end-to-end run of the toolchain.
//!
//! Builds a synthetic apartment building, flies a single UAV over a small
//! waypoint grid, trains the paper's best kNN on the collected samples, and
//! predicts Wi-Fi RSS at a point the UAV never visited.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use aerorem::core::features::{preprocess, PreprocessConfig};
use aerorem::core::models::ModelKind;
use aerorem::mission::campaign::{Campaign, CampaignConfig};
use aerorem::mission::plan::FleetPlan;
use aerorem::simkit::SimDuration;
use aerorem::spatial::Vec3;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);

    // One UAV, 12 waypoints — a quick survey instead of the full 72-point
    // campaign (see the full_campaign example for that).
    let config = CampaignConfig {
        fleet_plan: FleetPlan {
            fleet_size: 1,
            total_waypoints: 12,
            travel_time: SimDuration::from_secs(3),
            scan_time: SimDuration::from_secs(2),
        },
        ..CampaignConfig::paper_demo()
    };

    println!("flying the survey...");
    let report = Campaign::new(config).run(&mut rng);
    println!("{}", report.stats_summary());

    // Preprocess exactly like the paper (drop rare MACs, one-hot encode)
    // with a lower retention bar since this survey is small.
    let (data, layout, prep) = preprocess(
        &report.samples,
        &PreprocessConfig {
            min_samples_per_mac: 6,
        },
    )?;
    println!(
        "retained {} samples across {} APs",
        prep.retained_samples, prep.retained_macs
    );

    // Train the paper's best model on everything we have.
    let mut model = ModelKind::KnnScaled16.build(&layout)?;
    model.fit(&data.x, &data.y)?;

    // Ask for signal quality at a location no UAV visited.
    let query = Vec3::new(1.11, 2.22, 0.55);
    let mac = layout.macs()[0];
    let rss = model.predict_one(&layout.encode_query(query, mac)?)?;
    println!("predicted RSS of {mac} at {query}: {rss:.1} dBm");

    // The simulator knows the hidden truth — compare.
    if let Some(ap) = report.environment.access_point(mac) {
        let truth = report.environment.mean_rss(ap, query);
        println!("ground truth (hidden from the model): {truth:.1} dBm");
    }
    Ok(())
}
