//! Coverage planning on a generated REM — the use case the paper's
//! introduction motivates: find "dark" connectivity regions and plan where
//! to add an AP or position a relay.
//!
//! ```sh
//! cargo run --release --example coverage_planning
//! ```

use aerorem::core::coverage::CoverageMap;
use aerorem::core::pipeline::{PipelineConfig, RemPipeline};
use aerorem::mission::plan::FleetPlan;
use aerorem::simkit::SimDuration;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(11);

    // A moderate survey is plenty for coverage planning.
    let mut config = PipelineConfig::paper_demo();
    config.campaign.fleet_plan = FleetPlan {
        fleet_size: 2,
        total_waypoints: 24,
        travel_time: SimDuration::from_secs(3),
        scan_time: SimDuration::from_secs(2),
    };
    config.rem_resolution_m = 0.4;

    println!("surveying and building per-AP REMs...");
    let result = RemPipeline::new(config).run(&mut rng)?;

    // The intro's use case is extending *your own* network: pick one
    // mid-tier AP (the kind whose coverage actually has holes) and plan
    // for it specifically.
    let mean_rss = |m| {
        let (sum, n) = result
            .campaign
            .samples
            .iter()
            .filter(|s| s.mac == m)
            .fold((0.0, 0usize), |(s, n), smp| {
                (s + f64::from(smp.rssi_dbm), n + 1)
            });
        sum / n.max(1) as f64
    };
    let mut macs = result.layout.macs();
    macs.sort_by_key(|&m| (mean_rss(m) + 70.0).abs() as i64);
    let target_mac = macs[0];
    println!(
        "planning for {target_mac} (mean observed RSS {:.1} dBm)",
        mean_rss(target_mac)
    );
    let rem = result.generate_rem(target_mac)?;
    let coverage = CoverageMap::from_rems(&[rem]).expect("one grid combines");
    for threshold in [-65.0, -70.0, -75.0] {
        println!(
            "coverage at {threshold} dBm: {:.0}% of the volume",
            coverage.coverage_fraction(threshold) * 100.0
        );
    }

    // Plan against the mid threshold.
    let threshold = -70.0;
    let dark = coverage.dark_cells(threshold);
    if dark.is_empty() {
        println!("no dark regions at {threshold} dBm — nothing to plan.");
        return Ok(());
    }
    println!(
        "\n{} dark cells below {threshold} dBm; planning a relay...",
        dark.len()
    );
    match coverage.suggest_relay(threshold, 1.2) {
        Some(plan) => println!(
            "place a relay/AP at {} — covers {}/{} dark cells ({:.0}%)",
            plan.position,
            plan.dark_cells_covered,
            plan.dark_cells_total,
            plan.fix_fraction() * 100.0
        ),
        None => println!("coverage is already complete at {threshold} dBm"),
    }
    Ok(())
}
