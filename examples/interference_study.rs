//! Figure-5 style Crazyradio self-interference sweep.
//!
//! Sweeps the Crazyradio across its band (2400–2525 MHz in 25 MHz steps),
//! scanning for APs at each setting, and compares against scans with the
//! radio off — the experiment that motivates the paper's
//! radio-off-while-scanning design rule.
//!
//! ```sh
//! cargo run --release --example interference_study
//! ```

use aerorem::propagation::building::SyntheticBuilding;
use aerorem::propagation::channel::FIGURE5_NRF_FREQS_MHZ;
use aerorem::propagation::scan::{perform_scan, ScanConfig};
use aerorem::radio::Crazyradio;
use aerorem::spatial::{Aabb, Vec3};
use rand::SeedableRng;

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let volume = Aabb::paper_volume();
    let env = SyntheticBuilding::paper_like().generate(volume, &mut rng);
    let scanner = Vec3::new(volume.center().x, volume.center().y, 1.0);
    let cfg = ScanConfig::paper_default();
    const RUNS: usize = 5;

    println!("APs detected per scan (mean over {RUNS} runs):\n");
    println!("{:<12} {:>10}", "Crazyradio", "APs found");

    let mut off_mean = 0.0;
    for radio_mhz in FIGURE5_NRF_FREQS_MHZ.iter().map(|&f| Some(f)).chain([None]) {
        let interferers: Vec<_> = match radio_mhz {
            Some(f) => Crazyradio::new(f, Vec3::new(-1.5, 1.6, 0.8))
                .expect("in-band frequency")
                .interference()
                .into_iter()
                .collect(),
            None => Vec::new(),
        };
        let mean: f64 = (0..RUNS)
            .map(|_| perform_scan(&env, scanner, &interferers, &cfg, &mut rng).len())
            .sum::<usize>() as f64
            / RUNS as f64;
        let label = match radio_mhz {
            Some(f) => format!("{f:.0} MHz"),
            None => {
                off_mean = mean;
                "OFF".to_string()
            }
        };
        println!("{label:<12} {mean:>10.1}");
    }
    println!(
        "\nWith the radio off the scanner hears {off_mean:.1} APs; every active\n\
         frequency suppresses detections — hence the paper's rule: shut the\n\
         Crazyradio down for the duration of every scan."
    );
}
