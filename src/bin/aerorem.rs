//! The `aerorem` command-line tool: survey, evaluate, map, plan.
//!
//! ```text
//! aerorem survey   [--seed N] [--waypoints 72] [--uavs 2] --out samples.csv
//! aerorem evaluate --in samples.csv [--seed N]
//! aerorem map      --in samples.csv [--mac aa:bb:..] [--resolution 0.25] --out rem.csv
//!                  [--confidence sigma.csv] [--exec serial|parallel]
//! aerorem coverage --in samples.csv [--threshold -75] [--radius 1.2]
//! aerorem demo     [--seed N] [--exec serial|parallel]
//! aerorem snapshot save --in samples.csv --out rem.snap [--resolution 0.25] [--aps 8]
//! aerorem snapshot load --in rem.snap
//! aerorem serve-bench [--in rem.snap] [--queries 200000] [--shards 4] [--batch 8192]
//!                     [--dist zipfian|uniform] [--seed N] [--exec serial|parallel]
//! aerorem serve    --in rem.snap (--tcp ADDR | --uds PATH) [--name default]
//!                  [--exec serial|parallel] [--shards 4] [--brick 8]
//! aerorem serve-client <point|best|stats|coverage|namespaces|load|shutdown>
//!                  (--tcp ADDR | --uds PATH) [--namespace 0] ...
//! ```
//!
//! `survey` runs the simulated campaign and writes the collected samples;
//! the other commands are pure data processing and would work identically
//! on samples from real hardware. `map --confidence` switches the
//! estimator to ordinary kriging and writes the kriging standard
//! deviation (dB) as a second grid, reporting the factor-cache hit rate
//! of the fill. `demo` runs the paper's full pipeline
//! end to end and prints per-stage wall-clock instrumentation — run it
//! once with `--exec serial` and once with `--exec parallel` to measure
//! the speedup on your machine. `snapshot` freezes fitted REMs into the
//! versioned binary format of `docs/SNAPSHOT_FORMAT.md` (and inspects
//! such files); `serve-bench` drives a seeded point-query workload
//! through the sharded `aerorem-serve` store and reports queries/s.
//! `serve` exposes a snapshot over the wire protocol of
//! `docs/WIRE_FORMAT.md` (TCP and/or Unix-domain sockets, hot-swappable
//! via `serve-client load`), and `serve-client` is the matching one-shot
//! query tool — `point` reads one voxel, `best` picks the strongest AP,
//! `stats`/`coverage` aggregate, `namespaces` lists what the daemon
//! serves, and `shutdown` stops it cleanly.

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::process::ExitCode;

use aerorem::core::coverage::CoverageMap;
use aerorem::core::exec::ExecPolicy;
use aerorem::core::features::{preprocess, PreprocessConfig};
use aerorem::core::instrument::Instrumentation;
use aerorem::core::models::{evaluate_all, ModelKind};
use aerorem::core::pipeline::{PipelineConfig, RemPipeline};
use aerorem::core::rem::RemGrid;
use aerorem::core::snapshot::RemSnapshot;
use aerorem::mission::campaign::{Campaign, CampaignConfig};
use aerorem::mission::csv;
use aerorem::mission::plan::FleetPlan;
use aerorem::ml::kriging::{KrigingConfig, OrdinaryKriging};
use aerorem::ml::Regressor;
use aerorem::propagation::ap::MacAddress;
use aerorem::serve::{
    point_workload, Daemon, DaemonConfig, Distribution, Listener, Query, RemStore, Response,
    StoreConfig, WireClient, WorkloadConfig,
};
use aerorem::spatial::{Aabb, Vec3};
use rand::SeedableRng;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        return usage("no command given");
    };
    // `snapshot` and `serve-client` carry a subcommand before their
    // flags; peel it off so the generic flag parser sees only
    // `--key value` pairs.
    let (subcommand, rest) = if command == "snapshot" || command == "serve-client" {
        match rest.split_first() {
            Some((sub, tail)) => (Some(sub.as_str()), tail),
            None if command == "snapshot" => {
                return usage("snapshot needs a subcommand: save|load")
            }
            None => {
                return usage(
                    "serve-client needs a subcommand: \
                     point|best|stats|coverage|namespaces|load|shutdown",
                )
            }
        }
    } else {
        (None, rest)
    };
    let flags = match parse_flags(rest) {
        Ok(f) => f,
        Err(e) => return usage(&e),
    };
    let result = match (command.as_str(), subcommand) {
        ("survey", _) => survey(&flags),
        ("evaluate", _) => evaluate(&flags),
        ("map", _) => map(&flags),
        ("coverage", _) => coverage(&flags),
        ("demo", _) => demo(&flags),
        ("snapshot", Some("save")) => snapshot_save(&flags),
        ("snapshot", Some("load")) => snapshot_load(&flags),
        ("snapshot", Some(other)) => {
            return usage(&format!("unknown snapshot subcommand {other:?} (save|load)"))
        }
        ("serve-bench", _) => serve_bench(&flags),
        ("serve", _) => serve(&flags),
        ("serve-client", Some(sub)) => serve_client(sub, &flags),
        (other, _) => return usage(&format!("unknown command {other:?}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

type Flags = BTreeMap<String, String>;

fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut flags = Flags::new();
    let mut i = 0;
    while i < args.len() {
        let key = args[i]
            .strip_prefix("--")
            .ok_or_else(|| format!("expected --flag, found {:?}", args[i]))?;
        let value = args
            .get(i + 1)
            .ok_or_else(|| format!("--{key} needs a value"))?;
        if flags.insert(key.to_string(), value.clone()).is_some() {
            return Err(format!(
                "--{key} given more than once; every flag takes exactly one value"
            ));
        }
        i += 2;
    }
    Ok(flags)
}

fn flag<T: std::str::FromStr>(flags: &Flags, key: &str, default: T) -> Result<T, String> {
    match flags.get(key) {
        Some(v) => v.parse().map_err(|_| format!("bad --{key}: {v:?}")),
        None => Ok(default),
    }
}

fn required<'a>(flags: &'a Flags, key: &str) -> Result<&'a str, String> {
    flags
        .get(key)
        .map(String::as_str)
        .ok_or_else(|| format!("--{key} is required"))
}

fn load_samples(flags: &Flags) -> Result<aerorem::mission::SampleSet, String> {
    let path = required(flags, "in")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    csv::from_csv(&text).map_err(|e| e.to_string())
}

fn survey(flags: &Flags) -> Result<(), String> {
    let seed: u64 = flag(flags, "seed", 2206)?;
    let waypoints: usize = flag(flags, "waypoints", 72)?;
    let uavs: usize = flag(flags, "uavs", 2)?;
    let out = required(flags, "out")?;
    let config = CampaignConfig {
        fleet_plan: FleetPlan {
            fleet_size: uavs,
            total_waypoints: waypoints,
            ..FleetPlan::paper_demo()
        },
        ..CampaignConfig::paper_demo()
    };
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    eprintln!("flying {uavs} UAV(s) over {waypoints} waypoints (seed {seed})...");
    let report = Campaign::new(config).run(&mut rng);
    eprint!("{}", report.stats_summary());
    std::fs::write(out, csv::to_csv(&report.samples)).map_err(|e| format!("writing {out}: {e}"))?;
    eprintln!("wrote {} samples to {out}", report.samples.len());
    Ok(())
}

fn evaluate(flags: &Flags) -> Result<(), String> {
    let seed: u64 = flag(flags, "seed", 2206)?;
    let samples = load_samples(flags)?;
    let min_per_mac: usize = flag(flags, "min-samples", 16)?;
    let mut inst = Instrumentation::new();
    let (data, layout, prep) = inst
        .time("preprocess", || {
            preprocess(
                &samples,
                &PreprocessConfig {
                    min_samples_per_mac: min_per_mac,
                },
            )
        })
        .map_err(|e| e.to_string())?;
    println!(
        "{} samples loaded, {} retained over {} APs",
        prep.total_samples, prep.retained_samples, prep.retained_macs
    );
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let scores = inst
        .time("evaluate_models", || {
            evaluate_all(&ModelKind::ALL, &data, &layout, &mut rng)
        })
        .map_err(|e| e.to_string())?;
    println!("{:<32} {:>10}", "model", "RMSE [dBm]");
    for s in &scores {
        println!("{:<32} {:>10.4}", s.kind.label(), s.rmse_dbm);
    }
    inst.count("retained_samples", prep.retained_samples as u64);
    inst.count("models_evaluated", scores.len() as u64);
    eprint!("{}", inst.report());
    Ok(())
}

fn demo(flags: &Flags) -> Result<(), String> {
    let seed: u64 = flag(flags, "seed", 2206)?;
    let policy: ExecPolicy = flag(flags, "exec", ExecPolicy::default())?;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    eprintln!("running the paper demo pipeline (seed {seed}, exec {policy})...");
    let result = RemPipeline::with_policy(PipelineConfig::paper_demo(), policy)
        .run(&mut rng)
        .map_err(|e| e.to_string())?;
    print!("{}", result.figure8_table());
    let mac = result
        .strongest_mac()
        .ok_or("campaign retained no MACs")?;
    let mut inst = result.instrumentation.clone();
    let rem = result
        .generate_rem_instrumented(mac, &mut inst)
        .map_err(|e| e.to_string())?;
    inst.count("rem_voxels", rem.len() as u64);
    let (nx, ny, nz) = rem.dims();
    println!(
        "REM of {mac}: {nx}x{ny}x{nz} voxels, {:.1}..{:.1} dBm",
        rem.min_dbm(),
        rem.max_dbm()
    );
    print!("{}", inst.report());
    report_stage_throughput(&inst);
    report_lattice_throughput(&inst);
    report_link_cache(&inst);
    report_recovery(&inst);
    Ok(())
}

/// Prints items-per-second for the simulation and training stages.
fn report_stage_throughput(inst: &Instrumentation) {
    for (stage, counter, unit) in [
        ("campaign", "raw_samples", "samples/s"),
        ("preprocess", "retained_samples", "samples/s"),
        ("evaluate_models", "models_evaluated", "models/s"),
    ] {
        if let Some(rate) = inst.throughput(stage, counter) {
            println!("{stage}: {rate:.1} {unit}");
        }
    }
}

/// Prints the campaign link-cache hit rate when the cache saw any traffic.
fn report_link_cache(inst: &Instrumentation) {
    let (Some(hits), Some(misses)) = (
        inst.counter("link_cache_hits"),
        inst.counter("link_cache_misses"),
    ) else {
        return;
    };
    let total = hits + misses;
    if total > 0 {
        println!(
            "link cache: {hits}/{total} lookups hit ({:.1}%)",
            hits as f64 / total as f64 * 100.0
        );
    }
}

/// Prints the fault-recovery ledger: how many scans the retry machinery
/// saved and what the lossy link still cost (lost outright vs quarantined
/// at fragment gaps).
fn report_recovery(inst: &Instrumentation) {
    let get = |k| inst.counter(k).unwrap_or(0);
    let (faults, retries, recovered) = (
        get("receiver_faults"),
        get("scan_retries"),
        get("scans_recovered"),
    );
    let (lost, corrupted, dropped) = (
        get("rows_lost"),
        get("rows_corrupted"),
        get("packets_dropped"),
    );
    println!(
        "recovery: {recovered} scans recovered over {retries} retries ({faults} receiver faults)"
    );
    println!(
        "losses: {lost} rows lost, {corrupted} quarantined, {dropped} packets dropped"
    );
}

/// Prints the kriging factor-cache hit rate when a variance fill ran
/// (`RemGrid::generate_with_variance` records the counters).
fn report_kriging_cache(inst: &Instrumentation) {
    let (Some(hits), Some(misses)) = (
        inst.counter("rem_krige_cache_hits"),
        inst.counter("rem_krige_cache_misses"),
    ) else {
        return;
    };
    let total = hits + misses;
    if total > 0 {
        println!(
            "kriging factor cache: {hits}/{total} solves hit ({:.1}%)",
            hits as f64 / total as f64 * 100.0
        );
    }
}

/// Prints rows-per-second for the batched REM stages when both the stage
/// timing and the row counter are present, along with the execution plan
/// (worker count and effective chunk size) each stage actually ran under.
fn report_lattice_throughput(inst: &Instrumentation) {
    for (stage, counter) in [
        ("rem_encode", "rem_encode_rows"),
        ("rem_predict", "rem_predict_rows"),
        ("rem_krige_predict", "rem_krige_predict_rows"),
    ] {
        if let Some(rate) = inst.throughput(stage, counter) {
            match inst.exec_plan(stage) {
                Some((workers, chunk)) => println!(
                    "{stage}: {rate:.0} voxels/s ({workers} workers, chunk {chunk})"
                ),
                None => println!("{stage}: {rate:.0} voxels/s"),
            }
        }
    }
}

/// Preprocesses with the paper's retention filter, relaxing it for small
/// sample files.
fn preprocess_flexible(
    samples: &aerorem::mission::SampleSet,
) -> Result<
    (
        aerorem::ml::dataset::Dataset,
        aerorem::core::features::FeatureLayout,
    ),
    String,
> {
    let (data, layout, _) = preprocess(samples, &PreprocessConfig::paper())
        .or_else(|_| {
            preprocess(
                samples,
                &PreprocessConfig {
                    min_samples_per_mac: 4,
                },
            )
        })
        .map_err(|e| e.to_string())?;
    Ok((data, layout))
}

fn fit_best_model(
    samples: &aerorem::mission::SampleSet,
) -> Result<
    (
        Box<dyn aerorem::ml::Regressor>,
        aerorem::core::features::FeatureLayout,
    ),
    String,
> {
    let (data, layout) = preprocess_flexible(samples)?;
    let mut model = ModelKind::KnnScaled16
        .build(&layout)
        .map_err(|e| e.to_string())?;
    model.fit(&data.x, &data.y).map_err(|e| e.to_string())?;
    Ok((model, layout))
}

fn map(flags: &Flags) -> Result<(), String> {
    let samples = load_samples(flags)?;
    let out = required(flags, "out")?;
    let resolution: f64 = flag(flags, "resolution", 0.25)?;
    let policy: ExecPolicy = flag(flags, "exec", ExecPolicy::default())?;
    let mut inst = Instrumentation::new();
    let pick_mac = |layout: &aerorem::core::features::FeatureLayout| -> Result<MacAddress, String> {
        match flags.get("mac") {
            Some(m) => m.parse::<MacAddress>().map_err(|e| e.to_string()),
            None => {
                let mac = layout.macs()[0];
                eprintln!("no --mac given; mapping {mac}");
                Ok(mac)
            }
        }
    };
    let grid = if let Some(sigma_out) = flags.get("confidence") {
        // Confidence needs an estimator with a variance model, so this
        // branch maps with ordinary kriging instead of the kNN default
        // and writes the kriging standard deviation as a second grid.
        let (data, layout) = preprocess_flexible(&samples)?;
        let model = inst
            .time("fit_model", || {
                let mut model = OrdinaryKriging::new(KrigingConfig::default());
                model.fit(&data.x, &data.y).map(|()| model)
            })
            .map_err(|e| e.to_string())?;
        let mac = pick_mac(&layout)?;
        let (grid, sigma, _) = RemGrid::generate_with_variance(
            &model,
            &layout,
            Aabb::paper_volume(),
            resolution,
            mac,
            policy,
            &mut inst,
        )
        .map_err(|e| e.to_string())?;
        std::fs::write(sigma_out, sigma.to_csv())
            .map_err(|e| format!("writing {sigma_out}: {e}"))?;
        eprintln!(
            "wrote kriging confidence of {mac} to {sigma_out} (sigma {:.1}..{:.1} dB)",
            sigma.min_dbm(),
            sigma.max_dbm()
        );
        grid
    } else {
        let (model, layout) = inst.time("fit_model", || fit_best_model(&samples))?;
        let mac = pick_mac(&layout)?;
        RemGrid::generate_instrumented(
            model.as_ref(),
            &layout,
            Aabb::paper_volume(),
            resolution,
            mac,
            policy,
            &mut inst,
        )
        .map_err(|e| e.to_string())?
    };
    inst.count("rem_voxels", grid.len() as u64);
    std::fs::write(out, grid.to_csv()).map_err(|e| format!("writing {out}: {e}"))?;
    let (nx, ny, nz) = grid.dims();
    eprintln!(
        "wrote {nx}x{ny}x{nz} REM of {} to {out} ({:.1}..{:.1} dBm)",
        grid.mac(),
        grid.min_dbm(),
        grid.max_dbm()
    );
    // A quick visual check at mid-height.
    let mid_z = (grid.volume().min().z + grid.volume().max().z) / 2.0;
    if let Some(art) = grid.render_slice(mid_z) {
        eprintln!("{art}");
    }
    eprint!("{}", inst.report());
    report_lattice_throughput(&inst);
    report_kriging_cache(&inst);
    Ok(())
}

fn coverage(flags: &Flags) -> Result<(), String> {
    let samples = load_samples(flags)?;
    let threshold: f64 = flag(flags, "threshold", -75.0)?;
    let radius: f64 = flag(flags, "radius", 1.2)?;
    let (model, layout) = fit_best_model(&samples)?;
    let rems: Vec<RemGrid> = layout
        .macs()
        .into_iter()
        .take(8)
        .map(|m| RemGrid::generate(model.as_ref(), &layout, Aabb::paper_volume(), 0.4, m))
        .collect::<Result<_, _>>()
        .map_err(|e| e.to_string())?;
    let cov = CoverageMap::from_rems(&rems).ok_or("could not combine REMs")?;
    println!(
        "coverage at {threshold} dBm: {:.0}% of the volume",
        cov.coverage_fraction(threshold) * 100.0
    );
    match cov.suggest_relay(threshold, radius) {
        Some(plan) => println!(
            "suggested relay at {}: fixes {}/{} dark cells",
            plan.position, plan.dark_cells_covered, plan.dark_cells_total
        ),
        None => println!("no dark cells — coverage complete"),
    }
    Ok(())
}

fn snapshot_save(flags: &Flags) -> Result<(), String> {
    let samples = load_samples(flags)?;
    let out = required(flags, "out")?;
    let resolution: f64 = flag(flags, "resolution", 0.25)?;
    let max_aps: usize = flag(flags, "aps", 8)?;
    let mut inst = Instrumentation::new();
    let (model, layout) = inst.time("fit_model", || fit_best_model(&samples))?;
    let grids: Vec<RemGrid> = inst
        .time("generate_rems", || {
            layout
                .macs()
                .into_iter()
                .take(max_aps)
                .map(|m| {
                    RemGrid::generate(model.as_ref(), &layout, Aabb::paper_volume(), resolution, m)
                })
                .collect::<Result<_, _>>()
        })
        .map_err(|e| e.to_string())?;
    let snap = RemSnapshot::new(grids).map_err(|e| e.to_string())?;
    inst.time("encode_save", || snap.save(out))
        .map_err(|e| e.to_string())?;
    let bytes = std::fs::metadata(out).map(|m| m.len()).unwrap_or(0);
    let voxels: usize = snap.grids().iter().map(RemGrid::len).sum();
    eprintln!(
        "wrote {} grid(s), {voxels} voxels, {bytes} bytes to {out}",
        snap.len()
    );
    eprint!("{}", inst.report());
    Ok(())
}

fn snapshot_load(flags: &Flags) -> Result<(), String> {
    let path = required(flags, "in")?;
    let snap = RemSnapshot::load(path).map_err(|e| e.to_string())?;
    let Some(first) = snap.grids().first() else {
        println!("{path}: empty snapshot (0 grids)");
        return Ok(());
    };
    println!(
        "{path}: {} grid(s) over volume {}",
        snap.len(),
        first.volume()
    );
    println!("{:<20} {:>12} {:>10} {:>10}", "mac", "dims", "min dBm", "max dBm");
    for g in snap.grids() {
        let (nx, ny, nz) = g.dims();
        println!(
            "{:<20} {:>12} {:>10.1} {:>10.1}",
            g.mac().to_string(),
            format!("{nx}x{ny}x{nz}"),
            g.min_dbm(),
            g.max_dbm()
        );
    }
    Ok(())
}

fn serve_bench(flags: &Flags) -> Result<(), String> {
    let queries: usize = flag(flags, "queries", 200_000)?;
    let shards: usize = flag(flags, "shards", 4)?;
    let batch: usize = flag(flags, "batch", 8192)?;
    let dist: Distribution = flag(flags, "dist", Distribution::Zipfian)?;
    let seed: u64 = flag(flags, "seed", 2206)?;
    let policy: ExecPolicy = flag(flags, "exec", ExecPolicy::default())?;
    if batch == 0 {
        return Err("--batch must be >= 1".into());
    }
    let snapshot = match flags.get("in") {
        Some(path) => RemSnapshot::load(path).map_err(|e| e.to_string())?,
        None => {
            eprintln!("no --in given; serving a synthetic 3-AP snapshot");
            synthetic_snapshot()
        }
    };
    let mut inst = Instrumentation::new();
    let store = inst
        .time("build_store", || {
            RemStore::build(
                &snapshot,
                StoreConfig {
                    brick_edge: 8,
                    shard_count: shards,
                },
            )
        })
        .map_err(|e| e.to_string())?;
    let workload = inst.time("generate_workload", || {
        point_workload(
            &store,
            &WorkloadConfig {
                queries,
                seed,
                distribution: dist,
                exponent: 1.0,
            },
        )
    });
    let hits = inst
        .time("serve", || {
            let mut hits = 0usize;
            for chunk in workload.chunks(batch) {
                for r in store.submit_batch(chunk, policy)? {
                    if matches!(r, Response::Value(Some(_))) {
                        hits += 1;
                    }
                }
            }
            Ok::<usize, aerorem_serve::ServeError>(hits)
        })
        .map_err(|e| e.to_string())?;
    inst.count("queries", queries as u64);
    eprintln!(
        "{} store: {} cells x {} APs, {} shard(s), brick edge {}",
        store.volume(),
        store.layout().cell_count(),
        store.macs().len(),
        store.shard_count(),
        store.brick_edge()
    );
    println!(
        "{queries} {dist} point queries ({hits} in-volume hits), batch {batch}, exec {policy}"
    );
    if let Some(qps) = inst.throughput("serve", "queries") {
        println!("throughput: {qps:.0} queries/s");
    }
    eprint!("{}", inst.report());
    Ok(())
}

/// A small deterministic snapshot so `serve-bench` runs standalone.
fn synthetic_snapshot() -> RemSnapshot {
    let dims = (32, 32, 16);
    let grids = (1..=3u32)
        .map(|mac| {
            let values = (0..dims.0 * dims.1 * dims.2)
                .map(|i| {
                    let t = i as f64 * 0.000_737 + mac as f64 * 1.37;
                    -35.0 - 25.0 * (t.sin() * t.cos()).abs() - 2.0 * mac as f64
                })
                .collect();
            RemGrid::from_parts(MacAddress::from_index(mac), Aabb::paper_volume(), dims, values)
                .expect("synthetic grid shape")
        })
        .collect();
    RemSnapshot::new(grids).expect("synthetic snapshot is non-empty")
}

fn serve(flags: &Flags) -> Result<(), String> {
    let input = required(flags, "in")?;
    let name = flags.get("name").map(String::as_str).unwrap_or("default");
    let policy: ExecPolicy = flag(flags, "exec", ExecPolicy::default())?;
    let shards: usize = flag(flags, "shards", 4)?;
    let brick: usize = flag(flags, "brick", 8)?;
    let bytes = std::fs::read(input).map_err(|e| format!("reading {input}: {e}"))?;
    let daemon = Daemon::new(DaemonConfig {
        policy,
        store: StoreConfig {
            brick_edge: brick,
            shard_count: shards,
        },
    });
    let info = daemon.load(name, &bytes).map_err(|e| e.to_string())?;
    eprintln!(
        "serving {input} as namespace {name:?} (id {}, generation {}, {} APs, {} cells), exec {policy}",
        info.namespace, info.generation, info.aps, info.cells
    );
    let mut listeners = Vec::new();
    if let Some(addr) = flags.get("tcp") {
        let l = Listener::bind_tcp(addr).map_err(|e| format!("binding tcp {addr}: {e}"))?;
        listeners.push(l);
    }
    if let Some(path) = flags.get("uds") {
        #[cfg(unix)]
        {
            let l = Listener::bind_uds(path).map_err(|e| format!("binding uds {path}: {e}"))?;
            listeners.push(l);
        }
        #[cfg(not(unix))]
        {
            let _ = path;
            return Err("unix-domain sockets are not supported on this platform".into());
        }
    }
    if listeners.is_empty() {
        return Err("serve needs at least one of --tcp ADDR or --uds PATH".into());
    }
    // One parseable line per endpoint on stdout, flushed before serving,
    // so a parent process (tests, scripts) can discover ephemeral ports.
    for l in &listeners {
        println!("listening on {}", l.endpoint());
    }
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    daemon.start(listeners).join();
    eprintln!("daemon stopped");
    Ok(())
}

fn parse_vec3(s: &str) -> Result<Vec3, String> {
    let parts: Vec<&str> = s.split(',').collect();
    if parts.len() != 3 {
        return Err(format!("expected x,y,z coordinates, found {s:?}"));
    }
    let mut v = [0.0f64; 3];
    for (slot, part) in v.iter_mut().zip(&parts) {
        *slot = part
            .trim()
            .parse()
            .map_err(|_| format!("bad coordinate {part:?} in {s:?}"))?;
    }
    Ok(Vec3::new(v[0], v[1], v[2]))
}

fn connect_client(flags: &Flags) -> Result<WireClient, String> {
    match (flags.get("tcp"), flags.get("uds")) {
        (Some(addr), None) => WireClient::connect_tcp(addr)
            .map_err(|e| format!("connecting to tcp {addr}: {e}")),
        (None, Some(path)) => {
            #[cfg(unix)]
            {
                WireClient::connect_uds(path).map_err(|e| format!("connecting to uds {path}: {e}"))
            }
            #[cfg(not(unix))]
            {
                let _ = path;
                Err("unix-domain sockets are not supported on this platform".into())
            }
        }
        (Some(_), Some(_)) => Err("give exactly one of --tcp or --uds".into()),
        (None, None) => Err("serve-client needs --tcp ADDR or --uds PATH".into()),
    }
}

fn serve_client(sub: &str, flags: &Flags) -> Result<(), String> {
    let mut client = connect_client(flags)?;
    let namespace: u32 = flag(flags, "namespace", 0)?;
    let one = |client: &mut WireClient, q: Query| -> Result<(u64, Response), String> {
        let (generation, mut responses) =
            client.query(namespace, &[q]).map_err(|e| e.to_string())?;
        let response = responses.pop().ok_or("server sent an empty response batch")?;
        Ok((generation, response))
    };
    match sub {
        "point" => {
            let pos = parse_vec3(required(flags, "at")?)?;
            let ap: MacAddress = required(flags, "mac")?
                .parse()
                .map_err(|_| "bad --mac: expected aa:bb:cc:dd:ee:ff".to_string())?;
            let (generation, response) = one(&mut client, Query::Point { pos, ap })?;
            eprintln!("generation {generation}");
            match response {
                Response::Value(Some(v)) => println!("value {v:?}"),
                Response::Value(None) => println!("value none"),
                other => return Err(format!("mismatched response {other:?}")),
            }
        }
        "best" => {
            let pos = parse_vec3(required(flags, "at")?)?;
            let (generation, response) = one(&mut client, Query::BestAp { pos })?;
            eprintln!("generation {generation}");
            match response {
                Response::Best(Some((mac, v))) => println!("best {mac} {v:?}"),
                Response::Best(None) => println!("best none"),
                other => return Err(format!("mismatched response {other:?}")),
            }
        }
        "stats" => {
            let min = parse_vec3(required(flags, "min")?)?;
            let max = parse_vec3(required(flags, "max")?)?;
            let ap: MacAddress = required(flags, "mac")?
                .parse()
                .map_err(|_| "bad --mac: expected aa:bb:cc:dd:ee:ff".to_string())?;
            let region = Aabb::new(min, max)
                .ok_or("--min/--max must have positive extent on every axis")?;
            let (generation, response) = one(&mut client, Query::BoxStats { region, ap })?;
            eprintln!("generation {generation}");
            match response {
                Response::Stats(s) => println!(
                    "stats count {} min {:?} max {:?} mean {:?}",
                    s.count,
                    s.min,
                    s.max,
                    s.mean()
                ),
                other => return Err(format!("mismatched response {other:?}")),
            }
        }
        "coverage" => {
            let threshold_dbm: f64 = flag(flags, "threshold", -75.0)?;
            let ap: MacAddress = required(flags, "mac")?
                .parse()
                .map_err(|_| "bad --mac: expected aa:bb:cc:dd:ee:ff".to_string())?;
            let (generation, response) = one(&mut client, Query::Coverage { threshold_dbm, ap })?;
            eprintln!("generation {generation}");
            match response {
                Response::Covered { cells, fraction } => {
                    println!("covered {cells} cells, fraction {fraction:?}")
                }
                other => return Err(format!("mismatched response {other:?}")),
            }
        }
        "namespaces" => {
            let namespaces = client.list().map_err(|e| e.to_string())?;
            println!("{} namespace(s)", namespaces.len());
            for ns in namespaces {
                println!(
                    "{} {:?} generation {} aps {} cells {}",
                    ns.id, ns.name, ns.generation, ns.aps, ns.cells
                );
            }
        }
        "load" => {
            let input = required(flags, "in")?;
            let name = flags.get("name").map(String::as_str).unwrap_or("default");
            let bytes = std::fs::read(input).map_err(|e| format!("reading {input}: {e}"))?;
            let info = client.load(name, &bytes).map_err(|e| e.to_string())?;
            println!(
                "loaded {name:?} as namespace {} generation {} ({} APs, {} cells)",
                info.namespace, info.generation, info.aps, info.cells
            );
        }
        "shutdown" => {
            client.shutdown().map_err(|e| e.to_string())?;
            println!("daemon acknowledged shutdown");
        }
        other => {
            return Err(format!(
                "unknown serve-client subcommand {other:?} \
                 (point|best|stats|coverage|namespaces|load|shutdown)"
            ))
        }
    }
    Ok(())
}

fn usage(err: &str) -> ExitCode {
    eprintln!("error: {err}");
    eprintln!(
        "usage:\n  aerorem survey   [--seed N] [--waypoints 72] [--uavs 2] --out samples.csv\n  \
         aerorem evaluate --in samples.csv [--seed N] [--min-samples 16]\n  \
         aerorem map      --in samples.csv [--mac aa:bb:cc:dd:ee:ff] [--resolution 0.25] --out rem.csv\n  \
         \u{20}                [--confidence sigma.csv] [--exec serial|parallel]\n  \
         aerorem coverage --in samples.csv [--threshold -75] [--radius 1.2]\n  \
         aerorem demo     [--seed N] [--exec serial|parallel]\n  \
         aerorem snapshot save --in samples.csv --out rem.snap [--resolution 0.25] [--aps 8]\n  \
         aerorem snapshot load --in rem.snap\n  \
         aerorem serve-bench [--in rem.snap] [--queries 200000] [--shards 4] [--batch 8192]\n  \
         \u{20}                   [--dist zipfian|uniform] [--seed N] [--exec serial|parallel]\n  \
         aerorem serve    --in rem.snap (--tcp ADDR | --uds PATH) [--name default]\n  \
         \u{20}                [--exec serial|parallel] [--shards 4] [--brick 8]\n  \
         aerorem serve-client <point|best|stats|coverage|namespaces|load|shutdown>\n  \
         \u{20}                (--tcp ADDR | --uds PATH) [--namespace 0] ...\n  \
         \u{20}                point:    --at x,y,z --mac aa:bb:cc:dd:ee:ff\n  \
         \u{20}                best:     --at x,y,z\n  \
         \u{20}                stats:    --min x,y,z --max x,y,z --mac MAC\n  \
         \u{20}                coverage: --mac MAC [--threshold -75]\n  \
         \u{20}                load:     --in rem.snap [--name default]"
    );
    ExitCode::from(2)
}
