//! # aerorem — autonomous generation of fine-grained 3D indoor REMs
//!
//! A full Rust reproduction of *"Small UAVs-supported Autonomous Generation
//! of Fine-grained 3D Indoor Radio Environmental Maps"* (ICDCS 2022): small
//! UAVs with UWB localization carry a technology-agnostic Wi-Fi scanner
//! through an indoor volume, and an ML layer predicts signal quality at
//! locations the UAVs never visited.
//!
//! This crate is the facade: it re-exports every subsystem under one name.
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! reproduced figures.
//!
//! ## Quickstart
//!
//! ```no_run
//! use aerorem::core::pipeline::{PipelineConfig, RemPipeline};
//! use aerorem::spatial::Vec3;
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut rng = rand::rngs::StdRng::seed_from_u64(2206);
//! let result = RemPipeline::new(PipelineConfig::paper_demo()).run(&mut rng)?;
//! println!("{}", result.figure8_table());
//! let mac = result.strongest_mac().expect("APs observed");
//! let rss = result.predict(Vec3::new(1.0, 1.0, 1.0), mac)?;
//! println!("predicted {rss:.1} dBm at an unvisited point");
//! # Ok(())
//! # }
//! ```
//!
//! ## Layer map
//!
//! | module | contents |
//! |---|---|
//! | [`numerics`] | dense linear algebra, distributions, statistics |
//! | [`simkit`] | deterministic discrete-event kernel (time, tasks, watchdogs) |
//! | [`spatial`] | vectors, volumes, waypoint grids |
//! | [`propagation`] | indoor 2.4 GHz radio world: path loss, shadowing, scans, interference |
//! | [`radio`] | CRTP packets, Crazyradio, uplink queue |
//! | [`scanner`] | ESP-01 AT-command receiver + the four-instruction driver contract |
//! | [`localization`] | UWB TWR/TDoA ranging + EKF (+ Lighthouse extension) |
//! | [`uav`] | quadrotor dynamics, battery, commander firmware model |
//! | [`mission`] | waypoint planning, base-station client, campaign runner |
//! | [`ml`] | kNN / MLP / baselines / grid search / IDW / kriging, from scratch |
//! | [`core`] | the pipeline: preprocessing, Figure-8 model zoo, REM grids, coverage, snapshots |
//! | [`serve`] | REM-as-a-service: sharded voxel store, octree queries, batch engine |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use aerorem_core as core;
pub use aerorem_localization as localization;
pub use aerorem_mission as mission;
pub use aerorem_ml as ml;
pub use aerorem_numerics as numerics;
pub use aerorem_propagation as propagation;
pub use aerorem_radio as radio;
pub use aerorem_scanner as scanner;
pub use aerorem_serve as serve;
pub use aerorem_simkit as simkit;
pub use aerorem_spatial as spatial;
pub use aerorem_uav as uav;
