//! Offline, in-tree subset of the `proptest` API used by this workspace.
//!
//! Supports the [`proptest!`] macro (`arg in strategy` bindings),
//! `prop_assert!` / `prop_assert_eq!`, the [`Strategy`] trait with
//! `prop_map`, integer/float range strategies, tuple strategies,
//! `prop::collection::vec`, `any::<T>()`, `prop::num::f64::NORMAL`, and
//! string strategies for the tiny regex subset `.{m,n}`.
//!
//! Differences from real proptest, by design:
//!
//! * no shrinking — a failing case reports its seed and inputs via the
//!   panic message instead;
//! * deterministic seeding per (test, case index), so failures reproduce
//!   without a regression file (`proptest-regressions` files are ignored);
//! * `PROPTEST_CASES` overrides the per-test case count (default 64).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of cases each `proptest!` test runs.
pub fn case_count() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// A generator of values for property tests.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { base: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn new_value(&self, rng: &mut StdRng) -> Self::Value {
        (**self).new_value(rng)
    }
}

/// The adapter returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn new_value(&self, rng: &mut StdRng) -> T {
        (self.f)(self.base.new_value(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// String strategy from a pattern: supports `.{m,n}`, bare `.`, and
/// patterns with no regex metacharacters (taken literally).
impl Strategy for &str {
    type Value = String;
    fn new_value(&self, rng: &mut StdRng) -> String {
        string_from_pattern(self, rng)
    }
}

fn random_char(rng: &mut StdRng) -> char {
    // `.` matches any char but newline; bias towards printable ASCII with
    // CSV-hostile characters and a sprinkle of multibyte codepoints.
    match rng.gen_range(0..10u32) {
        0 => ',',
        1 => '"',
        2 => ['é', 'ß', '→', '中', '𝛼', '\t', '\'', '\\'][rng.gen_range(0..8usize)],
        _ => char::from(rng.gen_range(0x20u8..0x7F)),
    }
}

fn string_from_pattern(pattern: &str, rng: &mut StdRng) -> String {
    if let Some(rest) = pattern.strip_prefix(".{") {
        if let Some(body) = rest.strip_suffix('}') {
            if let Some((lo, hi)) = body.split_once(',') {
                if let (Ok(lo), Ok(hi)) = (lo.trim().parse(), hi.trim().parse::<usize>()) {
                    let len = rng.gen_range(lo..=hi);
                    return (0..len).map(|_| random_char(rng)).collect();
                }
            }
        }
    }
    if pattern == "." {
        return random_char(rng).to_string();
    }
    assert!(
        !pattern.contains(['*', '+', '?', '[', '(', '|', '{']),
        "unsupported pattern {pattern:?}: the vendored proptest subset only \
         understands `.{{m,n}}`, `.`, and literal strings"
    );
    pattern.to_string()
}

/// Types with a canonical `any::<T>()` strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.gen()
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f32, f64);

/// The strategy returned by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn new_value(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`, as in `any::<u8>()`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// The `prop::` namespace.
pub mod prop {
    pub use crate::any;

    pub mod collection {
        //! Collection strategies.

        use crate::Strategy;
        use rand::rngs::StdRng;
        use rand::Rng;

        /// Ranges usable as a `vec` length specification.
        pub trait SizeRange {
            /// Draws one length.
            fn pick_len(&self, rng: &mut StdRng) -> usize;
        }

        impl SizeRange for core::ops::Range<usize> {
            fn pick_len(&self, rng: &mut StdRng) -> usize {
                rng.gen_range(self.clone())
            }
        }

        impl SizeRange for core::ops::RangeInclusive<usize> {
            fn pick_len(&self, rng: &mut StdRng) -> usize {
                rng.gen_range(self.clone())
            }
        }

        impl SizeRange for usize {
            fn pick_len(&self, _rng: &mut StdRng) -> usize {
                *self
            }
        }

        /// The strategy returned by [`vec`].
        pub struct VecStrategy<S, R> {
            element: S,
            size: R,
        }

        impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
            type Value = Vec<S::Value>;
            fn new_value(&self, rng: &mut StdRng) -> Vec<S::Value> {
                let len = self.size.pick_len(rng);
                (0..len).map(|_| self.element.new_value(rng)).collect()
            }
        }

        /// A strategy for vectors of `element` values with a length drawn
        /// from `size`.
        pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
            VecStrategy { element, size }
        }
    }

    pub mod num {
        //! Numeric strategies.

        pub mod f64 {
            //! `f64` strategies.

            use crate::Strategy;
            use rand::rngs::StdRng;
            use rand::Rng;

            /// Strategy for normal (finite, non-zero-exponent) `f64`s with
            /// widely varying magnitudes.
            pub struct NormalF64;

            /// Generates normal `f64` values, as `prop::num::f64::NORMAL`.
            pub const NORMAL: NormalF64 = NormalF64;

            impl Strategy for NormalF64 {
                type Value = f64;
                fn new_value(&self, rng: &mut StdRng) -> f64 {
                    // Random sign/mantissa with an exponent spread across
                    // a useful slice of the normal range.
                    let mantissa: f64 = rng.gen::<f64>() + 1.0; // [1, 2)
                    let exp = rng.gen_range(-60i32..60);
                    let sign = if rng.gen::<bool>() { 1.0 } else { -1.0 };
                    let v = sign * mantissa * (exp as f64).exp2();
                    debug_assert!(v.is_normal());
                    v
                }
            }
        }
    }
}

/// Everything a `proptest!`-based test file needs in scope.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{any, Arbitrary, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Builds the per-case RNG for a named test. Mixes the test name so
/// distinct tests see distinct streams.
pub fn case_rng(test_name: &str, case: u32) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(h ^ (u64::from(case) << 32) ^ u64::from(case))
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over [`case_count`] generated
/// cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {$(
        $(#[$meta])*
        fn $name() {
            $(let $arg = &$strat;)+
            for case in 0..$crate::case_count() {
                let mut proptest_case_rng = $crate::case_rng(stringify!($name), case);
                $(
                    let $arg = $crate::Strategy::new_value($arg, &mut proptest_case_rng);
                )+
                $body
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_tuples(x in 0u64..100, pair in (1usize..5, -1.0f64..1.0)) {
            prop_assert!(x < 100);
            prop_assert!((1..5).contains(&pair.0));
            prop_assert!((-1.0..1.0).contains(&pair.1));
        }

        #[test]
        fn mapped_strategies(v in prop::num::f64::NORMAL.prop_map(|x| x.abs())) {
            prop_assert!(v > 0.0 && v.is_finite());
        }

        #[test]
        fn collections_and_any(bytes in prop::collection::vec(any::<u8>(), 0..=16)) {
            prop_assert!(bytes.len() <= 16);
        }

        #[test]
        fn string_patterns(s in prop::collection::vec(".{0,32}", 1..4)) {
            prop_assert!(!s.is_empty());
            for name in &s {
                prop_assert!(name.chars().count() <= 32);
                prop_assert!(!name.contains('\n'));
            }
        }
    }

    #[test]
    fn deterministic_per_test_and_case() {
        use crate::Strategy;
        let s = 0u64..1_000_000;
        let a = s.new_value(&mut crate::case_rng("t", 3));
        let b = s.new_value(&mut crate::case_rng("t", 3));
        let c = s.new_value(&mut crate::case_rng("t", 4));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
