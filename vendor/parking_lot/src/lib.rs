//! Offline, in-tree subset of the `parking_lot` API used by this workspace:
//! [`Mutex`] and [`RwLock`] with panic-on-poison guard acquisition (the
//! parking_lot calling convention — `lock()` returns the guard directly).

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutex whose `lock` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking the current thread.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock whose `read`/`write` return guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::{Mutex, RwLock};

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(String::from("a"));
        l.write().push('b');
        assert_eq!(&*l.read(), "ab");
        assert_eq!(l.into_inner(), "ab");
    }
}
