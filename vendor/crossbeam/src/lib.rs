//! Offline, in-tree subset of the `crossbeam` API used by this workspace:
//! scoped threads, implemented on top of [`std::thread::scope`].

pub mod thread {
    //! Scoped threads with the `crossbeam::thread` calling convention.

    use std::any::Any;

    /// What a scope body or a joined thread returns on panic.
    pub type PanicPayload = Box<dyn Any + Send + 'static>;

    /// A handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread and returns its result, or the panic payload.
        pub fn join(self) -> Result<T, PanicPayload> {
            self.inner.join()
        }
    }

    /// The spawn surface handed to the closure passed to [`scope`].
    pub struct Scope<'env, 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'env, 'scope> Scope<'env, 'scope> {
        /// Spawns a scoped thread. As in crossbeam, the closure receives the
        /// scope again so it can spawn nested work.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'env, 'scope>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner_scope = self.inner;
            ScopedJoinHandle {
                inner: inner_scope.spawn(move || {
                    f(&Scope { inner: inner_scope })
                }),
            }
        }
    }

    /// Runs `f` with a scope in which borrowed-data threads can be spawned;
    /// all spawned threads are joined before this returns.
    ///
    /// # Errors
    ///
    /// Returns the panic payload if the scope body itself panics (panics in
    /// spawned threads surface through their handles' `join`, or here if
    /// a handle was dropped without joining — matching crossbeam).
    pub fn scope<'env, F, R>(f: F) -> Result<R, PanicPayload>
    where
        F: for<'scope> FnOnce(&Scope<'env, 'scope>) -> R,
    {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::thread;

    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let total = thread::scope(|scope| {
            let handles: Vec<_> = data
                .iter()
                .map(|&x| scope.spawn(move |_| x * 10))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker ok"))
                .sum::<u64>()
        })
        .expect("scope ok");
        assert_eq!(total, 100);
    }

    #[test]
    fn panic_in_body_is_reported() {
        let r = thread::scope(|_| panic!("boom"));
        assert!(r.is_err());
    }
}
