//! No-op `Serialize` / `Deserialize` derives for the in-tree serde subset.
//!
//! The subset's traits are blanket-implemented for all types, so the derive
//! only needs to *exist* (and accept `#[serde(...)]` helper attributes);
//! it emits no code.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]`; emits nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]`; emits nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
