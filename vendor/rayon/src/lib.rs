//! Offline, in-tree subset of the `rayon` API used by this workspace.
//!
//! Provides `par_iter()` / `into_par_iter()` over slices, vectors and
//! integer ranges with `map` → `collect` (including collection into
//! `Result<Vec<_>, E>`), `for_each` and `sum`, executed by chunking the
//! input across [`std::thread::scope`] threads.
//!
//! Two properties the workspace relies on:
//!
//! * **Deterministic order** — results are reassembled in input order, so a
//!   parallel map is observationally identical to the serial map (this
//!   backs the pipeline's serial-vs-parallel determinism test).
//! * **No global pool** — threads are scoped per call; there is nothing to
//!   configure or leak. Thread count is [`std::thread::available_parallelism`],
//!   capped by the number of items.

use std::num::NonZeroUsize;

/// The traits a caller needs in scope, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParallelIterator};
}

/// Number of worker threads a parallel call may use.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Evaluates `f` over `items` on scoped threads, preserving input order.
fn parallel_map_vec<T, R, F>(items: Vec<T>, f: &F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let len = items.len();
    let threads = current_num_threads().min(len.max(1));
    if threads <= 1 || len <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk = len.div_ceil(threads);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
    let mut it = items.into_iter();
    loop {
        let c: Vec<T> = it.by_ref().take(chunk).collect();
        if c.is_empty() {
            break;
        }
        chunks.push(c);
    }
    let mut out = Vec::with_capacity(len);
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|c| scope.spawn(move || c.into_iter().map(f).collect::<Vec<R>>()))
            .collect();
        for h in handles {
            out.extend(h.join().expect("rayon worker panicked"));
        }
    });
    out
}

/// A parallel iterator: a materialized item source plus composed transforms.
pub trait ParallelIterator: Sized {
    /// The element type this iterator yields.
    type Item: Send;

    /// Evaluates the iterator, in parallel where profitable, preserving
    /// input order.
    fn drive(self) -> Vec<Self::Item>;

    /// Maps every item through `f` in parallel.
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync + Send,
    {
        Map { base: self, f }
    }

    /// Collects the items into `C` (e.g. `Vec<T>` or `Result<Vec<T>, E>`).
    fn collect<C: FromParallelIterator<Self::Item>>(self) -> C {
        C::from_ordered_vec(self.drive())
    }

    /// Runs `f` on every item in parallel.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync + Send,
    {
        let _ = self.map(f).drive();
    }

    /// Sums the items.
    fn sum<S>(self) -> S
    where
        S: std::iter::Sum<Self::Item>,
    {
        self.drive().into_iter().sum()
    }

    /// Number of items (evaluates the source).
    fn count(self) -> usize {
        self.drive().len()
    }
}

/// A materialized item source.
pub struct IterBridge<T> {
    items: Vec<T>,
}

impl<T: Send> ParallelIterator for IterBridge<T> {
    type Item = T;

    fn drive(self) -> Vec<T> {
        self.items
    }
}

/// The adapter returned by [`ParallelIterator::map`].
pub struct Map<P, F> {
    base: P,
    f: F,
}

impl<P, R, F> ParallelIterator for Map<P, F>
where
    P: ParallelIterator,
    R: Send,
    F: Fn(P::Item) -> R + Sync + Send,
{
    type Item = R;

    fn drive(self) -> Vec<R> {
        parallel_map_vec(self.base.drive(), &self.f)
    }
}

/// Collection targets for [`ParallelIterator::collect`].
pub trait FromParallelIterator<T: Send>: Sized {
    /// Builds the collection from items already in input order.
    fn from_ordered_vec(items: Vec<T>) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_ordered_vec(items: Vec<T>) -> Self {
        items
    }
}

impl<T: Send, E: Send> FromParallelIterator<Result<T, E>> for Result<Vec<T>, E> {
    fn from_ordered_vec(items: Vec<Result<T, E>>) -> Self {
        items.into_iter().collect()
    }
}

impl<T: Send> FromParallelIterator<Option<T>> for Option<Vec<T>> {
    fn from_ordered_vec(items: Vec<Option<T>>) -> Self {
        items.into_iter().collect()
    }
}

/// Types convertible into a parallel iterator by value.
pub trait IntoParallelIterator {
    /// The element type.
    type Item: Send;
    /// The iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Converts `self`.
    fn into_par_iter(self) -> Self::Iter;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = IterBridge<T>;
    fn into_par_iter(self) -> IterBridge<T> {
        IterBridge { items: self }
    }
}

macro_rules! impl_range_into_par {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for core::ops::Range<$t> {
            type Item = $t;
            type Iter = IterBridge<$t>;
            fn into_par_iter(self) -> IterBridge<$t> {
                IterBridge { items: self.collect() }
            }
        }
    )*};
}
impl_range_into_par!(u32, u64, usize, i32, i64);

/// Types whose references yield a parallel iterator (`par_iter`).
pub trait IntoParallelRefIterator<'a> {
    /// The borrowed element type.
    type Item: Send + 'a;
    /// The iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Iterates `&self` in parallel.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = IterBridge<&'a T>;
    fn par_iter(&'a self) -> IterBridge<&'a T> {
        IterBridge {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = IterBridge<&'a T>;
    fn par_iter(&'a self) -> IterBridge<&'a T> {
        IterBridge {
            items: self.iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<u64> = (0..10_000u64).into_par_iter().map(|i| i * 2).collect();
        let expected: Vec<u64> = (0..10_000u64).map(|i| i * 2).collect();
        assert_eq!(v, expected);
    }

    #[test]
    fn par_iter_over_slice_and_vec() {
        let data = vec![1.0f64, 2.0, 3.0, 4.0];
        let doubled: Vec<f64> = data.par_iter().map(|&x| x * 2.0).collect();
        assert_eq!(doubled, vec![2.0, 4.0, 6.0, 8.0]);
        let s: f64 = data.as_slice().par_iter().map(|&x| x).sum();
        assert_eq!(s, 10.0);
    }

    #[test]
    fn collect_into_result_short_circuits_value() {
        let ok: Result<Vec<u32>, String> =
            (0..50u32).into_par_iter().map(Ok).collect();
        assert_eq!(ok.unwrap().len(), 50);
        let err: Result<Vec<u32>, String> = (0..50u32)
            .into_par_iter()
            .map(|i| if i == 17 { Err(format!("bad {i}")) } else { Ok(i) })
            .collect();
        assert_eq!(err.unwrap_err(), "bad 17");
    }

    #[test]
    fn empty_and_single_inputs() {
        let v: Vec<u32> = Vec::<u32>::new().into_par_iter().map(|x| x).collect();
        assert!(v.is_empty());
        let one: Vec<u32> = vec![7u32].into_par_iter().map(|x| x + 1).collect();
        assert_eq!(one, vec![8]);
    }

    #[test]
    fn for_each_and_count() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let hits = AtomicUsize::new(0);
        (0..100usize).into_par_iter().for_each(|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 100);
        assert_eq!((0..42usize).into_par_iter().count(), 42);
    }
}
