//! Offline, in-tree subset of the `bytes` API used by this workspace:
//! [`Bytes`], [`BytesMut`] and the [`BufMut`] write trait, backed by a
//! plain `Vec<u8>` (no refcounted zero-copy splitting).

use std::ops::Deref;

/// An immutable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Bytes {
    /// An empty buffer.
    pub const fn new() -> Self {
        Bytes { data: Vec::new() }
    }

    /// Copies `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: data.to_vec(),
        }
    }

    /// Extracts the bytes as a vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Bytes::copy_from_slice(data)
    }
}

/// A growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub const fn new() -> Self {
        BytesMut { data: Vec::new() }
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Freezes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// Write-side operations on byte buffers.
pub trait BufMut {
    /// Appends one byte.
    fn put_u8(&mut self, b: u8);
    /// Appends a slice.
    fn put_slice(&mut self, src: &[u8]);
    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, b: u8) {
        self.data.push(b);
    }
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_u8(&mut self, b: u8) {
        self.push(b);
    }
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::{BufMut, Bytes, BytesMut};

    #[test]
    fn build_and_freeze() {
        let mut buf = BytesMut::with_capacity(8);
        buf.put_u8(0xAB);
        buf.put_slice(&[1, 2, 3]);
        buf.put_u16(0x0102);
        let frozen: Bytes = buf.freeze();
        assert_eq!(&*frozen, &[0xAB, 1, 2, 3, 1, 2]);
        assert_eq!(frozen.to_vec().len(), 6);
        assert_eq!(Bytes::copy_from_slice(&[9]).as_ref(), &[9]);
        assert_eq!(Bytes::from(vec![7u8]).len(), 1);
    }
}
