//! Offline, in-tree subset of the `serde` API used by this workspace.
//!
//! The workspace derives `Serialize` / `Deserialize` on its data types and
//! asserts the bounds in tests, but never actually serializes (there is no
//! format crate in the dependency tree). So the traits here are *markers*,
//! blanket-implemented for every type, and the `derive` macros are no-ops.
//! Swapping in the real `serde` later only requires restoring the
//! crates.io dependency.

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
impl<'de, T> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Namespace stand-in for `serde::de`.
pub mod de {
    pub use super::{Deserialize, DeserializeOwned};
}

/// Namespace stand-in for `serde::ser`.
pub mod ser {
    pub use super::Serialize;
}

#[cfg(test)]
mod tests {
    #[test]
    fn bounds_are_satisfied_for_arbitrary_types() {
        fn assert_serde<T: crate::Serialize + for<'de> crate::Deserialize<'de>>() {}
        struct Custom {
            _x: u8,
        }
        assert_serde::<Custom>();
        assert_serde::<Vec<String>>();
    }
}
