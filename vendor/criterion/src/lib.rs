//! Offline, in-tree subset of the `criterion` API used by this workspace.
//!
//! Supports `Criterion::bench_function`, `benchmark_group` (with
//! `sample_size`, `bench_function`, `bench_with_input`, `finish`),
//! [`BenchmarkId`], [`black_box`], and the `criterion_group!` /
//! `criterion_main!` macros. Measurement is real wall-clock timing with a
//! short warm-up, reported as a plain-text `name  median  mean  iters`
//! line per benchmark — no statistics engine, no HTML reports.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier; defers to [`std::hint::black_box`].
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// A benchmark identifier composed of a function name and a parameter.
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// Builds `function_name/parameter`.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            full: format!("{function_name}/{parameter}"),
        }
    }

    /// Builds a parameter-only id.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            full: parameter.to_string(),
        }
    }
}

/// The per-benchmark measurement driver passed to bench closures.
pub struct Bencher {
    target_time: Duration,
    min_samples: u64,
    /// Filled by `iter`: (total elapsed, iterations).
    result: Option<(Duration, u64)>,
}

impl Bencher {
    /// Times repeated runs of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up and per-iteration cost estimate.
        let warm_start = Instant::now();
        black_box(routine());
        let first = warm_start.elapsed();
        let per_iter = first.max(Duration::from_nanos(1));
        let planned = (self.target_time.as_nanos() / per_iter.as_nanos().max(1)) as u64;
        let iters = planned.clamp(self.min_samples, 1_000_000);
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.result = Some((start.elapsed(), iters));
    }
}

/// The top-level benchmark context.
pub struct Criterion {
    target_time: Duration,
    default_samples: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            target_time: Duration::from_millis(300),
            default_samples: 10,
        }
    }
}

fn run_one(name: &str, target_time: Duration, min_samples: u64, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        target_time,
        min_samples,
        result: None,
    };
    f(&mut b);
    match b.result {
        Some((elapsed, iters)) => {
            let per_iter = elapsed.as_secs_f64() / iters as f64;
            println!("bench: {name:<50} {} /iter ({iters} iters)", fmt_secs(per_iter));
        }
        None => println!("bench: {name:<50} (no measurement: closure never called iter)"),
    }
}

fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:>9.3} s ")
    } else if s >= 1e-3 {
        format!("{:>9.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:>9.3} µs", s * 1e6)
    } else {
        format!("{:>9.1} ns", s * 1e9)
    }
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, self.target_time, self.default_samples, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: None,
        }
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: Option<u64>,
}

impl BenchmarkGroup<'_> {
    /// Sets the minimum sample (iteration) count for the group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n as u64);
        self
    }

    fn min_samples(&self) -> u64 {
        self.sample_size.unwrap_or(self.criterion.default_samples)
    }

    /// Runs one named benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let full = format!("{}/{name}", self.name);
        run_one(&full, self.criterion.target_time, self.min_samples(), &mut f);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.full);
        run_one(&full, self.criterion.target_time, self.min_samples(), &mut |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a benchmark group function, as in criterion's simple form.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures() {
        let mut c = Criterion {
            target_time: Duration::from_millis(5),
            default_samples: 3,
        };
        let mut ran = 0u64;
        c.bench_function("noop", |b| {
            b.iter(|| {
                ran += 1;
            })
        });
        assert!(ran > 0);
    }

    #[test]
    fn groups_and_ids() {
        let mut c = Criterion {
            target_time: Duration::from_millis(5),
            default_samples: 3,
        };
        let mut group = c.benchmark_group("g");
        group.sample_size(4);
        group.bench_with_input(BenchmarkId::new("param", 7), &7u64, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        group.finish();
        assert_eq!(BenchmarkId::new("f", 3).full, "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").full, "x");
    }
}
