//! Offline, in-tree subset of the `rand` crate API used by this workspace.
//!
//! Provides [`RngCore`], the [`Rng`] extension trait (`gen`, `gen_range`,
//! `gen_bool`), [`SeedableRng`], [`rngs::StdRng`] (xoshiro256++ seeded via
//! SplitMix64) and [`seq::SliceRandom`]. The streams are deterministic per
//! seed but are **not** bit-compatible with the real `rand` crate.

/// The core of a random number generator: raw integer output.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl RngCore for Box<dyn RngCore + '_> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types that can be sampled uniformly from their "standard" distribution
/// (the whole value domain for integers, `[0, 1)` for floats).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// A range understood by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `u64` in `[0, span)` by rejection, so small spans are unbiased.
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let x = rng.next_u64();
        if x < zone {
            return x % span;
        }
    }
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let off = uniform_u64_below(rng, span);
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let off = uniform_u64_below(rng, span + 1);
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u = <$t as Standard>::sample_standard(rng);
                self.start + (self.end - self.start) * u
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let u = <$t as Standard>::sample_standard(rng);
                lo + (hi - lo) * u
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// Convenience methods available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws one value from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws one value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// The seed byte array type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanded via SplitMix64.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard seeded generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // An all-zero state would be a fixed point; nudge it.
            if s == [0, 0, 0, 0] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0x6A09_E667_F3BC_C909,
                    0xBB67_AE85_84CA_A73B,
                    0x3C6E_F372_FE94_F82B,
                ];
            }
            StdRng { s }
        }
    }
}

pub mod seq {
    //! Sequence-related extensions.

    use super::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Returns one uniformly chosen element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (super::uniform_u64_below(rng, (i + 1) as u64)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = super::uniform_u64_below(rng, self.len() as u64) as usize;
                Some(&self[i])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn floats_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_bounds_hold() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&f));
            let i = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn gen_range_covers_small_domain() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[rng.gen_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert!(v.choose(&mut rng).is_some());
    }

    #[test]
    fn fill_bytes_fills_odd_lengths() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn dyn_rng_core_usable() {
        let mut rng = StdRng::seed_from_u64(11);
        let dyn_rng: &mut dyn RngCore = &mut rng;
        let x: f64 = dyn_rng.gen();
        assert!(x.is_finite());
    }
}
