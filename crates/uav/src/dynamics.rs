//! Point-mass quadrotor dynamics with a velocity-limited position
//! controller.
//!
//! The Crazyflie's cascaded PID stack is abstracted to what the mission
//! layer observes: the vehicle flies toward its commanded position with
//! bounded speed and acceleration, holds position with centimeter-level
//! jitter, levels out when uncontrolled (drifting slowly), and falls when
//! shut down.

use rand::Rng;
use serde::{Deserialize, Serialize};

use aerorem_numerics::dist;
use aerorem_spatial::{Attitude, Vec3};

/// Physical/controller limits of the airframe.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DynamicsConfig {
    /// Maximum horizontal/vertical speed, m/s.
    pub max_speed: f64,
    /// Maximum acceleration, m/s².
    pub max_accel: f64,
    /// Position-controller proportional gain, 1/s.
    pub kp: f64,
    /// Velocity damping gain, 1/s.
    pub kd: f64,
    /// 1-σ hover jitter driving acceleration, m/s².
    pub jitter_accel: f64,
    /// 1-σ drift acceleration while stabilizing without control, m/s².
    pub uncontrolled_drift_accel: f64,
    /// Maximum yaw slew rate, rad/s.
    pub max_yaw_rate: f64,
}

impl DynamicsConfig {
    /// Crazyflie-like defaults: 0.6 m/s, gentle gains, ±2 cm hover jitter.
    pub fn crazyflie() -> Self {
        DynamicsConfig {
            max_speed: 0.6,
            max_accel: 2.0,
            kp: 2.4,
            kd: 3.0,
            jitter_accel: 0.35,
            uncontrolled_drift_accel: 0.9,
            max_yaw_rate: 2.0,
        }
    }
}

impl Default for DynamicsConfig {
    fn default() -> Self {
        Self::crazyflie()
    }
}

/// The control input applied each step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ControlInput {
    /// Fly toward / hold the given position.
    Position(Vec3),
    /// No setpoint: level attitude, slow drift (the 500 ms rule's outcome).
    Stabilize,
    /// Motors off: free fall until the floor.
    MotorsOff,
}

/// The simulated airframe state.
///
/// # Examples
///
/// ```
/// use aerorem_uav::dynamics::{ControlInput, DynamicsConfig, Quadrotor};
/// use aerorem_spatial::Vec3;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let mut q = Quadrotor::new(DynamicsConfig::crazyflie(), Vec3::ZERO);
/// for _ in 0..1000 {
///     q.step(0.01, ControlInput::Position(Vec3::new(1.0, 0.0, 1.0)), &mut rng);
/// }
/// assert!(q.position().distance(Vec3::new(1.0, 0.0, 1.0)) < 0.1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Quadrotor {
    config: DynamicsConfig,
    position: Vec3,
    velocity: Vec3,
    attitude: Attitude,
    yaw_target: f64,
    floor_z: f64,
}

impl Quadrotor {
    /// Creates a stationary airframe at `position`; the floor is at the
    /// starting z.
    pub fn new(config: DynamicsConfig, position: Vec3) -> Self {
        Quadrotor {
            config,
            position,
            velocity: Vec3::ZERO,
            attitude: Attitude::LEVEL,
            yaw_target: 0.0,
            floor_z: position.z,
        }
    }

    /// Current true position.
    pub fn position(&self) -> Vec3 {
        self.position
    }

    /// Current true velocity.
    pub fn velocity(&self) -> Vec3 {
        self.velocity
    }

    /// Current attitude.
    pub fn attitude(&self) -> Attitude {
        self.attitude
    }

    /// Sets the heading the controller slews toward (the paper's client
    /// configures a per-UAV yaw, §III-A).
    pub fn set_yaw_target(&mut self, yaw: f64) {
        self.yaw_target = yaw;
    }

    /// The commanded heading.
    pub fn yaw_target(&self) -> f64 {
        self.yaw_target
    }

    /// Whether the airframe is resting on the floor.
    pub fn on_floor(&self) -> bool {
        self.position.z <= self.floor_z + 1e-6 && self.velocity.norm() < 1e-3
    }

    /// Advances the physics by `dt` seconds under the given input.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is not positive and finite.
    pub fn step<R: Rng + ?Sized>(&mut self, dt: f64, input: ControlInput, rng: &mut R) {
        assert!(dt > 0.0 && dt.is_finite(), "dt must be positive");
        let accel = match input {
            ControlInput::Position(target) => {
                let err = target - self.position;
                let mut a = err * self.config.kp * self.config.kd - self.velocity * self.config.kd;
                // Hover jitter: the controller never holds perfectly still.
                a += Vec3::new(
                    dist::normal(rng, 0.0, self.config.jitter_accel),
                    dist::normal(rng, 0.0, self.config.jitter_accel),
                    dist::normal(rng, 0.0, self.config.jitter_accel),
                );
                // Attitude ∝ commanded horizontal acceleration; yaw slews
                // toward the commanded heading along the short way round.
                let yaw = slew_yaw(
                    self.attitude.yaw,
                    self.yaw_target,
                    self.config.max_yaw_rate * dt,
                );
                self.attitude = Attitude::new(a.y * 0.05, -a.x * 0.05, yaw);
                clamp_norm(a, self.config.max_accel)
            }
            ControlInput::Stabilize => {
                // §II-C: attitude angles forced to 0; the vehicle holds
                // thrust but drifts with disturbances.
                self.attitude = Attitude::new(0.0, 0.0, self.attitude.yaw);
                let drift = Vec3::new(
                    dist::normal(rng, 0.0, self.config.uncontrolled_drift_accel),
                    dist::normal(rng, 0.0, self.config.uncontrolled_drift_accel),
                    dist::normal(rng, 0.0, self.config.uncontrolled_drift_accel * 0.3),
                );
                drift - self.velocity * 0.8 // aerodynamic damping
            }
            ControlInput::MotorsOff => Vec3::new(0.0, 0.0, -9.81),
        };
        self.velocity = clamp_norm(self.velocity + accel * dt, self.config.max_speed_for(input));
        self.position += self.velocity * dt;
        // Floor collision.
        if self.position.z < self.floor_z {
            self.position.z = self.floor_z;
            self.velocity = Vec3::ZERO;
        }
    }
}

impl DynamicsConfig {
    /// Speed limit for the given input (free fall is not speed-limited by
    /// the controller).
    fn max_speed_for(&self, input: ControlInput) -> f64 {
        match input {
            ControlInput::MotorsOff => 30.0,
            _ => self.max_speed,
        }
    }
}

/// Moves `yaw` toward `target` by at most `max_step` radians, taking the
/// short way around the circle. Result stays in (−π, π].
fn slew_yaw(yaw: f64, target: f64, max_step: f64) -> f64 {
    use std::f64::consts::{PI, TAU};
    let mut err = (target - yaw).rem_euclid(TAU);
    if err > PI {
        err -= TAU;
    }
    let step = err.clamp(-max_step, max_step);
    let mut out = (yaw + step).rem_euclid(TAU);
    if out > PI {
        out -= TAU;
    }
    out
}

// Private helper used by step(); kept as a free function for testability.
fn clamp_norm(v: Vec3, max: f64) -> Vec3 {
    let n = v.norm();
    if n > max && n > 0.0 {
        v * (max / n)
    } else {
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xD1)
    }

    #[test]
    fn flies_to_waypoint_within_paper_budget() {
        // The mission gives 4 s to travel between waypoints ~0.7 m apart.
        let mut q = Quadrotor::new(DynamicsConfig::crazyflie(), Vec3::new(0.3, 0.4, 1.0));
        let target = Vec3::new(0.9, 0.4, 1.0);
        let mut r = rng();
        for _ in 0..400 {
            q.step(0.01, ControlInput::Position(target), &mut r);
        }
        assert!(
            q.position().distance(target) < 0.08,
            "after 4 s at {}",
            q.position()
        );
    }

    #[test]
    fn holds_position_with_small_jitter() {
        let hold = Vec3::new(1.0, 1.0, 1.0);
        let mut q = Quadrotor::new(DynamicsConfig::crazyflie(), hold);
        let mut r = rng();
        let mut max_err: f64 = 0.0;
        for _ in 0..500 {
            q.step(0.01, ControlInput::Position(hold), &mut r);
            max_err = max_err.max(q.position().distance(hold));
        }
        assert!(max_err < 0.10, "hover wander {max_err} m");
        assert!(max_err > 0.001, "jitter must exist");
    }

    #[test]
    fn speed_limited() {
        let mut q = Quadrotor::new(DynamicsConfig::crazyflie(), Vec3::ZERO);
        let far = Vec3::new(100.0, 0.0, 0.0);
        let mut r = rng();
        for _ in 0..300 {
            q.step(0.01, ControlInput::Position(far), &mut r);
            assert!(q.velocity().norm() <= 0.6 + 1e-9);
        }
        // In 3 s at ≤ 0.6 m/s the vehicle covers ≤ 1.8 m.
        assert!(q.position().x <= 1.9);
        assert!(q.position().x > 1.0, "should make real progress");
    }

    #[test]
    fn stabilize_levels_attitude_and_drifts() {
        let mut q = Quadrotor::new(DynamicsConfig::crazyflie(), Vec3::new(1.0, 1.0, 1.5));
        let mut r = rng();
        // First fly somewhere to induce nonzero attitude.
        for _ in 0..50 {
            q.step(0.01, ControlInput::Position(Vec3::new(3.0, 1.0, 1.5)), &mut r);
        }
        q.step(0.01, ControlInput::Stabilize, &mut r);
        assert!(q.attitude().is_level(1e-9), "stabilize zeroes attitude");
        let start = q.position();
        for _ in 0..600 {
            q.step(0.01, ControlInput::Stabilize, &mut r);
        }
        let drift = q.position().distance(start);
        assert!(drift > 0.005, "uncontrolled flight drifts, got {drift}");
    }

    #[test]
    fn motors_off_falls_to_floor() {
        let mut q = Quadrotor::new(DynamicsConfig::crazyflie(), Vec3::new(1.0, 1.0, 0.0));
        let mut r = rng();
        // Climb to 1.5 m.
        for _ in 0..800 {
            q.step(0.01, ControlInput::Position(Vec3::new(1.0, 1.0, 1.5)), &mut r);
        }
        assert!(q.position().z > 1.0);
        for _ in 0..400 {
            q.step(0.01, ControlInput::MotorsOff, &mut r);
        }
        assert!(q.position().z <= 1e-6, "fell to floor");
        assert!(q.on_floor());
    }

    #[test]
    fn clamp_norm_behaviour() {
        assert_eq!(clamp_norm(Vec3::new(3.0, 4.0, 0.0), 10.0), Vec3::new(3.0, 4.0, 0.0));
        let clamped = clamp_norm(Vec3::new(3.0, 4.0, 0.0), 1.0);
        assert!((clamped.norm() - 1.0).abs() < 1e-12);
        assert_eq!(clamp_norm(Vec3::ZERO, 1.0), Vec3::ZERO);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dt_panics() {
        let mut q = Quadrotor::new(DynamicsConfig::crazyflie(), Vec3::ZERO);
        q.step(0.0, ControlInput::Stabilize, &mut rng());
    }

    #[test]
    fn yaw_slews_to_target_the_short_way() {
        let mut q = Quadrotor::new(DynamicsConfig::crazyflie(), Vec3::ZERO);
        let mut r = rng();
        // Target 170°: reachable within ~1.5 s at 2 rad/s.
        q.set_yaw_target(170f64.to_radians());
        for _ in 0..200 {
            q.step(0.01, ControlInput::Position(Vec3::ZERO), &mut r);
        }
        assert!(
            (q.attitude().yaw - 170f64.to_radians()).abs() < 0.01,
            "yaw {}",
            q.attitude().yaw.to_degrees()
        );
        // From +170° to −170°: the short way crosses ±180°, 20° total.
        q.set_yaw_target(-170f64.to_radians());
        for _ in 0..30 {
            q.step(0.01, ControlInput::Position(Vec3::ZERO), &mut r);
        }
        assert!(
            (q.attitude().yaw - -170f64.to_radians()).abs() < 0.01,
            "wrap-around yaw {}",
            q.attitude().yaw.to_degrees()
        );
    }

    #[test]
    fn slew_yaw_respects_rate_limit() {
        let stepped = slew_yaw(0.0, 1.0, 0.02);
        assert!((stepped - 0.02).abs() < 1e-12);
        // Already at target: no movement.
        assert_eq!(slew_yaw(0.5, 0.5, 0.1), 0.5);
        // Short way across the wrap.
        let w = slew_yaw(3.1, -3.1, 0.05);
        assert!(!(-3.0..=3.1).contains(&w), "wrapped step, got {w}");
    }

    #[test]
    fn attitude_tilts_during_flight() {
        let mut q = Quadrotor::new(DynamicsConfig::crazyflie(), Vec3::ZERO);
        let mut r = rng();
        q.step(0.01, ControlInput::Position(Vec3::new(5.0, 0.0, 0.0)), &mut r);
        assert!(q.attitude().tilt() > 0.0, "accelerating flight tilts");
    }
}
