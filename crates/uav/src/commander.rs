//! The firmware commander: setpoint handling, watchdogs, and the
//! position-hold feedback task.
//!
//! Three behaviours from §II-C interact during a radio-off scan:
//!
//! 1. the **shutdown watchdog** (`COMMANDER_WDT_TIMEOUT_SHUTDOWN`): no
//!    setpoint within the timeout → motors off;
//! 2. the **500 ms stabilize rule**: no setpoint for > 500 ms → attitude
//!    angles zeroed (the UAV levels out but drifts);
//! 3. the **position-hold feedback task** added by the paper: during a scan
//!    it re-feeds the scanning position to the commander every 100 ms, so
//!    neither timeout fires and the UAV actually *holds position*.
//!
//! [`Commander::control`] resolves them in exactly that priority order.

use aerorem_simkit::{PeriodicTask, SimTime, Watchdog};
use aerorem_spatial::Vec3;

use crate::dynamics::ControlInput;
use crate::firmware::FirmwareConfig;

/// Observable commander state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CommanderState {
    /// Fresh setpoint in hand: actively controlling toward it.
    Active,
    /// Setpoint stale beyond the 500 ms rule: leveled out, drifting.
    Stabilizing,
    /// Watchdog expired: motors off. Terminal.
    Shutdown,
}

/// Error returned when a scan hold is requested on firmware without the
/// feedback task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NoFeedbackTask;

impl std::fmt::Display for NoFeedbackTask {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "firmware has no position-hold feedback task")
    }
}

impl std::error::Error for NoFeedbackTask {}

/// The commander state machine.
///
/// # Examples
///
/// A stock-firmware UAV dies during a 3 s radio-off scan; the patched one
/// holds position:
///
/// ```
/// use aerorem_uav::commander::{Commander, CommanderState};
/// use aerorem_uav::firmware::FirmwareConfig;
/// use aerorem_simkit::SimTime;
/// use aerorem_spatial::Vec3;
///
/// let mut stock = Commander::new(FirmwareConfig::stock_2021_06(), SimTime::ZERO);
/// stock.set_setpoint(SimTime::ZERO, Vec3::splat(1.0));
/// stock.control(SimTime::from_secs(3)); // radio was off the whole time
/// assert_eq!(stock.state(), CommanderState::Shutdown);
///
/// let mut patched = Commander::new(FirmwareConfig::paper_patched(), SimTime::ZERO);
/// patched.set_setpoint(SimTime::ZERO, Vec3::splat(1.0));
/// patched.begin_scan_hold(SimTime::ZERO, Vec3::splat(1.0)).unwrap();
/// patched.control(SimTime::from_secs(3));
/// assert_eq!(patched.state(), CommanderState::Active);
/// ```
#[derive(Debug, Clone)]
pub struct Commander {
    firmware: FirmwareConfig,
    wdt: Watchdog,
    last_setpoint: Option<(SimTime, Vec3)>,
    feedback_task: Option<PeriodicTask>,
    scan_hold_position: Option<Vec3>,
    shutdown: bool,
}

impl Commander {
    /// Creates a commander at time `now` with no setpoint yet; the watchdog
    /// starts fed at `now`.
    pub fn new(firmware: FirmwareConfig, now: SimTime) -> Self {
        let mut wdt = Watchdog::new(firmware.wdt_timeout);
        wdt.feed(now);
        Commander {
            firmware,
            wdt,
            last_setpoint: None,
            feedback_task: firmware.feedback_period.map(PeriodicTask::new),
            scan_hold_position: None,
            shutdown: false,
        }
    }

    /// The firmware configuration in force.
    pub fn firmware(&self) -> FirmwareConfig {
        self.firmware
    }

    /// Receives a setpoint from the base station (or the feedback task).
    /// Feeds the watchdog. Ignored after shutdown.
    pub fn set_setpoint(&mut self, now: SimTime, position: Vec3) {
        if self.shutdown {
            return;
        }
        self.last_setpoint = Some((now, position));
        self.wdt.feed(now);
    }

    /// Starts the position-hold feedback loop for a scan at `position`.
    ///
    /// # Errors
    ///
    /// Returns [`NoFeedbackTask`] on firmware without the paper's extra
    /// task.
    pub fn begin_scan_hold(&mut self, now: SimTime, position: Vec3) -> Result<(), NoFeedbackTask> {
        let task = self.feedback_task.as_mut().ok_or(NoFeedbackTask)?;
        task.resume(now);
        self.scan_hold_position = Some(position);
        // The task is "resumed at the start of the scanning task": it also
        // feeds the current position immediately.
        self.set_setpoint(now, position);
        Ok(())
    }

    /// Stops the feedback loop ("suspended at the end of it so that it does
    /// not interfere with regular waypoint activities").
    pub fn end_scan_hold(&mut self) {
        if let Some(task) = self.feedback_task.as_mut() {
            task.suspend();
        }
        self.scan_hold_position = None;
    }

    /// Whether a scan hold is active.
    pub fn in_scan_hold(&self) -> bool {
        self.scan_hold_position.is_some()
    }

    /// Advances the commander to `now` and returns the control input for
    /// the airframe. Processes feedback-task firings, then checks the
    /// watchdog, then the stabilize rule.
    pub fn control(&mut self, now: SimTime) -> ControlInput {
        if self.shutdown {
            return ControlInput::MotorsOff;
        }
        // Feedback task re-feeds the scan position at its exact fire times.
        if let (Some(task), Some(pos)) = (self.feedback_task.as_mut(), self.scan_hold_position) {
            let firings = task.due(now);
            for t in firings {
                self.last_setpoint = Some((t, pos));
                self.wdt.feed(t);
            }
        }
        if self.wdt.expired(now) {
            self.shutdown = true;
            return ControlInput::MotorsOff;
        }
        match self.last_setpoint {
            Some((t, pos)) if now.saturating_since(t) <= self.firmware.stabilize_timeout => {
                ControlInput::Position(pos)
            }
            Some(_) => ControlInput::Stabilize,
            None => ControlInput::Stabilize,
        }
    }

    /// The commander's current state (does not advance time — call
    /// [`Commander::control`] first in simulation loops).
    pub fn state(&self) -> CommanderState {
        if self.shutdown {
            return CommanderState::Shutdown;
        }
        match self.last_setpoint {
            Some(_) if self.scan_hold_position.is_some() => CommanderState::Active,
            Some((t, _)) => {
                // Without a clock we report based on the last control() time;
                // stale-ness is judged against the setpoint's own timestamp
                // during control(). Here we conservatively report Active.
                let _ = t;
                CommanderState::Active
            }
            None => CommanderState::Stabilizing,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aerorem_simkit::SimDuration;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn fresh_setpoint_controls_position() {
        let mut c = Commander::new(FirmwareConfig::paper_patched(), SimTime::ZERO);
        c.set_setpoint(t(0), Vec3::splat(1.0));
        assert_eq!(c.control(t(100)), ControlInput::Position(Vec3::splat(1.0)));
    }

    #[test]
    fn stale_setpoint_stabilizes_after_500ms() {
        let mut c = Commander::new(FirmwareConfig::paper_patched(), SimTime::ZERO);
        c.set_setpoint(t(0), Vec3::splat(1.0));
        assert_eq!(c.control(t(500)), ControlInput::Position(Vec3::splat(1.0)));
        assert_eq!(c.control(t(501)), ControlInput::Stabilize);
    }

    #[test]
    fn no_setpoint_ever_means_stabilize() {
        let mut c = Commander::new(FirmwareConfig::paper_patched(), SimTime::ZERO);
        assert_eq!(c.control(t(100)), ControlInput::Stabilize);
    }

    #[test]
    fn stock_wdt_shuts_down_during_scan() {
        let mut c = Commander::new(FirmwareConfig::stock_2021_06(), SimTime::ZERO);
        c.set_setpoint(t(0), Vec3::splat(1.0));
        // Radio off for 3 s (a scan), no feedback task on stock firmware.
        assert_eq!(c.control(t(3000)), ControlInput::MotorsOff);
        assert_eq!(c.state(), CommanderState::Shutdown);
        // Shutdown is terminal: new setpoints are ignored.
        c.set_setpoint(t(3001), Vec3::splat(2.0));
        assert_eq!(c.control(t(3002)), ControlInput::MotorsOff);
    }

    #[test]
    fn patched_wdt_survives_scan_but_drifts_without_feedback() {
        let mut c = Commander::new(FirmwareConfig::paper_patched(), SimTime::ZERO);
        c.set_setpoint(t(0), Vec3::splat(1.0));
        // 3 s gap, feedback task never started.
        let input = c.control(t(3000));
        assert_eq!(input, ControlInput::Stabilize, "no shutdown, but drifting");
        assert_ne!(c.state(), CommanderState::Shutdown);
    }

    #[test]
    fn feedback_task_holds_position_through_scan() {
        let mut c = Commander::new(FirmwareConfig::paper_patched(), SimTime::ZERO);
        let hold = Vec3::new(1.0, 2.0, 1.5);
        c.set_setpoint(t(0), hold);
        c.begin_scan_hold(t(0), hold).unwrap();
        assert!(c.in_scan_hold());
        // Sample the control at 50 ms steps across a full 3 s scan: always
        // position control, never stabilize.
        for ms in (50..=3000).step_by(50) {
            assert_eq!(
                c.control(t(ms)),
                ControlInput::Position(hold),
                "at {ms} ms"
            );
        }
        c.end_scan_hold();
        assert!(!c.in_scan_hold());
        // After the hold ends, the 500 ms rule applies again.
        assert_eq!(c.control(t(3600)), ControlInput::Stabilize);
    }

    #[test]
    fn feedback_task_requires_patched_firmware() {
        let mut c = Commander::new(FirmwareConfig::stock_2021_06(), SimTime::ZERO);
        assert_eq!(
            c.begin_scan_hold(t(0), Vec3::splat(1.0)),
            Err(NoFeedbackTask)
        );
        assert!(NoFeedbackTask.to_string().contains("feedback"));
    }

    #[test]
    fn feedback_survives_even_10s_scan() {
        // The feedback task makes endurance the only limit, not the WDT.
        let mut c = Commander::new(FirmwareConfig::paper_patched(), SimTime::ZERO);
        let hold = Vec3::splat(1.0);
        c.begin_scan_hold(t(0), hold).unwrap();
        assert_eq!(c.control(t(15_000)), ControlInput::Position(hold));
    }

    #[test]
    fn wdt_is_fed_by_regular_setpoints() {
        let mut c = Commander::new(FirmwareConfig::stock_2021_06(), SimTime::ZERO);
        // Setpoints every second keep the 2 s WDT happy indefinitely.
        for s in 0..10 {
            c.set_setpoint(SimTime::from_secs(s), Vec3::splat(1.0));
            assert_ne!(
                c.control(SimTime::from_secs(s) + SimDuration::from_millis(400)),
                ControlInput::MotorsOff
            );
        }
    }

    #[test]
    fn firmware_accessor() {
        let c = Commander::new(FirmwareConfig::paper_patched(), SimTime::ZERO);
        assert!(c.firmware().has_feedback_task());
    }
}
