//! The assembled UAV: dynamics + battery + commander + localization.

use std::fmt;

use rand::Rng;

use aerorem_localization::{AnchorConstellation, Ekf, RangingConfig};
use aerorem_simkit::{SimDuration, SimTime};
use aerorem_spatial::Vec3;

use crate::battery::{Battery, BatteryConfig, PowerState};
use crate::commander::{Commander, CommanderState};
use crate::dynamics::{ControlInput, DynamicsConfig, Quadrotor};
use crate::firmware::FirmwareConfig;

/// Identifier of one UAV in the fleet ("UAV A", "UAV B", …).
#[derive(
    Debug,
    Clone,
    Copy,
    PartialEq,
    Eq,
    PartialOrd,
    Ord,
    Hash,
    serde::Serialize,
    serde::Deserialize,
)]
pub struct UavId(pub u8);

impl fmt::Display for UavId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // 0 → "UAV A", 1 → "UAV B", like the paper's naming.
        let letter = (b'A' + self.0 % 26) as char;
        write!(f, "UAV {letter}")
    }
}

/// Coarse flight mode derived from the vehicle's parts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlightMode {
    /// On the floor, motors off.
    Grounded,
    /// In the air under commander control.
    Airborne,
    /// Commander watchdog fired: motors cut (falling or fallen).
    Shutdown,
    /// Battery sagged into the erratic region: flight no longer reliable.
    Erratic,
}

/// One simulated Crazyflie with both expansion decks.
///
/// # Examples
///
/// ```
/// use aerorem_uav::{Uav, UavId};
/// use aerorem_uav::firmware::FirmwareConfig;
/// use aerorem_localization::{AnchorConstellation, RangingConfig, RangingMode};
/// use aerorem_simkit::SimTime;
/// use aerorem_spatial::{Aabb, Vec3};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(4);
/// let anchors = AnchorConstellation::volume_corners(Aabb::paper_volume());
/// let mut uav = Uav::new(
///     UavId(0),
///     FirmwareConfig::paper_patched(),
///     RangingConfig::lps_default(RangingMode::Tdoa),
///     Vec3::new(0.3, 0.3, 0.0),
/// );
/// uav.commander_mut().set_setpoint(SimTime::ZERO, Vec3::new(0.3, 0.3, 1.0));
/// for step in 1..=200 {
///     let now = SimTime::from_millis(step * 10);
///     uav.commander_mut().set_setpoint(now, Vec3::new(0.3, 0.3, 1.0));
///     uav.step(now, 0.01, &anchors, &mut rng);
/// }
/// assert!((uav.true_position().z - 1.0).abs() < 0.15, "took off");
/// ```
#[derive(Debug, Clone)]
pub struct Uav {
    id: UavId,
    quad: Quadrotor,
    battery: Battery,
    commander: Commander,
    ekf: Ekf,
    ranging: RangingConfig,
    scanning: bool,
    last_step: Option<SimTime>,
}

impl Uav {
    /// Creates a grounded, fully charged UAV at `start` with default
    /// Crazyflie dynamics and battery.
    pub fn new(id: UavId, firmware: FirmwareConfig, ranging: RangingConfig, start: Vec3) -> Self {
        Uav {
            id,
            quad: Quadrotor::new(DynamicsConfig::crazyflie(), start),
            battery: Battery::new(BatteryConfig::paper_crazyflie()),
            commander: Commander::new(firmware, SimTime::ZERO),
            ekf: Ekf::new(start, 0.7),
            ranging,
            scanning: false,
            last_step: None,
        }
    }

    /// The UAV's fleet identity.
    pub fn id(&self) -> UavId {
        self.id
    }

    /// Ground-truth position (the simulator knows; the system does not).
    pub fn true_position(&self) -> Vec3 {
        self.quad.position()
    }

    /// The UAV's own position estimate — what gets attached to samples.
    /// "accurate location-annotated sampling" is design requirement (i).
    pub fn estimated_position(&self) -> Vec3 {
        self.ekf.position()
    }

    /// Current localization error (truth vs estimate).
    pub fn localization_error(&self) -> f64 {
        self.true_position().distance(self.estimated_position())
    }

    /// Mutable access to the commander (setpoints, scan holds).
    pub fn commander_mut(&mut self) -> &mut Commander {
        &mut self.commander
    }

    /// Read access to the commander.
    pub fn commander(&self) -> &Commander {
        &self.commander
    }

    /// The battery.
    pub fn battery(&self) -> &Battery {
        &self.battery
    }

    /// Sets the commanded heading (the per-UAV yaw of the mission plan).
    pub fn set_yaw_target(&mut self, yaw: f64) {
        self.quad.set_yaw_target(yaw);
    }

    /// Current attitude (roll/pitch/yaw).
    pub fn attitude(&self) -> aerorem_spatial::Attitude {
        self.quad.attitude()
    }

    /// Marks the ESP deck as scanning (extra power draw).
    pub fn set_scanning(&mut self, scanning: bool) {
        self.scanning = scanning;
    }

    /// Whether the ESP deck is scanning.
    pub fn is_scanning(&self) -> bool {
        self.scanning
    }

    /// Derived flight mode.
    pub fn mode(&self) -> FlightMode {
        if self.commander.state() == CommanderState::Shutdown {
            return FlightMode::Shutdown;
        }
        if self.battery.is_erratic() {
            return FlightMode::Erratic;
        }
        if self.quad.on_floor() {
            FlightMode::Grounded
        } else {
            FlightMode::Airborne
        }
    }

    /// Advances the vehicle by `dt` seconds ending at `now`: commander →
    /// physics → battery → localization.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is not positive and finite.
    pub fn step<R: Rng + ?Sized>(
        &mut self,
        now: SimTime,
        dt: f64,
        anchors: &AnchorConstellation,
        rng: &mut R,
    ) {
        assert!(dt > 0.0 && dt.is_finite(), "dt must be positive");
        let input = self.commander.control(now);
        self.quad.step(dt, input, rng);

        let airborne = !matches!(input, ControlInput::MotorsOff) && !self.quad.on_floor();
        self.battery.drain(
            SimDuration::from_secs_f64(dt),
            PowerState {
                airborne,
                translating: self.quad.velocity().norm() > 0.1,
                decks_mounted: true,
                scanning: self.scanning,
            },
        );

        // Localization runs continuously on the tag.
        self.ekf.predict(dt);
        let meas = self.ranging.measure(anchors, self.quad.position(), rng);
        let var = self.ranging.noise_std_m * self.ranging.noise_std_m;
        // Dropped epochs or transient geometry faults are skipped, as on
        // the real tag.
        let _ = self.ekf.update_ranging(anchors, &meas, var);
        self.last_step = Some(now);
    }
}

impl fmt::Display for Uav {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} at {} ({:?}, {:.0}% battery)",
            self.id,
            self.quad.position(),
            self.mode(),
            self.battery.remaining_fraction() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aerorem_localization::RangingMode;
    use aerorem_spatial::Aabb;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (Uav, AnchorConstellation, StdRng) {
        let anchors = AnchorConstellation::volume_corners(Aabb::paper_volume());
        let uav = Uav::new(
            UavId(0),
            FirmwareConfig::paper_patched(),
            RangingConfig::lps_default(RangingMode::Tdoa),
            Vec3::new(0.3, 0.3, 0.0),
        );
        (uav, anchors, StdRng::seed_from_u64(0x0AF))
    }

    #[test]
    fn uav_naming() {
        assert_eq!(UavId(0).to_string(), "UAV A");
        assert_eq!(UavId(1).to_string(), "UAV B");
    }

    #[test]
    fn starts_grounded_and_charged() {
        let (uav, _, _) = setup();
        assert_eq!(uav.mode(), FlightMode::Grounded);
        assert_eq!(uav.battery().remaining_fraction(), 1.0);
        assert!(!uav.is_scanning());
    }

    #[test]
    fn flies_to_setpoint_with_good_localization() {
        let (mut uav, anchors, mut rng) = setup();
        let target = Vec3::new(1.0, 1.0, 1.2);
        for step in 1..=600 {
            let now = SimTime::from_millis(step * 10);
            uav.commander_mut().set_setpoint(now, target);
            uav.step(now, 0.01, &anchors, &mut rng);
        }
        assert_eq!(uav.mode(), FlightMode::Airborne);
        assert!(uav.true_position().distance(target) < 0.15);
        assert!(
            uav.localization_error() < 0.15,
            "EKF error {}",
            uav.localization_error()
        );
    }

    #[test]
    fn scan_hold_keeps_position_with_radio_silent() {
        let (mut uav, anchors, mut rng) = setup();
        let hold = Vec3::new(1.5, 1.5, 1.0);
        // Fly there first with regular setpoints.
        for step in 1..=800 {
            let now = SimTime::from_millis(step * 10);
            uav.commander_mut().set_setpoint(now, hold);
            uav.step(now, 0.01, &anchors, &mut rng);
        }
        let before = uav.true_position();
        // 3 s scan: no setpoints from outside, feedback task active.
        uav.commander_mut()
            .begin_scan_hold(SimTime::from_millis(8000), before)
            .unwrap();
        uav.set_scanning(true);
        for step in 801..=1100 {
            let now = SimTime::from_millis(step * 10);
            uav.step(now, 0.01, &anchors, &mut rng);
        }
        uav.set_scanning(false);
        uav.commander_mut().end_scan_hold();
        let wander = uav.true_position().distance(before);
        assert!(wander < 0.15, "wandered {wander} m during scan hold");
        assert_eq!(uav.mode(), FlightMode::Airborne);
    }

    #[test]
    fn stock_firmware_dies_in_radio_silence() {
        let anchors = AnchorConstellation::volume_corners(Aabb::paper_volume());
        let mut uav = Uav::new(
            UavId(1),
            FirmwareConfig::stock_2021_06(),
            RangingConfig::lps_default(RangingMode::Twr),
            Vec3::new(0.5, 0.5, 0.0),
        );
        let mut rng = StdRng::seed_from_u64(2);
        let hover = Vec3::new(0.5, 0.5, 1.0);
        for step in 1..=300 {
            let now = SimTime::from_millis(step * 10);
            uav.commander_mut().set_setpoint(now, hover);
            uav.step(now, 0.01, &anchors, &mut rng);
        }
        // Radio silence for 3 s: the 2 s WDT fires, motors cut, UAV falls.
        for step in 301..=700 {
            let now = SimTime::from_millis(step * 10);
            uav.step(now, 0.01, &anchors, &mut rng);
        }
        assert_eq!(uav.mode(), FlightMode::Shutdown);
        assert!(uav.true_position().z < 0.05, "fell to the floor");
    }

    #[test]
    fn battery_drains_during_flight() {
        let (mut uav, anchors, mut rng) = setup();
        let hover = Vec3::new(1.0, 1.0, 1.0);
        for step in 1..=3000 {
            let now = SimTime::from_millis(step * 10);
            uav.commander_mut().set_setpoint(now, hover);
            uav.step(now, 0.01, &anchors, &mut rng);
        }
        // 30 s of flight should cost ~8 % of a ~6-minute pack.
        let frac = uav.battery().remaining_fraction();
        assert!((0.85..0.97).contains(&frac), "remaining {frac}");
    }

    #[test]
    fn display_contains_mode() {
        let (uav, _, _) = setup();
        let s = uav.to_string();
        assert!(s.contains("UAV A"));
        assert!(s.contains("Grounded"));
    }
}
