//! Firmware configuration: stock Crazyflie 2021.06 vs the paper's patches.
//!
//! §II-C describes two firmware changes required to survive the radio-off
//! scan window: "First, the `CRTP_TX_QUEUE_SIZE` was increased so that full
//! scan results can be temporarily stored … Second, the
//! `COMMANDER_WDT_TIMEOUT_SHUTDOWN` was increased to 10 sec." Plus the extra
//! FreeRTOS task that "will feed back the scanning position every 100 ms to
//! the UAV's commander during such a scan".

use serde::{Deserialize, Serialize};

use aerorem_simkit::SimDuration;

/// All firmware knobs the paper touches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FirmwareConfig {
    /// `COMMANDER_WDT_TIMEOUT_SHUTDOWN`: no setpoint for this long → motors
    /// shut down.
    pub wdt_timeout: SimDuration,
    /// The softer commander timeout: no setpoint for this long → attitude
    /// leveled to zero (the 500 ms rule).
    pub stabilize_timeout: SimDuration,
    /// `CRTP_TX_QUEUE_SIZE` in packets.
    pub tx_queue_size: usize,
    /// Period of the position-hold feedback task (present only in the
    /// patched firmware).
    pub feedback_period: Option<SimDuration>,
}

impl FirmwareConfig {
    /// The stock 2021.06 release: 2 s shutdown watchdog, 500 ms stabilize
    /// rule, 16-packet TX queue, no feedback task.
    pub fn stock_2021_06() -> Self {
        FirmwareConfig {
            wdt_timeout: SimDuration::from_secs(2),
            stabilize_timeout: SimDuration::from_millis(500),
            tx_queue_size: 16,
            feedback_period: None,
        }
    }

    /// The paper's patched firmware: 10 s watchdog, enlarged queue, 100 ms
    /// position-hold feedback task.
    pub fn paper_patched() -> Self {
        FirmwareConfig {
            wdt_timeout: SimDuration::from_secs(10),
            stabilize_timeout: SimDuration::from_millis(500),
            tx_queue_size: 128,
            feedback_period: Some(SimDuration::from_millis(100)),
        }
    }

    /// Whether the position-hold feedback task exists.
    pub fn has_feedback_task(&self) -> bool {
        self.feedback_period.is_some()
    }
}

impl Default for FirmwareConfig {
    fn default() -> Self {
        Self::paper_patched()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stock_vs_patched() {
        let stock = FirmwareConfig::stock_2021_06();
        let patched = FirmwareConfig::paper_patched();
        assert_eq!(stock.wdt_timeout, SimDuration::from_secs(2));
        assert_eq!(patched.wdt_timeout, SimDuration::from_secs(10));
        assert!(patched.tx_queue_size > stock.tx_queue_size);
        assert!(!stock.has_feedback_task());
        assert!(patched.has_feedback_task());
        assert_eq!(stock.stabilize_timeout, patched.stabilize_timeout);
    }

    #[test]
    fn paper_scan_window_fits_only_patched() {
        // A 3 s scan window with no radio: the stock WDT (2 s) trips, the
        // patched one (10 s) does not.
        let scan = SimDuration::from_secs(3);
        assert!(scan > FirmwareConfig::stock_2021_06().wdt_timeout);
        assert!(scan < FirmwareConfig::paper_patched().wdt_timeout);
    }

    #[test]
    fn default_is_patched() {
        assert_eq!(FirmwareConfig::default(), FirmwareConfig::paper_patched());
    }
}
