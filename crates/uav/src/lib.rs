//! Crazyflie-class UAV simulation: dynamics, battery, and the commander
//! firmware model.
//!
//! The paper customizes a Bitcraze Crazyflie 2.1 (§II): a ~27 g quadrotor
//! running FreeRTOS, carrying the Loco Positioning Deck and a custom ESP-01
//! deck. This crate models the vehicle-side behaviours the system design
//! depends on:
//!
//! * [`battery`] — endurance. "The Crazyflie is advertised as having a
//!   flight time of up to 7 min … without the weight and power consumed by
//!   the LPD and the custom ESP8266 deck" (§III-A). The model is calibrated
//!   so that the paper's endurance test (hover + periodic scans with both
//!   decks) lasts ≈ 6 min 12 s over ≈ 36 scans.
//! * [`dynamics`] — a point-mass quadrotor with a velocity-limited position
//!   controller and hover jitter, enough to model waypoint flight and
//!   position hold.
//! * [`commander`] — the firmware commander: setpoint watchdog
//!   (`COMMANDER_WDT_TIMEOUT_SHUTDOWN`), the 500 ms level-out rule, and the
//!   extra position-hold feedback task that keeps the UAV in place while the
//!   radio is off (§II-C).
//! * [`firmware`] — stock vs paper-patched firmware configuration.
//! * [`vehicle`] — the assembled [`Uav`]: dynamics + battery + commander +
//!   the localization EKF.
//!
//! # Examples
//!
//! ```
//! use aerorem_uav::firmware::FirmwareConfig;
//!
//! let stock = FirmwareConfig::stock_2021_06();
//! let patched = FirmwareConfig::paper_patched();
//! assert!(patched.wdt_timeout > stock.wdt_timeout);
//! assert!(patched.tx_queue_size > stock.tx_queue_size);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod battery;
pub mod commander;
pub mod dynamics;
pub mod firmware;
pub mod vehicle;

pub use battery::{Battery, BatteryConfig};
pub use commander::{Commander, CommanderState};
pub use firmware::FirmwareConfig;
pub use vehicle::{FlightMode, Uav, UavId};
