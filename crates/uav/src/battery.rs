//! Battery and endurance model.
//!
//! Calibration targets from §III-A of the paper:
//!
//! * bare Crazyflie: "flight time of up to 7 min";
//! * with LPD + ESP deck, hovering with a scan every 8 s: **36 scans in
//!   6 min 12 s** before erratic behaviour;
//! * the two-UAV campaign: UAV A active 5 min 3 s, UAV B 5 min, each
//!   flying 36 waypoints (4 s travel + 3 s scan) — "the UAVs were expected
//!   to operate at their operating limits".

use serde::{Deserialize, Serialize};

use aerorem_simkit::SimDuration;

/// Static battery/power configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BatteryConfig {
    /// Usable capacity in mAh.
    pub capacity_mah: f64,
    /// Average current draw while hovering, bare airframe, in mA.
    pub hover_draw_ma: f64,
    /// Extra draw while translating between waypoints, in mA.
    pub flight_extra_ma: f64,
    /// Standing draw of the Loco Positioning Deck, in mA.
    pub lpd_draw_ma: f64,
    /// Standing draw of the ESP8266 deck (idle), in mA.
    pub esp_idle_ma: f64,
    /// Extra ESP8266 draw while actively scanning, in mA.
    pub esp_scan_extra_ma: f64,
    /// Fraction of capacity below which flight becomes erratic — the
    /// paper's endurance test ended when the UAV "became less responsive
    /// and its motions erratic".
    pub erratic_fraction: f64,
}

impl BatteryConfig {
    /// Calibrated Crazyflie 2.1 preset (250 mAh pack).
    ///
    /// Bare hover ≈ 2 050 mA → ≈ 7.3 min, matching the "up to 7 min" spec.
    /// With both decks and periodic scanning the draw rises to ≈ 2 310 mA,
    /// hitting the erratic threshold after ≈ 6.2 min — the paper's
    /// endurance result.
    pub fn paper_crazyflie() -> Self {
        BatteryConfig {
            capacity_mah: 250.0,
            hover_draw_ma: 2050.0,
            flight_extra_ma: 180.0,
            lpd_draw_ma: 90.0,
            esp_idle_ma: 75.0,
            esp_scan_extra_ma: 110.0,
            erratic_fraction: 0.045,
        }
    }

    /// Predicted bare-airframe hover endurance.
    pub fn bare_hover_endurance(&self) -> SimDuration {
        let hours = self.capacity_mah * (1.0 - self.erratic_fraction) / self.hover_draw_ma;
        SimDuration::from_secs_f64(hours * 3600.0)
    }
}

impl Default for BatteryConfig {
    fn default() -> Self {
        Self::paper_crazyflie()
    }
}

/// What the vehicle is doing, for draw accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PowerState {
    /// Motors running (hover or flight).
    pub airborne: bool,
    /// Translating (extra draw over hover).
    pub translating: bool,
    /// Both expansion decks mounted.
    pub decks_mounted: bool,
    /// The ESP deck is actively scanning.
    pub scanning: bool,
}

impl PowerState {
    /// Hovering with both decks, not scanning.
    pub fn hover_with_decks() -> Self {
        PowerState {
            airborne: true,
            translating: false,
            decks_mounted: true,
            scanning: false,
        }
    }
}

/// A depleting battery.
///
/// # Examples
///
/// ```
/// use aerorem_uav::battery::{Battery, BatteryConfig, PowerState};
/// use aerorem_simkit::SimDuration;
///
/// let mut b = Battery::new(BatteryConfig::paper_crazyflie());
/// b.drain(SimDuration::from_secs(60), PowerState::hover_with_decks());
/// assert!(b.remaining_fraction() < 1.0);
/// assert!(!b.is_erratic());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Battery {
    config: BatteryConfig,
    remaining_mah: f64,
}

impl Battery {
    /// A fully charged battery.
    pub fn new(config: BatteryConfig) -> Self {
        Battery {
            remaining_mah: config.capacity_mah,
            config,
        }
    }

    /// The static configuration.
    pub fn config(&self) -> &BatteryConfig {
        &self.config
    }

    /// Instantaneous draw for a power state, in mA.
    pub fn draw_ma(&self, state: PowerState) -> f64 {
        let mut ma = 0.0;
        if state.airborne {
            ma += self.config.hover_draw_ma;
            if state.translating {
                ma += self.config.flight_extra_ma;
            }
            if state.decks_mounted {
                // Deck mass increases the hover thrust requirement ~6 %.
                ma += 0.06 * self.config.hover_draw_ma;
            }
        }
        if state.decks_mounted {
            ma += self.config.lpd_draw_ma + self.config.esp_idle_ma;
            if state.scanning {
                ma += self.config.esp_scan_extra_ma;
            }
        }
        ma
    }

    /// Drains the battery for `duration` in the given power state.
    pub fn drain(&mut self, duration: SimDuration, state: PowerState) {
        let hours = duration.as_secs_f64() / 3600.0;
        self.remaining_mah = (self.remaining_mah - self.draw_ma(state) * hours).max(0.0);
    }

    /// Remaining charge in mAh.
    pub fn remaining_mah(&self) -> f64 {
        self.remaining_mah
    }

    /// Remaining charge as a fraction of capacity.
    pub fn remaining_fraction(&self) -> f64 {
        self.remaining_mah / self.config.capacity_mah
    }

    /// Whether the pack has sagged into the erratic-flight region.
    pub fn is_erratic(&self) -> bool {
        self.remaining_fraction() <= self.config.erratic_fraction
    }

    /// Whether the pack is fully depleted.
    pub fn is_depleted(&self) -> bool {
        self.remaining_mah <= 0.0
    }

    /// Predicted remaining endurance in the given power state.
    pub fn endurance(&self, state: PowerState) -> SimDuration {
        let usable =
            (self.remaining_mah - self.config.erratic_fraction * self.config.capacity_mah).max(0.0);
        let hours = usable / self.draw_ma(state).max(1.0);
        SimDuration::from_secs_f64(hours * 3600.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bare_hover_endurance_near_7_min() {
        let cfg = BatteryConfig::paper_crazyflie();
        let secs = cfg.bare_hover_endurance().as_secs_f64();
        assert!(
            (6.5 * 60.0..7.5 * 60.0).contains(&secs),
            "bare endurance {secs} s"
        );
    }

    #[test]
    fn decked_scanning_endurance_near_paper_test() {
        // The endurance test: hover with decks, scanning ~25 % of the time
        // (2 s scan every 8 s). Expect ≈ 6 min 12 s ± 30 s.
        let mut b = Battery::new(BatteryConfig::paper_crazyflie());
        let mut secs = 0.0;
        let dt = SimDuration::from_millis(500);
        while !b.is_erratic() {
            let scanning = (secs % 8.0) < 2.0;
            b.drain(
                dt,
                PowerState {
                    scanning,
                    ..PowerState::hover_with_decks()
                },
            );
            secs += 0.5;
            assert!(secs < 1000.0, "battery never went erratic");
        }
        assert!(
            (330.0..430.0).contains(&secs),
            "decked endurance {secs} s vs paper 372 s"
        );
    }

    #[test]
    fn draw_ordering() {
        let b = Battery::new(BatteryConfig::paper_crazyflie());
        let bare = b.draw_ma(PowerState {
            airborne: true,
            translating: false,
            decks_mounted: false,
            scanning: false,
        });
        let decked = b.draw_ma(PowerState::hover_with_decks());
        let scanning = b.draw_ma(PowerState {
            scanning: true,
            ..PowerState::hover_with_decks()
        });
        let flying = b.draw_ma(PowerState {
            translating: true,
            ..PowerState::hover_with_decks()
        });
        assert!(bare < decked);
        assert!(decked < scanning);
        assert!(decked < flying);
    }

    #[test]
    fn grounded_draw_is_deck_only() {
        let b = Battery::new(BatteryConfig::paper_crazyflie());
        let grounded = b.draw_ma(PowerState {
            airborne: false,
            translating: false,
            decks_mounted: true,
            scanning: false,
        });
        let cfg = b.config();
        assert!((grounded - cfg.lpd_draw_ma - cfg.esp_idle_ma).abs() < 1e-9);
    }

    #[test]
    fn drain_monotone_and_floored() {
        let mut b = Battery::new(BatteryConfig::paper_crazyflie());
        b.drain(SimDuration::from_secs(3600), PowerState::hover_with_decks());
        assert!(b.is_depleted());
        assert_eq!(b.remaining_mah(), 0.0);
        assert!(b.is_erratic());
        // Further drain stays at zero.
        b.drain(SimDuration::from_secs(60), PowerState::hover_with_decks());
        assert_eq!(b.remaining_mah(), 0.0);
    }

    #[test]
    fn endurance_prediction_consistent_with_drain() {
        let b = Battery::new(BatteryConfig::paper_crazyflie());
        let state = PowerState::hover_with_decks();
        let predicted = b.endurance(state).as_secs_f64();
        let mut sim = b.clone();
        let mut secs = 0.0;
        while !sim.is_erratic() {
            sim.drain(SimDuration::from_secs(1), state);
            secs += 1.0;
        }
        assert!((predicted - secs).abs() < 5.0, "{predicted} vs {secs}");
    }

    #[test]
    fn fresh_battery_full() {
        let b = Battery::new(BatteryConfig::paper_crazyflie());
        assert_eq!(b.remaining_fraction(), 1.0);
        assert!(!b.is_erratic());
        assert!(!b.is_depleted());
    }
}
