//! Fixture tests: for every rule, one source that must violate it and one
//! near-identical source that must not. Fixtures run through the same
//! driver as real files ([`aerorem_lint::lint_source`]), so suppression
//! handling and test-region scoping are exercised too.

use aerorem_lint::lint_source;
use aerorem_lint::report::Violation;
use aerorem_lint::rules::hygiene::TargetParity;
use aerorem_lint::rules::{registry, Rule, META_RULES};
use aerorem_lint::workspace::{FileKind, Workspace};

fn lint_lib(crate_name: &str, text: &str) -> Vec<Violation> {
    lint_source("fixture.rs", FileKind::Library, crate_name, false, text)
}

fn rules_of(violations: &[Violation]) -> Vec<&'static str> {
    violations.iter().map(|v| v.rule).collect()
}

// ---------------------------------------------------------------- hash-iter

#[test]
fn hash_iter_flags_hashmap_in_library_code() {
    let v = lint_lib("core", "use std::collections::HashMap;\n");
    assert_eq!(rules_of(&v), ["hash-iter"]);
    assert_eq!(v[0].line, 1);
}

#[test]
fn hash_iter_ignores_btreemap_strings_comments_and_tests() {
    let clean = r#"
use std::collections::BTreeMap;
// a comment may say HashMap freely
fn f() -> &'static str { "HashMap::new()" }
#[cfg(test)]
mod tests {
    use std::collections::HashMap;
    fn t() { let _ = HashMap::<u8, u8>::new(); }
}
"#;
    assert!(lint_lib("core", clean).is_empty());
}

#[test]
fn hash_iter_exempts_benches_and_examples() {
    let src = "use std::collections::HashSet;\n";
    assert!(lint_source("b.rs", FileKind::TestOrBench, "core", false, src).is_empty());
    assert!(lint_source("e.rs", FileKind::Example, "core", false, src).is_empty());
}

// ---------------------------------------------------------------- wall-clock

#[test]
fn wall_clock_flags_instant_now() {
    let v = lint_lib("core", "fn f() { let _t = std::time::Instant::now(); }\n");
    assert_eq!(rules_of(&v), ["wall-clock"]);
}

#[test]
fn wall_clock_allows_stored_instants_and_simtime() {
    let clean = "fn f(start: std::time::Instant) -> SimTime { record(start); SimTime::ZERO }\n";
    assert!(lint_lib("core", clean).is_empty());
}

// ---------------------------------------------------------------- entropy

#[test]
fn entropy_flags_thread_rng_and_rand_random() {
    let v = lint_lib(
        "core",
        "fn f() { let mut r = rand::thread_rng(); let x: u8 = rand::random(); }\n",
    );
    assert_eq!(rules_of(&v), ["entropy", "entropy"]);
}

#[test]
fn entropy_allows_seeded_rng() {
    let clean = "fn f() { let mut r = StdRng::seed_from_u64(42); let _ = random_field(&mut r); }\n";
    assert!(lint_lib("core", clean).is_empty());
}

// ---------------------------------------------------------- par-float-reduce

#[test]
fn par_float_reduce_flags_sum_on_parallel_iterator() {
    let v = lint_lib(
        "core",
        "fn f(xs: &[f64]) -> f64 {\n    xs.par_iter().map(|x| x * 2.0).sum()\n}\n",
    );
    assert_eq!(rules_of(&v), ["par-float-reduce"]);
    assert_eq!(v[0].line, 2);
}

#[test]
fn par_float_reduce_allows_ordered_collect_and_serial_sum() {
    let clean = r#"
fn f(xs: &[f64]) -> f64 {
    let doubled: Vec<f64> = xs.par_iter().map(|x| x * 2.0).collect();
    doubled.iter().sum()
}
"#;
    assert!(lint_lib("core", clean).is_empty());
}

#[test]
fn par_float_reduce_flags_reductions_inside_chunked_executor_closures() {
    // The chunked executor entry points run their closures on worker
    // threads; a float reduction written inside one must be audited.
    let src = r#"
fn f(xs: &[f64], pool: &ScratchPool<()>) -> Vec<f64> {
    exec::map_chunks(policy, gran, xs, |_, chunk| chunk.iter().sum::<f64>());
    exec::map_vec_with(policy, gran, pool, xs, |(), x| ws.iter().map(|w| w * x).fold(0.0, add))
}
"#;
    let v = lint_lib("core", src);
    assert_eq!(rules_of(&v), ["par-float-reduce", "par-float-reduce"]);
}

#[test]
fn par_float_reduce_allows_chunked_executor_without_reduction() {
    // Plain per-item maps through the executor — the common case — stay
    // clean; only reductions need the audit.
    let clean = r#"
fn f(xs: &[f64], pool: &ScratchPool<()>) -> Vec<f64> {
    exec::map_vec_with(policy, gran, pool, xs, |(), x| x * 2.0)
}
"#;
    assert!(lint_lib("core", clean).is_empty());
}

// ---------------------------------------------------------------- panic-path

#[test]
fn panic_path_flags_unwrap_expect_panic_in_mission() {
    let src = r#"
fn f(x: Option<u8>) -> u8 {
    let a = x.unwrap();
    let b = x.expect("present");
    if a != b { panic!("mismatch"); }
    a
}
"#;
    let v = lint_lib("mission", src);
    assert_eq!(rules_of(&v), ["panic-path", "panic-path", "panic-path"]);
}

#[test]
fn panic_path_scopes_to_panic_free_crates_and_skips_tests() {
    let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
    // Same code is fine in a crate without the panic-free contract…
    assert!(lint_lib("ml", src).is_empty());
    // …and in test code of a panic-free crate.
    let tested = "#[test]\nfn t() { Some(1u8).unwrap(); }\n";
    assert!(lint_lib("mission", tested).is_empty());
    // `unwrap_or` and friends never match.
    assert!(lint_lib("mission", "fn f(x: Option<u8>) -> u8 { x.unwrap_or(0) }\n").is_empty());
}

// ---------------------------------------------------------------- slice-index

#[test]
fn slice_index_flags_dynamic_indices() {
    let src = "fn f(xs: &[u8], i: usize) -> u8 {\n    xs[i]\n}\n";
    let v = lint_lib("radio", src);
    assert_eq!(rules_of(&v), ["slice-index"]);
}

#[test]
fn slice_index_allows_literal_indices_types_and_get() {
    let clean = r#"
fn f(xs: &[u8]) -> Option<u8> {
    let arr: [u8; 3] = [1, 2, 3];
    let first = xs[0];
    let range = &xs[0..2];
    let _ = (first, range, arr);
    xs.get(1).copied()
}
"#;
    assert!(lint_lib("radio", clean).is_empty());
}

// -------------------------------------------------------------- forbid-unsafe

#[test]
fn forbid_unsafe_flags_bare_crate_root() {
    let v = lint_source("src/lib.rs", FileKind::Library, "core", true, "pub fn f() {}\n");
    assert_eq!(rules_of(&v), ["forbid-unsafe"]);
}

#[test]
fn forbid_unsafe_satisfied_by_the_attribute_and_skips_non_roots() {
    let attributed = "#![forbid(unsafe_code)]\npub fn f() {}\n";
    assert!(lint_source("src/lib.rs", FileKind::Library, "core", true, attributed).is_empty());
    // Non-root modules don't need it.
    assert!(lint_source("src/util.rs", FileKind::Library, "core", false, "pub fn f() {}\n").is_empty());
}

// --------------------------------------------------------------- debug-macro

#[test]
fn debug_macro_flags_dbg_todo_unimplemented_even_in_tests() {
    let src = r#"
fn f() { todo!() }
#[cfg(test)]
mod tests {
    fn t() { dbg!(1); unimplemented!(); }
}
"#;
    let v = lint_lib("core", src);
    assert_eq!(rules_of(&v), ["debug-macro", "debug-macro", "debug-macro"]);
}

#[test]
fn debug_macro_ignores_mentions_in_strings_and_docs() {
    let clean = "/// Call `dbg!` never.\nfn f() -> &'static str { \"todo!()\" }\n";
    assert!(lint_lib("core", clean).is_empty());
}

// ------------------------------------------------------------- target-parity

#[test]
fn target_parity_flags_one_sided_targets() {
    let ws = Workspace {
        files: vec![],
        makefile: Some("lint:\n\tcargo run\ncheck: lint\n\ttrue\n".to_string()),
        justfile: Some("check:\n    true\n".to_string()),
    };
    let mut out = Vec::new();
    TargetParity.check_workspace(&ws, &mut out);
    assert_eq!(out.len(), 1);
    assert_eq!(out[0].rule, "target-parity");
    assert!(out[0].message.contains("`lint`"));
    assert_eq!(out[0].path, "Makefile");
}

#[test]
fn target_parity_clean_when_in_sync() {
    let ws = Workspace {
        files: vec![],
        makefile: Some("check: build\n\ttrue\nbuild:\n\ttrue\n".to_string()),
        justfile: Some("check: build\nbuild:\n    true\n".to_string()),
    };
    let mut out = Vec::new();
    TargetParity.check_workspace(&ws, &mut out);
    assert!(out.is_empty(), "{out:?}");
}

// ------------------------------------------------------- suppression grammar

#[test]
fn allow_with_reason_suppresses_next_line() {
    let src = "// lint:allow(hash-iter) — keyed lookups only, never iterated\nuse std::collections::HashMap;\n";
    assert!(lint_lib("core", src).is_empty());
}

#[test]
fn allow_with_reason_suppresses_same_line() {
    let src = "use std::collections::HashMap; // lint:allow(hash-iter) — keyed lookups only\n";
    assert!(lint_lib("core", src).is_empty());
}

#[test]
fn allow_does_not_reach_two_lines_down() {
    let src = "// lint:allow(hash-iter) — too far away\nfn gap() {}\nuse std::collections::HashMap;\n";
    let v = lint_lib("core", src);
    assert_eq!(rules_of(&v), ["unused-allow", "hash-iter"]);
}

#[test]
fn allow_without_reason_is_bad() {
    let src = "// lint:allow(hash-iter)\nuse std::collections::HashMap;\n";
    let v = lint_lib("core", src);
    assert!(rules_of(&v).contains(&"bad-allow"));
    assert!(
        rules_of(&v).contains(&"hash-iter"),
        "a reason-less allow must not suppress: {v:?}"
    );
}

#[test]
fn allow_of_unknown_rule_is_bad() {
    let v = lint_lib("core", "// lint:allow(no-such-rule) — reason\nfn f() {}\n");
    assert_eq!(rules_of(&v), ["bad-allow"]);
    assert!(v[0].message.contains("unknown rule"));
}

#[test]
fn unused_allow_is_flagged() {
    let v = lint_lib("core", "// lint:allow(wall-clock) — nothing here uses the clock\nfn f() {}\n");
    assert_eq!(rules_of(&v), ["unused-allow"]);
}

#[test]
fn meta_rules_cannot_be_suppressed() {
    let v = lint_lib("core", "// lint:allow(unused-allow) — trying to silence the auditor\nfn f() {}\n");
    assert_eq!(rules_of(&v), ["bad-allow"]);
    assert!(v[0].message.contains("cannot be suppressed"));
}

#[test]
fn doc_comments_document_the_grammar_without_activating_it() {
    // The allow below sits in a doc comment, so it is documentation, not a
    // live suppression — the violation must survive.
    let src = "/// Suppress with `// lint:allow(hash-iter) — reason`.\nuse std::collections::HashMap;\n";
    let v = lint_lib("core", src);
    assert_eq!(rules_of(&v), ["hash-iter"]);
}

// ------------------------------------------------------------------ registry

#[test]
fn registry_names_are_unique_kebab_case_and_documented() {
    let mut names: Vec<&str> = registry().iter().map(|r| r.name()).collect();
    names.extend(META_RULES);
    let mut sorted = names.clone();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(sorted.len(), names.len(), "duplicate rule names");
    for n in &names {
        assert!(
            n.bytes().all(|b| b.is_ascii_lowercase() || b == b'-'),
            "rule name {n:?} is not kebab-case"
        );
    }
    for r in registry() {
        assert!(!r.summary().is_empty(), "rule {} has no summary", r.name());
    }
}
