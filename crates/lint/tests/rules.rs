//! Fixture tests: for every rule, one source that must violate it and one
//! near-identical source that must not. Fixtures run through the same
//! driver as real files ([`aerorem_lint::lint_source`]), so suppression
//! handling and test-region scoping are exercised too.

use aerorem_lint::report::Violation;
use aerorem_lint::rules::hygiene::TargetParity;
use aerorem_lint::rules::{registry, Rule, META_RULES};
use aerorem_lint::workspace::{FileKind, Workspace, WorkspaceFile};
use aerorem_lint::{lint_source, lint_workspace, memory_file};

fn lint_lib(crate_name: &str, text: &str) -> Vec<Violation> {
    lint_source("fixture.rs", FileKind::Library, crate_name, false, text)
}

fn rules_of(violations: &[Violation]) -> Vec<&'static str> {
    violations.iter().map(|v| v.rule).collect()
}

/// Library file helper for workspace-rule fixtures.
fn lib_file(path: &str, crate_name: &str, text: &str) -> WorkspaceFile {
    memory_file(path, FileKind::Library, crate_name, false, text)
}

/// Runs the full workspace driver over in-memory files and returns the
/// findings of one rule (other rules must stay quiet on the fixture).
fn ws_findings(ws: &Workspace, rule: &str) -> Vec<Violation> {
    let report = lint_workspace(ws);
    for v in &report.violations {
        assert_eq!(v.rule, rule, "fixture tripped an unrelated rule: {v:?}");
    }
    report.violations
}

// ---------------------------------------------------------------- hash-iter

#[test]
fn hash_iter_flags_hashmap_in_library_code() {
    let v = lint_lib("core", "use std::collections::HashMap;\n");
    assert_eq!(rules_of(&v), ["hash-iter"]);
    assert_eq!(v[0].line, 1);
}

#[test]
fn hash_iter_ignores_btreemap_strings_comments_and_tests() {
    let clean = r#"
use std::collections::BTreeMap;
// a comment may say HashMap freely
fn f() -> &'static str { "HashMap::new()" }
#[cfg(test)]
mod tests {
    use std::collections::HashMap;
    fn t() { let _ = HashMap::<u8, u8>::new(); }
}
"#;
    assert!(lint_lib("core", clean).is_empty());
}

#[test]
fn hash_iter_exempts_benches_and_examples() {
    let src = "use std::collections::HashSet;\n";
    assert!(lint_source("b.rs", FileKind::TestOrBench, "core", false, src).is_empty());
    assert!(lint_source("e.rs", FileKind::Example, "core", false, src).is_empty());
}

// ---------------------------------------------------------------- wall-clock

#[test]
fn wall_clock_flags_instant_now() {
    let v = lint_lib("core", "fn f() { let _t = std::time::Instant::now(); }\n");
    assert_eq!(rules_of(&v), ["wall-clock"]);
}

#[test]
fn wall_clock_allows_stored_instants_and_simtime() {
    let clean = "fn f(start: std::time::Instant) -> SimTime { record(start); SimTime::ZERO }\n";
    assert!(lint_lib("core", clean).is_empty());
}

// ---------------------------------------------------------------- entropy

#[test]
fn entropy_flags_thread_rng_and_rand_random() {
    let v = lint_lib(
        "core",
        "fn f() { let mut r = rand::thread_rng(); let x: u8 = rand::random(); }\n",
    );
    assert_eq!(rules_of(&v), ["entropy", "entropy"]);
}

#[test]
fn entropy_allows_seeded_rng() {
    let clean = "fn f() { let mut r = StdRng::seed_from_u64(42); let _ = random_field(&mut r); }\n";
    assert!(lint_lib("core", clean).is_empty());
}

// ---------------------------------------------------------- par-float-reduce

#[test]
fn par_float_reduce_flags_sum_on_parallel_iterator() {
    let v = lint_lib(
        "core",
        "fn f(xs: &[f64]) -> f64 {\n    xs.par_iter().map(|x| x * 2.0).sum()\n}\n",
    );
    assert_eq!(rules_of(&v), ["par-float-reduce"]);
    assert_eq!(v[0].line, 2);
}

#[test]
fn par_float_reduce_allows_ordered_collect_and_serial_sum() {
    let clean = r#"
fn f(xs: &[f64]) -> f64 {
    let doubled: Vec<f64> = xs.par_iter().map(|x| x * 2.0).collect();
    doubled.iter().sum()
}
"#;
    assert!(lint_lib("core", clean).is_empty());
}

#[test]
fn par_float_reduce_flags_reductions_inside_chunked_executor_closures() {
    // The chunked executor entry points run their closures on worker
    // threads; a float reduction written inside one must be audited.
    let src = r#"
fn f(xs: &[f64], pool: &ScratchPool<()>) -> Vec<f64> {
    exec::map_chunks(policy, gran, xs, |_, chunk| chunk.iter().sum::<f64>());
    exec::map_vec_with(policy, gran, pool, xs, |(), x| ws.iter().map(|w| w * x).fold(0.0, add))
}
"#;
    let v = lint_lib("core", src);
    assert_eq!(rules_of(&v), ["par-float-reduce", "par-float-reduce"]);
}

#[test]
fn par_float_reduce_allows_chunked_executor_without_reduction() {
    // Plain per-item maps through the executor — the common case — stay
    // clean; only reductions need the audit.
    let clean = r#"
fn f(xs: &[f64], pool: &ScratchPool<()>) -> Vec<f64> {
    exec::map_vec_with(policy, gran, pool, xs, |(), x| x * 2.0)
}
"#;
    assert!(lint_lib("core", clean).is_empty());
}

// ---------------------------------------------------------------- panic-path

#[test]
fn panic_path_flags_unwrap_expect_panic_in_mission() {
    let src = r#"
fn f(x: Option<u8>) -> u8 {
    let a = x.unwrap();
    let b = x.expect("present");
    if a != b { panic!("mismatch"); }
    a
}
"#;
    let v = lint_lib("mission", src);
    assert_eq!(rules_of(&v), ["panic-path", "panic-path", "panic-path"]);
}

#[test]
fn panic_path_scopes_to_panic_free_crates_and_skips_tests() {
    let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
    // Same code is fine in a crate without the panic-free contract…
    assert!(lint_lib("ml", src).is_empty());
    // …and in test code of a panic-free crate.
    let tested = "#[test]\nfn t() { Some(1u8).unwrap(); }\n";
    assert!(lint_lib("mission", tested).is_empty());
    // `unwrap_or` and friends never match.
    assert!(lint_lib("mission", "fn f(x: Option<u8>) -> u8 { x.unwrap_or(0) }\n").is_empty());
}

// ---------------------------------------------------------------- slice-index

#[test]
fn slice_index_flags_dynamic_indices() {
    let src = "fn f(xs: &[u8], i: usize) -> u8 {\n    xs[i]\n}\n";
    let v = lint_lib("radio", src);
    assert_eq!(rules_of(&v), ["slice-index"]);
}

#[test]
fn slice_index_allows_literal_indices_types_and_get() {
    let clean = r#"
fn f(xs: &[u8]) -> Option<u8> {
    let arr: [u8; 3] = [1, 2, 3];
    let first = xs[0];
    let range = &xs[0..2];
    let _ = (first, range, arr);
    xs.get(1).copied()
}
"#;
    assert!(lint_lib("radio", clean).is_empty());
}

// -------------------------------------------------------------- forbid-unsafe

#[test]
fn forbid_unsafe_flags_bare_crate_root() {
    let v = lint_source("src/lib.rs", FileKind::Library, "core", true, "pub fn f() {}\n");
    assert_eq!(rules_of(&v), ["forbid-unsafe"]);
}

#[test]
fn forbid_unsafe_satisfied_by_the_attribute_and_skips_non_roots() {
    let attributed = "#![forbid(unsafe_code)]\npub fn f() {}\n";
    assert!(lint_source("src/lib.rs", FileKind::Library, "core", true, attributed).is_empty());
    // Non-root modules don't need it.
    assert!(lint_source("src/util.rs", FileKind::Library, "core", false, "pub fn f() {}\n").is_empty());
}

// --------------------------------------------------------------- debug-macro

#[test]
fn debug_macro_flags_dbg_todo_unimplemented_even_in_tests() {
    let src = r#"
fn f() { todo!() }
#[cfg(test)]
mod tests {
    fn t() { dbg!(1); unimplemented!(); }
}
"#;
    let v = lint_lib("core", src);
    assert_eq!(rules_of(&v), ["debug-macro", "debug-macro", "debug-macro"]);
}

#[test]
fn debug_macro_ignores_mentions_in_strings_and_docs() {
    let clean = "/// Call `dbg!` never.\nfn f() -> &'static str { \"todo!()\" }\n";
    assert!(lint_lib("core", clean).is_empty());
}

// ------------------------------------------------------------- target-parity

#[test]
fn target_parity_flags_one_sided_targets() {
    let ws = Workspace {
        makefile: Some("lint:\n\tcargo run\ncheck: lint\n\ttrue\n".to_string()),
        justfile: Some("check:\n    true\n".to_string()),
        ..Workspace::default()
    };
    let mut out = Vec::new();
    TargetParity.check_workspace(&ws, &mut out);
    assert_eq!(out.len(), 1);
    assert_eq!(out[0].rule, "target-parity");
    assert!(out[0].message.contains("`lint`"));
    assert_eq!(out[0].path, "Makefile");
}

#[test]
fn target_parity_clean_when_in_sync() {
    let ws = Workspace {
        makefile: Some("check: build\n\ttrue\nbuild:\n\ttrue\n".to_string()),
        justfile: Some("check: build\nbuild:\n    true\n".to_string()),
        ..Workspace::default()
    };
    let mut out = Vec::new();
    TargetParity.check_workspace(&ws, &mut out);
    assert!(out.is_empty(), "{out:?}");
}

// ------------------------------------------------------- suppression grammar

#[test]
fn allow_with_reason_suppresses_next_line() {
    let src = "// lint:allow(hash-iter) — keyed lookups only, never iterated\nuse std::collections::HashMap;\n";
    assert!(lint_lib("core", src).is_empty());
}

#[test]
fn allow_with_reason_suppresses_same_line() {
    let src = "use std::collections::HashMap; // lint:allow(hash-iter) — keyed lookups only\n";
    assert!(lint_lib("core", src).is_empty());
}

#[test]
fn allow_does_not_reach_two_lines_down() {
    let src = "// lint:allow(hash-iter) — too far away\nfn gap() {}\nuse std::collections::HashMap;\n";
    let v = lint_lib("core", src);
    assert_eq!(rules_of(&v), ["unused-allow", "hash-iter"]);
}

#[test]
fn allow_without_reason_is_bad() {
    let src = "// lint:allow(hash-iter)\nuse std::collections::HashMap;\n";
    let v = lint_lib("core", src);
    assert!(rules_of(&v).contains(&"bad-allow"));
    assert!(
        rules_of(&v).contains(&"hash-iter"),
        "a reason-less allow must not suppress: {v:?}"
    );
}

#[test]
fn allow_of_unknown_rule_is_bad() {
    let v = lint_lib("core", "// lint:allow(no-such-rule) — reason\nfn f() {}\n");
    assert_eq!(rules_of(&v), ["bad-allow"]);
    assert!(v[0].message.contains("unknown rule"));
}

#[test]
fn unused_allow_is_flagged() {
    let v = lint_lib("core", "// lint:allow(wall-clock) — nothing here uses the clock\nfn f() {}\n");
    assert_eq!(rules_of(&v), ["unused-allow"]);
}

#[test]
fn meta_rules_cannot_be_suppressed() {
    let v = lint_lib("core", "// lint:allow(unused-allow) — trying to silence the auditor\nfn f() {}\n");
    assert_eq!(rules_of(&v), ["bad-allow"]);
    assert!(v[0].message.contains("cannot be suppressed"));
}

#[test]
fn doc_comments_document_the_grammar_without_activating_it() {
    // The allow below sits in a doc comment, so it is documentation, not a
    // live suppression — the violation must survive.
    let src = "/// Suppress with `// lint:allow(hash-iter) — reason`.\nuse std::collections::HashMap;\n";
    let v = lint_lib("core", src);
    assert_eq!(rules_of(&v), ["hash-iter"]);
}

// ------------------------------------------------------------------ registry

#[test]
fn registry_names_are_unique_kebab_case_and_documented() {
    let mut names: Vec<&str> = registry().iter().map(|r| r.name()).collect();
    names.extend(META_RULES);
    let mut sorted = names.clone();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(sorted.len(), names.len(), "duplicate rule names");
    for n in &names {
        assert!(
            n.bytes().all(|b| b.is_ascii_lowercase() || b == b'-'),
            "rule name {n:?} is not kebab-case"
        );
    }
    for r in registry() {
        assert!(!r.summary().is_empty(), "rule {} has no summary", r.name());
    }
}

// ---------------------------------------------------------------- panic-reach
//
// Seeded-defect corpus: every fixture plants known panic sites reachable
// from the daemon/mission roots and asserts each one (and only those) is
// reported, with the call chain in the message.

#[test]
fn panic_reach_flags_sites_transitively_reachable_from_serve_roots() {
    // Three seeded defects: an unwrap and a panic! two calls below
    // `serve_connection`, and a dynamic index one call below it.
    let daemon = r#"
pub fn serve_connection(conn: Conn) {
    process(conn);
    lookup(3);
}

fn process(conn: Conn) {
    step(conn);
}

fn step(conn: Conn) {
    let header: Option<u8> = peek(conn);
    let _ = header.unwrap();
    panic!("protocol error");
}

fn lookup(slot: usize) {
    let table = [1u8, 2, 3];
    let _ = table[slot];
}
"#;
    let ws = Workspace {
        files: vec![lib_file("crates/serve/src/daemon.rs", "serve", daemon)],
        ..Workspace::default()
    };
    let v = ws_findings(&ws, "panic-reach");
    assert_eq!(v.len(), 3, "{v:?}");
    for f in &v {
        assert_eq!(f.path, "crates/serve/src/daemon.rs");
        assert!(f.message.contains("serve_connection"), "{}", f.message);
    }
    assert!(v.iter().any(|f| f.message.contains("`unwrap`")), "{v:?}");
    assert!(v.iter().any(|f| f.message.contains("`panic!`")), "{v:?}");
    assert!(v.iter().any(|f| f.message.contains("dynamic index")), "{v:?}");
    // The deepest site carries the full path chain.
    assert!(
        v.iter().any(|f| f.message.contains("serve_connection → process → step")),
        "{v:?}"
    );
}

#[test]
fn panic_reach_crosses_crates_through_use_imports() {
    // Seeded defect: `fly_leg` (mission root) reaches an `expect` in the
    // core crate through a `use` re-export. The site lives outside the
    // panic-free crates, so only the reachability rule can catch it.
    let mission = "use aerorem_core::plan;\n\npub fn fly_leg() {\n    plan();\n}\n";
    let core = r#"
pub fn plan() -> u8 {
    let route: Option<u8> = None;
    route.expect("route planned")
}
"#;
    let ws = Workspace {
        files: vec![
            lib_file("crates/mission/src/lib.rs", "mission", mission),
            lib_file("crates/core/src/lib.rs", "core", core),
        ],
        ..Workspace::default()
    };
    let v = ws_findings(&ws, "panic-reach");
    assert_eq!(v.len(), 1, "{v:?}");
    assert_eq!(v[0].path, "crates/core/src/lib.rs");
    assert!(v[0].message.contains("fly_leg → plan"), "{}", v[0].message);
}

#[test]
fn panic_reach_ignores_unreachable_test_scoped_and_foreign_index_sites() {
    // Negatives: a panic site nothing calls, one inside a test region, and
    // a dynamic index in a crate outside DYN_INDEX_CRATES — all quiet even
    // though a live root exists in the workspace.
    let daemon = r#"
pub fn serve_connection(xs: &[f64]) {
    aerorem_numerics::pick(xs, 2);
}

fn dead_helper(x: Option<u8>) -> u8 {
    x.unwrap()
}

#[cfg(test)]
mod tests {
    fn t() {
        Some(1u8).unwrap();
    }
}
"#;
    let numerics = "pub fn pick(xs: &[f64], i: usize) -> f64 {\n    xs[i]\n}\n";
    let ws = Workspace {
        files: vec![
            lib_file("crates/serve/src/daemon.rs", "serve", daemon),
            lib_file("crates/numerics/src/kernels.rs", "numerics", numerics),
        ],
        ..Workspace::default()
    };
    assert!(ws_findings(&ws, "panic-reach").is_empty());
}

#[test]
fn panic_reach_findings_accept_trailing_allows() {
    // Workspace findings route through the same per-file suppression
    // resolution as per-file rules: a reasoned trailing allow silences the
    // unwrap but leaves the panic! on the next statement live.
    let daemon = r#"
pub fn submit_batch(x: Option<u8>) {
    let _ = x.unwrap(); // lint:allow(panic-reach) — fixture: caller checked is_some
    let _ = x;

    panic!("still live");
}
"#;
    let ws = Workspace {
        files: vec![lib_file("crates/serve/src/batch.rs", "serve", daemon)],
        ..Workspace::default()
    };
    let v = ws_findings(&ws, "panic-reach");
    assert_eq!(v.len(), 1, "{v:?}");
    assert!(v[0].message.contains("`panic!`"), "{}", v[0].message);
}

// ------------------------------------------------------------ lock-discipline

#[test]
fn lock_discipline_flags_lock_order_cycles_at_both_sites() {
    // Seeded defects (2): `promote` takes current → namespaces while
    // `enumerate_spaces` takes namespaces → current; each inner acquisition
    // is a deadlock window and both are reported, cross-referencing the
    // other site.
    let daemon = r#"
fn promote(state: &Shared) {
    let cur = lock_write(&state.current);
    let ns = lock_read(&state.namespaces);
    drop(ns);
    drop(cur);
}

fn enumerate_spaces(state: &Shared) {
    let ns = lock_read(&state.namespaces);
    let cur = lock_read(&state.current);
    drop(cur);
    drop(ns);
}
"#;
    let ws = Workspace {
        files: vec![lib_file("crates/serve/src/daemon.rs", "serve", daemon)],
        ..Workspace::default()
    };
    let v = ws_findings(&ws, "lock-discipline");
    assert_eq!(v.len(), 2, "{v:?}");
    for f in &v {
        assert!(f.message.contains("lock-order cycle"), "{}", f.message);
    }
}

#[test]
fn lock_discipline_flags_blocking_io_under_watched_guards() {
    // Seeded defects (2): a socket write under the `conns` mutex (helper
    // acquisition form) and a flush under the `nudge` mutex (raw method
    // form).
    let daemon = r#"
fn flush_requests(state: &Shared, stream: &mut TcpStream) {
    let conns = lock_mutex(&state.conns);
    stream.write_all(b"ready").unwrap_or(());
    drop(conns);
}

fn poke(state: &Shared, stream: &mut TcpStream) {
    let guard = state.nudge.lock();
    stream.flush().unwrap_or(());
}
"#;
    let ws = Workspace {
        files: vec![lib_file("crates/serve/src/daemon.rs", "serve", daemon)],
        ..Workspace::default()
    };
    let v = ws_findings(&ws, "lock-discipline");
    assert_eq!(v.len(), 2, "{v:?}");
    assert!(
        v.iter().any(|f| f.message.contains("`write_all`") && f.message.contains("`conns`")),
        "{v:?}"
    );
    assert!(
        v.iter().any(|f| f.message.contains("`flush`") && f.message.contains("`nudge`")),
        "{v:?}"
    );
}

#[test]
fn lock_discipline_accepts_consistent_order_and_snapshot_then_block() {
    // Negatives: both paths take current before namespaces (no cycle), and
    // the I/O happens only after the guard's block scope closes.
    let daemon = r#"
fn flush_requests(state: &Shared, stream: &mut TcpStream) {
    let snapshot = {
        let conns = lock_mutex(&state.conns);
        conns.clone()
    };
    stream.write_all(&snapshot).unwrap_or(());
}

fn promote(state: &Shared) {
    let cur = lock_write(&state.current);
    let ns = lock_read(&state.namespaces);
    drop(ns);
    drop(cur);
}

fn refresh(state: &Shared) {
    let cur = lock_read(&state.current);
    let ns = lock_read(&state.namespaces);
    drop(ns);
    drop(cur);
}
"#;
    let ws = Workspace {
        files: vec![lib_file("crates/serve/src/daemon.rs", "serve", daemon)],
        ..Workspace::default()
    };
    assert!(ws_findings(&ws, "lock-discipline").is_empty());
}

#[test]
fn lock_discipline_scopes_to_the_serve_crate() {
    // The same cyclic shape outside `crates/serve` is not the daemon's
    // shared state — field names are just names there.
    let other = r#"
fn a(state: &Shared) {
    let cur = lock_write(&state.current);
    let ns = lock_read(&state.namespaces);
    drop(ns);
    drop(cur);
}

fn b(state: &Shared) {
    let ns = lock_read(&state.namespaces);
    let cur = lock_read(&state.current);
    drop(cur);
    drop(ns);
}
"#;
    let ws = Workspace {
        files: vec![lib_file("crates/core/src/state.rs", "core", other)],
        ..Workspace::default()
    };
    assert!(ws_findings(&ws, "lock-discipline").is_empty());
}

// ------------------------------------------------------------------ spec-drift

/// A wire spec that agrees with [`WIRE_CODE`] byte for byte (the worked
/// example CRCs were computed independently of the rule's own CRC-32).
const WIRE_DOC: &str = r#"# REM wire protocol

Namespace names are capped at 255 bytes.

## 2. Frame header — 32 bytes

| Offset | Size | Type | Field | Value |
|---|---|---|---|---|
| 0 | 4 | bytes | `magic` | ASCII `ARWF` (`41 52 57 46`). |
| 4 | 2 | u16 | `version` | `1` |
| 20 | 4 | u32 | `payload_len` | `≤ 2^30` |

## 4. Frame kinds

| Value | Kind |
|---|---|
| 1 | `Request` |
| 2 | `Response` |

## 5.3 Error codes

| Code | Name |
|---|---|
| 1 | `UnknownNamespace` |

## 6. CRC-32

Reflected polynomial 0xEDB88320; crc32(b"123456789") = 0xCBF43926.

## 7. Worked example

```text
0x00  41 52 57 46                magic
0x04  01 00                      version
0x06  01                         kind = Request
0x07  00                         flags
0x08  00 00 00 00                namespace
0x0C  00 00 00 00 00 00 00 00    seq
0x14  00 00 00 00                payload_len = 0
0x18  00 00 00 00                payload_crc32 (empty payload)
0x1C  B3 4A C5 3D                header_crc32 = 0x3DC54AB3
```
"#;

const WIRE_CODE: &str = r#"
pub const WIRE_MAGIC: [u8; 4] = *b"ARWF";
pub const WIRE_VERSION: u16 = 1;
pub const FRAME_HEADER_LEN: usize = 32;
pub const MAX_PAYLOAD: usize = 1 << 30;
pub const MAX_NAME: usize = 255;

pub enum FrameKind {
    Request = 1,
    Response = 2,
}

pub enum ErrorCode {
    UnknownNamespace = 1,
}
"#;

const CODEC_CODE: &str = "pub const CRC32_POLY: u32 = 0xEDB8_8320;\n";

fn wire_ws(doc: &str, code: &str, codec: &str) -> Workspace {
    Workspace {
        files: vec![
            lib_file("crates/serve/src/wire.rs", "serve", code),
            lib_file("crates/numerics/src/codec.rs", "numerics", codec),
        ],
        wire_spec: Some(doc.to_string()),
        ..Workspace::default()
    }
}

#[test]
fn spec_drift_is_quiet_when_doc_and_code_agree() {
    let ws = wire_ws(WIRE_DOC, WIRE_CODE, CODEC_CODE);
    assert!(ws_findings(&ws, "spec-drift").is_empty());
}

#[test]
fn spec_drift_flags_every_seeded_disagreement() {
    // Six seeded defects, each drifting one anchor away from the code:
    // the magic ASCII, the version row, one enum discriminant, an
    // undocumented enum variant, a prose cap, and a corrupted worked-example
    // header CRC.
    let doc = WIRE_DOC
        .replace("ASCII `ARWF` (`41 52 57 46`)", "ASCII `ARWG` (`41 52 57 47`)")
        .replace("| 4 | 2 | u16 | `version` | `1` |", "| 4 | 2 | u16 | `version` | `2` |")
        .replace("| 2 | `Response` |", "| 3 | `Response` |")
        .replace("capped at 255 bytes", "capped at 300 bytes")
        .replace("0x1C  B3 4A C5 3D", "0x1C  DE AD BE EF");
    let code = WIRE_CODE.replace(
        "    Response = 2,\n}",
        "    Response = 2,\n    Cancel = 4,\n}",
    );
    let ws = wire_ws(&doc, &code, CODEC_CODE);
    let v = ws_findings(&ws, "spec-drift");
    assert_eq!(v.len(), 6, "{v:?}");
    for f in &v {
        assert_eq!(f.path, "docs/WIRE_FORMAT.md");
    }
    let all = v.iter().map(|f| f.message.as_str()).collect::<Vec<_>>().join("\n");
    assert!(all.contains("doc magic `ARWG`"), "{all}");
    assert!(all.contains("version = 2"), "{all}");
    assert!(all.contains("doc assigns `Response` = 3"), "{all}");
    assert!(all.contains("`FrameKind::Cancel` = 4 is not documented"), "{all}");
    assert!(all.contains("capped at = 300"), "{all}");
    assert!(
        all.contains("header_crc32 is 0xEFBEADDE") && all.contains("0x3DC54AB3"),
        "{all}"
    );
}

#[test]
fn spec_drift_recomputes_the_doc_check_value_and_codec_polynomial() {
    // Seeded defect: the codec implements a different polynomial than the
    // one the doc declares (the doc's own check value still matches, so the
    // only drift is doc↔codec).
    let ws = wire_ws(WIRE_DOC, WIRE_CODE, "pub const CRC32_POLY: u32 = 0x04C11DB7;\n");
    let v = ws_findings(&ws, "spec-drift");
    assert_eq!(v.len(), 1, "{v:?}");
    assert!(
        v[0].message.contains("0xEDB88320 does not appear in"),
        "{}", v[0].message
    );
}

#[test]
fn spec_drift_treats_missing_anchors_as_findings() {
    // Seeded defect: the CRC-32 section is dropped entirely — the check
    // must fail loudly instead of silently skipping the example.
    let doc = WIRE_DOC.replace("## 6. CRC-32", "## 6. Integrity").replace("0xEDB88320", "a polynomial");
    let ws = wire_ws(&doc, WIRE_CODE, CODEC_CODE);
    let v = ws_findings(&ws, "spec-drift");
    assert_eq!(v.len(), 1, "{v:?}");
    assert!(v[0].message.contains("spec anchor missing"), "{}", v[0].message);
    assert!(v[0].message.contains("CRC-32"), "{}", v[0].message);
}

#[test]
fn spec_drift_flags_a_spec_without_an_implementation() {
    // Seeded defect: the spec names an implementation file the workspace
    // does not contain.
    let ws = Workspace {
        files: vec![lib_file("crates/numerics/src/codec.rs", "numerics", CODEC_CODE)],
        wire_spec: Some(WIRE_DOC.to_string()),
        ..Workspace::default()
    };
    let v = ws_findings(&ws, "spec-drift");
    assert_eq!(v.len(), 1, "{v:?}");
    assert!(v[0].message.contains("no implementation"), "{}", v[0].message);
}

// ------------------------------------------- unused-allow at test boundaries

#[test]
fn allow_above_a_test_region_boundary_is_not_unused() {
    // Regression: the allow's finding only exists inside the `#[cfg(test)]`
    // region, which the real pass skips. The shadow pass must credit the
    // allow instead of flagging it as unused.
    let src = "// lint:allow(hash-iter) — keyed map used only by the test module\n#[cfg(test)] mod t { use std::collections::HashMap; }\n";
    assert!(lint_lib("core", src).is_empty(), "{:?}", lint_lib("core", src));
}

#[test]
fn allow_trailing_inside_a_test_region_is_not_unused() {
    let src = "#[cfg(test)]\nmod t {\n    use std::collections::HashMap; // lint:allow(hash-iter) — test fixture map\n}\n";
    assert!(lint_lib("core", src).is_empty(), "{:?}", lint_lib("core", src));
}

#[test]
fn allow_above_a_test_region_with_no_finding_is_still_unused() {
    // The shadow pass only credits allows that match a real (test-scoped)
    // finding; a stale allow above a clean test module stays flagged.
    let src = "// lint:allow(hash-iter) — stale claim\n#[cfg(test)] mod t { fn f() {} }\n";
    let v = lint_lib("core", src);
    assert_eq!(rules_of(&v), ["unused-allow"]);
}
