//! Call-graph resolution edge cases: trait-method dispatch, closures passed
//! to the chunked executor, shadowed function names across modules, and
//! cross-crate `use` re-exports. Each fixture asserts the *resolved edges*,
//! not just the findings built on top of them.

use aerorem_lint::callgraph::CallGraph;
use aerorem_lint::memory_file;
use aerorem_lint::workspace::{FileKind, Workspace};

fn lib_file(path: &str, crate_name: &str, text: &str) -> aerorem_lint::workspace::WorkspaceFile {
    memory_file(path, FileKind::Library, crate_name, false, text)
}

fn graph(files: Vec<aerorem_lint::workspace::WorkspaceFile>) -> CallGraph {
    CallGraph::build(&Workspace {
        files,
        ..Workspace::default()
    })
}

/// The unique function id for (crate, name); panics when ambiguous so a
/// fixture drift fails loudly.
fn only(g: &CallGraph, crate_name: &str, name: &str) -> usize {
    let ids = g.find(crate_name, name);
    assert_eq!(ids.len(), 1, "expected one `{crate_name}::{name}`, got {ids:?}");
    ids[0]
}

#[test]
fn trait_method_dispatch_edges_to_every_impl() {
    // `h.poll()` cannot know the receiver type, so the graph
    // over-approximates: one edge per workspace `poll` method (trait decl
    // and both impls), keeping reachability sound for panic analysis.
    let daemon = "pub fn serve_connection(h: &dyn Handler) {\n    h.poll();\n}\n";
    let handlers = r#"
pub trait Handler {
    fn poll(&self);
}

pub struct Echo;
impl Handler for Echo {
    fn poll(&self) {
        echo_step();
    }
}

pub struct Drop_;
impl Handler for Drop_ {
    fn poll(&self) {
        drop_step();
    }
}

fn echo_step() {}
fn drop_step() {}
"#;
    let g = graph(vec![
        lib_file("crates/serve/src/daemon.rs", "serve", daemon),
        lib_file("crates/serve/src/handlers.rs", "serve", handlers),
    ]);
    let root = only(&g, "serve", "serve_connection");
    let polls = g.find("serve", "poll");
    assert_eq!(polls.len(), 3, "trait decl + two impls");
    for p in &polls {
        assert!(g.has_edge(root, *p), "missing edge to poll #{p}");
    }
    // …and through the impl bodies to their helpers.
    let reach = g.reach_from(&[root]);
    assert!(reach[only(&g, "serve", "echo_step")].is_some());
    assert!(reach[only(&g, "serve", "drop_step")].is_some());
}

#[test]
fn closure_bodies_attribute_calls_to_the_enclosing_fn() {
    // A closure handed to `exec::map_chunks` is not a named function; the
    // calls inside it belong to the function that builds the closure.
    let engine = r#"
use aerorem_numerics::exec;

fn transform(x: f64) -> f64 {
    x * 2.0
}

pub fn answer(data: &[f64]) {
    exec::map_chunks(data, |chunk| transform(chunk.len() as f64));
}
"#;
    let numerics = "pub fn map_chunks() {}\n";
    let g = graph(vec![
        lib_file("crates/serve/src/engine.rs", "serve", engine),
        lib_file("crates/numerics/src/exec.rs", "numerics", numerics),
    ]);
    let answer = only(&g, "serve", "answer");
    assert!(g.has_edge(answer, only(&g, "numerics", "map_chunks")));
    assert!(g.has_edge(answer, only(&g, "serve", "transform")));
}

#[test]
fn shadowed_names_resolve_to_the_innermost_module() {
    // Both files define `refresh`; a bare call binds to the caller's own
    // module, never to the same-named function elsewhere in the crate.
    let alpha = "pub fn refresh() {}\n\npub fn tick() {\n    refresh();\n}\n";
    let beta = "pub fn refresh() {}\n\npub fn tock() {\n    refresh();\n}\n";
    let g = graph(vec![
        lib_file("crates/core/src/alpha.rs", "core", alpha),
        lib_file("crates/core/src/beta.rs", "core", beta),
    ]);
    let refreshes = g.find("core", "refresh");
    assert_eq!(refreshes.len(), 2);
    let in_alpha = *refreshes
        .iter()
        .find(|&&i| g.fns[i].modules == ["alpha"])
        .expect("alpha::refresh");
    let in_beta = *refreshes
        .iter()
        .find(|&&i| g.fns[i].modules == ["beta"])
        .expect("beta::refresh");
    let tick = only(&g, "core", "tick");
    let tock = only(&g, "core", "tock");
    assert!(g.has_edge(tick, in_alpha));
    assert!(!g.has_edge(tick, in_beta), "tick must not edge across modules");
    assert!(g.has_edge(tock, in_beta));
    assert!(!g.has_edge(tock, in_alpha), "tock must not edge across modules");
}

#[test]
fn cross_crate_use_reexports_splice_into_full_paths() {
    // `use aerorem_core::plan_route; … plan_route()` resolves through the
    // import to the defining crate.
    let mission = "use aerorem_core::plan_route;\n\npub fn fly_leg() {\n    plan_route();\n}\n";
    let core = "pub fn plan_route() {}\n";
    let g = graph(vec![
        lib_file("crates/mission/src/lib.rs", "mission", mission),
        lib_file("crates/core/src/lib.rs", "core", core),
    ]);
    assert!(g.has_edge(
        only(&g, "mission", "fly_leg"),
        only(&g, "core", "plan_route"),
    ));
}

#[test]
fn explicit_crate_paths_resolve_without_an_import() {
    let mission = "pub fn fly_leg() {\n    aerorem_core::plan_route();\n}\n";
    let core = "pub fn plan_route() {}\n";
    let g = graph(vec![
        lib_file("crates/mission/src/lib.rs", "mission", mission),
        lib_file("crates/core/src/lib.rs", "core", core),
    ]);
    assert!(g.has_edge(
        only(&g, "mission", "fly_leg"),
        only(&g, "core", "plan_route"),
    ));
}

#[test]
fn test_regions_contribute_no_nodes_or_edges() {
    let src = r#"
pub fn live() {}

#[cfg(test)]
mod tests {
    fn test_only() {
        super::live();
    }
}
"#;
    let g = graph(vec![lib_file("crates/core/src/lib.rs", "core", src)]);
    assert_eq!(g.find("core", "test_only"), Vec::<usize>::new());
    assert_eq!(g.find("core", "live").len(), 1);
}
