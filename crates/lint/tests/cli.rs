//! End-to-end CLI tests: build a tiny workspace on disk, run the real
//! binary against it, and check output and exit codes — including the
//! stability of the `--json` schema.

use std::fs;
use std::path::Path;
use std::process::Command;

fn write(root: &Path, rel: &str, text: &str) {
    let path = root.join(rel);
    fs::create_dir_all(path.parent().unwrap()).unwrap();
    fs::write(path, text).unwrap();
}

/// A minimal clean workspace: one crate, parity-matched build gates.
fn clean_workspace(root: &Path) {
    write(
        root,
        "crates/mission/src/lib.rs",
        "#![forbid(unsafe_code)]\npub fn f(x: Option<u8>) -> u8 { x.unwrap_or(0) }\n",
    );
    write(root, "Makefile", "check:\n\ttrue\n");
    write(root, "justfile", "check:\n    true\n");
}

fn run_lint(root: &Path, extra: &[&str]) -> std::process::Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_aerorem-lint"));
    cmd.arg("--root").arg(root).args(extra);
    cmd.output().expect("binary runs")
}

#[test]
fn clean_workspace_exits_zero() {
    let dir = std::env::temp_dir().join("aerorem-lint-clean");
    let _ = fs::remove_dir_all(&dir);
    clean_workspace(&dir);
    let out = run_lint(&dir, &[]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(0), "{stdout}");
    assert!(stdout.contains("clean"));
}

#[test]
fn violations_exit_one_and_json_is_stable() {
    let dir = std::env::temp_dir().join("aerorem-lint-dirty");
    let _ = fs::remove_dir_all(&dir);
    clean_workspace(&dir);
    write(
        &dir,
        "crates/mission/src/bad.rs",
        "use std::collections::HashMap;\nfn f(x: Option<u8>) -> u8 { x.unwrap() }\n",
    );
    let out = run_lint(&dir, &["--json"]);
    assert_eq!(out.status.code(), Some(1));
    let json = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(json.contains("\"schema_version\": 2"));
    assert!(json.contains("\"tool\": \"aerorem-lint\""));
    assert!(json.contains("\"rule\": \"hash-iter\", \"severity\": \"error\""));
    assert!(json.contains("\"rule\": \"panic-path\", \"severity\": \"error\""));
    assert!(json.contains("\"path\": \"crates/mission/src/bad.rs\""));
    // v2: the rule catalog is a list of objects with severities.
    assert!(json.contains("{\"name\": \"hash-iter\", \"severity\": \"error\", \"summary\": "));
    assert!(json.contains("{\"name\": \"unused-allow\", \"severity\": \"warning\", \"summary\": "));
    // Byte-stable across runs — the contract that lets scripts diff reports.
    let again = run_lint(&dir, &["--json"]);
    assert_eq!(json, String::from_utf8_lossy(&again.stdout));
}

#[test]
fn suppressions_with_reasons_quiet_the_run() {
    let dir = std::env::temp_dir().join("aerorem-lint-suppressed");
    let _ = fs::remove_dir_all(&dir);
    clean_workspace(&dir);
    write(
        &dir,
        "crates/mission/src/justified.rs",
        "// lint:allow(hash-iter) — keyed lookups only, never iterated\nuse std::collections::HashMap;\n",
    );
    let out = run_lint(&dir, &[]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(0), "{stdout}");
    assert!(stdout.contains("1 suppressions"), "{stdout}");
}

#[test]
fn list_rules_covers_the_catalog() {
    let out = run_lint(Path::new("."), &["--list-rules"]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    for rule in [
        "hash-iter",
        "wall-clock",
        "entropy",
        "par-float-reduce",
        "panic-path",
        "slice-index",
        "panic-reach",
        "lock-discipline",
        "spec-drift",
        "forbid-unsafe",
        "debug-macro",
        "target-parity",
        "bad-allow",
        "unused-allow",
    ] {
        assert!(stdout.contains(rule), "missing {rule} in:\n{stdout}");
    }
}

#[test]
fn unknown_flag_exits_two() {
    let out = run_lint(Path::new("."), &["--frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
}
