//! Workspace discovery: which files exist, what kind of code each one is,
//! and which crate it belongs to.
//!
//! The walk is self-contained (no `walkdir`): it covers the root package
//! (`src/`, `tests/`, `examples/`, `benches/`) and every `crates/*`
//! member. `vendor/` is deliberately excluded — vendored third-party
//! subsets are not held to the workspace contracts — as are `target/` and
//! hidden directories.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::source::SourceFile;

/// What kind of code a file holds — rules scope themselves by this.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Shipped library/binary code: `src/` of the root package or of a
    /// `crates/*` member. Fully linted.
    Library,
    /// Integration tests and benches (`tests/`, `benches/`): exempt from
    /// determinism and panic rules, still held to hygiene rules.
    TestOrBench,
    /// `examples/`: documentation-grade code; hygiene rules only.
    Example,
}

/// One discovered Rust source file with its classification.
#[derive(Debug)]
pub struct WorkspaceFile {
    /// Parsed source.
    pub source: SourceFile,
    /// Code class.
    pub kind: FileKind,
    /// Crate (package) name: `aerorem` for the root, the directory name for
    /// `crates/*` members.
    pub crate_name: String,
    /// Whether this file is a crate root (`lib.rs`, `main.rs`, or a
    /// `src/bin/*.rs` target) that must carry `#![forbid(unsafe_code)]`.
    pub is_crate_root: bool,
}

/// The loaded workspace.
#[derive(Debug, Default)]
pub struct Workspace {
    /// Every discovered Rust file.
    pub files: Vec<WorkspaceFile>,
    /// `Makefile` text, if present.
    pub makefile: Option<String>,
    /// `justfile` text, if present.
    pub justfile: Option<String>,
    /// `docs/WIRE_FORMAT.md` text, if present (spec-drift input).
    pub wire_spec: Option<String>,
    /// `docs/SNAPSHOT_FORMAT.md` text, if present (spec-drift input).
    pub snapshot_spec: Option<String>,
}

impl Workspace {
    /// Loads the workspace rooted at `root`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors other than "directory absent" (a missing
    /// optional directory is simply skipped).
    pub fn load(root: &Path) -> io::Result<Workspace> {
        let mut files = Vec::new();

        // Root package.
        load_package(root, root, "aerorem", &mut files)?;

        // crates/* members.
        let crates_dir = root.join("crates");
        if crates_dir.is_dir() {
            let mut members: Vec<PathBuf> = fs::read_dir(&crates_dir)?
                .filter_map(Result::ok)
                .map(|e| e.path())
                .filter(|p| p.is_dir())
                .collect();
            members.sort();
            for member in members {
                let name = member
                    .file_name()
                    .and_then(|n| n.to_str())
                    .unwrap_or_default()
                    .to_string();
                load_package(root, &member, &name, &mut files)?;
            }
        }

        files.sort_by(|a, b| a.source.path.cmp(&b.source.path));
        Ok(Workspace {
            files,
            makefile: read_optional(&root.join("Makefile")),
            justfile: read_optional(&root.join("justfile")),
            wire_spec: read_optional(&root.join("docs/WIRE_FORMAT.md")),
            snapshot_spec: read_optional(&root.join("docs/SNAPSHOT_FORMAT.md")),
        })
    }
}

fn read_optional(path: &Path) -> Option<String> {
    fs::read_to_string(path).ok()
}

/// Loads one package's `src/`, `tests/`, `benches/`, and `examples/`.
fn load_package(
    root: &Path,
    pkg: &Path,
    crate_name: &str,
    files: &mut Vec<WorkspaceFile>,
) -> io::Result<()> {
    let src = pkg.join("src");
    if src.is_dir() {
        for path in rust_files(&src)? {
            let is_crate_root = is_crate_root(&src, &path);
            files.push(load_file(root, &path, FileKind::Library, crate_name, is_crate_root)?);
        }
    }
    for (dir, kind) in [
        ("tests", FileKind::TestOrBench),
        ("benches", FileKind::TestOrBench),
        ("examples", FileKind::Example),
    ] {
        let d = pkg.join(dir);
        if d.is_dir() {
            for path in rust_files(&d)? {
                files.push(load_file(root, &path, kind, crate_name, false)?);
            }
        }
    }
    Ok(())
}

/// `lib.rs`, `main.rs`, and `src/bin/*.rs` are crate roots: each is the
/// top of a compilation unit and must carry the workspace-wide
/// `#![forbid(unsafe_code)]`.
fn is_crate_root(src_dir: &Path, path: &Path) -> bool {
    let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
    if path.parent() == Some(src_dir) && (name == "lib.rs" || name == "main.rs") {
        return true;
    }
    path.parent().is_some_and(|p| p == src_dir.join("bin"))
}

fn load_file(
    root: &Path,
    path: &Path,
    kind: FileKind,
    crate_name: &str,
    is_crate_root: bool,
) -> io::Result<WorkspaceFile> {
    let text = fs::read_to_string(path)?;
    let rel = path
        .strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/");
    Ok(WorkspaceFile {
        source: SourceFile::new(rel, text),
        kind,
        crate_name: crate_name.to_string(),
        is_crate_root,
    })
}

/// Recursively collects `.rs` files under `dir`, sorted, skipping hidden
/// directories, `target`, and `vendor`.
fn rust_files(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let mut entries: Vec<PathBuf> = fs::read_dir(&d)?
            .filter_map(Result::ok)
            .map(|e| e.path())
            .collect();
        entries.sort();
        for p in entries {
            let name = p.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if p.is_dir() {
                if name.starts_with('.') || name == "target" || name == "vendor" {
                    continue;
                }
                stack.push(p);
            } else if name.ends_with(".rs") {
                out.push(p);
            }
        }
    }
    out.sort();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_root_detection() {
        let src = Path::new("/w/crates/x/src");
        assert!(is_crate_root(src, Path::new("/w/crates/x/src/lib.rs")));
        assert!(is_crate_root(src, Path::new("/w/crates/x/src/main.rs")));
        assert!(is_crate_root(src, Path::new("/w/crates/x/src/bin/tool.rs")));
        assert!(!is_crate_root(src, Path::new("/w/crates/x/src/util.rs")));
        assert!(!is_crate_root(src, Path::new("/w/crates/x/src/nested/lib.rs")));
    }
}
