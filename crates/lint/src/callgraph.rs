//! The workspace call graph: every shipped function, conservatively
//! resolved call edges between them, and the panic sites each body holds.
//!
//! Resolution is name-based with scope priorities (same module → `use`
//! import → crate-unique → workspace-unique) rather than type-based, so it
//! over-approximates dynamic dispatch (a method call edges to *every*
//! workspace impl of that name) and under-approximates nothing it can see.
//! Ambiguity beyond a small fan-out bound, std-library method names, and
//! glob imports resolve to **no** edge — silence, not noise.

use std::collections::{BTreeMap, VecDeque};

use crate::items::{file_module_path, parse_items, FnItem, UseItem};
use crate::lexer::{Token, TokenKind};
use crate::rules::NON_INDEX_KEYWORDS;
use crate::workspace::{FileKind, Workspace};

/// Method names so common on std types that a bare `.name(` call says
/// nothing about *workspace* functions: resolving them would wire the graph
/// to whatever workspace type happens to share the name.
const STD_METHOD_NAMES: [&str; 40] = [
    "abs", "and_then", "as_ref", "as_slice", "clone", "cmp", "collect", "contains", "copied",
    "count", "default", "drain", "enumerate", "eq", "extend", "filter", "flush", "fmt", "fold",
    "get", "insert", "into_iter", "is_empty", "iter", "join", "len", "map", "max", "min", "next",
    "push", "read", "rev", "sort", "split", "sum", "take", "to_string", "unwrap_or", "write",
];

/// Keyword-ish identifiers that look like calls (`if (…)`, `Some(…)`) but
/// never are, or are constructors rather than workspace functions.
const NON_CALL_IDENTS: [&str; 12] = [
    "Some", "Ok", "Err", "None", "Box", "Vec", "if", "match", "while", "for", "return", "move",
];

/// Maximum method-call fan-out: a name implemented by more workspace types
/// than this is treated as unresolvable rather than edged to everything.
const METHOD_FANOUT_CAP: usize = 4;

/// How a function body can panic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SiteKind {
    /// `.unwrap()`.
    Unwrap,
    /// `.expect(…)`.
    Expect,
    /// `panic!(…)`.
    PanicMacro,
    /// Slice/array indexing with a non-literal bound.
    DynIndex,
}

impl SiteKind {
    /// Human name used in messages.
    pub fn label(self) -> &'static str {
        match self {
            SiteKind::Unwrap => "unwrap",
            SiteKind::Expect => "expect",
            SiteKind::PanicMacro => "panic!",
            SiteKind::DynIndex => "dynamic index",
        }
    }
}

/// One panic hazard inside a function body.
#[derive(Debug, Clone)]
pub struct PanicSite {
    /// What kind of hazard.
    pub kind: SiteKind,
    /// The hazard token (offsets into the owning file).
    pub token: Token,
}

/// One function node.
#[derive(Debug)]
pub struct FnNode {
    /// Index into `Workspace::files`.
    pub file: usize,
    /// Crate the function ships in.
    pub crate_name: String,
    /// Module path: file-derived segments plus inline `mod` nesting.
    pub modules: Vec<String>,
    /// `impl`/`trait` type name for methods.
    pub type_ctx: Option<String>,
    /// Function name.
    pub name: String,
    /// Byte offset of the `fn` keyword.
    pub offset: usize,
    /// Panic sites in the body (test regions excluded).
    pub sites: Vec<PanicSite>,
}

impl FnNode {
    /// `crate::Type::name` or `crate::name` — the display path.
    pub fn qualified(&self) -> String {
        match &self.type_ctx {
            Some(t) => format!("{}::{}::{}", self.crate_name, t, self.name),
            None => format!("{}::{}", self.crate_name, self.name),
        }
    }
}

/// The workspace call graph.
#[derive(Debug)]
pub struct CallGraph {
    /// Function nodes. Only `FileKind::Library` files outside test regions
    /// contribute — tests and benches are not shipped code.
    pub fns: Vec<FnNode>,
    /// Adjacency: `edges[i]` are the callees of `fns[i]`, deduplicated and
    /// sorted.
    pub edges: Vec<Vec<usize>>,
}

/// A call observed in a body, before resolution.
enum CallSite {
    /// `.name(` — receiver type unknown.
    Method(String),
    /// `a::b::name(` (possibly just `name(`).
    Path(Vec<String>),
}

impl CallGraph {
    /// Builds the graph for a loaded workspace.
    pub fn build(ws: &Workspace) -> CallGraph {
        // Pass 1: parse items per library file, collect nodes and uses.
        type FileCtx = (Vec<Token>, Vec<UseItem>, Vec<FnItem>, Vec<String>);
        let mut fns: Vec<FnNode> = Vec::new();
        let mut file_ctx: Vec<Option<FileCtx>> = Vec::with_capacity(ws.files.len());
        for (fi, file) in ws.files.iter().enumerate() {
            if file.kind != FileKind::Library {
                file_ctx.push(None);
                continue;
            }
            let code: Vec<Token> = file
                .source
                .tokens
                .iter()
                .filter(|t| !t.is_comment())
                .copied()
                .collect();
            let items = parse_items(&file.source, &code);
            let file_mods = file_module_path(&file.source.path);
            for f in &items.fns {
                if file.source.in_test_code(f.offset) {
                    continue;
                }
                let mut modules = file_mods.clone();
                modules.extend(f.modules.iter().cloned());
                fns.push(FnNode {
                    file: fi,
                    crate_name: file.crate_name.clone(),
                    modules,
                    type_ctx: f.type_ctx.clone(),
                    name: f.name.clone(),
                    offset: f.offset,
                    sites: Vec::new(),
                });
            }
            file_ctx.push(Some((code, items.uses, items.fns, file_mods)));
        }

        // Indexes for resolution.
        let mut by_crate_name: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
        let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut methods: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
        for (id, f) in fns.iter().enumerate() {
            by_name.entry(&f.name).or_default().push(id);
            by_crate_name
                .entry((&f.crate_name, &f.name))
                .or_default()
                .push(id);
            if let Some(t) = &f.type_ctx {
                methods.entry((t.as_str(), f.name.as_str())).or_default().push(id);
            }
        }

        // Pass 2: per function, extract calls + sites and resolve edges.
        let mut edges: Vec<Vec<usize>> = vec![Vec::new(); fns.len()];
        let mut sites: Vec<Vec<PanicSite>> = vec![Vec::new(); fns.len()];
        for (id, node) in fns.iter().enumerate() {
            let Some((code, uses, raw_fns, _)) = &file_ctx[node.file] else {
                continue;
            };
            let file = &ws.files[node.file];
            // Find this node's raw item (same offset) to get its body and
            // the bodies of fns nested inside it (excluded from the scan so
            // an inner helper's calls are not attributed to the outer fn).
            let Some(raw) = raw_fns.iter().find(|f| f.offset == node.offset) else {
                continue;
            };
            let nested: Vec<(usize, usize)> = raw_fns
                .iter()
                .filter(|g| g.offset != raw.offset && g.body.0 >= raw.body.0 && g.body.1 <= raw.body.1)
                .map(|g| g.body)
                .collect();
            let mut calls = Vec::new();
            extract_body(
                &file.source,
                code,
                raw.body,
                &nested,
                &mut calls,
                &mut sites[id],
            );
            let mut out: Vec<usize> = Vec::new();
            for call in calls {
                resolve(
                    &call,
                    node,
                    uses,
                    &fns,
                    &by_crate_name,
                    &by_name,
                    &methods,
                    &mut out,
                );
            }
            out.sort_unstable();
            out.dedup();
            out.retain(|&t| t != id);
            edges[id] = out;
        }
        for (f, s) in fns.iter_mut().zip(sites) {
            f.sites = s;
        }
        CallGraph { fns, edges }
    }

    /// Finds function ids by crate and bare name.
    pub fn find(&self, crate_name: &str, name: &str) -> Vec<usize> {
        self.fns
            .iter()
            .enumerate()
            .filter(|(_, f)| f.crate_name == crate_name && f.name == name)
            .map(|(i, _)| i)
            .collect()
    }

    /// Whether `from` has a direct edge to `to`.
    pub fn has_edge(&self, from: usize, to: usize) -> bool {
        self.edges[from].contains(&to)
    }

    /// Multi-source BFS from `roots`. Returns, per function, the id of the
    /// function it was first reached *through* (`parent[root] == root`), or
    /// `None` if unreachable.
    pub fn reach_from(&self, roots: &[usize]) -> Vec<Option<usize>> {
        let mut parent: Vec<Option<usize>> = vec![None; self.fns.len()];
        let mut queue: VecDeque<usize> = VecDeque::new();
        for &r in roots {
            if parent[r].is_none() {
                parent[r] = Some(r);
                queue.push_back(r);
            }
        }
        while let Some(u) = queue.pop_front() {
            for &v in &self.edges[u] {
                if parent[v].is_none() {
                    parent[v] = Some(u);
                    queue.push_back(v);
                }
            }
        }
        parent
    }

    /// The call path `root → … → id` implied by a BFS parent table, as
    /// function names.
    pub fn path_to(&self, parent: &[Option<usize>], id: usize) -> Vec<String> {
        let mut chain = vec![self.fns[id].name.clone()];
        let mut cur = id;
        let mut hops = 0;
        while let Some(p) = parent[cur] {
            if p == cur || hops > self.fns.len() {
                break;
            }
            chain.push(self.fns[p].name.clone());
            cur = p;
            hops += 1;
        }
        chain.reverse();
        chain
    }
}

/// Scans one body's token range for calls and panic sites, skipping nested
/// fn bodies and test regions.
fn extract_body(
    source: &crate::source::SourceFile,
    code: &[Token],
    body: (usize, usize),
    nested: &[(usize, usize)],
    calls: &mut Vec<CallSite>,
    sites: &mut Vec<PanicSite>,
) {
    let text = source.text.as_str();
    let word = |i: usize| -> &str { code.get(i).map_or("", |t| t.text(text)) };
    let mut i = body.0;
    while i < body.1 {
        if let Some(&(_, end)) = nested.iter().find(|&&(s, e)| i >= s && i < e) {
            i = end;
            continue;
        }
        let tok = code[i];
        if source.in_test_code(tok.start) {
            i += 1;
            continue;
        }
        if tok.kind == TokenKind::Ident {
            let name = word(i);
            let prev_dot = i > 0 && word(i - 1) == ".";
            let next = word(i + 1);
            if name == "panic" && next == "!" {
                sites.push(PanicSite {
                    kind: SiteKind::PanicMacro,
                    token: tok,
                });
            } else if prev_dot && next == "(" && (name == "unwrap" || name == "expect") {
                sites.push(PanicSite {
                    kind: if name == "unwrap" { SiteKind::Unwrap } else { SiteKind::Expect },
                    token: tok,
                });
                calls.push(CallSite::Method(name.to_string()));
            } else if next == "(" {
                if prev_dot {
                    calls.push(CallSite::Method(name.to_string()));
                } else if next != "!" && !NON_CALL_IDENTS.contains(&name) {
                    // Collect a leading `seg::seg::` path, if any.
                    let mut segs = vec![name.to_string()];
                    let mut k = i;
                    while k >= 2 && word(k - 1) == "::" && code[k - 2].kind == TokenKind::Ident {
                        segs.insert(0, word(k - 2).to_string());
                        k -= 2;
                    }
                    // Uppercase-initial tails are constructors/variants.
                    if !name.starts_with(|c: char| c.is_ascii_uppercase()) {
                        calls.push(CallSite::Path(segs));
                    }
                }
            } else if next == "!" {
                // Non-panic macro: skip the name; its arguments still scan.
            }
        } else if tok.kind == TokenKind::Punct && word(i) == "[" {
            // Same dynamic-index heuristic as the per-file slice-index rule.
            let indexes = if i == 0 {
                false
            } else if code[i - 1].kind == TokenKind::Ident {
                !NON_INDEX_KEYWORDS.contains(&word(i - 1))
            } else {
                matches!(word(i - 1), ")" | "]" | "?")
            };
            if indexes {
                let mut depth = 1i32;
                let mut dynamic = false;
                let mut j = i + 1;
                while j < code.len() && depth > 0 {
                    match word(j) {
                        "[" | "(" | "{" => depth += 1,
                        "]" | ")" | "}" => depth -= 1,
                        _ => {
                            if code[j].kind == TokenKind::Ident {
                                dynamic = true;
                            }
                        }
                    }
                    j += 1;
                }
                if dynamic {
                    sites.push(PanicSite {
                        kind: SiteKind::DynIndex,
                        token: tok,
                    });
                }
            }
        }
        i += 1;
    }
}

/// Maps a leading path segment to a workspace crate name: `aerorem_core` →
/// `core`, `aerorem` → the root package.
fn crate_of_segment(seg: &str) -> Option<String> {
    if seg == "aerorem" {
        return Some("aerorem".to_string());
    }
    seg.strip_prefix("aerorem_").map(str::to_string)
}

/// Resolves one call site to zero or more target ids, appending to `out`.
#[allow(clippy::too_many_arguments)]
fn resolve(
    call: &CallSite,
    caller: &FnNode,
    uses: &[UseItem],
    fns: &[FnNode],
    by_crate_name: &BTreeMap<(&str, &str), Vec<usize>>,
    by_name: &BTreeMap<&str, Vec<usize>>,
    methods: &BTreeMap<(&str, &str), Vec<usize>>,
    out: &mut Vec<usize>,
) {
    match call {
        CallSite::Method(name) => {
            if STD_METHOD_NAMES.contains(&name.as_str()) {
                return;
            }
            // Dynamic dispatch is over-approximated: every workspace method
            // of this name is a candidate, bounded to keep ambiguity silent.
            let cands: Vec<usize> = fns
                .iter()
                .enumerate()
                .filter(|(_, f)| f.type_ctx.is_some() && f.name == *name)
                .map(|(i, _)| i)
                .collect();
            if !cands.is_empty() && cands.len() <= METHOD_FANOUT_CAP {
                out.extend(cands);
            }
        }
        CallSite::Path(segs) => {
            let mut segs: Vec<String> = segs.clone();
            // Normalise `crate::` / `self::` prefixes and splice imports.
            while segs.len() > 1 && (segs[0] == "crate" || segs[0] == "self" || segs[0] == "super")
            {
                segs.remove(0);
            }
            if let Some(u) = uses.iter().find(|u| u.leaf == segs[0]) {
                let mut full = u.path.clone();
                full.extend(segs[1..].iter().cloned());
                segs = full;
            }
            let name = segs.last().cloned().unwrap_or_default();
            if name.is_empty() {
                return;
            }
            // `Type::method` / `Self::method`.
            if segs.len() >= 2 {
                let qual = &segs[segs.len() - 2];
                if qual == "Self" {
                    if let Some(t) = &caller.type_ctx {
                        if let Some(ids) = methods.get(&(t.as_str(), name.as_str())) {
                            out.extend(ids.iter().copied());
                            return;
                        }
                    }
                    return;
                }
                if qual.starts_with(|c: char| c.is_ascii_uppercase()) {
                    if let Some(ids) = methods.get(&(qual.as_str(), name.as_str())) {
                        out.extend(ids.iter().copied());
                    }
                    return;
                }
            }
            // Explicit crate prefix (`aerorem_core::…`)?
            let target_crate = crate_of_segment(&segs[0]);
            if let Some(cr) = target_crate {
                if let Some(ids) = by_crate_name.get(&(cr.as_str(), name.as_str())) {
                    // Prefer a module-path match; fall back to crate-unique.
                    let modpath: Vec<&String> = segs[1..segs.len() - 1].iter().collect();
                    let scored: Vec<usize> = ids
                        .iter()
                        .copied()
                        .filter(|&i| {
                            modpath.is_empty()
                                || modpath
                                    .iter()
                                    .all(|m| fns[i].modules.iter().any(|x| x == *m))
                        })
                        .collect();
                    let pick = if scored.is_empty() { ids.clone() } else { scored };
                    if pick.len() == 1 {
                        out.push(pick[0]);
                    }
                }
                return;
            }
            let in_crate: &[usize] = by_crate_name
                .get(&(caller.crate_name.as_str(), name.as_str()))
                .map_or(&[], Vec::as_slice);
            if segs.len() == 1 {
                // (a) innermost enclosing module scope in the same crate.
                let mut scope = caller.modules.clone();
                loop {
                    let hit: Vec<usize> = in_crate
                        .iter()
                        .copied()
                        .filter(|&i| fns[i].type_ctx.is_none() && fns[i].modules == scope)
                        .collect();
                    if hit.len() == 1 {
                        out.push(hit[0]);
                        return;
                    }
                    if scope.pop().is_none() {
                        break;
                    }
                }
                // (b) crate-unique free fn.
                let free: Vec<usize> = in_crate
                    .iter()
                    .copied()
                    .filter(|&i| fns[i].type_ctx.is_none())
                    .collect();
                if free.len() == 1 {
                    out.push(free[0]);
                    return;
                }
                // (c) workspace-unique.
                if let Some(ids) = by_name.get(name.as_str()) {
                    if ids.len() == 1 {
                        out.push(ids[0]);
                    }
                }
            } else {
                // Module-qualified in-crate call (`wire::decode_frame(…)`):
                // require the module segments to match.
                let modpath = &segs[..segs.len() - 1];
                let hit: Vec<usize> = in_crate
                    .iter()
                    .copied()
                    .filter(|&i| {
                        modpath.iter().all(|m| fns[i].modules.iter().any(|x| x == m))
                    })
                    .collect();
                if hit.len() == 1 {
                    out.push(hit[0]);
                } else if hit.is_empty() {
                    // Cross-crate module reference without the crate prefix
                    // (`codec::crc32(…)` after `use aerorem_numerics::codec`):
                    // fall back to workspace-unique by name.
                    if let Some(ids) = by_name.get(name.as_str()) {
                        if ids.len() == 1 {
                            out.push(ids[0]);
                        }
                    }
                }
            }
        }
    }
}
