//! Source-file model: line/column mapping, `#[cfg(test)]` / `#[test]`
//! region detection, and the `// lint:allow(<rule>) — <reason>` suppression
//! grammar.

use crate::lexer::{lex, Token, TokenKind};

/// One loaded source file plus its token stream.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// Full text.
    pub text: String,
    /// Lexed tokens (comments included).
    pub tokens: Vec<Token>,
    /// Byte ranges that are test code (`#[cfg(test)]` / `#[test]` items).
    pub test_spans: Vec<(usize, usize)>,
    line_starts: Vec<usize>,
}

impl SourceFile {
    /// Loads a file from text.
    pub fn new(path: impl Into<String>, text: impl Into<String>) -> Self {
        let text = text.into();
        let tokens = lex(&text);
        let mut line_starts = vec![0usize];
        for (i, b) in text.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i + 1);
            }
        }
        let test_spans = find_test_spans(&text, &tokens);
        SourceFile {
            path: path.into(),
            text,
            tokens,
            test_spans,
            line_starts,
        }
    }

    /// 1-based (line, column) of a byte offset.
    pub fn line_col(&self, offset: usize) -> (usize, usize) {
        let line = match self.line_starts.binary_search(&offset) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        (line + 1, offset - self.line_starts[line] + 1)
    }

    /// The text of a 1-based line, without its newline.
    pub fn line_text(&self, line: usize) -> &str {
        let start = self.line_starts[line - 1];
        let end = self
            .line_starts
            .get(line)
            .map_or(self.text.len(), |&e| e.saturating_sub(1));
        self.text[start..end].trim_end_matches('\r')
    }

    /// Whether a byte offset falls inside a test region.
    pub fn in_test_code(&self, offset: usize) -> bool {
        self.test_spans
            .iter()
            .any(|&(s, e)| offset >= s && offset < e)
    }
}

/// Finds the byte spans of items annotated `#[cfg(test)]` or `#[test]`.
///
/// From each such attribute, the scan skips any further attributes and doc
/// comments, then takes the following item: through the matching `}` of its
/// first top-level `{`, or through `;` for brace-less items.
fn find_test_spans(src: &str, tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let code: Vec<&Token> = tokens.iter().filter(|t| !t.is_comment()).collect();
    let mut i = 0;
    while i < code.len() {
        if let Some(after_attr) = match_test_attribute(src, &code, i) {
            let start = code[i].start;
            // Skip any further attributes before the item itself.
            let mut j = after_attr;
            while j < code.len() && code[j].text(src) == "#" {
                j = skip_attribute(src, &code, j);
            }
            // Find the item's end: first `{` at depth 0 (then its match),
            // or `;` before any brace.
            let mut depth = 0i32;
            let mut end = code.last().map_or(start, |t| t.end);
            while j < code.len() {
                match code[j].text(src) {
                    "{" => {
                        depth += 1;
                    }
                    "}" => {
                        depth -= 1;
                        if depth == 0 {
                            end = code[j].end;
                            break;
                        }
                    }
                    ";" if depth == 0 => {
                        end = code[j].end;
                        break;
                    }
                    _ => {}
                }
                j += 1;
            }
            spans.push((start, end));
            i = j + 1;
        } else {
            i += 1;
        }
    }
    spans
}

/// If `code[i]` opens `#[cfg(test)]` or `#[test]` (or a `cfg` list that
/// mentions `test`, e.g. `#[cfg(all(test, feature = "x"))]`), returns the
/// index just past the closing `]`.
fn match_test_attribute(src: &str, code: &[&Token], i: usize) -> Option<usize> {
    if code[i].text(src) != "#" || code.get(i + 1)?.text(src) != "[" {
        return None;
    }
    let end = skip_attribute(src, code, i);
    let inner: Vec<&str> = code[i + 2..end.saturating_sub(1).max(i + 2)]
        .iter()
        .map(|t| t.text(src))
        .collect();
    let is_test = match inner.first() {
        Some(&"test") => inner.len() == 1,
        Some(&"cfg") => inner.contains(&"test"),
        _ => false,
    };
    is_test.then_some(end)
}

/// Skips an attribute starting at `#` (index `i`), returning the index just
/// past its closing `]` (bracket-depth aware, so `#[cfg(all(test))]` and
/// nested `[]` both work).
fn skip_attribute(src: &str, code: &[&Token], i: usize) -> usize {
    let mut depth = 0i32;
    let mut j = i + 1;
    while j < code.len() {
        match code[j].text(src) {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    code.len()
}

/// One parsed suppression annotation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allow {
    /// The rule being suppressed.
    pub rule: String,
    /// The mandatory reason.
    pub reason: String,
    /// 1-based line the annotation sits on.
    pub line: usize,
    /// Byte offset of the comment (for diagnostics).
    pub offset: usize,
}

/// A malformed suppression annotation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BadAllow {
    /// What is wrong with it.
    pub problem: String,
    /// 1-based line.
    pub line: usize,
    /// Byte offset of the comment.
    pub offset: usize,
}

/// Scans plain (non-doc) line comments for `lint:allow(<rule>) — <reason>`
/// annotations. Doc comments are ignored so the grammar can be *documented*
/// without creating live suppressions.
pub fn collect_allows(file: &SourceFile) -> (Vec<Allow>, Vec<BadAllow>) {
    let mut allows = Vec::new();
    let mut bad = Vec::new();
    for t in &file.tokens {
        let TokenKind::LineComment { doc: false } = t.kind else {
            continue;
        };
        let body = t.text(&file.text).trim_start_matches('/').trim();
        let Some(rest) = body.strip_prefix("lint:allow") else {
            continue;
        };
        let (line, _) = file.line_col(t.start);
        let Some(rest) = rest.trim_start().strip_prefix('(') else {
            bad.push(BadAllow {
                problem: "expected `lint:allow(<rule>) — <reason>`".into(),
                line,
                offset: t.start,
            });
            continue;
        };
        let Some(close) = rest.find(')') else {
            bad.push(BadAllow {
                problem: "unclosed rule name — expected `lint:allow(<rule>) — <reason>`".into(),
                line,
                offset: t.start,
            });
            continue;
        };
        let rule = rest[..close].trim().to_string();
        if rule.is_empty() || !rule.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'-') {
            bad.push(BadAllow {
                problem: format!("invalid rule name {rule:?}"),
                line,
                offset: t.start,
            });
            continue;
        }
        let after = rest[close + 1..].trim_start();
        let reason = after
            .strip_prefix("—")
            .or_else(|| after.strip_prefix("--"))
            .or_else(|| after.strip_prefix('-'))
            .or_else(|| after.strip_prefix(':'))
            .map(str::trim)
            .unwrap_or("");
        if reason.is_empty() {
            bad.push(BadAllow {
                problem: format!(
                    "suppression of `{rule}` carries no reason — write `lint:allow({rule}) — <why this is safe>`"
                ),
                line,
                offset: t.start,
            });
            continue;
        }
        allows.push(Allow {
            rule,
            reason: reason.to_string(),
            line,
            offset: t.start,
        });
    }
    (allows, bad)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_col_mapping() {
        let f = SourceFile::new("x.rs", "ab\ncd\nef");
        assert_eq!(f.line_col(0), (1, 1));
        assert_eq!(f.line_col(3), (2, 1));
        assert_eq!(f.line_col(7), (3, 2));
        assert_eq!(f.line_text(2), "cd");
    }

    #[test]
    fn cfg_test_module_detected() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n  fn t() { x.unwrap(); }\n}\nfn tail() {}";
        let f = SourceFile::new("x.rs", src);
        let unwrap_at = src.find("unwrap").unwrap();
        assert!(f.in_test_code(unwrap_at));
        assert!(!f.in_test_code(src.find("live").unwrap()));
        assert!(!f.in_test_code(src.find("tail").unwrap()));
    }

    #[test]
    fn test_fn_detected() {
        let src = "#[test]\nfn check() { it(); }\nfn real() {}";
        let f = SourceFile::new("x.rs", src);
        assert!(f.in_test_code(src.find("it()").unwrap()));
        assert!(!f.in_test_code(src.find("real").unwrap()));
    }

    #[test]
    fn stacked_attributes_before_test_item() {
        let src = "#[cfg(test)]\n#[allow(dead_code)]\nmod tests { fn x() { y(); } }\nfn live() {}";
        let f = SourceFile::new("x.rs", src);
        assert!(f.in_test_code(src.find("y()").unwrap()));
        assert!(!f.in_test_code(src.find("live").unwrap()));
    }

    #[test]
    fn allow_grammar() {
        let src = "// lint:allow(hash-iter) — keyed lookups only\nlet x = 1;\n// lint:allow(panic-path)\n// lint:allow() — no rule\n/// lint:allow(doc-rule) — documented, not live\n";
        let f = SourceFile::new("x.rs", src);
        let (allows, bad) = collect_allows(&f);
        assert_eq!(allows.len(), 1);
        assert_eq!(allows[0].rule, "hash-iter");
        assert_eq!(allows[0].reason, "keyed lookups only");
        assert_eq!(allows[0].line, 1);
        assert_eq!(bad.len(), 2, "missing reason and empty rule are both bad");
    }

    #[test]
    fn ascii_hyphen_reason_accepted() {
        let f = SourceFile::new("x.rs", "// lint:allow(wall-clock) - timing subsystem\n");
        let (allows, bad) = collect_allows(&f);
        assert_eq!(allows.len(), 1);
        assert!(bad.is_empty());
        assert_eq!(allows[0].reason, "timing subsystem");
    }
}
