//! `aerorem-lint`: the workspace invariant checker.
//!
//! A tidy-style, offline, dependency-free static-analysis pass that
//! enforces the contracts the test suite can only spot-check:
//!
//! * **determinism** — no `HashMap`/`HashSet` iteration, wall-clock reads,
//!   ambient entropy, or unordered parallel float reductions in shipped
//!   code (the serial≡parallel and run-to-run bit-identity guarantees),
//! * **panic safety** — no `unwrap`/`expect`/`panic!`/dynamic indexing in
//!   non-test code of the flight-critical crates (`mission`, `radio`,
//!   `scanner`, `localization`),
//! * **hygiene** — `#![forbid(unsafe_code)]` on every crate root, no
//!   debugging scaffolding, and Makefile↔justfile target parity.
//!
//! Rules operate on a real token stream ([`lexer`]) so names inside
//! strings, comments, and doc examples never false-positive. Suppression
//! is explicit and audited: `// lint:allow(<rule>) — <reason>` with a
//! mandatory reason, covering the annotation's own line and the line
//! directly below. Malformed annotations surface as `bad-allow`; stale
//! ones as `unused-allow`; neither meta rule can itself be suppressed.

#![forbid(unsafe_code)]

pub mod lexer;
pub mod report;
pub mod rules;
pub mod source;
pub mod workspace;

use std::io;
use std::path::Path;

use report::{Report, Violation};
use rules::{registry, FileCtx, META_RULES};
use source::collect_allows;
use workspace::{FileKind, Workspace, WorkspaceFile};

/// Lints the workspace rooted at `root`.
///
/// # Errors
///
/// Propagates I/O errors from the workspace walk.
pub fn run(root: &Path) -> io::Result<Report> {
    let ws = Workspace::load(root)?;
    Ok(lint_workspace(&ws))
}

/// Runs every registered rule over an already-loaded workspace.
pub fn lint_workspace(ws: &Workspace) -> Report {
    let rules = registry();
    let mut violations = Vec::new();
    let mut suppressions = 0usize;
    for file in &ws.files {
        suppressions += lint_file(file, &mut violations);
    }
    for rule in &rules {
        rule.check_workspace(ws, &mut violations);
    }
    let mut names: Vec<&'static str> = rules.iter().map(|r| r.name()).collect();
    names.extend(META_RULES);
    let mut report = Report {
        violations,
        files_scanned: ws.files.len(),
        suppressions,
        rules: names,
    };
    report.normalize();
    report
}

/// Lints one file: runs the per-file rules, applies `lint:allow`
/// suppressions, and emits the `bad-allow` / `unused-allow` meta
/// diagnostics. Returns the number of live suppressions used.
fn lint_file(file: &WorkspaceFile, out: &mut Vec<Violation>) -> usize {
    let ctx = FileCtx::new(file);
    let mut found = Vec::new();
    for rule in registry() {
        rule.check_file(&ctx, &mut found);
    }
    let (allows, bad) = collect_allows(&file.source);
    for b in bad {
        out.push(meta_violation(file, "bad-allow", b.line, b.problem));
    }

    let known: Vec<&'static str> = registry().iter().map(|r| r.name()).collect();
    let mut used = vec![false; allows.len()];
    for v in found {
        let mut suppressed = false;
        for (ai, a) in allows.iter().enumerate() {
            // An annotation covers its own line (trailing form) and the
            // line directly below (preceding form).
            if a.rule == v.rule && (a.line == v.line || a.line + 1 == v.line) {
                used[ai] = true;
                suppressed = true;
            }
        }
        if !suppressed {
            out.push(v);
        }
    }

    let mut live = 0usize;
    for (ai, a) in allows.iter().enumerate() {
        if META_RULES.contains(&a.rule.as_str()) {
            out.push(meta_violation(
                file,
                "bad-allow",
                a.line,
                format!("`{}` polices the suppression grammar itself and cannot be suppressed", a.rule),
            ));
        } else if !known.contains(&a.rule.as_str()) {
            out.push(meta_violation(
                file,
                "bad-allow",
                a.line,
                format!("unknown rule `{}` (see --list-rules)", a.rule),
            ));
        } else if !used[ai] {
            out.push(meta_violation(
                file,
                "unused-allow",
                a.line,
                format!("suppression of `{}` matches no violation here; delete it", a.rule),
            ));
        } else {
            live += 1;
        }
    }
    live
}

fn meta_violation(file: &WorkspaceFile, rule: &'static str, line: usize, message: String) -> Violation {
    Violation {
        rule,
        path: file.source.path.clone(),
        line,
        col: 1,
        message,
        snippet: file.source.line_text(line).trim().to_string(),
    }
}

/// Lints a single in-memory source text as if it were a workspace file —
/// the harness the per-rule fixture tests drive. `crate_name` controls
/// panic-crate scoping; `kind` controls determinism scoping.
pub fn lint_source(
    path: &str,
    kind: FileKind,
    crate_name: &str,
    is_crate_root: bool,
    text: &str,
) -> Vec<Violation> {
    let file = WorkspaceFile {
        source: source::SourceFile::new(path, text),
        kind,
        crate_name: crate_name.to_string(),
        is_crate_root,
    };
    let mut out = Vec::new();
    lint_file(&file, &mut out);
    out.sort_by(|a, b| (a.line, a.col, a.rule).cmp(&(b.line, b.col, b.rule)));
    out
}
