//! `aerorem-lint`: the workspace invariant checker.
//!
//! A tidy-style, offline, dependency-free static-analysis pass that
//! enforces the contracts the test suite can only spot-check:
//!
//! * **determinism** — no `HashMap`/`HashSet` iteration, wall-clock reads,
//!   ambient entropy, or unordered parallel float reductions in shipped
//!   code (the serial≡parallel and run-to-run bit-identity guarantees),
//! * **panic safety** — no `unwrap`/`expect`/`panic!`/dynamic indexing in
//!   non-test code of the flight-critical crates (`mission`, `radio`,
//!   `scanner`, `localization`), and no panic site transitively reachable
//!   from the daemon handlers, `submit_batch`, or `fly_leg` anywhere in
//!   the workspace ([`rules::reach`], over the [`callgraph`]),
//! * **concurrency** — acyclic lock-acquisition order over the daemon's
//!   shared state and no blocking socket I/O under a guard
//!   ([`rules::locks`]),
//! * **spec fidelity** — the wire/snapshot format documents agree with the
//!   compiled constants byte-for-byte, worked examples included
//!   ([`rules::specdrift`]),
//! * **hygiene** — `#![forbid(unsafe_code)]` on every crate root, no
//!   debugging scaffolding, and Makefile↔justfile target parity with every
//!   `*-check` gate reachable from `check`.
//!
//! Rules operate on a real token stream ([`lexer`]) so names inside
//! strings, comments, and doc examples never false-positive. Suppression
//! is explicit and audited: `// lint:allow(<rule>) — <reason>` with a
//! mandatory reason, covering the annotation's own line and the line
//! directly below. Malformed annotations surface as `bad-allow`; stale
//! ones as `unused-allow`; neither meta rule can itself be suppressed.
//! Workspace-rule findings on source files resolve through the same
//! suppression table; findings on docs and build files (spec-drift,
//! target-parity) cannot be suppressed at all.

#![forbid(unsafe_code)]

pub mod callgraph;
pub mod items;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod source;
pub mod workspace;

use std::collections::BTreeMap;
use std::io;
use std::path::Path;

use report::{Report, RuleInfo, Violation};
use rules::{registry, FileCtx, Rule, META_RULES};
use source::collect_allows;
use workspace::{FileKind, Workspace, WorkspaceFile};

/// Lints the workspace rooted at `root`.
///
/// # Errors
///
/// Propagates I/O errors from the workspace walk.
pub fn run(root: &Path) -> io::Result<Report> {
    let ws = Workspace::load(root)?;
    Ok(lint_workspace(&ws))
}

/// Runs every registered rule over an already-loaded workspace.
pub fn lint_workspace(ws: &Workspace) -> Report {
    let rules = registry();

    // Per-file passes.
    let mut per_file: Vec<Vec<Violation>> = ws
        .files
        .iter()
        .map(|file| {
            let ctx = FileCtx::new(file);
            let mut found = Vec::new();
            for rule in &rules {
                rule.check_file(&ctx, &mut found);
            }
            found
        })
        .collect();

    // Workspace passes. Findings that land on a workspace source file are
    // routed into that file's set so `lint:allow` resolution covers them;
    // findings on anything else (Makefile, justfile, docs/*.md) have no
    // suppression surface and emit directly.
    let by_path: BTreeMap<&str, usize> = ws
        .files
        .iter()
        .enumerate()
        .map(|(i, f)| (f.source.path.as_str(), i))
        .collect();
    let mut ws_found = Vec::new();
    for rule in &rules {
        rule.check_workspace(ws, &mut ws_found);
    }
    let mut violations = Vec::new();
    for v in ws_found {
        match by_path.get(v.path.as_str()) {
            Some(&i) => per_file[i].push(v),
            None => violations.push(v),
        }
    }

    let mut suppressions = 0usize;
    for (file, found) in ws.files.iter().zip(per_file) {
        suppressions += resolve_file(file, &rules, found, &mut violations);
    }

    let mut infos: Vec<RuleInfo> = rules
        .iter()
        .map(|r| RuleInfo { name: r.name(), severity: r.severity(), summary: r.summary() })
        .collect();
    infos.push(RuleInfo {
        name: "bad-allow",
        severity: "error",
        summary: "malformed or forbidden lint:allow annotation",
    });
    infos.push(RuleInfo {
        name: "unused-allow",
        severity: "warning",
        summary: "lint:allow annotation that suppresses nothing",
    });
    let mut report = Report {
        violations,
        files_scanned: ws.files.len(),
        suppressions,
        rules: infos,
    };
    report.normalize();
    report
}

/// Applies one file's `lint:allow` table to its findings and emits the
/// `bad-allow` / `unused-allow` meta diagnostics. Returns the number of
/// live suppressions.
fn resolve_file(
    file: &WorkspaceFile,
    rules: &[Box<dyn Rule>],
    found: Vec<Violation>,
    out: &mut Vec<Violation>,
) -> usize {
    let (allows, bad) = collect_allows(&file.source);
    for b in bad {
        out.push(meta_violation(file, "bad-allow", b.line, b.problem));
    }

    let known: Vec<&'static str> = rules.iter().map(|r| r.name()).collect();
    let mut used = vec![false; allows.len()];
    for v in found {
        let mut suppressed = false;
        for (ai, a) in allows.iter().enumerate() {
            // An annotation covers its own line (trailing form) and the
            // line directly below (preceding form).
            if a.rule == v.rule && (a.line == v.line || a.line + 1 == v.line) {
                used[ai] = true;
                suppressed = true;
            }
        }
        if !suppressed {
            out.push(v);
        }
    }

    // Shadow pass: an allow can legitimately cover a match that the real
    // pass skipped only because the line sits in a `#[cfg(test)]` region —
    // e.g. an annotation directly above a test-module boundary. Re-run the
    // per-file rules with test scoping disabled and let those shadow
    // matches mark allows as used (nothing is emitted from this pass), so
    // they count as live instead of `unused-allow` false positives.
    if used.iter().any(|u| !u) && !allows.is_empty() {
        let mut ctx = FileCtx::new(file);
        ctx.scan_tests = true;
        let mut shadow = Vec::new();
        for rule in rules {
            rule.check_file(&ctx, &mut shadow);
        }
        for v in shadow {
            for (ai, a) in allows.iter().enumerate() {
                if a.rule == v.rule && (a.line == v.line || a.line + 1 == v.line) {
                    used[ai] = true;
                }
            }
        }
    }

    let mut live = 0usize;
    for (ai, a) in allows.iter().enumerate() {
        if META_RULES.contains(&a.rule.as_str()) {
            out.push(meta_violation(
                file,
                "bad-allow",
                a.line,
                format!("`{}` polices the suppression grammar itself and cannot be suppressed", a.rule),
            ));
        } else if !known.contains(&a.rule.as_str()) {
            out.push(meta_violation(
                file,
                "bad-allow",
                a.line,
                format!("unknown rule `{}` (see --list-rules)", a.rule),
            ));
        } else if !used[ai] {
            out.push(meta_violation(
                file,
                "unused-allow",
                a.line,
                format!("suppression of `{}` matches no violation here; delete it", a.rule),
            ));
        } else {
            live += 1;
        }
    }
    live
}

fn meta_violation(file: &WorkspaceFile, rule: &'static str, line: usize, message: String) -> Violation {
    Violation {
        rule,
        path: file.source.path.clone(),
        line,
        col: 1,
        message,
        snippet: file.source.line_text(line).trim().to_string(),
    }
}

/// Lints a single in-memory source text as if it were a workspace file —
/// the harness the per-rule fixture tests drive. `crate_name` controls
/// panic-crate scoping; `kind` controls determinism scoping. Workspace
/// rules do not run here; drive those through [`lint_workspace`] with a
/// constructed [`Workspace`].
pub fn lint_source(
    path: &str,
    kind: FileKind,
    crate_name: &str,
    is_crate_root: bool,
    text: &str,
) -> Vec<Violation> {
    let file = WorkspaceFile {
        source: source::SourceFile::new(path, text),
        kind,
        crate_name: crate_name.to_string(),
        is_crate_root,
    };
    let rules = registry();
    let ctx = FileCtx::new(&file);
    let mut found = Vec::new();
    for rule in &rules {
        rule.check_file(&ctx, &mut found);
    }
    let mut out = Vec::new();
    resolve_file(&file, &rules, found, &mut out);
    out.sort_by(|a, b| (a.line, a.col, a.rule).cmp(&(b.line, b.col, b.rule)));
    out
}

/// Builds an in-memory [`WorkspaceFile`] — the building block for
/// workspace-rule fixtures ([`lint_workspace`] over a constructed
/// [`Workspace`]).
pub fn memory_file(
    path: &str,
    kind: FileKind,
    crate_name: &str,
    is_crate_root: bool,
    text: &str,
) -> WorkspaceFile {
    WorkspaceFile {
        source: source::SourceFile::new(path, text),
        kind,
        crate_name: crate_name.to_string(),
        is_crate_root,
    }
}
