//! Lightweight item-level parsing on top of the token stream: `fn` spans,
//! `impl`/`trait` contexts, inline `mod` nesting, and `use` imports.
//!
//! This is deliberately **not** a Rust grammar. It recovers exactly the
//! shape the cross-file passes need — which functions exist, which type or
//! trait each method belongs to, which module path each item sits on, and
//! what each file imports — by brace-matched scanning of the comment-free
//! token stream. Everything it cannot classify it ignores, so downstream
//! consumers (the call graph) stay conservative rather than wrong.

use crate::lexer::{Token, TokenKind};
use crate::source::SourceFile;

/// One parsed function (free function, inherent/trait method, or trait
/// default method) with its body span.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// Inline module path within the file (outer-to-inner). The file's own
    /// module path (derived from its location) is prepended by consumers.
    pub modules: Vec<String>,
    /// `impl`/`trait` type context, if this is a method.
    pub type_ctx: Option<String>,
    /// Code-token index range of the body, exclusive end. Empty for
    /// body-less trait method declarations.
    pub body: (usize, usize),
    /// Byte offset of the `fn` keyword (for test-region checks and
    /// diagnostics).
    pub offset: usize,
}

/// One `use` import leaf: `use a::b::{c as d}` yields `leaf: "d",
/// path: ["a", "b", "c"]`.
#[derive(Debug, Clone)]
pub struct UseItem {
    /// The name the import binds in this file.
    pub leaf: String,
    /// The full original path, outermost segment first.
    pub path: Vec<String>,
}

/// Everything the item parser recovers from one file.
#[derive(Debug, Default)]
pub struct FileItems {
    /// Functions in source order.
    pub fns: Vec<FnItem>,
    /// Import leaves.
    pub uses: Vec<UseItem>,
}

/// Derives a file's module path within its crate from its workspace path:
/// `crates/serve/src/wire.rs` → `["wire"]`, `src/bin/aerorem.rs` → `[]`,
/// `crates/core/src/sub/mod.rs` → `["sub"]`.
pub fn file_module_path(path: &str) -> Vec<String> {
    let rel = path.rsplit_once("/src/").map_or(path, |(_, r)| r);
    let rel = rel.strip_prefix("src/").unwrap_or(rel);
    let rel = rel.strip_suffix(".rs").unwrap_or(rel);
    let mut segs: Vec<&str> = rel.split('/').collect();
    if segs.first() == Some(&"bin") {
        return Vec::new();
    }
    if let Some("lib" | "main" | "mod") = segs.last().copied() {
        segs.pop();
    }
    segs.into_iter().map(str::to_string).collect()
}

/// Scope kinds the brace walker tracks.
#[derive(Debug, Clone, PartialEq)]
enum Scope {
    Module(String),
    Type(String),
    Other,
}

/// Parses one file's items from its comment-filtered token stream.
pub fn parse_items(source: &SourceFile, code: &[Token]) -> FileItems {
    let text = source.text.as_str();
    let word = |i: usize| -> &str {
        code.get(i).map_or("", |t| t.text(text))
    };
    let is_ident = |i: usize| code.get(i).is_some_and(|t| t.kind == TokenKind::Ident);

    let mut items = FileItems::default();
    // One entry per open `{`; `None` frames are braces the walker does not
    // classify (fn bodies, expression blocks, …).
    let mut stack: Vec<Scope> = Vec::new();
    // A scope announced by a keyword but whose `{` has not appeared yet.
    let mut pending: Option<Scope> = None;

    let mut i = 0usize;
    while i < code.len() {
        match word(i) {
            "{" => {
                stack.push(pending.take().unwrap_or(Scope::Other));
                i += 1;
            }
            "}" => {
                stack.pop();
                i += 1;
            }
            "mod" if is_ident(i + 1) => {
                // `mod name { … }` opens a module scope; `mod name;` is a
                // file-level declaration (the child file carries the path).
                if word(i + 2) == "{" {
                    pending = Some(Scope::Module(word(i + 1).to_string()));
                }
                i += 2;
            }
            "impl" => {
                if let Some((name, at)) = impl_type_name(text, code, i) {
                    pending = Some(Scope::Type(name));
                    i = at;
                } else {
                    i += 1;
                }
            }
            "trait" if is_ident(i + 1) => {
                pending = Some(Scope::Type(word(i + 1).to_string()));
                i += 2;
            }
            "fn" if is_ident(i + 1) => {
                let name = word(i + 1).to_string();
                let offset = code[i].start;
                let body = fn_body_range(text, code, i + 2);
                let modules: Vec<String> = stack
                    .iter()
                    .filter_map(|s| match s {
                        Scope::Module(m) => Some(m.clone()),
                        _ => None,
                    })
                    .collect();
                let type_ctx = stack.iter().rev().find_map(|s| match s {
                    Scope::Type(t) => Some(t.clone()),
                    _ => None,
                });
                items.fns.push(FnItem {
                    name,
                    modules,
                    type_ctx,
                    body,
                    offset,
                });
                // Continue *inside* the body so nested items are seen too.
                i += 2;
            }
            "use" => {
                let end = parse_use(text, code, i + 1, &mut items.uses);
                i = end;
            }
            _ => i += 1,
        }
    }
    items
}

/// From the `impl` keyword, finds the implemented type's name and the index
/// of the opening `{`. Handles `impl<T> Trait for Type<T>`, references, and
/// generic arguments by taking the first identifier after `for` (or after
/// the generic parameter list when there is no `for`).
fn impl_type_name(text: &str, code: &[Token], i: usize) -> Option<(String, usize)> {
    let mut angle = 0i32;
    let mut j = i + 1;
    let mut after_for: Option<usize> = None;
    let mut brace = None;
    while j < code.len() {
        match code[j].text(text) {
            "<" => angle += 1,
            ">" => angle -= 1,
            "for" if angle == 0 => after_for = Some(j + 1),
            "{" if angle <= 0 => {
                brace = Some(j);
                break;
            }
            ";" if angle <= 0 => return None,
            _ => {}
        }
        j += 1;
    }
    let brace = brace?;
    let start = after_for.unwrap_or(i + 1);
    let mut angle = 0i32;
    for k in start..brace {
        match code[k].text(text) {
            "<" => angle += 1,
            ">" => angle -= 1,
            w => {
                if angle == 0 && code[k].kind == TokenKind::Ident && w != "where" && w != "dyn" {
                    // Skip generic parameter names: `impl<T> T` never
                    // happens for the workspace's inherent impls, and the
                    // first path segmentless ident is the type.
                    if after_for.is_none() && k == start && code.get(k + 1).map(|t| t.text(text)) == Some(">") {
                        continue;
                    }
                    return Some((w.to_string(), brace));
                }
            }
        }
    }
    Some((String::new(), brace))
}

/// From just past `fn <name>`, finds the body's code-token range (the tokens
/// strictly inside the outermost `{ … }`). Returns an empty range for
/// body-less declarations (`fn f(…) -> T;` in traits).
fn fn_body_range(text: &str, code: &[Token], mut j: usize) -> (usize, usize) {
    let mut angle = 0i32;
    let mut paren = 0i32;
    while j < code.len() {
        match code[j].text(text) {
            "<" => angle += 1,
            ">" => angle -= 1,
            "(" => paren += 1,
            ")" => paren -= 1,
            ";" if paren == 0 => return (j, j),
            "{" if paren == 0 && angle <= 0 => {
                let start = j + 1;
                let mut depth = 1i32;
                let mut k = start;
                while k < code.len() {
                    match code[k].text(text) {
                        "{" => depth += 1,
                        "}" => {
                            depth -= 1;
                            if depth == 0 {
                                return (start, k);
                            }
                        }
                        _ => {}
                    }
                    k += 1;
                }
                return (start, code.len());
            }
            _ => {}
        }
        j += 1;
    }
    (j, j)
}

/// Parses one `use` declaration from just past the keyword, appending every
/// leaf it binds. Returns the index just past the closing `;`.
fn parse_use(text: &str, code: &[Token], start: usize, out: &mut Vec<UseItem>) -> usize {
    // Find the terminating `;` (brace-depth aware for grouped imports).
    let mut depth = 0i32;
    let mut end = start;
    while end < code.len() {
        match code[end].text(text) {
            "{" => depth += 1,
            "}" => depth -= 1,
            ";" if depth == 0 => break,
            _ => {}
        }
        end += 1;
    }
    let mut prefix = Vec::new();
    parse_use_tree(text, code, start, end, &mut prefix, out);
    end + 1
}

/// Recursively expands a use tree within `[start, end)` against `prefix`.
fn parse_use_tree(
    text: &str,
    code: &[Token],
    start: usize,
    end: usize,
    prefix: &mut Vec<String>,
    out: &mut Vec<UseItem>,
) {
    let word = |i: usize| -> &str { code.get(i).map_or("", |t| t.text(text)) };
    let mut segs: Vec<String> = Vec::new();
    let mut i = start;
    while i < end {
        match word(i) {
            "::" => i += 1,
            "{" => {
                // Group: split the contents on top-level commas and recurse
                // with the accumulated prefix.
                let mut depth = 1i32;
                let mut item_start = i + 1;
                let mut j = i + 1;
                let before = prefix.len();
                prefix.extend(segs.iter().cloned());
                while j < end {
                    match word(j) {
                        "{" => depth += 1,
                        "}" => {
                            depth -= 1;
                            if depth == 0 {
                                if item_start < j {
                                    parse_use_tree(text, code, item_start, j, prefix, out);
                                }
                                break;
                            }
                        }
                        "," if depth == 1 => {
                            if item_start < j {
                                parse_use_tree(text, code, item_start, j, prefix, out);
                            }
                            item_start = j + 1;
                        }
                        _ => {}
                    }
                    j += 1;
                }
                prefix.truncate(before);
                return;
            }
            "as" => {
                // `path as alias`: the alias is the leaf, the path stands.
                let alias = word(i + 1).to_string();
                if !segs.is_empty() && !alias.is_empty() {
                    let mut path = prefix.clone();
                    path.extend(segs.iter().cloned());
                    out.push(UseItem { leaf: alias, path });
                }
                return;
            }
            "*" => return, // glob imports resolve to nothing (conservative)
            "," => i += 1, // stray commas at this level carry no state
            w => {
                if code[i].kind == TokenKind::Ident {
                    segs.push(w.to_string());
                }
                i += 1;
                continue;
            }
        }
    }
    let mut path = prefix.clone();
    path.extend(segs);
    // `use a::b::{self}` binds `b`, not `self`.
    if path.last().map(String::as_str) == Some("self") {
        path.pop();
    }
    if let Some(leaf) = path.last().cloned() {
        out.push(UseItem { leaf, path });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn items_of(src: &str) -> FileItems {
        let f = SourceFile::new("x.rs", src);
        let code: Vec<Token> = f.tokens.iter().filter(|t| !t.is_comment()).copied().collect();
        parse_items(&f, &code)
    }

    #[test]
    fn file_module_paths() {
        assert_eq!(file_module_path("crates/serve/src/wire.rs"), ["wire"]);
        assert!(file_module_path("crates/core/src/lib.rs").is_empty());
        assert!(file_module_path("src/bin/aerorem.rs").is_empty());
        assert_eq!(file_module_path("crates/core/src/sub/mod.rs"), ["sub"]);
        assert_eq!(file_module_path("crates/core/src/a/b.rs"), ["a", "b"]);
    }

    #[test]
    fn free_fns_and_methods() {
        let it = items_of(
            "fn free() { helper(); }\nimpl Store { fn method(&self) -> u8 { 1 } }\nimpl Rule for Check { fn name(&self) {} }\ntrait T { fn decl(); fn dflt() {} }",
        );
        let names: Vec<(&str, Option<&str>)> = it
            .fns
            .iter()
            .map(|f| (f.name.as_str(), f.type_ctx.as_deref()))
            .collect();
        assert_eq!(
            names,
            [
                ("free", None),
                ("method", Some("Store")),
                ("name", Some("Check")),
                ("decl", Some("T")),
                ("dflt", Some("T")),
            ]
        );
        assert_eq!(it.fns[3].body.0, it.fns[3].body.1, "declaration has no body");
    }

    #[test]
    fn inline_modules_nest() {
        let it = items_of("mod outer { mod inner { fn deep() {} } fn shallow() {} } fn top() {}");
        let paths: Vec<(&str, Vec<&str>)> = it
            .fns
            .iter()
            .map(|f| (f.name.as_str(), f.modules.iter().map(String::as_str).collect()))
            .collect();
        assert_eq!(
            paths,
            [
                ("deep", vec!["outer", "inner"]),
                ("shallow", vec!["outer"]),
                ("top", vec![]),
            ]
        );
    }

    #[test]
    fn use_trees_expand() {
        let it = items_of(
            "use aerorem_core::snapshot::RemSnapshot;\nuse aerorem_exec::{self, map_chunks, policy as pol};\nuse std::io::*;\n",
        );
        let leaves: Vec<(&str, Vec<&str>)> = it
            .uses
            .iter()
            .map(|u| (u.leaf.as_str(), u.path.iter().map(String::as_str).collect()))
            .collect();
        assert_eq!(
            leaves,
            [
                ("RemSnapshot", vec!["aerorem_core", "snapshot", "RemSnapshot"]),
                ("aerorem_exec", vec!["aerorem_exec"]),
                ("map_chunks", vec!["aerorem_exec", "map_chunks"]),
                ("pol", vec!["aerorem_exec", "policy"]),
            ]
        );
    }

    #[test]
    fn generic_impl_for() {
        let it = items_of("impl<T: Clone> Wrapper for Slot<T> { fn get_slot(&self) {} }");
        assert_eq!(it.fns[0].type_ctx.as_deref(), Some("Slot"));
    }
}
