//! Lock discipline in the daemon: the `crates/serve` shared state
//! (`current`, `namespaces`, `nudge`, `conns`) is guarded by `RwLock`s and
//! `Mutex`es taken from blocking connection threads, so two invariants keep
//! it deadlock- and stall-free:
//!
//! 1. **Acyclic order** — if one path acquires lock B while holding lock A,
//!    no path may acquire A while holding B.
//! 2. **No blocking I/O under a guard** — socket reads/writes/connects can
//!    park a thread indefinitely; holding a shared-state guard across one
//!    turns a slow client into a daemon-wide stall.
//!
//! The analysis is per function (guard extents don't cross call edges; that
//! keeps it decidable without an effect system) over the watched field
//! names, tracking `let`-bound guard live ranges, explicit `drop(guard)`
//! releases, and temporary guards that live to the end of their statement.

use std::collections::BTreeMap;

use crate::items::parse_items;
use crate::lexer::{Token, TokenKind};
use crate::report::Violation;
use crate::rules::Rule;
use crate::workspace::{FileKind, Workspace};

/// The daemon's shared-state fields whose guards are tracked.
pub const WATCHED_LOCKS: [&str; 4] = ["current", "namespaces", "nudge", "conns"];

/// The crate the discipline applies to.
const LOCKED_CRATE: &str = "serve";

/// Blocking socket calls that must not run under a watched guard. `read`
/// and `write` only count with arguments (argument-less forms are the
/// `RwLock` acquisition methods).
const BLOCKING_IO: [&str; 8] = [
    "accept", "connect", "flush", "read_exact", "read_to_end", "read_vectored", "write_all",
    "write_vectored",
];

/// One observed guard acquisition.
#[derive(Debug)]
struct Acquire {
    /// Which watched field.
    label: &'static str,
    /// Code-token index of the acquisition.
    at: usize,
    /// Code-token index one past the guard's live range.
    until: usize,
}

/// An ordered "held A, acquired B" observation.
#[derive(Debug, Clone)]
struct Pair {
    held: &'static str,
    acquired: &'static str,
    path: String,
    line: usize,
    snippet: String,
}

/// Lock-order cycles and blocking I/O under watched guards in the serve
/// crate.
pub struct LockDiscipline;

impl Rule for LockDiscipline {
    fn name(&self) -> &'static str {
        "lock-discipline"
    }

    fn summary(&self) -> &'static str {
        "serve-crate guards: acyclic acquisition order, no blocking I/O while held"
    }

    fn check_workspace(&self, ws: &Workspace, out: &mut Vec<Violation>) {
        let mut pairs: Vec<Pair> = Vec::new();
        for file in &ws.files {
            if file.kind != FileKind::Library || file.crate_name != LOCKED_CRATE {
                continue;
            }
            let code: Vec<Token> = file
                .source
                .tokens
                .iter()
                .filter(|t| !t.is_comment())
                .copied()
                .collect();
            let items = parse_items(&file.source, &code);
            for f in &items.fns {
                if file.source.in_test_code(f.offset) || f.body.0 == f.body.1 {
                    continue;
                }
                scan_fn(file, &code, f.body, &mut pairs, self.name(), out);
            }
        }
        // Cross-function cycle detection over the collected ordered pairs.
        let mut seen: BTreeMap<(&'static str, &'static str), usize> = BTreeMap::new();
        for (i, p) in pairs.iter().enumerate() {
            seen.entry((p.held, p.acquired)).or_insert(i);
        }
        for p in &pairs {
            if p.held == p.acquired {
                continue;
            }
            if let Some(&ri) = seen.get(&(p.acquired, p.held)) {
                let r = &pairs[ri];
                out.push(Violation {
                    rule: self.name(),
                    path: p.path.clone(),
                    line: p.line,
                    col: 1,
                    message: format!(
                        "lock-order cycle: `{}` acquired while holding `{}` here, but {}:{} acquires `{}` while holding `{}` — a deadlock window",
                        p.acquired, p.held, r.path, r.line, r.held, r.acquired
                    ),
                    snippet: p.snippet.clone(),
                });
            }
        }
    }
}

/// Scans one function body for acquisitions, ordered pairs, and blocking
/// I/O under a live guard.
fn scan_fn(
    file: &crate::workspace::WorkspaceFile,
    code: &[Token],
    body: (usize, usize),
    pairs: &mut Vec<Pair>,
    rule: &'static str,
    out: &mut Vec<Violation>,
) {
    let text = file.source.text.as_str();
    let word = |i: usize| -> &str { code.get(i).map_or("", |t| t.text(text)) };

    // Collect acquisitions with live ranges.
    let mut acquires: Vec<Acquire> = Vec::new();
    let mut i = body.0;
    while i < body.1 {
        if let Some((label, close)) = acquisition_at(text, code, i) {
            let binding = binding_before(text, code, body.0, i);
            let until = live_until(text, code, close + 1, body.1, binding.as_deref());
            acquires.push(Acquire { label, at: i, until });
            i = close + 1;
            continue;
        }
        i += 1;
    }

    // Ordered pairs: B acquired inside A's live range.
    for a in &acquires {
        for b in &acquires {
            if b.at > a.at && b.at < a.until {
                let (line, _) = file.source.line_col(code[b.at].start);
                pairs.push(Pair {
                    held: a.label,
                    acquired: b.label,
                    path: file.source.path.clone(),
                    line,
                    snippet: file.source.line_text(line).trim().to_string(),
                });
            }
        }
    }

    // Blocking I/O inside a live range.
    for a in &acquires {
        let mut j = a.at + 1;
        while j < a.until {
            // Skip past an explicit `drop(binding)` — it ends the range.
            let t = &code[j];
            if t.kind == TokenKind::Ident && word(j + 1) == "(" {
                let name = word(j);
                let is_method = j > 0 && word(j - 1) == ".";
                let io = if BLOCKING_IO.contains(&name) {
                    true
                } else if (name == "read" || name == "write") && is_method {
                    // With arguments it is stream I/O; bare it is a lock.
                    word(j + 2) != ")"
                } else {
                    false
                };
                if io && !is_acquisition_context(text, code, j) {
                    let (line, col) = file.source.line_col(t.start);
                    out.push(Violation {
                        rule,
                        path: file.source.path.clone(),
                        line,
                        col,
                        message: format!(
                            "blocking socket call `{}` while holding the `{}` guard; move the I/O outside the critical section (snapshot the data, drop the guard, then block)",
                            name, a.label
                        ),
                        snippet: file.source.line_text(line).trim().to_string(),
                    });
                }
            }
            j += 1;
        }
    }
}

/// Whether the call at `j` is itself part of a watched acquisition (e.g.
/// the `read` in `lock_read(&x.current)` receivers) rather than stream I/O.
fn is_acquisition_context(text: &str, code: &[Token], j: usize) -> bool {
    acquisition_at(text, code, j).is_some()
}

/// If code token `i` starts a watched-lock acquisition, returns the watched
/// label and the index of the call's closing `)`.
///
/// Two shapes count: the daemon's poisoning-tolerant helpers
/// (`lock_read(&…field…)` / `lock_write` / `lock_mutex`) and the raw
/// argument-less methods (`…field….read()` / `.write()` / `.lock()`).
fn acquisition_at(text: &str, code: &[Token], i: usize) -> Option<(&'static str, usize)> {
    let word = |k: usize| -> &str { code.get(k).map_or("", |t| t.text(text)) };
    if code.get(i)?.kind != TokenKind::Ident || word(i + 1) != "(" {
        return None;
    }
    let name = word(i);
    let is_method = i > 0 && word(i - 1) == ".";
    if matches!(name, "lock_read" | "lock_write" | "lock_mutex") && !is_method {
        // Scan the argument list for a watched field name.
        let mut depth = 1i32;
        let mut label = None;
        let mut j = i + 2;
        while j < code.len() && depth > 0 {
            match word(j) {
                "(" => depth += 1,
                ")" => depth -= 1,
                w => {
                    if depth >= 1 {
                        if let Some(l) = WATCHED_LOCKS.iter().find(|&&f| f == w) {
                            label = Some(*l);
                        }
                    }
                }
            }
            j += 1;
        }
        return label.map(|l| (l, j - 1));
    }
    if matches!(name, "read" | "write" | "lock") && is_method && word(i + 2) == ")" {
        // Walk the `a.b.c` receiver chain leftwards for a watched field.
        let mut k = i - 1; // the `.`
        let mut label = None;
        while k >= 1 {
            let prev = &code[k - 1];
            let w = prev.text(text);
            if prev.kind == TokenKind::Ident {
                if let Some(l) = WATCHED_LOCKS.iter().find(|&&f| f == w) {
                    label = Some(*l);
                }
                if k >= 2 && word(k - 2) == "." {
                    k -= 2;
                    continue;
                }
            }
            break;
        }
        return label.map(|l| (l, i + 2));
    }
    None
}

/// Looks for a `let [mut] name =` immediately before the acquisition
/// expression (walking back over the receiver chain / helper call head).
fn binding_before(text: &str, code: &[Token], lo: usize, i: usize) -> Option<String> {
    let word = |k: usize| -> &str { code.get(k).map_or("", |t| t.text(text)) };
    // Walk back to the start of the expression: over `a . b . c` chains and
    // an optional leading `&`.
    let mut k = i;
    while k > lo && word(k - 1) == "." && k >= 2 && code[k - 2].kind == TokenKind::Ident {
        k -= 2;
    }
    if k > lo && word(k - 1) == "=" {
        let mut b = k - 1;
        if b > lo && code[b - 1].kind == TokenKind::Ident {
            let name = word(b - 1);
            b -= 1;
            let lead = if b > lo && word(b - 1) == "mut" { b - 1 } else { b };
            if lead > lo && word(lead - 1) == "let" {
                return Some(name.to_string());
            }
        }
    }
    None
}

/// Computes the exclusive end of a guard's live range starting just past
/// the acquisition call.
///
/// `let`-bound guards live until `drop(name)` or the end of the enclosing
/// block; temporaries live to the end of their statement — where a `for` /
/// `if` / `while` header's block *is* part of the statement (the temporary
/// is kept alive across the whole body, exactly as Rust scopes it).
fn live_until(
    text: &str,
    code: &[Token],
    start: usize,
    hi: usize,
    binding: Option<&str>,
) -> usize {
    let word = |k: usize| -> &str { code.get(k).map_or("", |t| t.text(text)) };
    let mut depth = 0i32;
    let mut j = start;
    while j < hi {
        match word(j) {
            "{" => {
                if depth == 0 && binding.is_none() {
                    // Temporary kept alive across the attached block; the
                    // statement (and the guard) ends at its close.
                    let mut d = 1i32;
                    let mut k = j + 1;
                    while k < hi && d > 0 {
                        match word(k) {
                            "{" => d += 1,
                            "}" => d -= 1,
                            _ => {}
                        }
                        k += 1;
                    }
                    return k;
                }
                depth += 1;
            }
            "}" => {
                depth -= 1;
                if depth < 0 {
                    // End of the enclosing block releases everything.
                    return j;
                }
            }
            ";" if depth == 0 && binding.is_none() => return j,
            "drop" => {
                if let Some(name) = binding {
                    if word(j + 1) == "(" && word(j + 2) == name && word(j + 3) == ")" {
                        return j;
                    }
                }
            }
            _ => {}
        }
        j += 1;
    }
    hi
}
