//! The pass registry and the per-file context rules operate on.
//!
//! Adding a rule:
//!
//! 1. implement [`Rule`] in one of the catalog modules (or a new one),
//! 2. register it in [`registry`],
//! 3. add a seeded-violation + clean fixture pair in
//!    `crates/lint/tests/rules.rs`.
//!
//! Rules see a *token* view of each file (comments and string/char literal
//! contents never match) plus the file's classification, and scope
//! themselves via [`FileCtx`] helpers. Workspace-level rules
//! (`check_workspace`) see the whole [`Workspace`] instead and build
//! whatever cross-file structure they need — the call graph
//! (`panic-reach`), per-function guard ranges (`lock-discipline`), or the
//! format documents (`spec-drift`). Their violations still flow through
//! per-file suppression resolution when the path is a workspace source
//! file; findings on docs or build files are unsuppressable.

use crate::lexer::{Token, TokenKind};
use crate::report::Violation;
use crate::workspace::{FileKind, Workspace, WorkspaceFile};

pub mod determinism;
pub mod hygiene;
pub mod locks;
pub mod panics;
pub mod reach;
pub mod specdrift;

/// Crates whose non-test code must be panic-free: a panic here is a UAV
/// falling out of the sky or a campaign dying mid-mission, not a stack
/// trace on a developer box.
pub const PANIC_FREE_CRATES: [&str; 4] = ["mission", "radio", "scanner", "localization"];

/// One lint pass.
pub trait Rule {
    /// Stable kebab-case rule name (used in `lint:allow(...)`).
    fn name(&self) -> &'static str;
    /// One-line description for `--list-rules`.
    fn summary(&self) -> &'static str;
    /// Severity reported in the JSON schema. Every severity gates the exit
    /// code identically today; the field exists so downstream tooling
    /// (ratchets, editors) can triage without re-deriving it from names.
    fn severity(&self) -> &'static str {
        "error"
    }
    /// Per-file pass. Push violations onto `out`.
    fn check_file(&self, _ctx: &FileCtx<'_>, _out: &mut Vec<Violation>) {}
    /// Workspace-level pass (build-gate parity and the like).
    fn check_workspace(&self, _ws: &Workspace, _out: &mut Vec<Violation>) {}
}

/// Every registered rule, in catalog order. `bad-allow` and `unused-allow`
/// are driver-enforced (they police the suppression grammar itself and can
/// never be suppressed) but are listed here so `--list-rules` and the JSON
/// schema name the complete catalog.
pub fn registry() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(determinism::HashIter),
        Box::new(determinism::WallClock),
        Box::new(determinism::Entropy),
        Box::new(determinism::ParFloatReduce),
        Box::new(panics::PanicPath),
        Box::new(panics::SliceIndex),
        Box::new(reach::PanicReach),
        Box::new(locks::LockDiscipline),
        Box::new(specdrift::SpecDrift),
        Box::new(hygiene::ForbidUnsafe),
        Box::new(hygiene::DebugMacro),
        Box::new(hygiene::TargetParity),
    ]
}

/// Names of the driver-enforced meta rules.
pub const META_RULES: [&str; 2] = ["bad-allow", "unused-allow"];

/// The per-file view handed to rules.
pub struct FileCtx<'a> {
    /// The file with its classification.
    pub file: &'a WorkspaceFile,
    /// Indices into `file.source.tokens` of the non-comment tokens, in
    /// order. Rules scan this; comments can never match a pattern.
    pub code: Vec<Token>,
    /// When set, [`FileCtx::in_test`] reports every token as non-test. The
    /// driver's shadow pass uses this to discover which `lint:allow`s
    /// suppress matches that only exist inside test regions — those allows
    /// are live, not unused, even though no violation is emitted for them.
    pub scan_tests: bool,
}

impl<'a> FileCtx<'a> {
    /// Builds the context for one file.
    pub fn new(file: &'a WorkspaceFile) -> Self {
        let code = file
            .source
            .tokens
            .iter()
            .filter(|t| !t.is_comment())
            .copied()
            .collect();
        FileCtx { file, code, scan_tests: false }
    }

    /// The text of code token `i`.
    pub fn text(&self, i: usize) -> &str {
        self.code[i].text(&self.file.source.text)
    }

    /// Whether code token `i` is an identifier with exactly this text.
    pub fn is_ident(&self, i: usize, name: &str) -> bool {
        self.code
            .get(i)
            .is_some_and(|t| t.kind == TokenKind::Ident && t.text(&self.file.source.text) == name)
    }

    /// Whether code token `i` is a punctuation token with this text.
    pub fn is_punct(&self, i: usize, p: &str) -> bool {
        self.code
            .get(i)
            .is_some_and(|t| t.kind == TokenKind::Punct && t.text(&self.file.source.text) == p)
    }

    /// Whether the token sits inside `#[cfg(test)]` / `#[test]` code.
    pub fn in_test(&self, tok: Token) -> bool {
        !self.scan_tests && self.file.source.in_test_code(tok.start)
    }

    /// Whether this file's non-test regions are subject to determinism
    /// rules: shipped library code (tests, benches, and examples are
    /// measurement or documentation, not the reproducible pipeline).
    pub fn determinism_scope(&self) -> bool {
        self.file.kind == FileKind::Library
    }

    /// Whether this file's non-test regions are subject to panic rules.
    pub fn panic_scope(&self) -> bool {
        self.file.kind == FileKind::Library
            && PANIC_FREE_CRATES.contains(&self.file.crate_name.as_str())
    }

    /// Builds a violation at `tok`.
    pub fn violation(&self, rule: &'static str, tok: Token, message: String) -> Violation {
        let (line, col) = self.file.source.line_col(tok.start);
        Violation {
            rule,
            path: self.file.source.path.clone(),
            line,
            col,
            message,
            snippet: self.file.source.line_text(line).trim().to_string(),
        }
    }
}

/// Rust keywords that can directly precede `[` without forming an indexing
/// expression (`for x in [..]`, `return [..]`, …).
pub const NON_INDEX_KEYWORDS: [&str; 18] = [
    "as", "box", "break", "const", "continue", "else", "if", "impl", "in", "let", "loop",
    "match", "move", "mut", "ref", "return", "static", "while",
];
