//! Determinism hazards: anything that can make two runs of the same seeded
//! pipeline differ — hash-order iteration, wall-clock reads, ambient
//! entropy, and unordered parallel float reductions.

use crate::lexer::TokenKind;
use crate::report::Violation;
use crate::rules::{FileCtx, Rule};

/// `HashMap` / `HashSet` in shipped code. Iteration order is randomized
/// per-process, so any walk over one of these that feeds a `Vec`, an
/// output file, a sum of floats, or RNG draws silently breaks the
/// serial≡parallel and run-to-run bit-identity contracts. `BTreeMap` /
/// `BTreeSet` (or explicit sorted iteration) are drop-in deterministic
/// replacements at workspace scale.
pub struct HashIter;

impl Rule for HashIter {
    fn name(&self) -> &'static str {
        "hash-iter"
    }

    fn summary(&self) -> &'static str {
        "HashMap/HashSet in shipped code: iteration order is nondeterministic"
    }

    fn check_file(&self, ctx: &FileCtx<'_>, out: &mut Vec<Violation>) {
        if !ctx.determinism_scope() {
            return;
        }
        for (i, tok) in ctx.code.iter().enumerate() {
            if tok.kind != TokenKind::Ident || ctx.in_test(*tok) {
                continue;
            }
            let name = ctx.text(i);
            if name == "HashMap" || name == "HashSet" {
                let ordered = if name == "HashMap" { "BTreeMap" } else { "BTreeSet" };
                out.push(ctx.violation(
                    self.name(),
                    *tok,
                    format!("`{name}` has nondeterministic iteration order; use `{ordered}` or sorted iteration"),
                ));
            }
        }
    }
}

/// Wall-clock reads (`Instant::now`, `SystemTime::now`, `UNIX_EPOCH`) in
/// shipped code. Simulation time is `SimTime`; real time in a data path
/// makes outputs depend on the host and the scheduler.
pub struct WallClock;

impl Rule for WallClock {
    fn name(&self) -> &'static str {
        "wall-clock"
    }

    fn summary(&self) -> &'static str {
        "Instant/SystemTime reads in shipped code: results must not depend on host time"
    }

    fn check_file(&self, ctx: &FileCtx<'_>, out: &mut Vec<Violation>) {
        if !ctx.determinism_scope() {
            return;
        }
        for (i, tok) in ctx.code.iter().enumerate() {
            if tok.kind != TokenKind::Ident || ctx.in_test(*tok) {
                continue;
            }
            let name = ctx.text(i);
            let hit = match name {
                "Instant" | "SystemTime" => {
                    // Only the `::now` read is banned; mentioning the type
                    // (e.g. a stored `Instant` handed in by instrumentation)
                    // is not itself a hazard.
                    ctx.is_punct(i + 1, ":")
                        && ctx.is_punct(i + 2, ":")
                        && ctx.is_ident(i + 3, "now")
                }
                "UNIX_EPOCH" => true,
                _ => false,
            };
            if hit {
                out.push(ctx.violation(
                    self.name(),
                    *tok,
                    format!("wall-clock read via `{name}`; simulation results must be time-independent (use SimTime, or confine timing to instrumentation)"),
                ));
            }
        }
    }
}

/// Ambient entropy: `thread_rng`, `OsRng`, `from_entropy`, `getrandom`,
/// `rand::random`. Every random draw in the toolchain flows from an
/// explicit seed; an entropy source anywhere in shipped code breaks
/// checkpoint/resume and campaign reproducibility.
pub struct Entropy;

impl Rule for Entropy {
    fn name(&self) -> &'static str {
        "entropy"
    }

    fn summary(&self) -> &'static str {
        "ambient entropy sources: all randomness must flow from explicit seeds"
    }

    fn check_file(&self, ctx: &FileCtx<'_>, out: &mut Vec<Violation>) {
        if !ctx.determinism_scope() {
            return;
        }
        for (i, tok) in ctx.code.iter().enumerate() {
            if tok.kind != TokenKind::Ident || ctx.in_test(*tok) {
                continue;
            }
            let name = ctx.text(i);
            let hit = matches!(name, "thread_rng" | "OsRng" | "from_entropy" | "getrandom")
                || (name == "random"
                    && i >= 3
                    && ctx.is_ident(i - 3, "rand")
                    && ctx.is_punct(i - 2, ":")
                    && ctx.is_punct(i - 1, ":"));
            if hit {
                out.push(ctx.violation(
                    self.name(),
                    *tok,
                    format!("`{name}` draws ambient entropy; thread a seeded RNG (rand::rngs::StdRng::seed_from_u64) instead"),
                ));
            }
        }
    }
}

/// Float reductions inside a parallel pipeline. `.sum()` / `.reduce()` /
/// `.fold()` over floats combine in whatever order the scheduler hands out
/// work, so two runs can differ in the last bits. The workspace's contract
/// is order-preserving `map → collect` (see `numerics::exec::map_vec`) with
/// a serial, blocked reduction afterwards.
///
/// Besides raw rayon adapters this also watches the chunked executor entry
/// points (`exec::map_chunks` and friends): a reduction written inside one
/// of their closures runs on worker threads, so it must be justified with a
/// `lint:allow` stating why its combine order is fixed (per-chunk serial
/// sums over a policy-independent partition qualify; anything keyed on
/// worker identity or arrival order does not).
pub struct ParFloatReduce;

/// Method names that start a parallel pipeline: rayon adapters plus the
/// workspace's chunked executor entry points, whose closures run on worker
/// threads.
const PAR_SOURCES: [&str; 10] = [
    "par_iter",
    "par_iter_mut",
    "into_par_iter",
    "par_chunks",
    "par_chunks_exact",
    "par_bridge",
    "map_chunks",
    "try_map_chunks",
    "map_vec_with",
    "try_map_vec_with",
];

/// Reducers that combine in nondeterministic order on a parallel iterator.
const REDUCERS: [&str; 4] = ["sum", "product", "reduce", "fold"];

impl Rule for ParFloatReduce {
    fn name(&self) -> &'static str {
        "par-float-reduce"
    }

    fn summary(&self) -> &'static str {
        "float reduction on a rayon iterator: combine order is nondeterministic"
    }

    fn check_file(&self, ctx: &FileCtx<'_>, out: &mut Vec<Violation>) {
        if !ctx.determinism_scope() {
            return;
        }
        for (i, tok) in ctx.code.iter().enumerate() {
            if tok.kind != TokenKind::Ident
                || ctx.in_test(*tok)
                || !PAR_SOURCES.contains(&ctx.text(i))
            {
                continue;
            }
            // Scan the rest of the statement: up to `;` at relative depth 0
            // or the enclosing block closing underneath us.
            let mut depth = 0i32;
            let mut j = i + 1;
            while j < ctx.code.len() && j < i + 512 {
                let t = ctx.text(j);
                match t {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => {
                        depth -= 1;
                        if depth < 0 {
                            break;
                        }
                    }
                    ";" if depth == 0 => break,
                    _ => {
                        if ctx.code[j].kind == TokenKind::Ident
                            && REDUCERS.contains(&t)
                            && ctx.is_punct(j.wrapping_sub(1), ".")
                        {
                            out.push(ctx.violation(
                                self.name(),
                                ctx.code[j],
                                format!(
                                    "`.{t}()` after `{}` combines partial results in scheduler order; reassemble in input order (map → collect) and reduce serially or in fixed blocks",
                                    ctx.text(i)
                                ),
                            ));
                        }
                    }
                }
                j += 1;
            }
        }
    }
}
