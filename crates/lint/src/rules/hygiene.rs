//! Hygiene rules: workspace-wide conventions that apply to every file kind
//! (and, for target parity, to the build-gate files themselves).

use crate::lexer::TokenKind;
use crate::report::Violation;
use crate::rules::{FileCtx, Rule};
use crate::workspace::Workspace;

/// Every crate root (`lib.rs`, `main.rs`, `src/bin/*.rs`) must open with
/// `#![forbid(unsafe_code)]` — the workspace ships no unsafe, and `forbid`
/// (unlike `deny`) cannot be overridden further down.
pub struct ForbidUnsafe;

impl Rule for ForbidUnsafe {
    fn name(&self) -> &'static str {
        "forbid-unsafe"
    }

    fn summary(&self) -> &'static str {
        "crate roots must carry #![forbid(unsafe_code)]"
    }

    fn check_file(&self, ctx: &FileCtx<'_>, out: &mut Vec<Violation>) {
        if !ctx.file.is_crate_root {
            return;
        }
        for i in 0..ctx.code.len() {
            if ctx.is_punct(i, "#")
                && ctx.is_punct(i + 1, "!")
                && ctx.is_punct(i + 2, "[")
                && ctx.is_ident(i + 3, "forbid")
                && ctx.is_punct(i + 4, "(")
                && ctx.is_ident(i + 5, "unsafe_code")
                && ctx.is_punct(i + 6, ")")
                && ctx.is_punct(i + 7, "]")
            {
                return;
            }
        }
        out.push(Violation {
            rule: self.name(),
            path: ctx.file.source.path.clone(),
            line: 1,
            col: 1,
            message: "crate root is missing `#![forbid(unsafe_code)]`".to_string(),
            snippet: ctx.file.source.line_text(1).trim().to_string(),
        });
    }
}

/// `dbg!`, `todo!`, and `unimplemented!` anywhere — debugging scaffolding
/// and unfinished stubs must not land, test code included.
pub struct DebugMacro;

impl Rule for DebugMacro {
    fn name(&self) -> &'static str {
        "debug-macro"
    }

    fn summary(&self) -> &'static str {
        "no dbg!/todo!/unimplemented! anywhere in the workspace"
    }

    fn check_file(&self, ctx: &FileCtx<'_>, out: &mut Vec<Violation>) {
        for (i, tok) in ctx.code.iter().enumerate() {
            if tok.kind != TokenKind::Ident {
                continue;
            }
            let name = ctx.text(i);
            if matches!(name, "dbg" | "todo" | "unimplemented") && ctx.is_punct(i + 1, "!") {
                out.push(ctx.violation(
                    self.name(),
                    *tok,
                    format!("`{name}!` must not land; remove the scaffolding or implement the stub"),
                ));
            }
        }
    }
}

/// `make` and `just` must expose the same entry points: a target present in
/// one build gate but not the other silently forks the two workflows.
pub struct TargetParity;

impl Rule for TargetParity {
    fn name(&self) -> &'static str {
        "target-parity"
    }

    fn summary(&self) -> &'static str {
        "Makefile targets and justfile recipes must match one-to-one"
    }

    fn check_workspace(&self, ws: &Workspace, out: &mut Vec<Violation>) {
        let (Some(makefile), Some(justfile)) = (&ws.makefile, &ws.justfile) else {
            // With only one gate present there is nothing to keep in sync.
            return;
        };
        let make_targets = build_targets(makefile);
        let just_recipes = build_targets(justfile);
        for (name, line, text) in &make_targets {
            if !just_recipes.iter().any(|(n, _, _)| n == name) {
                out.push(parity_violation(
                    "Makefile",
                    *line,
                    text,
                    format!("make target `{name}` has no justfile recipe"),
                ));
            }
        }
        for (name, line, text) in &just_recipes {
            if !make_targets.iter().any(|(n, _, _)| n == name) {
                out.push(parity_violation(
                    "justfile",
                    *line,
                    text,
                    format!("justfile recipe `{name}` has no make target"),
                ));
            }
        }
    }
}

fn parity_violation(path: &str, line: usize, snippet: &str, message: String) -> Violation {
    Violation {
        rule: "target-parity",
        path: path.to_string(),
        line,
        col: 1,
        message,
        snippet: snippet.trim().to_string(),
    }
}

/// Extracts target/recipe names from a Makefile or justfile: non-indented
/// lines of the form `name[ args]: …`. Assignments (`:=`), special targets
/// (`.PHONY`), comments, and recipe bodies (indented) are skipped. The
/// grammar overlap between the two formats is exactly what the parity rule
/// needs — a name that parses here should exist in both files.
fn build_targets(text: &str) -> Vec<(String, usize, String)> {
    let mut out = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let Some(first) = line.chars().next() else {
            continue;
        };
        if first.is_whitespace() || first == '#' || first == '.' {
            continue;
        }
        let Some(colon) = line.find(':') else {
            continue;
        };
        // `NAME := value` and `NAME ?= value` are assignments, not targets.
        if line[colon..].starts_with(":=") || line[..colon].contains('=') {
            continue;
        }
        let head = line[..colon].trim();
        // Justfile recipes may take arguments (`bench-diff old new:`); the
        // recipe name is the first word either way.
        let Some(name) = head.split_whitespace().next() else {
            continue;
        };
        if !name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '_' | '-' | '.'))
        {
            continue;
        }
        out.push((name.to_string(), idx + 1, line.to_string()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn target_extraction() {
        let makefile = "CARGO := cargo\n.PHONY: check\ncheck: build test\n\tcargo test\nbuild:\n\tcargo build\n# comment\n";
        let names: Vec<String> = build_targets(makefile)
            .into_iter()
            .map(|(n, _, _)| n)
            .collect();
        assert_eq!(names, ["check", "build"]);
    }

    #[test]
    fn justfile_recipes_with_args() {
        let justfile = "set shell := [\"bash\", \"-c\"]\ndefault: check\nbench-diff old new:\n    cargo run\n";
        let names: Vec<String> = build_targets(justfile)
            .into_iter()
            .map(|(n, _, _)| n)
            .collect();
        assert_eq!(names, ["default", "bench-diff"]);
    }

    #[test]
    fn parity_flags_both_directions() {
        let ws = Workspace {
            files: vec![],
            makefile: Some("only-make:\n\ttrue\nshared:\n\ttrue\n".to_string()),
            justfile: Some("only-just:\n    true\nshared:\n    true\n".to_string()),
        };
        let mut out = Vec::new();
        TargetParity.check_workspace(&ws, &mut out);
        let mut msgs: Vec<&str> = out.iter().map(|v| v.message.as_str()).collect();
        msgs.sort_unstable();
        assert_eq!(msgs.len(), 2);
        assert!(msgs[0].contains("only-just"));
        assert!(msgs[1].contains("only-make"));
    }
}
