//! Hygiene rules: workspace-wide conventions that apply to every file kind
//! (and, for target parity, to the build-gate files themselves).

use crate::lexer::TokenKind;
use crate::report::Violation;
use crate::rules::{FileCtx, Rule};
use crate::workspace::Workspace;

/// Every crate root (`lib.rs`, `main.rs`, `src/bin/*.rs`) must open with
/// `#![forbid(unsafe_code)]` — the workspace ships no unsafe, and `forbid`
/// (unlike `deny`) cannot be overridden further down.
pub struct ForbidUnsafe;

impl Rule for ForbidUnsafe {
    fn name(&self) -> &'static str {
        "forbid-unsafe"
    }

    fn summary(&self) -> &'static str {
        "crate roots must carry #![forbid(unsafe_code)]"
    }

    fn check_file(&self, ctx: &FileCtx<'_>, out: &mut Vec<Violation>) {
        if !ctx.file.is_crate_root {
            return;
        }
        for i in 0..ctx.code.len() {
            if ctx.is_punct(i, "#")
                && ctx.is_punct(i + 1, "!")
                && ctx.is_punct(i + 2, "[")
                && ctx.is_ident(i + 3, "forbid")
                && ctx.is_punct(i + 4, "(")
                && ctx.is_ident(i + 5, "unsafe_code")
                && ctx.is_punct(i + 6, ")")
                && ctx.is_punct(i + 7, "]")
            {
                return;
            }
        }
        out.push(Violation {
            rule: self.name(),
            path: ctx.file.source.path.clone(),
            line: 1,
            col: 1,
            message: "crate root is missing `#![forbid(unsafe_code)]`".to_string(),
            snippet: ctx.file.source.line_text(1).trim().to_string(),
        });
    }
}

/// `dbg!`, `todo!`, and `unimplemented!` anywhere — debugging scaffolding
/// and unfinished stubs must not land, test code included.
pub struct DebugMacro;

impl Rule for DebugMacro {
    fn name(&self) -> &'static str {
        "debug-macro"
    }

    fn summary(&self) -> &'static str {
        "no dbg!/todo!/unimplemented! anywhere in the workspace"
    }

    fn check_file(&self, ctx: &FileCtx<'_>, out: &mut Vec<Violation>) {
        for (i, tok) in ctx.code.iter().enumerate() {
            if tok.kind != TokenKind::Ident {
                continue;
            }
            let name = ctx.text(i);
            if matches!(name, "dbg" | "todo" | "unimplemented") && ctx.is_punct(i + 1, "!") {
                out.push(ctx.violation(
                    self.name(),
                    *tok,
                    format!("`{name}!` must not land; remove the scaffolding or implement the stub"),
                ));
            }
        }
    }
}

/// `make` and `just` must expose the same entry points: a target present in
/// one build gate but not the other silently forks the two workflows. On
/// top of name parity, every `*-check` gate must be reachable from `check`
/// in both files — a verification target that exists but is not wired into
/// the aggregate gate silently stops running in CI.
pub struct TargetParity;

impl Rule for TargetParity {
    fn name(&self) -> &'static str {
        "target-parity"
    }

    fn summary(&self) -> &'static str {
        "make/just targets match one-to-one and every *-check gate is reachable from check"
    }

    fn check_workspace(&self, ws: &Workspace, out: &mut Vec<Violation>) {
        let (Some(makefile), Some(justfile)) = (&ws.makefile, &ws.justfile) else {
            // With only one gate present there is nothing to keep in sync.
            return;
        };
        let make_targets = build_targets(makefile);
        let just_recipes = build_targets(justfile);
        for (name, line, text) in &make_targets {
            if !just_recipes.iter().any(|(n, _, _)| n == name) {
                out.push(parity_violation(
                    "Makefile",
                    *line,
                    text,
                    format!("make target `{name}` has no justfile recipe"),
                ));
            }
        }
        for (name, line, text) in &just_recipes {
            if !make_targets.iter().any(|(n, _, _)| n == name) {
                out.push(parity_violation(
                    "justfile",
                    *line,
                    text,
                    format!("justfile recipe `{name}` has no make target"),
                ));
            }
        }
        check_gate_reachability("Makefile", makefile, out);
        check_gate_reachability("justfile", justfile, out);
    }
}

/// Flags `*-check` targets that `check` does not (transitively) depend on.
/// Only applies when a `check` target exists — a file without an aggregate
/// gate has nothing to wire into.
fn check_gate_reachability(path: &str, text: &str, out: &mut Vec<Violation>) {
    let targets = build_targets(text);
    if !targets.iter().any(|(n, _, _)| n == "check") {
        return;
    }
    let deps = target_deps(text);
    // Transitive closure of `check` over the prerequisite lists.
    let mut reachable: Vec<&str> = vec!["check"];
    let mut frontier = vec!["check"];
    while let Some(t) = frontier.pop() {
        if let Some((_, ds)) = deps.iter().find(|(n, _)| n == t) {
            for d in ds {
                if !reachable.contains(&d.as_str()) {
                    reachable.push(d);
                    frontier.push(d);
                }
            }
        }
    }
    for (name, line, text) in &targets {
        if name.ends_with("-check") && !reachable.contains(&name.as_str()) {
            out.push(parity_violation(
                path,
                *line,
                text,
                format!("verification target `{name}` is not reachable from `check`; add it to check's prerequisites (or a target check already runs)"),
            ));
        }
    }
}

/// Prerequisite lists: for each target line, the words after the colon
/// (trailing `#` comments stripped). Both Makefile prerequisites and
/// justfile dependencies use this shape.
fn target_deps(text: &str) -> Vec<(String, Vec<String>)> {
    let mut out = Vec::new();
    for (name, line, raw) in build_targets(text) {
        let _ = line;
        let Some(colon) = raw.find(':') else {
            continue;
        };
        let rest = &raw[colon + 1..];
        let rest = rest.split('#').next().unwrap_or("");
        let deps: Vec<String> = rest.split_whitespace().map(str::to_string).collect();
        out.push((name, deps));
    }
    out
}

fn parity_violation(path: &str, line: usize, snippet: &str, message: String) -> Violation {
    Violation {
        rule: "target-parity",
        path: path.to_string(),
        line,
        col: 1,
        message,
        snippet: snippet.trim().to_string(),
    }
}

/// Extracts target/recipe names from a Makefile or justfile: non-indented
/// lines of the form `name[ args]: …`. Assignments (`:=`), special targets
/// (`.PHONY`), comments, and recipe bodies (indented) are skipped. The
/// grammar overlap between the two formats is exactly what the parity rule
/// needs — a name that parses here should exist in both files.
fn build_targets(text: &str) -> Vec<(String, usize, String)> {
    let mut out = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let Some(first) = line.chars().next() else {
            continue;
        };
        if first.is_whitespace() || first == '#' || first == '.' {
            continue;
        }
        let Some(colon) = line.find(':') else {
            continue;
        };
        // `NAME := value` and `NAME ?= value` are assignments, not targets.
        if line[colon..].starts_with(":=") || line[..colon].contains('=') {
            continue;
        }
        let head = line[..colon].trim();
        // Justfile recipes may take arguments (`bench-diff old new:`); the
        // recipe name is the first word either way.
        let Some(name) = head.split_whitespace().next() else {
            continue;
        };
        if !name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '_' | '-' | '.'))
        {
            continue;
        }
        out.push((name.to_string(), idx + 1, line.to_string()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn target_extraction() {
        let makefile = "CARGO := cargo\n.PHONY: check\ncheck: build test\n\tcargo test\nbuild:\n\tcargo build\n# comment\n";
        let names: Vec<String> = build_targets(makefile)
            .into_iter()
            .map(|(n, _, _)| n)
            .collect();
        assert_eq!(names, ["check", "build"]);
    }

    #[test]
    fn justfile_recipes_with_args() {
        let justfile = "set shell := [\"bash\", \"-c\"]\ndefault: check\nbench-diff old new:\n    cargo run\n";
        let names: Vec<String> = build_targets(justfile)
            .into_iter()
            .map(|(n, _, _)| n)
            .collect();
        assert_eq!(names, ["default", "bench-diff"]);
    }

    #[test]
    fn parity_flags_both_directions() {
        let ws = Workspace {
            makefile: Some("only-make:\n\ttrue\nshared:\n\ttrue\n".to_string()),
            justfile: Some("only-just:\n    true\nshared:\n    true\n".to_string()),
            ..Workspace::default()
        };
        let mut out = Vec::new();
        TargetParity.check_workspace(&ws, &mut out);
        let mut msgs: Vec<&str> = out.iter().map(|v| v.message.as_str()).collect();
        msgs.sort_unstable();
        assert_eq!(msgs.len(), 2);
        assert!(msgs[0].contains("only-just"));
        assert!(msgs[1].contains("only-make"));
    }

    #[test]
    fn unwired_check_target_is_flagged() {
        // `stray-check` exists but `check` never (transitively) runs it.
        let gate = "check: build deep\n\ttrue\nbuild:\n\ttrue\ndeep: serve-check\n\ttrue\nserve-check:\n\ttrue\nstray-check:\n\ttrue\n";
        let mut out = Vec::new();
        check_gate_reachability("Makefile", gate, &mut out);
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("`stray-check`"));

        // Wiring it in (even transitively) clears the finding.
        let wired = gate.replace("check: build deep", "check: build deep stray-check");
        let mut out = Vec::new();
        check_gate_reachability("Makefile", &wired, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn no_check_target_means_no_reachability_gate() {
        let mut out = Vec::new();
        check_gate_reachability("justfile", "serve-check:\n    true\n", &mut out);
        assert!(out.is_empty());
    }
}
