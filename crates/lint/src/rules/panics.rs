//! Panic hazards in the crates that must not panic (`mission`, `radio`,
//! `scanner`, `localization`): a panic there is a lost drone or a dead
//! campaign, so fallible paths must return typed errors — or carry a
//! written justification for why the panic is unreachable.

use crate::lexer::TokenKind;
use crate::report::Violation;
use crate::rules::{FileCtx, Rule, NON_INDEX_KEYWORDS};

/// `.unwrap()`, `.expect(..)`, and `panic!` in non-test code of the
/// panic-free crates.
pub struct PanicPath;

impl Rule for PanicPath {
    fn name(&self) -> &'static str {
        "panic-path"
    }

    fn summary(&self) -> &'static str {
        "unwrap/expect/panic! in panic-free crates: return typed errors instead"
    }

    fn check_file(&self, ctx: &FileCtx<'_>, out: &mut Vec<Violation>) {
        if !ctx.panic_scope() {
            return;
        }
        for (i, tok) in ctx.code.iter().enumerate() {
            if tok.kind != TokenKind::Ident || ctx.in_test(*tok) {
                continue;
            }
            let name = ctx.text(i);
            let hit = match name {
                // Method calls only: `.unwrap(` / `.expect(` — not
                // `unwrap_or`, not a local named `expect`.
                "unwrap" | "expect" => {
                    i > 0 && ctx.is_punct(i - 1, ".") && ctx.is_punct(i + 1, "(")
                }
                "panic" => ctx.is_punct(i + 1, "!"),
                _ => false,
            };
            if hit {
                out.push(ctx.violation(
                    self.name(),
                    *tok,
                    format!("`{name}` can panic in a panic-free crate; return a typed error, or justify with `lint:allow(panic-path) — <why unreachable>`"),
                ));
            }
        }
    }
}

/// Dynamic slice/array indexing (`x[i]`, `x[a..b]` with a variable bound)
/// in non-test code of the panic-free crates. Literal-only indices
/// (`fields[0]`, `buf[0..2]`) are considered length-checked by the
/// surrounding code and pass.
pub struct SliceIndex;

impl Rule for SliceIndex {
    fn name(&self) -> &'static str {
        "slice-index"
    }

    fn summary(&self) -> &'static str {
        "dynamic indexing in panic-free crates: use .get() or justify bounds"
    }

    fn check_file(&self, ctx: &FileCtx<'_>, out: &mut Vec<Violation>) {
        if !ctx.panic_scope() {
            return;
        }
        for (i, tok) in ctx.code.iter().enumerate() {
            if tok.kind != TokenKind::Punct || ctx.text(i) != "[" || ctx.in_test(*tok) {
                continue;
            }
            // Indexing only: the `[` must follow a value expression — an
            // identifier that is not a keyword, or a closing `)` / `]` / `?`.
            // Array types `[f64; 3]`, array literals after `=`/`(`/`,`,
            // attributes `#[...]`, and macro brackets `vec![...]` all fail
            // this test.
            let indexes = if i == 0 {
                false
            } else if ctx.code[i - 1].kind == TokenKind::Ident {
                !NON_INDEX_KEYWORDS.contains(&ctx.text(i - 1))
            } else {
                matches!(ctx.text(i - 1), ")" | "]" | "?")
            };
            if !indexes {
                continue;
            }
            // Literal-only contents (e.g. `[0]`, `[0..2]`) pass; any
            // identifier in the brackets makes the bound dynamic.
            let mut depth = 1i32;
            let mut dynamic = false;
            let mut j = i + 1;
            while j < ctx.code.len() && depth > 0 {
                match ctx.text(j) {
                    "[" | "(" | "{" => depth += 1,
                    "]" | ")" | "}" => depth -= 1,
                    _ => {
                        if ctx.code[j].kind == TokenKind::Ident {
                            dynamic = true;
                        }
                    }
                }
                j += 1;
            }
            if dynamic {
                out.push(ctx.violation(
                    self.name(),
                    *tok,
                    "dynamic index can panic in a panic-free crate; use `.get(..)` / `.get_mut(..)`, or justify with `lint:allow(slice-index) — <why in bounds>`".to_string(),
                ));
            }
        }
    }
}
