//! Spec↔code drift: the byte-level format documents
//! (`docs/WIRE_FORMAT.md`, `docs/SNAPSHOT_FORMAT.md`) are normative — a
//! peer must be reimplementable from the page alone — so every constant
//! they state is re-parsed here and cross-checked against the constants the
//! implementation actually compiles: magics, versions, header sizes, caps,
//! frame kinds, error codes, the CRC-32 polynomial and check value, and the
//! worked hex examples byte-for-byte (CRCs recomputed, not trusted).
//!
//! A missing anchor (a renamed table field, a dropped section) is itself a
//! violation: the check must fail loudly rather than silently stop
//! checking. Findings land on the **doc** line so the fix starts from the
//! normative side, and they cannot be suppressed — drift is repaired, not
//! waived.

use crate::lexer::{Token, TokenKind};
use crate::report::Violation;
use crate::rules::Rule;
use crate::workspace::{Workspace, WorkspaceFile};

/// Where the two specs and their reference implementations live.
const WIRE_DOC: &str = "docs/WIRE_FORMAT.md";
const SNAP_DOC: &str = "docs/SNAPSHOT_FORMAT.md";
const WIRE_IMPL: &str = "serve/src/wire.rs";
const SNAP_IMPL: &str = "core/src/snapshot.rs";
const CODEC_IMPL: &str = "numerics/src/codec.rs";

/// Byte-level spec documents cross-checked against the implementation.
pub struct SpecDrift;

impl Rule for SpecDrift {
    fn name(&self) -> &'static str {
        "spec-drift"
    }

    fn summary(&self) -> &'static str {
        "format docs and codec constants must agree byte-for-byte (worked examples included)"
    }

    fn check_workspace(&self, ws: &Workspace, out: &mut Vec<Violation>) {
        if let Some(doc) = &ws.wire_spec {
            check_wire(ws, doc, out);
        }
        if let Some(doc) = &ws.snapshot_spec {
            check_snapshot(ws, doc, out);
        }
    }
}

// --------------------------------------------------------------- wire spec

fn check_wire(ws: &Workspace, doc: &str, out: &mut Vec<Violation>) {
    let Some(code) = CodeFile::find(ws, WIRE_IMPL) else {
        drift(out, WIRE_DOC, 1, format!("spec has no implementation: `{WIRE_IMPL}` not found in the workspace"));
        return;
    };

    // Magic: ASCII name and hex bytes from the header table, vs WIRE_MAGIC.
    match table_row(doc, "magic") {
        Some((line, cell)) => {
            check_magic(out, WIRE_DOC, line, &cell, &code, "WIRE_MAGIC");
        }
        None => anchor_missing(out, WIRE_DOC, "header-table row `magic`"),
    }

    // Scalar table fields vs constants.
    check_row_const(out, doc, WIRE_DOC, "version", &code, "WIRE_VERSION");
    check_row_const(out, doc, WIRE_DOC, "payload_len", &code, "MAX_PAYLOAD");

    // Header size from the section heading.
    check_heading_const(out, doc, WIRE_DOC, "Frame header", &code, "FRAME_HEADER_LEN");

    // Frame kinds and error codes vs the enums.
    check_enum_table(out, doc, WIRE_DOC, "Frame kinds", &code, "FrameKind");
    check_enum_table(out, doc, WIRE_DOC, "5.3 Error", &code, "ErrorCode");

    // Prose caps (optional anchors: checked when the sentence is present).
    check_prose_cap(out, doc, WIRE_DOC, "capped at ", &code, "MAX_NAME");
    check_prose_cap(out, doc, WIRE_DOC, "details at ", &code, "MAX_ERROR_DETAIL");
    check_prose_cap(out, doc, WIRE_DOC, "clamp (", &code, "PREALLOC_CLAMP");

    // CRC-32 section + codec polynomial.
    let crc = check_crc_section(out, ws, doc, WIRE_DOC);

    // Worked example, byte for byte.
    if let Some(poly) = crc {
        check_wire_example(out, doc, &code, poly);
    }
}

fn check_wire_example(out: &mut Vec<Violation>, doc: &str, code: &CodeFile<'_>, poly: u32) {
    let Some((line, bytes)) = hex_example(doc, out, WIRE_DOC) else {
        return;
    };
    let header_len = code.const_value("FRAME_HEADER_LEN").unwrap_or(32) as usize;
    if bytes.len() < header_len {
        drift(out, WIRE_DOC, line, format!(
            "worked example is {} bytes — shorter than the {header_len}-byte frame header",
            bytes.len()
        ));
        return;
    }
    if let Some(magic) = code.const_bytes("WIRE_MAGIC") {
        if bytes[..magic.len().min(bytes.len())] != magic[..] {
            drift(out, WIRE_DOC, line, format!(
                "worked example starts {:02X?}, but `WIRE_MAGIC` is {:02X?}",
                &bytes[..magic.len().min(bytes.len())], magic
            ));
        }
    }
    let version = u16::from_le_bytes([bytes[4], bytes[5]]) as u64;
    if let Some(v) = code.const_value("WIRE_VERSION") {
        if version != v {
            drift(out, WIRE_DOC, line, format!(
                "worked example encodes version {version}, but `WIRE_VERSION` is {v}"
            ));
        }
    }
    let kinds = code.enum_discriminants("FrameKind");
    if !kinds.is_empty() && !kinds.iter().any(|(_, d)| *d == u64::from(bytes[6])) {
        drift(out, WIRE_DOC, line, format!(
            "worked example kind byte {} matches no `FrameKind` discriminant", bytes[6]
        ));
    }
    if bytes[7] != 0 {
        drift(out, WIRE_DOC, line, "worked example flags byte is nonzero; v1 pins it to 0".to_string());
    }
    let payload_len = u32::from_le_bytes([bytes[20], bytes[21], bytes[22], bytes[23]]) as usize;
    let payload = &bytes[header_len.min(bytes.len())..];
    if payload.len() != payload_len {
        drift(out, WIRE_DOC, line, format!(
            "worked example declares payload_len {payload_len} but carries {} payload bytes",
            payload.len()
        ));
        return;
    }
    let stated_pcrc = u32::from_le_bytes([bytes[24], bytes[25], bytes[26], bytes[27]]);
    let actual_pcrc = crc32(poly, payload);
    if stated_pcrc != actual_pcrc {
        drift(out, WIRE_DOC, line, format!(
            "worked example payload_crc32 is 0x{stated_pcrc:08X} but the payload bytes CRC to 0x{actual_pcrc:08X}"
        ));
    }
    let stated_hcrc = u32::from_le_bytes([bytes[28], bytes[29], bytes[30], bytes[31]]);
    let actual_hcrc = crc32(poly, &bytes[..28]);
    if stated_hcrc != actual_hcrc {
        drift(out, WIRE_DOC, line, format!(
            "worked example header_crc32 is 0x{stated_hcrc:08X} but header bytes 0–27 CRC to 0x{actual_hcrc:08X}"
        ));
    }
}

// ----------------------------------------------------------- snapshot spec

fn check_snapshot(ws: &Workspace, doc: &str, out: &mut Vec<Violation>) {
    let Some(code) = CodeFile::find(ws, SNAP_IMPL) else {
        drift(out, SNAP_DOC, 1, format!("spec has no implementation: `{SNAP_IMPL}` not found in the workspace"));
        return;
    };

    match table_row(doc, "magic") {
        Some((line, cell)) => check_magic(out, SNAP_DOC, line, &cell, &code, "MAGIC"),
        None => anchor_missing(out, SNAP_DOC, "header-table row `magic`"),
    }
    check_row_const(out, doc, SNAP_DOC, "version", &code, "FORMAT_VERSION");
    check_row_const(out, doc, SNAP_DOC, "endian_tag", &code, "ENDIAN_TAG");
    check_heading_const(out, doc, SNAP_DOC, "File header", &code, "FILE_HEADER_LEN");
    check_heading_const(out, doc, SNAP_DOC, "Grid header", &code, "GRID_HEADER_LEN");

    let crc = check_crc_section(out, ws, doc, SNAP_DOC);
    if let Some(poly) = crc {
        check_snapshot_example(out, doc, &code, poly);
    }
}

fn check_snapshot_example(out: &mut Vec<Violation>, doc: &str, code: &CodeFile<'_>, poly: u32) {
    let Some((line, bytes)) = hex_example(doc, out, SNAP_DOC) else {
        return;
    };
    let file_hdr = code.const_value("FILE_HEADER_LEN").unwrap_or(16) as usize;
    let grid_hdr = code.const_value("GRID_HEADER_LEN").unwrap_or(84) as usize;
    if bytes.len() < file_hdr + grid_hdr {
        drift(out, SNAP_DOC, line, format!(
            "worked example is {} bytes — shorter than one file header + grid header ({})",
            bytes.len(), file_hdr + grid_hdr
        ));
        return;
    }
    if let Some(magic) = code.const_bytes("MAGIC") {
        if bytes[..magic.len().min(bytes.len())] != magic[..] {
            drift(out, SNAP_DOC, line, format!(
                "worked example starts {:02X?}, but `MAGIC` is {:02X?}",
                &bytes[..magic.len().min(bytes.len())], magic
            ));
        }
    }
    let version = u16::from_le_bytes([bytes[8], bytes[9]]) as u64;
    if let Some(v) = code.const_value("FORMAT_VERSION") {
        if version != v {
            drift(out, SNAP_DOC, line, format!(
                "worked example encodes version {version}, but `FORMAT_VERSION` is {v}"
            ));
        }
    }
    let endian = u16::from_le_bytes([bytes[10], bytes[11]]) as u64;
    if let Some(v) = code.const_value("ENDIAN_TAG") {
        if endian != v {
            drift(out, SNAP_DOC, line, format!(
                "worked example encodes endian tag 0x{endian:04X}, but `ENDIAN_TAG` is 0x{v:04X}"
            ));
        }
    }
    // One-grid example: recompute both CRCs and the declared totals.
    let g = file_hdr; // grid header start
    let nx = u32::from_le_bytes([bytes[g + 56], bytes[g + 57], bytes[g + 58], bytes[g + 59]]) as u64;
    let ny = u32::from_le_bytes([bytes[g + 60], bytes[g + 61], bytes[g + 62], bytes[g + 63]]) as u64;
    let nz = u32::from_le_bytes([bytes[g + 64], bytes[g + 65], bytes[g + 66], bytes[g + 67]]) as u64;
    let mut vc = [0u8; 8];
    vc.copy_from_slice(&bytes[g + 68..g + 76]);
    let value_count = u64::from_le_bytes(vc);
    if value_count != nx * ny * nz {
        drift(out, SNAP_DOC, line, format!(
            "worked example declares value_count {value_count} but nx×ny×nz = {}",
            nx * ny * nz
        ));
    }
    let expect_len = file_hdr + grid_hdr + 8 * value_count as usize;
    if bytes.len() != expect_len {
        drift(out, SNAP_DOC, line, format!(
            "worked example is {} bytes; header fields imply {expect_len}",
            bytes.len()
        ));
        return;
    }
    let payload = &bytes[g + grid_hdr..];
    let stated_pcrc = u32::from_le_bytes([bytes[g + 76], bytes[g + 77], bytes[g + 78], bytes[g + 79]]);
    let actual_pcrc = crc32(poly, payload);
    if stated_pcrc != actual_pcrc {
        drift(out, SNAP_DOC, line, format!(
            "worked example payload_crc32 is 0x{stated_pcrc:08X} but the voxel bytes CRC to 0x{actual_pcrc:08X}"
        ));
    }
    let stated_hcrc = u32::from_le_bytes([bytes[g + 80], bytes[g + 81], bytes[g + 82], bytes[g + 83]]);
    let actual_hcrc = crc32(poly, &bytes[g..g + 80]);
    if stated_hcrc != actual_hcrc {
        drift(out, SNAP_DOC, line, format!(
            "worked example header_crc32 is 0x{stated_hcrc:08X} but the 80 header bytes CRC to 0x{actual_hcrc:08X}"
        ));
    }
}

// ------------------------------------------------------------ shared checks

/// Parses the CRC-32 section of a doc: polynomial (first hex literal) and
/// check value (last hex literal), verifies the doc's own check value
/// against the polynomial, and verifies the polynomial appears in the codec
/// implementation. Returns the polynomial for example verification.
fn check_crc_section(
    out: &mut Vec<Violation>,
    ws: &Workspace,
    doc: &str,
    doc_path: &str,
) -> Option<u32> {
    let Some((line, section)) = section_text(doc, "CRC-32") else {
        anchor_missing(out, doc_path, "`CRC-32` section");
        return None;
    };
    let hexes = hex_literals(&section);
    let (Some(&poly), Some(&check)) = (hexes.first(), hexes.last()) else {
        anchor_missing(out, doc_path, "polynomial and check value in the CRC-32 section");
        return None;
    };
    if hexes.len() < 2 {
        anchor_missing(out, doc_path, "check value in the CRC-32 section");
        return None;
    }
    let poly = poly as u32;
    let computed = crc32(poly, b"123456789");
    if u64::from(computed) != check {
        drift(out, doc_path, line, format!(
            "CRC section states check value 0x{check:08X}, but polynomial 0x{poly:08X} gives crc32(b\"123456789\") = 0x{computed:08X}"
        ));
    }
    if let Some(codec) = CodeFile::find(ws, CODEC_IMPL) {
        if !codec.has_int_literal(u64::from(poly)) {
            drift(out, doc_path, line, format!(
                "doc polynomial 0x{poly:08X} does not appear in `{CODEC_IMPL}`"
            ));
        }
    }
    Some(poly)
}

fn check_magic(
    out: &mut Vec<Violation>,
    doc_path: &str,
    line: usize,
    cell: &str,
    code: &CodeFile<'_>,
    const_name: &str,
) {
    let spans = backticked(cell);
    let Some(ascii) = spans.first() else {
        drift(out, doc_path, line, "magic row has no backticked ASCII value".to_string());
        return;
    };
    // Doc-internal consistency: the hex rendering must spell the ASCII.
    if let Some(hex) = spans.get(1).and_then(|s| parse_hex_bytes(s)) {
        if hex != ascii.as_bytes() {
            drift(out, doc_path, line, format!(
                "magic row hex bytes {hex:02X?} do not spell the ASCII `{ascii}`"
            ));
        }
    }
    match code.const_bytes(const_name) {
        Some(actual) if actual == ascii.as_bytes() => {}
        Some(actual) => drift(out, doc_path, line, format!(
            "doc magic `{ascii}` but `{const_name}` is {:?}",
            String::from_utf8_lossy(&actual)
        )),
        None => drift(out, doc_path, line, format!(
            "`{const_name}` not found in `{}`", code.file.source.path
        )),
    }
}

/// Header-table field (backticked integer in the value cell) vs a constant.
fn check_row_const(
    out: &mut Vec<Violation>,
    doc: &str,
    doc_path: &str,
    field: &str,
    code: &CodeFile<'_>,
    const_name: &str,
) {
    let Some((line, cell)) = table_row(doc, field) else {
        anchor_missing(out, doc_path, &format!("header-table row `{field}`"));
        return;
    };
    let Some(doc_val) = first_int(&cell) else {
        drift(out, doc_path, line, format!("row `{field}` has no parseable value"));
        return;
    };
    compare_const(out, doc_path, line, field, doc_val, code, const_name);
}

/// Section-heading byte size (`## … Frame header — 32 bytes`) vs a constant.
fn check_heading_const(
    out: &mut Vec<Violation>,
    doc: &str,
    doc_path: &str,
    marker: &str,
    code: &CodeFile<'_>,
    const_name: &str,
) {
    let mut found = None;
    for (idx, l) in doc.lines().enumerate() {
        if l.starts_with("##") && l.contains(marker) {
            if let Some(rest) = l.split('—').nth(1) {
                if let Some(n) = rest.split_whitespace().next().and_then(parse_int) {
                    found = Some((idx + 1, n));
                }
            }
            break;
        }
    }
    let Some((line, doc_val)) = found else {
        anchor_missing(out, doc_path, &format!("`{marker} — N bytes` heading"));
        return;
    };
    compare_const(out, doc_path, line, marker, doc_val, code, const_name);
}

fn compare_const(
    out: &mut Vec<Violation>,
    doc_path: &str,
    line: usize,
    what: &str,
    doc_val: u64,
    code: &CodeFile<'_>,
    const_name: &str,
) {
    match code.const_value(const_name) {
        Some(actual) if actual == doc_val => {}
        Some(actual) => drift(out, doc_path, line, format!(
            "doc states {what} = {doc_val} but `{const_name}` in `{}` is {actual}",
            code.file.source.path
        )),
        None => drift(out, doc_path, line, format!(
            "`{const_name}` not found in `{}`", code.file.source.path
        )),
    }
}

/// A `| value | `Name` … |` table under `anchor` vs an enum's
/// discriminants, in both directions.
fn check_enum_table(
    out: &mut Vec<Violation>,
    doc: &str,
    doc_path: &str,
    anchor: &str,
    code: &CodeFile<'_>,
    enum_name: &str,
) {
    let rows = int_name_table(doc, anchor);
    if rows.is_empty() {
        anchor_missing(out, doc_path, &format!("value table under `{anchor}`"));
        return;
    }
    let variants = code.enum_discriminants(enum_name);
    if variants.is_empty() {
        drift(out, doc_path, rows[0].0, format!(
            "`enum {enum_name}` with explicit discriminants not found in `{}`",
            code.file.source.path
        ));
        return;
    }
    for (line, val, name) in &rows {
        match variants.iter().find(|(n, _)| n == name) {
            Some((_, d)) if d == val => {}
            Some((_, d)) => drift(out, doc_path, *line, format!(
                "doc assigns `{name}` = {val} but `{enum_name}::{name}` is {d}"
            )),
            None => drift(out, doc_path, *line, format!(
                "doc lists `{name}` = {val} but `{enum_name}` has no such variant"
            )),
        }
    }
    for (name, d) in &variants {
        if !rows.iter().any(|(_, _, n)| n == name) {
            drift(out, doc_path, rows[0].0, format!(
                "`{enum_name}::{name}` = {d} is not documented in the `{anchor}` table"
            ));
        }
    }
}

/// A prose-anchored cap (`capped at 255 bytes`). Optional: absent prose is
/// not drift, the doc may legitimately not mention the cap.
fn check_prose_cap(
    out: &mut Vec<Violation>,
    doc: &str,
    doc_path: &str,
    anchor: &str,
    code: &CodeFile<'_>,
    const_name: &str,
) {
    for (idx, l) in doc.lines().enumerate() {
        if let Some(pos) = l.find(anchor) {
            let rest = &l[pos + anchor.len()..];
            if let Some(v) = rest
                .split(|c: char| !(c.is_ascii_alphanumeric() || c == '^' || c == '_'))
                .next()
                .and_then(parse_int)
            {
                compare_const(out, doc_path, idx + 1, anchor.trim(), v, code, const_name);
                return;
            }
        }
    }
}

// ------------------------------------------------------------- doc parsing

fn drift(out: &mut Vec<Violation>, path: &str, line: usize, message: String) {
    out.push(Violation {
        rule: "spec-drift",
        path: path.to_string(),
        line,
        col: 1,
        message,
        snippet: String::new(),
    });
}

fn anchor_missing(out: &mut Vec<Violation>, path: &str, what: &str) {
    drift(out, path, 1, format!(
        "spec anchor missing: {what} — the drift check cannot run; restore the anchor or update aerorem-lint"
    ));
}

/// Finds the table row whose field cell is `` `field` ``; returns (1-based
/// line, the value cell's text).
fn table_row(doc: &str, field: &str) -> Option<(usize, String)> {
    let want = format!("`{field}`");
    for (idx, line) in doc.lines().enumerate() {
        if !line.trim_start().starts_with('|') {
            continue;
        }
        let cells: Vec<&str> = line.split('|').map(str::trim).collect();
        if let Some(pos) = cells.iter().position(|c| *c == want) {
            if let Some(value) = cells.get(pos + 1) {
                return Some((idx + 1, (*value).to_string()));
            }
        }
    }
    None
}

/// Contents of the `` `…` `` spans in a cell.
fn backticked(cell: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = cell;
    while let Some(open) = rest.find('`') {
        let Some(close) = rest[open + 1..].find('`') else {
            break;
        };
        out.push(rest[open + 1..open + 1 + close].to_string());
        rest = &rest[open + close + 2..];
    }
    out
}

/// First parseable integer among a cell's backticked spans (decimal, hex,
/// or `2^N`).
fn first_int(cell: &str) -> Option<u64> {
    backticked(cell).iter().find_map(|s| parse_int(s))
}

/// Parses `255`, `0x1234`, or `2^30` (stripping `_` separators and a `≤ `
/// prefix).
fn parse_int(s: &str) -> Option<u64> {
    let s = s.trim().trim_start_matches('≤').trim();
    let s: String = s.chars().filter(|&c| c != '_').collect();
    if let Some((base, exp)) = s.split_once('^') {
        let base: u64 = base.parse().ok()?;
        let exp: u32 = exp.parse().ok()?;
        return base.checked_pow(exp);
    }
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        return u64::from_str_radix(hex, 16).ok();
    }
    if s.is_empty() || !s.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    s.parse().ok()
}

/// A span of space-separated hex byte pairs (`41 52 57 46`).
fn parse_hex_bytes(s: &str) -> Option<Vec<u8>> {
    let parts: Vec<&str> = s.split_whitespace().collect();
    if parts.is_empty() {
        return None;
    }
    parts
        .iter()
        .map(|p| (p.len() == 2).then(|| u8::from_str_radix(p, 16).ok()).flatten())
        .collect()
}

/// `0x…` literals appearing anywhere in a text, in order.
fn hex_literals(text: &str) -> Vec<u64> {
    let mut out = Vec::new();
    let bytes = text.as_bytes();
    let mut i = 0;
    while i + 2 < bytes.len() {
        if bytes[i] == b'0' && (bytes[i + 1] | 0x20) == b'x' {
            let start = i + 2;
            let mut j = start;
            while j < bytes.len() && (bytes[j].is_ascii_hexdigit() || bytes[j] == b'_') {
                j += 1;
            }
            if j > start {
                if let Some(v) = parse_int(&text[i..j]) {
                    out.push(v);
                }
                i = j;
                continue;
            }
        }
        i += 1;
    }
    out
}

/// The text of the section whose heading contains `marker`, up to the next
/// same-or-higher-level heading. Returns (1-based heading line, text).
fn section_text(doc: &str, marker: &str) -> Option<(usize, String)> {
    let lines: Vec<&str> = doc.lines().collect();
    let start = lines
        .iter()
        .position(|l| l.starts_with('#') && l.contains(marker))?;
    let mut body = String::new();
    for l in &lines[start + 1..] {
        if l.starts_with('#') {
            break;
        }
        body.push_str(l);
        body.push('\n');
    }
    Some((start + 1, body))
}

/// `| int | `Name` … |` rows in the section whose heading contains
/// `anchor`: (1-based line, value, name).
fn int_name_table(doc: &str, anchor: &str) -> Vec<(usize, u64, String)> {
    let mut out = Vec::new();
    let mut in_section = false;
    for (idx, line) in doc.lines().enumerate() {
        if line.starts_with('#') {
            if in_section {
                break;
            }
            in_section = line.contains(anchor);
            continue;
        }
        if !in_section || !line.trim_start().starts_with('|') {
            continue;
        }
        let cells: Vec<&str> = line.split('|').map(str::trim).collect();
        // cells[0] is the empty prefix before the first `|`.
        let (Some(first), Some(second)) = (cells.get(1), cells.get(2)) else {
            continue;
        };
        let Some(val) = parse_int(first) else {
            continue;
        };
        let Some(name) = backticked(second).into_iter().next() else {
            continue;
        };
        out.push((idx + 1, val, name));
    }
    out
}

/// Parses the hex dump in the `Worked example` section: lines of
/// `0xOFF  B0 B1 …  meaning` inside a fenced block. Verifies offset
/// continuity (a parse that stopped early cannot silently pass).
fn hex_example(doc: &str, out: &mut Vec<Violation>, doc_path: &str) -> Option<(usize, Vec<u8>)> {
    let Some((line, section)) = section_text(doc, "Worked example") else {
        anchor_missing(out, doc_path, "`Worked example` section");
        return None;
    };
    let mut bytes = Vec::new();
    let mut in_fence = false;
    for (i, l) in section.lines().enumerate() {
        if l.trim_start().starts_with("```") {
            if in_fence {
                break;
            }
            in_fence = true;
            continue;
        }
        if !in_fence {
            continue;
        }
        let mut parts = l.split_whitespace();
        let Some(off) = parts.next().and_then(|p| p.strip_prefix("0x")) else {
            continue;
        };
        let Ok(off) = usize::from_str_radix(off, 16) else {
            continue;
        };
        if off != bytes.len() {
            drift(out, doc_path, line + i + 1, format!(
                "worked example offset 0x{off:02X} does not follow the {} bytes parsed so far — rows out of order or bytes the parser cannot read",
                bytes.len()
            ));
            return None;
        }
        for p in parts {
            if p.len() == 2 {
                if let Ok(b) = u8::from_str_radix(p, 16) {
                    bytes.push(b);
                    continue;
                }
            }
            break; // the meaning column
        }
    }
    if bytes.is_empty() {
        anchor_missing(out, doc_path, "hex dump in the worked example");
        return None;
    }
    Some((line, bytes))
}

// ------------------------------------------------------------ code parsing

/// A workspace source file with its comment-free token view.
struct CodeFile<'a> {
    file: &'a WorkspaceFile,
    code: Vec<Token>,
}

impl<'a> CodeFile<'a> {
    /// Finds a file by path suffix.
    fn find(ws: &'a Workspace, suffix: &str) -> Option<CodeFile<'a>> {
        let file = ws.files.iter().find(|f| f.source.path.ends_with(suffix))?;
        let code = file
            .source
            .tokens
            .iter()
            .filter(|t| !t.is_comment())
            .copied()
            .collect();
        Some(CodeFile { file, code })
    }

    fn word(&self, i: usize) -> &str {
        self.code.get(i).map_or("", |t| t.text(&self.file.source.text))
    }

    /// Token range of `const <name> … = <expr> ;`, exclusive of `;`.
    fn const_expr(&self, name: &str) -> Option<(usize, usize)> {
        for i in 0..self.code.len() {
            if self.word(i) == "const" && self.word(i + 1) == name {
                // Skip the type annotation; `[u8; 4]` contains both `;` and
                // (conceivably) `=`-free brackets, so track nesting.
                let mut j = i + 2;
                let mut depth = 0i32;
                while j < self.code.len() && !(depth == 0 && self.word(j) == "=") {
                    match self.word(j) {
                        "[" | "(" | "{" => depth += 1,
                        "]" | ")" | "}" => depth -= 1,
                        ";" if depth == 0 => return None,
                        _ => {}
                    }
                    j += 1;
                }
                let start = j + 1;
                let mut end = start;
                while end < self.code.len() && self.word(end) != ";" {
                    end += 1;
                }
                return Some((start, end));
            }
        }
        None
    }

    /// Evaluates an integer constant.
    fn const_value(&self, name: &str) -> Option<u64> {
        let (start, end) = self.const_expr(name)?;
        let toks: Vec<&str> = (start..end).map(|i| self.word(i)).collect();
        eval_expr(&toks)
    }

    /// Extracts a byte-string constant (`*b"ARWF"`).
    fn const_bytes(&self, name: &str) -> Option<Vec<u8>> {
        let (start, end) = self.const_expr(name)?;
        for i in start..end {
            let w = self.word(i);
            if let Some(inner) = w.strip_prefix("b\"").and_then(|s| s.strip_suffix('"')) {
                return Some(inner.as_bytes().to_vec());
            }
        }
        None
    }

    /// `Variant = value` pairs inside `enum <name> { … }`.
    fn enum_discriminants(&self, name: &str) -> Vec<(String, u64)> {
        let mut out = Vec::new();
        for i in 0..self.code.len() {
            if self.word(i) == "enum" && self.word(i + 1) == name {
                let mut j = i + 2;
                while j < self.code.len() && self.word(j) != "{" {
                    j += 1;
                }
                let mut depth = 0i32;
                while j < self.code.len() {
                    match self.word(j) {
                        "{" => depth += 1,
                        "}" => {
                            depth -= 1;
                            if depth == 0 {
                                return out;
                            }
                        }
                        "=" if depth == 1 => {
                            let variant = self.word(j - 1).to_string();
                            if let Some(v) = parse_int(self.word(j + 1)) {
                                out.push((variant, v));
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
            }
        }
        out
    }

    /// Whether any integer literal in the file equals `value`.
    fn has_int_literal(&self, value: u64) -> bool {
        self.code.iter().any(|t| {
            t.kind == TokenKind::Int && parse_int(t.text(&self.file.source.text)) == Some(value)
        })
    }
}

/// Evaluates a small constant expression: integers, `|`, `<<`, `+`, `-`,
/// `*`, parentheses, and `as <type>` casts (ignored). Anything else fails
/// to `None` — the comparison then reports the constant as unreadable.
fn eval_expr(toks: &[&str]) -> Option<u64> {
    let mut pos = 0usize;
    let v = eval_or(toks, &mut pos)?;
    (pos >= toks.len()).then_some(v)
}

fn eval_or(toks: &[&str], pos: &mut usize) -> Option<u64> {
    let mut v = eval_shift(toks, pos)?;
    while toks.get(*pos) == Some(&"|") {
        *pos += 1;
        v |= eval_shift(toks, pos)?;
    }
    Some(v)
}

fn eval_shift(toks: &[&str], pos: &mut usize) -> Option<u64> {
    let mut v = eval_add(toks, pos)?;
    // The lexer emits single-character puncts, so `<<` arrives as two `<`.
    while toks.get(*pos) == Some(&"<") && toks.get(*pos + 1) == Some(&"<") {
        *pos += 2;
        let rhs = eval_add(toks, pos)?;
        v = v.checked_shl(u32::try_from(rhs).ok()?)?;
    }
    Some(v)
}

fn eval_add(toks: &[&str], pos: &mut usize) -> Option<u64> {
    let mut v = eval_mul(toks, pos)?;
    loop {
        match toks.get(*pos) {
            Some(&"+") => {
                *pos += 1;
                v = v.checked_add(eval_mul(toks, pos)?)?;
            }
            Some(&"-") => {
                *pos += 1;
                v = v.checked_sub(eval_mul(toks, pos)?)?;
            }
            _ => return Some(v),
        }
    }
}

fn eval_mul(toks: &[&str], pos: &mut usize) -> Option<u64> {
    let mut v = eval_atom(toks, pos)?;
    while toks.get(*pos) == Some(&"*") {
        *pos += 1;
        v = v.checked_mul(eval_atom(toks, pos)?)?;
    }
    Some(v)
}

fn eval_atom(toks: &[&str], pos: &mut usize) -> Option<u64> {
    let v = match toks.get(*pos)? {
        &"(" => {
            *pos += 1;
            let v = eval_or(toks, pos)?;
            if toks.get(*pos) != Some(&")") {
                return None;
            }
            *pos += 1;
            v
        }
        t => {
            let v = strip_suffix_int(t)?;
            *pos += 1;
            v
        }
    };
    // Skip `as usize` / `as u32` casts.
    while toks.get(*pos) == Some(&"as") {
        *pos += 2;
    }
    Some(v)
}

/// Parses an integer literal token, stripping a type suffix (`30u32`,
/// `0x1234_u16`).
fn strip_suffix_int(t: &str) -> Option<u64> {
    let s: String = t.chars().filter(|&c| c != '_').collect();
    let (body, radix) = if let Some(h) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        (h, 16)
    } else if let Some(b) = s.strip_prefix("0b") {
        (b, 2)
    } else if let Some(o) = s.strip_prefix("0o") {
        (o, 8)
    } else {
        (s.as_str(), 10)
    };
    let digits_end = body
        .find(|c: char| !c.is_digit(radix))
        .unwrap_or(body.len());
    if digits_end == 0 {
        return None;
    }
    u64::from_str_radix(&body[..digits_end], radix).ok()
}

// ------------------------------------------------------------------- CRC-32

/// Bitwise reflected CRC-32 with the given polynomial, initial value
/// `0xFFFFFFFF`, final XOR `0xFFFFFFFF`. Reimplemented here (not imported
/// from `aerorem-numerics`) so the lint stays dependency-free and the
/// check is independent of the code under test.
pub fn crc32(poly: u32, data: &[u8]) -> u32 {
    let mut crc = u32::MAX;
    for &b in data {
        crc ^= u32::from(b);
        for _ in 0..8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ poly } else { crc >> 1 };
        }
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_parsing_forms() {
        assert_eq!(parse_int("255"), Some(255));
        assert_eq!(parse_int("0x1234"), Some(0x1234));
        assert_eq!(parse_int("2^30"), Some(1 << 30));
        assert_eq!(parse_int("≤ 2^30"), Some(1 << 30));
        assert_eq!(parse_int("0xEDB8_8320"), Some(0xEDB8_8320));
        assert_eq!(parse_int("bytes"), None);
    }

    #[test]
    fn expr_eval() {
        // Single-char puncts, exactly as the lexer delivers them.
        assert_eq!(eval_expr(&["1", "<", "<", "30"]), Some(1 << 30));
        assert_eq!(eval_expr(&["(", "1", "<", "<", "16", ")", "as", "usize"]), Some(1 << 16));
        assert_eq!(eval_expr(&["4096"]), Some(4096));
        assert_eq!(eval_expr(&["16", "+", "84", "*", "2"]), Some(184));
        assert_eq!(eval_expr(&["foo"]), None);
    }

    #[test]
    fn crc_check_value() {
        assert_eq!(crc32(0xEDB8_8320, b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn backtick_and_hex_cells() {
        let spans = backticked("ASCII `ARWF` (`41 52 57 46`).");
        assert_eq!(spans, ["ARWF", "41 52 57 46"]);
        assert_eq!(parse_hex_bytes(&spans[1]), Some(vec![0x41, 0x52, 0x57, 0x46]));
        assert_eq!(parse_hex_bytes("not hex"), None);
    }
}
