//! Call-graph panic reachability: no `unwrap`/`expect`/`panic!`/dynamic
//! index may be transitively reachable from the daemon's connection
//! handlers, the store's batch entry point, or the mission executor —
//! the paths where a panic is a dropped connection, a dead daemon, or a
//! lost UAV rather than a stack trace on a developer box.

use crate::callgraph::{CallGraph, SiteKind};
use crate::report::Violation;
use crate::rules::{Rule, PANIC_FREE_CRATES};
use crate::workspace::Workspace;

/// The reachability roots, as (crate, function-name) pairs. Every function
/// with a matching name in the crate seeds the search — `answer` exists on
/// both the daemon and the store shards, and both are on the serve path.
pub const REACH_ROOTS: [(&str, &str); 8] = [
    ("serve", "serve_connection"),
    ("serve", "process_frames"),
    ("serve", "flush_requests"),
    ("serve", "handle_control"),
    ("serve", "answer"),
    ("serve", "submit_batch"),
    ("mission", "fly_leg"),
    ("mission", "fly_leg_with_receiver"),
];

/// Crates whose dynamic-index sites participate in reachability findings.
/// The numerics kernels index heavily against locally-proven bounds
/// (shapes validated at construction); auditing each of those sits with
/// the kernel code, not with every caller above it — see docs/LINT.md.
pub const DYN_INDEX_CRATES: [&str; 2] = ["serve", "mission"];

/// Panic sites transitively reachable from the serve/mission roots.
pub struct PanicReach;

impl Rule for PanicReach {
    fn name(&self) -> &'static str {
        "panic-reach"
    }

    fn summary(&self) -> &'static str {
        "no panic site may be reachable from daemon handlers, submit_batch, or fly_leg"
    }

    fn check_workspace(&self, ws: &Workspace, out: &mut Vec<Violation>) {
        let graph = CallGraph::build(ws);
        let mut roots: Vec<usize> = Vec::new();
        for (cr, name) in REACH_ROOTS {
            roots.extend(graph.find(cr, name));
        }
        if roots.is_empty() {
            return;
        }
        let parent = graph.reach_from(&roots);
        for (id, node) in graph.fns.iter().enumerate() {
            if parent[id].is_none() || node.sites.is_empty() {
                continue;
            }
            // The panic-free crates are already policed site-by-site by the
            // per-file `panic-path` / `slice-index` rules; re-reporting each
            // of their sites here would double every finding.
            if PANIC_FREE_CRATES.contains(&node.crate_name.as_str()) {
                continue;
            }
            let chain = graph.path_to(&parent, id);
            let root_name = chain.first().cloned().unwrap_or_default();
            let via = if chain.len() > 1 {
                format!(" (path: {})", chain.join(" → "))
            } else {
                String::new()
            };
            let file = &ws.files[node.file];
            for site in &node.sites {
                if site.kind == SiteKind::DynIndex
                    && !DYN_INDEX_CRATES.contains(&node.crate_name.as_str())
                {
                    continue;
                }
                let (line, col) = file.source.line_col(site.token.start);
                out.push(Violation {
                    rule: self.name(),
                    path: file.source.path.clone(),
                    line,
                    col,
                    message: format!(
                        "`{}` in `{}` is reachable from root `{}`{}; return a typed error, or justify with `lint:allow(panic-reach) — <why unreachable>`",
                        site.kind.label(),
                        node.qualified(),
                        root_name,
                        via
                    ),
                    snippet: file.source.line_text(line).trim().to_string(),
                });
            }
        }
    }
}
