//! Command-line entry point for `aerorem-lint`.
//!
//! ```text
//! aerorem-lint [--root PATH] [--json] [--list-rules]
//! ```
//!
//! Exit codes: `0` clean, `1` violations found, `2` usage or I/O error.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use aerorem_lint::rules::{registry, META_RULES};

const USAGE: &str = "\
aerorem-lint — workspace invariant checker

USAGE:
    aerorem-lint [--root PATH] [--json] [--list-rules]

OPTIONS:
    --root PATH    Workspace root to lint (default: current directory)
    --json         Emit the stable machine-readable report (schema v2)
    --list-rules   Print the rule catalog and exit
    -h, --help     Show this help
";

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut json = false;
    let mut list_rules = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                let Some(path) = args.next() else {
                    eprintln!("error: --root needs a path\n\n{USAGE}");
                    return ExitCode::from(2);
                };
                root = PathBuf::from(path);
            }
            "--json" => json = true,
            "--list-rules" => list_rules = true,
            "-h" | "--help" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("error: unknown argument `{other}`\n\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    if list_rules {
        for rule in registry() {
            println!("{:<18} {}", rule.name(), rule.summary());
        }
        for meta in META_RULES {
            let what = match meta {
                "bad-allow" => "malformed/unknown/reason-less lint:allow annotations",
                _ => "lint:allow annotations that no longer match a violation",
            };
            println!("{meta:<18} {what} (meta; cannot be suppressed)");
        }
        return ExitCode::SUCCESS;
    }

    match aerorem_lint::run(&root) {
        Ok(report) => {
            if json {
                print!("{}", report.render_json());
            } else {
                print!("{}", report.render_human());
            }
            if report.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("error: {}: {e}", root.display());
            ExitCode::from(2)
        }
    }
}
