//! Diagnostics: violations, the aggregate report, and its two renderings
//! (human-readable text and the stable `--json` schema).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Rule name (e.g. `hash-iter`).
    pub rule: &'static str,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
    /// What is wrong and what to do instead.
    pub message: String,
    /// The offending source line, trimmed.
    pub snippet: String,
}

/// One rule's catalog entry in the report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuleInfo {
    /// Rule name (e.g. `hash-iter`).
    pub name: &'static str,
    /// Severity: `"error"` or `"warning"`. Informational for tooling —
    /// every violation gates the exit code regardless.
    pub severity: &'static str,
    /// One-line description.
    pub summary: &'static str,
}

/// The outcome of a whole lint run.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Violations sorted by (path, line, col, rule).
    pub violations: Vec<Violation>,
    /// Number of files scanned.
    pub files_scanned: usize,
    /// Number of live (used, well-formed) suppressions.
    pub suppressions: usize,
    /// Every rule that ran, in registry order, with severity and summary.
    pub rules: Vec<RuleInfo>,
}

impl Report {
    /// Whether the workspace is clean.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Sorts violations into the canonical (path, line, col, rule) order.
    /// Both renderings and the exit code rely on this being deterministic.
    pub fn normalize(&mut self) {
        self.violations
            .sort_by(|a, b| {
                (&a.path, a.line, a.col, a.rule).cmp(&(&b.path, b.line, b.col, b.rule))
            });
    }

    /// Violation counts per rule, sorted by rule name.
    pub fn by_rule(&self) -> BTreeMap<&'static str, usize> {
        let mut m = BTreeMap::new();
        for v in &self.violations {
            *m.entry(v.rule).or_insert(0) += 1;
        }
        m
    }

    /// Human-readable rendering: one `path:line:col [rule] message` block
    /// per violation plus a summary line.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for v in &self.violations {
            let _ = writeln!(out, "{}:{}:{} [{}] {}", v.path, v.line, v.col, v.rule, v.message);
            if !v.snippet.is_empty() {
                let _ = writeln!(out, "    {}", v.snippet);
            }
        }
        if self.is_clean() {
            let _ = writeln!(
                out,
                "aerorem-lint: clean — {} files, {} rules, {} suppressions",
                self.files_scanned,
                self.rules.len(),
                self.suppressions
            );
        } else {
            let _ = writeln!(
                out,
                "aerorem-lint: {} violation(s) in {} files",
                self.violations.len(),
                self.files_scanned
            );
            for (rule, n) in self.by_rule() {
                let _ = writeln!(out, "    {rule}: {n}");
            }
        }
        out
    }

    /// Machine-readable rendering. The schema is a **stability contract**
    /// (`schema_version` bumps on any breaking change) so `scripts/` can
    /// diff reports across commits:
    ///
    /// ```json
    /// {
    ///   "schema_version": 2,
    ///   "tool": "aerorem-lint",
    ///   "files_scanned": 123,
    ///   "suppressions": 4,
    ///   "rules": [
    ///     {"name": "hash-iter", "severity": "error", "summary": "..."}
    ///   ],
    ///   "summary": {"total": 2, "by_rule": {"hash-iter": 2}},
    ///   "violations": [
    ///     {"rule": "hash-iter", "severity": "error",
    ///      "path": "crates/x/src/a.rs",
    ///      "line": 10, "col": 5, "message": "...", "snippet": "..."}
    ///   ]
    /// }
    /// ```
    ///
    /// v2 over v1: `rules` entries are objects (name/severity/summary
    /// instead of bare name strings) and each violation carries its rule's
    /// `severity`. Violations are sorted by (path, line, col, rule);
    /// `by_rule` keys are sorted; output is byte-stable for identical
    /// inputs.
    pub fn render_json(&self) -> String {
        let severity_of = |rule: &str| -> &'static str {
            self.rules
                .iter()
                .find(|r| r.name == rule)
                .map_or("error", |r| r.severity)
        };
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"schema_version\": 2,");
        let _ = writeln!(out, "  \"tool\": \"aerorem-lint\",");
        let _ = writeln!(out, "  \"files_scanned\": {},", self.files_scanned);
        let _ = writeln!(out, "  \"suppressions\": {},", self.suppressions);
        let _ = writeln!(out, "  \"rules\": [");
        for (i, r) in self.rules.iter().enumerate() {
            let comma = if i + 1 < self.rules.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "    {{\"name\": {}, \"severity\": {}, \"summary\": {}}}{}",
                json_string(r.name),
                json_string(r.severity),
                json_string(r.summary),
                comma
            );
        }
        let _ = writeln!(out, "  ],");
        let by_rule: Vec<String> = self
            .by_rule()
            .into_iter()
            .map(|(r, n)| format!("{}: {}", json_string(r), n))
            .collect();
        let _ = writeln!(
            out,
            "  \"summary\": {{\"total\": {}, \"by_rule\": {{{}}}}},",
            self.violations.len(),
            by_rule.join(", ")
        );
        let _ = writeln!(out, "  \"violations\": [");
        for (i, v) in self.violations.iter().enumerate() {
            let comma = if i + 1 < self.violations.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "    {{\"rule\": {}, \"severity\": {}, \"path\": {}, \"line\": {}, \"col\": {}, \"message\": {}, \"snippet\": {}}}{}",
                json_string(v.rule),
                json_string(severity_of(v.rule)),
                json_string(&v.path),
                v.line,
                v.col,
                json_string(&v.message),
                json_string(&v.snippet),
                comma
            );
        }
        let _ = writeln!(out, "  ]");
        out.push_str("}\n");
        out
    }
}

/// JSON string literal with full escaping (the report has no other value
/// types that need escaping).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(rule: &'static str, path: &str, line: usize) -> Violation {
        Violation {
            rule,
            path: path.into(),
            line,
            col: 1,
            message: format!("msg for {rule}"),
            snippet: "let x = 1;".into(),
        }
    }

    fn info(name: &'static str, severity: &'static str) -> RuleInfo {
        RuleInfo { name, severity, summary: "a summary" }
    }

    #[test]
    fn normalize_orders_deterministically() {
        let mut r = Report {
            violations: vec![v("b-rule", "b.rs", 2), v("a-rule", "a.rs", 9), v("a-rule", "b.rs", 2)],
            files_scanned: 3,
            suppressions: 0,
            rules: vec![info("a-rule", "error"), info("b-rule", "error")],
        };
        r.normalize();
        let order: Vec<(&str, usize, &str)> = r
            .violations
            .iter()
            .map(|v| (v.path.as_str(), v.line, v.rule))
            .collect();
        assert_eq!(
            order,
            [("a.rs", 9, "a-rule"), ("b.rs", 2, "a-rule"), ("b.rs", 2, "b-rule")]
        );
    }

    #[test]
    fn json_is_stable_and_escaped() {
        let mut r = Report {
            violations: vec![v("x", "a\"b.rs", 1)],
            files_scanned: 1,
            suppressions: 2,
            rules: vec![info("x", "warning")],
        };
        r.normalize();
        let j1 = r.render_json();
        let j2 = r.render_json();
        assert_eq!(j1, j2, "rendering must be byte-stable");
        assert!(j1.contains("\"schema_version\": 2"));
        assert!(j1.contains("a\\\"b.rs"));
        assert!(j1.contains("\"summary\": {\"total\": 1, \"by_rule\": {\"x\": 1}}"));
        assert!(
            j1.contains("{\"name\": \"x\", \"severity\": \"warning\", \"summary\": \"a summary\"}"),
            "rules entries are objects in v2"
        );
        assert!(
            j1.contains("\"rule\": \"x\", \"severity\": \"warning\""),
            "violations carry their rule's severity"
        );
    }

    #[test]
    fn human_summary_counts() {
        let r = Report {
            violations: vec![],
            files_scanned: 7,
            suppressions: 3,
            rules: vec![info("a", "error")],
        };
        let text = r.render_human();
        assert!(text.contains("clean"));
        assert!(text.contains("7 files"));
    }
}
