//! A small but real Rust lexer.
//!
//! The lint passes operate on tokens, never on raw text, so a banned name
//! inside a string literal, a comment, or a doc example can never trigger a
//! false positive. The lexer handles the full literal grammar the workspace
//! uses:
//!
//! * line comments (`//`), doc comments (`///`, `//!`),
//! * block comments (`/* */`) with arbitrary nesting, doc blocks (`/** */`,
//!   `/*! */`),
//! * normal strings with escapes, raw strings `r"…"` / `r#"…"#` with any
//!   number of hashes, byte strings `b"…"` and raw byte strings `br#"…"#`,
//! * char literals including `'\''`, `'"'` and `'\u{…}'`, byte literals
//!   `b'x'`, and the lifetime/char ambiguity (`'a` vs `'a'`),
//! * raw identifiers (`r#fn`), numeric literals (ints, floats, radix
//!   prefixes) without swallowing range operators (`0..10`).
//!
//! Tokens carry byte spans into the source; everything else (line/column
//! mapping, test-region detection) lives in [`crate::source`].

/// What a token is. Comment tokens are *kept* in the stream — the
/// suppression-annotation parser reads them — and rule passes skip them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (raw identifiers lose their `r#` prefix in
    /// [`Token::text`] handling — the span still covers it).
    Ident,
    /// A lifetime such as `'a` (no closing quote).
    Lifetime,
    /// Integer literal, any radix.
    Int,
    /// Float literal.
    Float,
    /// String literal: normal, raw, byte, or raw byte.
    Str,
    /// Char literal (`'x'`, `'\''`, `'"'`) or byte literal (`b'x'`).
    Char,
    /// `//` comment. `doc` is true for `///` and `//!`.
    LineComment {
        /// Whether this is a doc comment (`///` or `//!`).
        doc: bool,
    },
    /// `/* */` comment (nesting already resolved). `doc` is true for
    /// `/**` and `/*!`.
    BlockComment {
        /// Whether this is a doc comment (`/**` or `/*!`).
        doc: bool,
    },
    /// A single punctuation character.
    Punct,
}

/// One lexed token: kind plus byte span (`start..end`) into the source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// Token class.
    pub kind: TokenKind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
}

impl Token {
    /// The token's text within `src`.
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }

    /// Whether the token is any kind of comment.
    pub fn is_comment(&self) -> bool {
        matches!(
            self.kind,
            TokenKind::LineComment { .. } | TokenKind::BlockComment { .. }
        )
    }
}

/// Lexes `src` into a token stream. Whitespace is dropped; comments are
/// kept. Unterminated literals or comments are closed at end of input
/// rather than reported — the compiler owns syntax errors, the linter only
/// needs a consistent stream.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        src: src.as_bytes(),
        pos: 0,
        tokens: Vec::new(),
    }
    .run()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    tokens: Vec<Token>,
}

impl Lexer<'_> {
    fn run(mut self) -> Vec<Token> {
        // A shebang line (`#!/…`) only occurs at offset zero and would
        // otherwise lex as `#`, `!`, `/`… — skip it whole.
        if self.src.starts_with(b"#!") && !self.src.starts_with(b"#![") {
            while self.pos < self.src.len() && self.src[self.pos] != b'\n' {
                self.pos += 1;
            }
        }
        while self.pos < self.src.len() {
            let c = self.src[self.pos];
            match c {
                b' ' | b'\t' | b'\r' | b'\n' => self.pos += 1,
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'r' if self.raw_string_follows(1) => self.raw_string(1),
                b'b' => self.byte_prefixed(),
                b'r' if self.peek(1) == Some(b'#') && self.ident_start(2) => {
                    // Raw identifier `r#fn`.
                    let start = self.pos;
                    self.pos += 2;
                    self.eat_ident();
                    self.push(TokenKind::Ident, start);
                }
                b'"' => self.string(),
                b'\'' => self.quote(),
                c if c.is_ascii_digit() => self.number(),
                c if c == b'_' || c.is_ascii_alphabetic() || c >= 0x80 => {
                    let start = self.pos;
                    self.eat_ident();
                    self.push(TokenKind::Ident, start);
                }
                _ => {
                    let start = self.pos;
                    self.pos += 1;
                    self.push(TokenKind::Punct, start);
                }
            }
        }
        self.tokens
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn push(&mut self, kind: TokenKind, start: usize) {
        self.tokens.push(Token {
            kind,
            start,
            end: self.pos,
        });
    }

    fn ident_start(&self, ahead: usize) -> bool {
        matches!(self.peek(ahead), Some(c) if c == b'_' || c.is_ascii_alphabetic() || c >= 0x80)
    }

    fn eat_ident(&mut self) {
        while let Some(c) = self.peek(0) {
            if c == b'_' || c.is_ascii_alphanumeric() || c >= 0x80 {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn line_comment(&mut self) {
        let start = self.pos;
        // `///` is doc unless it is `////…` (a plain rule line); `//!` is doc.
        let doc = (self.peek(2) == Some(b'/') && self.peek(3) != Some(b'/'))
            || self.peek(2) == Some(b'!');
        while self.pos < self.src.len() && self.src[self.pos] != b'\n' {
            self.pos += 1;
        }
        self.push(TokenKind::LineComment { doc }, start);
    }

    fn block_comment(&mut self) {
        let start = self.pos;
        // `/**/` is empty-plain; `/**x` and `/*!` are doc.
        let doc = (self.peek(2) == Some(b'*') && self.peek(3) != Some(b'/'))
            || self.peek(2) == Some(b'!');
        self.pos += 2;
        let mut depth = 1usize;
        while self.pos < self.src.len() && depth > 0 {
            if self.src[self.pos] == b'/' && self.peek(1) == Some(b'*') {
                depth += 1;
                self.pos += 2;
            } else if self.src[self.pos] == b'*' && self.peek(1) == Some(b'/') {
                depth -= 1;
                self.pos += 2;
            } else {
                self.pos += 1;
            }
        }
        self.push(TokenKind::BlockComment { doc }, start);
    }

    /// Is `r`/`br` at the current position followed by a raw-string opener
    /// (`"` or `#…#"`), starting the check `ahead` bytes in?
    fn raw_string_follows(&self, ahead: usize) -> bool {
        let mut i = ahead;
        while self.peek(i) == Some(b'#') {
            i += 1;
        }
        self.peek(i) == Some(b'"')
    }

    /// Lexes `r"…"` / `r#"…"#` (call with `prefix_len` = length of `r` or
    /// `br` before the hashes).
    fn raw_string(&mut self, prefix_len: usize) {
        let start = self.pos;
        self.pos += prefix_len;
        let mut hashes = 0usize;
        while self.peek(0) == Some(b'#') {
            hashes += 1;
            self.pos += 1;
        }
        self.pos += 1; // opening quote
        loop {
            match self.peek(0) {
                None => break,
                Some(b'"') => {
                    // Need `hashes` hash marks to close.
                    let mut ok = true;
                    for h in 0..hashes {
                        if self.peek(1 + h) != Some(b'#') {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        self.pos += 1 + hashes;
                        break;
                    }
                    self.pos += 1;
                }
                Some(_) => self.pos += 1,
            }
        }
        self.push(TokenKind::Str, start);
    }

    /// Dispatches the `b` prefix: `b"…"`, `br"…"`, `b'x'`, or a plain
    /// identifier starting with `b`.
    fn byte_prefixed(&mut self) {
        if self.peek(1) == Some(b'"') {
            let start = self.pos;
            self.pos += 1;
            self.string_body();
            self.push(TokenKind::Str, start);
        } else if self.peek(1) == Some(b'r') && self.raw_string_follows(2) {
            self.raw_string(2);
        } else if self.peek(1) == Some(b'\'') {
            let start = self.pos;
            self.pos += 1;
            self.char_body();
            self.push(TokenKind::Char, start);
        } else {
            let start = self.pos;
            self.eat_ident();
            self.push(TokenKind::Ident, start);
        }
    }

    fn string(&mut self) {
        let start = self.pos;
        self.string_body();
        self.push(TokenKind::Str, start);
    }

    /// Consumes a `"…"` body starting at the opening quote.
    fn string_body(&mut self) {
        self.pos += 1;
        while let Some(c) = self.peek(0) {
            match c {
                b'\\' => self.pos += 2,
                b'"' => {
                    self.pos += 1;
                    return;
                }
                _ => self.pos += 1,
            }
        }
    }

    /// Consumes a `'…'` body starting at the opening quote. Only called
    /// when the content provably is a char (not a lifetime).
    fn char_body(&mut self) {
        self.pos += 1; // opening quote
        match self.peek(0) {
            Some(b'\\') => {
                self.pos += 2;
                // `\u{…}` escapes run to the closing brace.
                while let Some(c) = self.peek(0) {
                    if c == b'\'' {
                        break;
                    }
                    self.pos += 1;
                }
            }
            Some(_) => self.pos += 1,
            None => return,
        }
        if self.peek(0) == Some(b'\'') {
            self.pos += 1;
        }
    }

    /// Disambiguates `'a` (lifetime) from `'a'` / `'\n'` / `'"'` (char).
    fn quote(&mut self) {
        let start = self.pos;
        if self.ident_start(1) {
            // `'x…`: char literal iff a quote closes right after one
            // identifier-ish run of length 1 (`'a'`), otherwise lifetime
            // (`'a`, `'static`). Longer runs like `'ab'` are not valid Rust;
            // treat as lifetime and let the compiler complain.
            if self.peek(2) == Some(b'\'') {
                self.char_body();
                self.push(TokenKind::Char, start);
                return;
            }
            self.pos += 1;
            self.eat_ident();
            self.push(TokenKind::Lifetime, start);
            return;
        }
        // `'\…'`, `'"'`, `'('` … — a char literal.
        self.char_body();
        self.push(TokenKind::Char, start);
    }

    fn number(&mut self) {
        let start = self.pos;
        let mut float = false;
        if self.peek(0) == Some(b'0')
            && matches!(self.peek(1), Some(b'x' | b'X' | b'b' | b'B' | b'o' | b'O'))
        {
            self.pos += 2;
            while matches!(self.peek(0), Some(c) if c.is_ascii_alphanumeric() || c == b'_') {
                self.pos += 1;
            }
            self.push(TokenKind::Int, start);
            return;
        }
        self.eat_digits();
        // A fractional part — but never swallow `..` (range) or `.method()`.
        if self.peek(0) == Some(b'.')
            && self.peek(1) != Some(b'.')
            && !self.ident_start(1)
        {
            float = true;
            self.pos += 1;
            self.eat_digits();
        }
        if matches!(self.peek(0), Some(b'e' | b'E'))
            && (matches!(self.peek(1), Some(c) if c.is_ascii_digit())
                || (matches!(self.peek(1), Some(b'+' | b'-'))
                    && matches!(self.peek(2), Some(c) if c.is_ascii_digit())))
        {
            float = true;
            self.pos += 1;
            if matches!(self.peek(0), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            self.eat_digits();
        }
        // Type suffix (`1.0f64`, `3usize`).
        if self.ident_start(0) {
            let suffix_start = self.pos;
            self.eat_ident();
            let sfx = &self.src[suffix_start..self.pos];
            if sfx.starts_with(b"f32") || sfx.starts_with(b"f64") {
                float = true;
            }
        }
        self.push(if float { TokenKind::Float } else { TokenKind::Int }, start);
    }

    fn eat_digits(&mut self) {
        while matches!(self.peek(0), Some(c) if c.is_ascii_digit() || c == b'_') {
            self.pos += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src)
            .into_iter()
            .map(|t| (t.kind, t.text(src).to_string()))
            .collect()
    }

    #[test]
    fn idents_and_puncts() {
        let ts = kinds("let x = a.b();");
        let texts: Vec<&str> = ts.iter().map(|(_, s)| s.as_str()).collect();
        assert_eq!(texts, ["let", "x", "=", "a", ".", "b", "(", ")", ";"]);
    }

    #[test]
    fn banned_names_inside_strings_are_strings() {
        let ts = kinds(r#"let s = "HashMap::new() and Instant::now()";"#);
        assert!(ts.iter().all(|(k, s)| *k != TokenKind::Ident || !s.contains("HashMap")));
        assert_eq!(ts.iter().filter(|(k, _)| *k == TokenKind::Str).count(), 1);
    }

    #[test]
    fn raw_strings_with_hashes() {
        let src = r####"let s = r#"quote " inside, even HashMap"# ;"####;
        let ts = kinds(src);
        let strs: Vec<&str> = ts
            .iter()
            .filter(|(k, _)| *k == TokenKind::Str)
            .map(|(_, s)| s.as_str())
            .collect();
        assert_eq!(strs, [r##"r#"quote " inside, even HashMap"#"##]);
    }

    #[test]
    fn nested_block_comments() {
        let ts = kinds("a /* outer /* inner */ still outer */ b");
        let texts: Vec<&str> = ts
            .iter()
            .filter(|(k, _)| !matches!(k, TokenKind::BlockComment { .. }))
            .map(|(_, s)| s.as_str())
            .collect();
        assert_eq!(texts, ["a", "b"]);
        assert_eq!(
            ts.iter()
                .filter(|(k, _)| matches!(k, TokenKind::BlockComment { .. }))
                .count(),
            1
        );
    }

    #[test]
    fn char_literals_do_not_eat_the_file() {
        // A double-quote char literal must not open a string.
        let ts = kinds("let q = '\"'; let x = unwrap;");
        assert!(ts.iter().any(|(k, s)| *k == TokenKind::Char && s == "'\"'"));
        assert!(ts.iter().any(|(k, s)| *k == TokenKind::Ident && s == "unwrap"));
    }

    #[test]
    fn lifetimes_are_not_chars() {
        let ts = kinds("fn f<'a>(x: &'a str) -> &'static str { x }");
        let lifetimes: Vec<&str> = ts
            .iter()
            .filter(|(k, _)| *k == TokenKind::Lifetime)
            .map(|(_, s)| s.as_str())
            .collect();
        assert_eq!(lifetimes, ["'a", "'a", "'static"]);
    }

    #[test]
    fn escaped_quote_char() {
        let ts = kinds(r"let q = '\''; done");
        assert!(ts.iter().any(|(k, s)| *k == TokenKind::Char && s == r"'\''"));
        assert!(ts.iter().any(|(k, s)| *k == TokenKind::Ident && s == "done"));
    }

    #[test]
    fn doc_comments_classified() {
        let ts = kinds("/// doc\n//! inner\n// plain\n//// rule\nx");
        let docs: Vec<bool> = ts
            .iter()
            .filter_map(|(k, _)| match k {
                TokenKind::LineComment { doc } => Some(*doc),
                _ => None,
            })
            .collect();
        assert_eq!(docs, [true, true, false, false]);
    }

    #[test]
    fn numbers_and_ranges() {
        let ts = kinds("0..10 1.5 0x1F 1e-3 x.0");
        let nums: Vec<(TokenKind, &str)> = ts
            .iter()
            .filter(|(k, _)| matches!(k, TokenKind::Int | TokenKind::Float))
            .map(|(k, s)| (*k, s.as_str()))
            .collect();
        assert_eq!(
            nums,
            [
                (TokenKind::Int, "0"),
                (TokenKind::Int, "10"),
                (TokenKind::Float, "1.5"),
                (TokenKind::Int, "0x1F"),
                (TokenKind::Float, "1e-3"),
                (TokenKind::Int, "0"),
            ]
        );
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let ts = kinds(r##"b"bytes" br#"raw"# b'x' banana"##);
        assert_eq!(ts.iter().filter(|(k, _)| *k == TokenKind::Str).count(), 2);
        assert!(ts.iter().any(|(k, s)| *k == TokenKind::Char && s == "b'x'"));
        assert!(ts.iter().any(|(k, s)| *k == TokenKind::Ident && s == "banana"));
    }

    #[test]
    fn raw_identifiers() {
        let ts = kinds("r#fn r#type normal");
        let idents: Vec<&str> = ts
            .iter()
            .filter(|(k, _)| *k == TokenKind::Ident)
            .map(|(_, s)| s.as_str())
            .collect();
        assert_eq!(idents, ["r#fn", "r#type", "normal"]);
    }
}
