//! Uncertainty-driven adaptive resurvey.
//!
//! The paper flies a *fixed* even lattice. With a kriging confidence layer
//! ([`RemGrid::generate_with_confidence`]) the toolchain can do better:
//! after an initial sparse survey, send the UAV back to exactly the places
//! the map is least certain about. This module picks those follow-up
//! waypoints by greedy *uncertainty-mass capture*: each pick maximizes the
//! total uncertainty within its influence radius, and the uncertainty it
//! captures is discounted before the next pick. Compared with picking the
//! raw highest-σ cells (which all sit on the volume boundary, where kriging
//! σ always peaks), mass capture places waypoints at the *centers* of
//! uncertain regions and spreads successive picks across distinct blind
//! spots — the standard greedy design for sequential variance reduction.

use aerorem_spatial::Vec3;

use crate::rem::RemGrid;

/// Selects up to `k` follow-up waypoints by greedy uncertainty-mass
/// capture over the summed sigma grids, enforcing a minimum pairwise
/// separation.
///
/// Each candidate cell is scored by the kernel-weighted uncertainty it
/// would capture, `Σ_j w_j · exp(−‖c − j‖² / r²)`, where the influence
/// radius `r` is the larger of `min_separation_m` and the equal-share
/// radius `(volume / k)^(1/3)`; after a pick, captured mass is discounted
/// by `1 − exp(−d²/r²)` so the next pick targets a different blind spot.
///
/// All grids must share one lattice (generate them at one resolution).
/// Returns fewer than `k` points when the separation constraint (or
/// exhausted uncertainty mass) stops the selection early, and an empty
/// vector when `sigma_grids` is empty or shapes disagree.
///
/// # Panics
///
/// Panics if `min_separation_m` is negative.
pub fn select_uncertain_waypoints(
    sigma_grids: &[RemGrid],
    k: usize,
    min_separation_m: f64,
) -> Vec<Vec3> {
    assert!(min_separation_m >= 0.0, "separation must be non-negative");
    let Some(first) = sigma_grids.first() else {
        return Vec::new();
    };
    if sigma_grids
        .iter()
        .any(|g| g.dims() != first.dims() || g.volume() != first.volume())
    {
        return Vec::new();
    }
    if k == 0 {
        return Vec::new();
    }
    // Total uncertainty per cell.
    let mut cells: Vec<(Vec3, f64)> = first.cells().collect();
    for g in &sigma_grids[1..] {
        for ((_, total), (_, v)) in cells.iter_mut().zip(g.cells()) {
            *total += v;
        }
    }
    // Influence radius: half the radius of a waypoint's equal share of the
    // volume. Wider kernels drag every pick toward the volume centroid;
    // narrower ones degenerate to raw argmax-σ (boundary-hugging).
    let size = first.volume().size();
    let share_radius = (size.x * size.y * size.z / k as f64).cbrt();
    let radius = min_separation_m.max(0.5 * share_radius).max(1e-9);
    let inv_r2 = 1.0 / (radius * radius);

    let positions: Vec<Vec3> = cells.iter().map(|&(p, _)| p).collect();
    let mut mass: Vec<f64> = cells.iter().map(|&(_, w)| w.max(0.0)).collect();
    let mut picked: Vec<Vec3> = Vec::with_capacity(k);
    while picked.len() < k {
        let mut best: Option<(usize, f64)> = None;
        for (i, &p) in positions.iter().enumerate() {
            if !picked.iter().all(|q| q.distance(p) >= min_separation_m) {
                continue;
            }
            let captured: f64 = positions
                .iter()
                .zip(&mass)
                .map(|(&q, &w)| w * (-p.distance(q).powi(2) * inv_r2).exp())
                .sum();
            if best.is_none_or(|(_, s)| captured > s) {
                best = Some((i, captured));
            }
        }
        let Some((i, captured)) = best else { break };
        if captured <= 0.0 {
            break;
        }
        let c = positions[i];
        picked.push(c);
        for (&q, w) in positions.iter().zip(mass.iter_mut()) {
            *w *= 1.0 - (-c.distance(q).powi(2) * inv_r2).exp();
        }
    }
    picked
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::{preprocess, PreprocessConfig};
    use aerorem_mission::{Sample, SampleSet};
    use aerorem_ml::kriging::{KrigingConfig, OrdinaryKriging};
    use aerorem_ml::Regressor as _;
    use aerorem_propagation::ap::{MacAddress, Ssid};
    use aerorem_propagation::WifiChannel;
    use aerorem_simkit::SimTime;
    use aerorem_spatial::Aabb;
    use aerorem_uav::UavId;

    /// Samples concentrated in the low-x half: uncertainty must peak in the
    /// unsampled high-x half.
    fn sigma_grid() -> RemGrid {
        let volume = Aabb::paper_volume();
        let mut set = SampleSet::new();
        for i in 0..40 {
            let pos = volume.lerp_point(
                (i % 5) as f64 / 10.0, // x ∈ [0, 0.4] of the volume only
                ((i / 5) % 4) as f64 / 3.0,
                (i / 20) as f64 / 2.0,
            );
            set.push(Sample {
                uav: UavId(0),
                waypoint_index: i,
                position: pos,
                true_position: pos,
                ssid: Ssid::new("net"),
                mac: MacAddress::from_index(1),
                channel: WifiChannel::new(6).unwrap(),
                rssi_dbm: (-60.0 - 3.0 * pos.x - pos.y) as i32,
                timestamp: SimTime::ZERO,
            });
        }
        let (data, layout, _) = preprocess(&set, &PreprocessConfig::paper()).unwrap();
        let mut ok = OrdinaryKriging::new(KrigingConfig::default());
        ok.fit(&data.x, &data.y).unwrap();
        let (_, sigma) = RemGrid::generate_with_confidence(
            &ok,
            &layout,
            volume,
            0.4,
            MacAddress::from_index(1),
        )
        .unwrap();
        sigma
    }

    #[test]
    fn picks_land_in_the_unsampled_region() {
        let sigma = sigma_grid();
        let picks = select_uncertain_waypoints(&[sigma], 6, 0.5);
        assert_eq!(picks.len(), 6);
        // Samples cover x ≲ 1.5 m; the blind half is x ≳ 2 m.
        let mean_x = picks.iter().map(|p| p.x).sum::<f64>() / picks.len() as f64;
        assert!(
            mean_x > 2.0,
            "uncertain picks should sit in the unsampled half, centroid x {mean_x}"
        );
    }

    #[test]
    fn separation_constraint_is_enforced() {
        let sigma = sigma_grid();
        let picks = select_uncertain_waypoints(&[sigma], 20, 2.0);
        for (i, a) in picks.iter().enumerate() {
            for b in picks.iter().skip(i + 1) {
                assert!(a.distance(*b) >= 2.0, "{a} and {b} too close");
            }
        }
        // A 2 m separation exhausts the 3.7x3.2x2.1 m volume well before
        // 20 picks.
        assert!(picks.len() < 20);
        assert!(!picks.is_empty());
    }

    #[test]
    fn degenerate_inputs() {
        assert!(select_uncertain_waypoints(&[], 5, 0.5).is_empty());
        let sigma = sigma_grid();
        assert!(select_uncertain_waypoints(std::slice::from_ref(&sigma), 0, 0.5).is_empty());
        // Zero separation: picks = k highest cells.
        let picks = select_uncertain_waypoints(&[sigma], 3, 0.0);
        assert_eq!(picks.len(), 3);
    }
}
