//! The end-to-end pipeline: campaign → preprocessing → models → REM.

use rand::Rng;

use aerorem_mission::campaign::{Campaign, CampaignConfig, CampaignReport};
use aerorem_ml::dataset::Dataset;
use aerorem_ml::{MlError, Regressor};
use aerorem_propagation::ap::MacAddress;
use aerorem_spatial::Vec3;

use crate::exec::ExecPolicy;
use crate::features::{preprocess_with, FeatureLayout, PreprocessConfig, PreprocessReport};
use crate::instrument::Instrumentation;
use crate::models::{evaluate_all_with, ModelKind, ModelScore};
use crate::rem::RemGrid;

/// Pipeline configuration.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// The data-collection campaign to fly.
    pub campaign: CampaignConfig,
    /// Sample filtering (paper: drop MACs with < 16 samples).
    pub preprocess: PreprocessConfig,
    /// Models to compare on the 75/25 split (the Figure-8 lineup).
    pub eval_models: Vec<ModelKind>,
    /// The model fitted on the *full* dataset for the final REM.
    pub rem_model: ModelKind,
    /// REM lattice resolution in meters.
    pub rem_resolution_m: f64,
}

impl PipelineConfig {
    /// The paper's full demo: 2 UAVs × 36 waypoints, Figure-8 model lineup,
    /// the best kNN for the final map at 25 cm resolution.
    ///
    /// # Examples
    ///
    /// ```
    /// use aerorem_core::models::ModelKind;
    /// use aerorem_core::pipeline::PipelineConfig;
    ///
    /// let config = PipelineConfig::paper_demo();
    /// assert_eq!(config.eval_models, ModelKind::PAPER_FIGURE8.to_vec());
    /// assert_eq!(config.rem_model, ModelKind::KnnScaled16);
    /// assert_eq!(config.rem_resolution_m, 0.25);
    /// // The paper's "MACs with less than 16 samples were dropped".
    /// assert_eq!(config.preprocess.min_samples_per_mac, 16);
    /// ```
    pub fn paper_demo() -> Self {
        PipelineConfig {
            campaign: CampaignConfig::paper_demo(),
            preprocess: PreprocessConfig::paper(),
            eval_models: ModelKind::PAPER_FIGURE8.to_vec(),
            rem_model: ModelKind::KnnScaled16,
            rem_resolution_m: 0.25,
        }
    }
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self::paper_demo()
    }
}

/// Everything the pipeline produced.
pub struct PipelineResult {
    /// The flown campaign (samples, legs, ground-truth environment).
    pub campaign: CampaignReport,
    /// Retention statistics.
    pub preprocess_report: PreprocessReport,
    /// Feature layout of the dataset.
    pub layout: FeatureLayout,
    /// The preprocessed dataset.
    pub dataset: Dataset,
    /// Figure-8 style scores (75/25 split).
    pub scores: Vec<ModelScore>,
    /// Which model the final REM uses.
    pub rem_model_kind: ModelKind,
    /// Per-stage wall-clock timings and data-flow counters for this run.
    pub instrumentation: Instrumentation,
    /// The REM model fitted on the full dataset.
    model: Box<dyn Regressor>,
    /// REM resolution for [`PipelineResult::generate_rem`].
    rem_resolution_m: f64,
    /// Execution policy for downstream REM generation.
    exec_policy: ExecPolicy,
}

impl std::fmt::Debug for PipelineResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PipelineResult")
            .field("samples", &self.campaign.samples.len())
            .field("retained", &self.preprocess_report.retained_samples)
            .field("scores", &self.scores)
            .field("rem_model", &self.rem_model_kind)
            .finish()
    }
}

impl PipelineResult {
    /// Predicts RSS (dBm) of `mac` at an arbitrary 3D position — the
    /// toolchain's headline capability: signal quality "at locations not
    /// visited by the UAVs".
    ///
    /// # Errors
    ///
    /// Returns [`MlError`] for MACs dropped in preprocessing.
    pub fn predict(&self, position: Vec3, mac: MacAddress) -> Result<f64, MlError> {
        let row = self.layout.encode_query(position, mac)?;
        self.model.predict_one(&row)
    }

    /// The retained MAC with the highest mean observed RSS — a convenient
    /// default subject for maps and examples.
    pub fn strongest_mac(&self) -> Option<MacAddress> {
        let macs = self.layout.macs();
        let mut best: Option<(MacAddress, f64)> = None;
        for mac in macs {
            let mut sum = 0.0;
            let mut n = 0u32;
            for s in self.campaign.samples.iter().filter(|s| s.mac == mac) {
                sum += f64::from(s.rssi_dbm);
                n += 1;
            }
            if n == 0 {
                continue;
            }
            let mean = sum / f64::from(n);
            if best.is_none_or(|(_, b)| mean > b) {
                best = Some((mac, mean));
            }
        }
        best.map(|(m, _)| m)
    }

    /// Materializes the full 3D REM for one MAC at the configured
    /// resolution.
    ///
    /// # Errors
    ///
    /// Propagates estimator errors.
    pub fn generate_rem(&self, mac: MacAddress) -> Result<RemGrid, MlError> {
        RemGrid::generate_with(
            self.model.as_ref(),
            &self.layout,
            self.campaign.plan.volume,
            self.rem_resolution_m,
            mac,
            self.exec_policy,
        )
    }

    /// [`PipelineResult::generate_rem`] recording the `rem_encode` /
    /// `rem_predict` stage timings and row counters on `inst` — the CLI
    /// uses this to report lattice voxels per second per stage.
    ///
    /// # Errors
    ///
    /// Propagates estimator errors.
    pub fn generate_rem_instrumented(
        &self,
        mac: MacAddress,
        inst: &mut Instrumentation,
    ) -> Result<RemGrid, MlError> {
        RemGrid::generate_instrumented(
            self.model.as_ref(),
            &self.layout,
            self.campaign.plan.volume,
            self.rem_resolution_m,
            mac,
            self.exec_policy,
            inst,
        )
    }

    /// Simulation-only validation: RMSE between the model's predictions and
    /// the *ground-truth* mean RSS surface at `n_points` random unvisited
    /// positions (per retained MAC, pooled).
    ///
    /// # Errors
    ///
    /// Propagates estimator errors.
    pub fn ground_truth_rmse<R: Rng>(&self, n_points: usize, rng: &mut R) -> Result<f64, MlError> {
        let volume = self.campaign.plan.volume;
        let mut se = 0.0;
        let mut count = 0usize;
        let macs = self.layout.macs();
        for _ in 0..n_points {
            let p = volume.lerp_point(rng.gen(), rng.gen(), rng.gen());
            for &mac in &macs {
                let truth = match self.campaign.environment.access_point(mac) {
                    Some(ap) => self.campaign.environment.mean_rss(ap, p),
                    None => continue,
                };
                // Only compare where the AP is actually audible; the model
                // never saw sub-noise-floor samples.
                if truth < -90.0 {
                    continue;
                }
                let pred = self.predict(p, mac)?;
                se += (pred - truth) * (pred - truth);
                count += 1;
            }
        }
        if count == 0 {
            return Err(MlError::Numerical(
                "no audible ground-truth points to compare".into(),
            ));
        }
        Ok((se / count as f64).sqrt())
    }

    /// Formats the Figure-8 table.
    pub fn figure8_table(&self) -> String {
        let mut s = String::from("model                          RMSE [dBm]\n");
        for score in &self.scores {
            s.push_str(&format!("{:<30} {:>8.4}\n", score.kind.label(), score.rmse_dbm));
        }
        s
    }
}

/// The pipeline runner.
#[derive(Debug, Clone)]
pub struct RemPipeline {
    config: PipelineConfig,
    policy: ExecPolicy,
}

impl RemPipeline {
    /// Creates a pipeline for the given configuration under the default
    /// execution policy (parallel when the `parallel` feature is on).
    pub fn new(config: PipelineConfig) -> Self {
        Self::with_policy(config, ExecPolicy::default())
    }

    /// Creates a pipeline with an explicit serial/parallel policy — both
    /// produce identical results for the same seed; only the stage timings
    /// in [`PipelineResult::instrumentation`] differ.
    pub fn with_policy(config: PipelineConfig, policy: ExecPolicy) -> Self {
        RemPipeline { config, policy }
    }

    /// Runs everything: fly the campaign, preprocess, evaluate the model
    /// zoo on a 75/25 split, then fit the REM model on the full dataset.
    /// Each stage's wall-clock time and the data-flow counters land in
    /// [`PipelineResult::instrumentation`].
    ///
    /// # Errors
    ///
    /// Returns [`MlError`] when preprocessing leaves no data or a model
    /// fails to fit.
    pub fn run<R: Rng>(&self, rng: &mut R) -> Result<PipelineResult, MlError> {
        let mut inst = Instrumentation::new();
        inst.label("exec", self.policy.label());
        inst.label("threads", self.policy.threads().to_string());
        let campaign = inst.time("campaign", || {
            Campaign::new(self.config.campaign.clone()).run(rng)
        });
        let (dataset, layout, preprocess_report) = inst.time("preprocess", || {
            preprocess_with(&campaign.samples, &self.config.preprocess, self.policy)
        })?;
        let scores = inst.time("evaluate_models", || {
            evaluate_all_with(&self.config.eval_models, &dataset, &layout, rng, self.policy)
        })?;
        let model = inst.time("fit_rem_model", || {
            let mut model = self.config.rem_model.build(&layout)?;
            let xm = aerorem_ml::FeatureMatrix::from_rows(&dataset.x)
                .map_err(|_| MlError::EmptyTrainingSet)?;
            model.fit_batch(&xm, &dataset.y)?;
            Ok::<_, MlError>(model)
        })?;
        let (lc_hits, lc_misses) = campaign.environment.link_cache_stats();
        inst.count("link_cache_hits", lc_hits);
        inst.count("link_cache_misses", lc_misses);
        // Fault-recovery counters: how much the retry/reassembly machinery
        // had to work, and what was still lost (ISSUE: honest loss split).
        let (mut retries, mut recovered, mut faults) = (0u64, 0u64, 0u64);
        let (mut lost, mut corrupted, mut dropped) = (0u64, 0u64, 0u64);
        for leg in &campaign.legs {
            retries += leg.scan_retries;
            recovered += leg.scans_recovered;
            faults += leg.receiver_faults;
            lost += leg.rows_lost;
            corrupted += leg.rows_corrupted;
            dropped += leg.packets_dropped;
        }
        inst.count("scan_retries", retries);
        inst.count("scans_recovered", recovered);
        inst.count("receiver_faults", faults);
        inst.count("rows_lost", lost);
        inst.count("rows_corrupted", corrupted);
        inst.count("packets_dropped", dropped);
        inst.count("raw_samples", campaign.samples.len() as u64);
        inst.count("retained_samples", preprocess_report.retained_samples as u64);
        inst.count("dropped_samples", preprocess_report.dropped_samples as u64);
        inst.count("retained_macs", preprocess_report.retained_macs as u64);
        inst.count("feature_dim", layout.dim() as u64);
        inst.count("models_evaluated", scores.len() as u64);
        Ok(PipelineResult {
            campaign,
            preprocess_report,
            layout,
            dataset,
            scores,
            rem_model_kind: self.config.rem_model,
            instrumentation: inst,
            model,
            rem_resolution_m: self.config.rem_resolution_m,
            exec_policy: self.policy,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aerorem_mission::plan::FleetPlan;
    use aerorem_simkit::SimDuration;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A reduced campaign so the unit test stays fast; the full demo runs
    /// in integration tests / the experiment harness.
    fn small() -> PipelineConfig {
        PipelineConfig {
            campaign: CampaignConfig {
                fleet_plan: FleetPlan {
                    fleet_size: 2,
                    total_waypoints: 16,
                    travel_time: SimDuration::from_secs(2),
                    scan_time: SimDuration::from_secs(2),
                },
                ..CampaignConfig::paper_demo()
            },
            preprocess: PreprocessConfig {
                min_samples_per_mac: 8,
            },
            eval_models: vec![ModelKind::MeanPerMac, ModelKind::Knn3, ModelKind::KnnScaled16],
            rem_model: ModelKind::KnnScaled16,
            rem_resolution_m: 0.5,
        }
    }

    #[test]
    fn pipeline_end_to_end() {
        let mut rng = StdRng::seed_from_u64(0x91AE);
        let result = RemPipeline::new(small()).run(&mut rng).unwrap();
        assert!(result.preprocess_report.retained_samples > 100);
        assert!(result.preprocess_report.retained_macs >= 5);
        assert_eq!(result.scores.len(), 3);
        // Predict at an unvisited location for the strongest AP.
        let mac = result.strongest_mac().unwrap();
        let p = result
            .predict(Vec3::new(1.234, 1.111, 0.777), mac)
            .unwrap();
        assert!((-95.0..=-20.0).contains(&p), "prediction {p} dBm");
        // REM generation works and covers the volume.
        let rem = result.generate_rem(mac).unwrap();
        assert!(rem.len() > 100);
        // Debug and the table render.
        assert!(format!("{result:?}").contains("scores"));
        let table = result.figure8_table();
        assert!(table.contains("RMSE"));
        assert!(table.contains("baseline"));
        // Instrumentation covers every stage and the data-flow counters.
        let inst = &result.instrumentation;
        for stage in ["campaign", "preprocess", "evaluate_models", "fit_rem_model"] {
            assert!(inst.stage(stage).is_some(), "missing stage {stage}");
        }
        assert_eq!(
            inst.counter("retained_samples"),
            Some(result.preprocess_report.retained_samples as u64)
        );
        assert!(inst.get_label("exec").is_some());
        assert!(inst.report().contains("total"));
    }

    #[test]
    fn ground_truth_validation_reasonable() {
        let mut rng = StdRng::seed_from_u64(0x6007);
        let result = RemPipeline::new(small()).run(&mut rng).unwrap();
        let rmse = result.ground_truth_rmse(50, &mut rng).unwrap();
        // Shadowing σ is 4 dB and sampling is sparse: single-digit dB error
        // against the hidden truth is the expected regime.
        assert!((1.0..15.0).contains(&rmse), "ground-truth RMSE {rmse}");
    }
}
