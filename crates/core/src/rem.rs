//! The radio environmental map itself: a 3D grid of predicted RSS.
//!
//! A REM "documents radio signal properties over a given geographic area"
//! (§I). [`RemGrid`] materializes one per MAC address from any fitted
//! estimator: a regular lattice of predicted RSS values over the volume,
//! queryable at arbitrary positions by nearest-cell lookup with trilinear
//! refinement left to the caller's estimator when exactness matters.

use serde::{Deserialize, Serialize};

use aerorem_ml::kriging::{KrigingCacheStats, KrigingScratch, OrdinaryKriging};
use aerorem_ml::{FeatureMatrix, MlError, Regressor};
use aerorem_propagation::ap::MacAddress;
use aerorem_spatial::{Aabb, Vec3};

use crate::exec::{self, ExecPolicy};
use crate::features::FeatureLayout;
use crate::instrument::Instrumentation;

/// Minimum voxels per chunk in the batched lattice fill. Chunks are the
/// unit of parallelism *and* of batch prediction: large enough to amortize
/// per-batch setup (buffer reuse, matrix-level kernels), small enough to
/// keep every worker thread busy on paper-scale lattices.
const MIN_BATCH_CHUNK: usize = 1024;

/// Preferred voxels per chunk once lattices grow large: caps chunk size so
/// the dynamic claimer keeps workers balanced on multi-million-voxel maps.
const MAX_BATCH_CHUNK: usize = 4096;

/// Chunk-sizing hint for the lattice fill. The resulting partition is a
/// pure function of the voxel count — identical under both policies and on
/// every machine — which is what keeps the batched fill bit-identical
/// across [`ExecPolicy`] arms: `predict_batch` is contractually
/// bit-identical per row, so only the partition could differ, and it never
/// does.
const REM_FILL_GRAN: exec::Granularity = exec::Granularity::new(MIN_BATCH_CHUNK, MAX_BATCH_CHUNK);

/// A regular 3D lattice of predicted RSS (dBm) for one transmitter.
///
/// # Examples
///
/// ```no_run
/// # use aerorem_core::rem::RemGrid;
/// # use aerorem_spatial::{Aabb, Vec3};
/// # fn demo(grid: RemGrid) {
/// let rss = grid.sample(Vec3::new(1.0, 1.0, 1.0)).unwrap();
/// println!("{} dBm at the query point", rss);
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RemGrid {
    mac: MacAddress,
    volume: Aabb,
    dims: (usize, usize, usize),
    /// Row-major `[z][y][x]` predictions in dBm.
    values: Vec<f64>,
}

impl RemGrid {
    /// Generates a REM by querying `model` at every cell center.
    ///
    /// `resolution_m` is the target cell edge length; each axis gets at
    /// least 2 cells.
    ///
    /// # Errors
    ///
    /// Propagates estimator errors (e.g. a MAC the layout dropped).
    ///
    /// # Panics
    ///
    /// Panics if `resolution_m` is not positive and finite.
    pub fn generate(
        model: &dyn Regressor,
        layout: &FeatureLayout,
        volume: Aabb,
        resolution_m: f64,
        mac: MacAddress,
    ) -> Result<Self, MlError> {
        Self::generate_with(model, layout, volume, resolution_m, mac, ExecPolicy::default())
    }

    /// [`RemGrid::generate`] with an explicit execution policy.
    ///
    /// This is the **batched** hot path: the lattice is split into
    /// fixed-size voxel chunks, each chunk is encoded into one contiguous
    /// [`FeatureMatrix`] and predicted through
    /// [`Regressor::predict_batch`], and [`ExecPolicy::Parallel`] fans the
    /// chunks out across worker threads. Chunks are reassembled in `[z][y][x]`
    /// order and `predict_batch` is contractually bit-identical to mapped
    /// `predict_one`, so all four combinations (serial/parallel ×
    /// per-voxel/batched) produce identical grids — the determinism test
    /// checks exactly that against [`RemGrid::generate_per_voxel_with`].
    ///
    /// # Errors
    ///
    /// Propagates estimator errors (e.g. a MAC the layout dropped).
    ///
    /// # Panics
    ///
    /// Panics if `resolution_m` is not positive and finite.
    pub fn generate_with(
        model: &dyn Regressor,
        layout: &FeatureLayout,
        volume: Aabb,
        resolution_m: f64,
        mac: MacAddress,
        policy: ExecPolicy,
    ) -> Result<Self, MlError> {
        let dims = Self::lattice_dims(volume, resolution_m);
        let chunks = Self::encode_chunks(layout, volume, mac, dims, policy)?;
        let values = Self::predict_chunks(model, &chunks, policy)?;
        Ok(RemGrid {
            mac,
            volume,
            dims,
            values,
        })
    }

    /// The pre-batching reference path: every voxel is encoded and
    /// predicted one at a time through [`Regressor::predict_one`]. Kept as
    /// the baseline the batched path must match bit-for-bit, and as the
    /// comparison arm of the `rem_lattice` bench.
    ///
    /// # Errors
    ///
    /// Propagates estimator errors (e.g. a MAC the layout dropped).
    ///
    /// # Panics
    ///
    /// Panics if `resolution_m` is not positive and finite.
    pub fn generate_per_voxel_with(
        model: &dyn Regressor,
        layout: &FeatureLayout,
        volume: Aabb,
        resolution_m: f64,
        mac: MacAddress,
        policy: ExecPolicy,
    ) -> Result<Self, MlError> {
        let (nx, ny, nz) = Self::lattice_dims(volume, resolution_m);
        let indices: Vec<usize> = (0..nx * ny * nz).collect();
        let values = exec::try_map_vec(policy, indices, |i| {
            let p = Self::voxel_center(volume, (nx, ny, nz), i);
            let row = layout.encode_query(p, mac)?;
            model.predict_one(&row)
        })?;
        Ok(RemGrid {
            mac,
            volume,
            dims: (nx, ny, nz),
            values,
        })
    }

    /// [`RemGrid::generate_with`] with per-stage instrumentation: records
    /// `rem_encode` / `rem_predict` wall time and `rem_encode_rows` /
    /// `rem_predict_rows` counters on `inst`, so callers can report
    /// rows-per-second per stage.
    ///
    /// # Errors
    ///
    /// Propagates estimator errors (e.g. a MAC the layout dropped).
    ///
    /// # Panics
    ///
    /// Panics if `resolution_m` is not positive and finite.
    pub fn generate_instrumented(
        model: &dyn Regressor,
        layout: &FeatureLayout,
        volume: Aabb,
        resolution_m: f64,
        mac: MacAddress,
        policy: ExecPolicy,
        inst: &mut Instrumentation,
    ) -> Result<Self, MlError> {
        let dims = Self::lattice_dims(volume, resolution_m);
        let total = dims.0 * dims.1 * dims.2;
        let rows = total as u64;
        inst.record_exec("rem_encode", exec::plan(policy, total, REM_FILL_GRAN));
        let chunks =
            inst.time("rem_encode", || Self::encode_chunks(layout, volume, mac, dims, policy))?;
        inst.record_exec(
            "rem_predict",
            exec::plan(policy, chunks.len(), exec::Granularity::per_item()),
        );
        inst.count("rem_encode_rows", rows);
        let values = inst.time("rem_predict", || Self::predict_chunks(model, &chunks, policy))?;
        inst.count("rem_predict_rows", rows);
        Ok(RemGrid {
            mac,
            volume,
            dims,
            values,
        })
    }

    /// Lattice dimensions for a volume at a target cell edge length; each
    /// axis gets at least 2 cells.
    fn lattice_dims(volume: Aabb, resolution_m: f64) -> (usize, usize, usize) {
        assert!(
            resolution_m > 0.0 && resolution_m.is_finite(),
            "resolution must be positive"
        );
        let size = volume.size();
        let nx = ((size.x / resolution_m).round() as usize).max(2);
        let ny = ((size.y / resolution_m).round() as usize).max(2);
        let nz = ((size.z / resolution_m).round() as usize).max(2);
        (nx, ny, nz)
    }

    /// Center position of flat voxel `i` in `[z][y][x]` order.
    fn voxel_center(volume: Aabb, (nx, ny, nz): (usize, usize, usize), i: usize) -> Vec3 {
        let ix = i % nx;
        let iy = (i / nx) % ny;
        let iz = i / (nx * ny);
        volume.lerp_point(
            (ix as f64 + 0.5) / nx as f64,
            (iy as f64 + 0.5) / ny as f64,
            (iz as f64 + 0.5) / nz as f64,
        )
    }

    /// Stage 1 of the batched fill: encodes the lattice into per-chunk
    /// contiguous feature matrices through the chunked executor. The chunk
    /// partition comes from [`REM_FILL_GRAN`] — a pure function of the
    /// voxel count — so both policies encode identical chunks and
    /// reassemble them in voxel order.
    fn encode_chunks(
        layout: &FeatureLayout,
        volume: Aabb,
        mac: MacAddress,
        dims: (usize, usize, usize),
        policy: ExecPolicy,
    ) -> Result<Vec<FeatureMatrix>, MlError> {
        let total = dims.0 * dims.1 * dims.2;
        let indices: Vec<usize> = (0..total).collect();
        exec::try_map_chunks(policy, REM_FILL_GRAN, &indices, |_, chunk| {
            let mut fm = FeatureMatrix::with_capacity(layout.dim(), chunk.len());
            for &i in chunk {
                let p = Self::voxel_center(volume, dims, i);
                fm.push_row_with(|out| layout.encode_query_into(p, mac, out))?;
            }
            Ok(fm)
        })
    }

    /// Stage 2 of the batched fill: predicts each chunk matrix through
    /// [`Regressor::predict_batch`] (one matrix = one work item, since each
    /// already holds [`MIN_BATCH_CHUNK`]+ rows) and flattens back into
    /// voxel order.
    fn predict_chunks(
        model: &dyn Regressor,
        chunks: &[FeatureMatrix],
        policy: ExecPolicy,
    ) -> Result<Vec<f64>, MlError> {
        let pool = exec::ScratchPool::new(|| ());
        let predicted = exec::try_map_vec_with(
            policy,
            exec::Granularity::per_item(),
            &pool,
            chunks,
            |(), fm| model.predict_batch(fm),
        )?;
        Ok(predicted.into_iter().flatten().collect())
    }

    /// The transmitter this map describes.
    pub fn mac(&self) -> MacAddress {
        self.mac
    }

    /// The mapped volume.
    pub fn volume(&self) -> Aabb {
        self.volume
    }

    /// Grid dimensions `(nx, ny, nz)`.
    pub fn dims(&self) -> (usize, usize, usize) {
        self.dims
    }

    /// The raw row-major `[z][y][x]` cell values in dBm.
    ///
    /// Flat index `i` maps to `ix = i % nx`, `iy = (i / nx) % ny`,
    /// `iz = i / (nx * ny)` — the layout the snapshot codec
    /// (`docs/SNAPSHOT_FORMAT.md`) and the serving layer's octree index
    /// consume directly.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Reassembles a grid from its parts — the inverse of
    /// ([`RemGrid::mac`], [`RemGrid::volume`], [`RemGrid::dims`],
    /// [`RemGrid::values`]), used by the snapshot decoder and by synthetic
    /// grid builders in benches.
    ///
    /// Returns `None` when any dimension is zero or when `values.len()`
    /// does not equal `nx * ny * nz`, so a decoded grid is always
    /// internally consistent.
    pub fn from_parts(
        mac: MacAddress,
        volume: Aabb,
        dims: (usize, usize, usize),
        values: Vec<f64>,
    ) -> Option<Self> {
        let (nx, ny, nz) = dims;
        if nx == 0 || ny == 0 || nz == 0 {
            return None;
        }
        let expect = nx.checked_mul(ny)?.checked_mul(nz)?;
        if values.len() != expect {
            return None;
        }
        Some(RemGrid {
            mac,
            volume,
            dims,
            values,
        })
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the grid is empty (never true for generated grids).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The predicted RSS of the cell containing (or nearest to) `p`.
    ///
    /// Returns `None` when `p` lies outside the volume.
    pub fn sample(&self, p: Vec3) -> Option<f64> {
        if !self.volume.contains(p) {
            return None;
        }
        Some(self.values[self.cell_index_of(p)])
    }

    /// The cell center positions and values, for export/plotting.
    pub fn cells(&self) -> impl Iterator<Item = (Vec3, f64)> + '_ {
        let (nx, ny, nz) = self.dims;
        (0..self.values.len()).map(move |i| {
            let ix = i % nx;
            let iy = (i / nx) % ny;
            let iz = i / (nx * ny);
            let p = self.volume.lerp_point(
                (ix as f64 + 0.5) / nx as f64,
                (iy as f64 + 0.5) / ny as f64,
                (iz as f64 + 0.5) / nz as f64,
            );
            (p, self.values[i])
        })
    }

    /// Minimum predicted RSS over the map.
    pub fn min_dbm(&self) -> f64 {
        self.values.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Maximum predicted RSS over the map.
    pub fn max_dbm(&self) -> f64 {
        self.values
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Mean predicted RSS over the map.
    pub fn mean_dbm(&self) -> f64 {
        self.values.iter().sum::<f64>() / self.values.len() as f64
    }

    /// Generates a REM **and a matching uncertainty map** from a fitted
    /// ordinary-kriging estimator: the second grid holds the kriging
    /// standard deviation (dB) per cell — near zero at sampled locations,
    /// approaching the variogram sill far from any sample. The confidence
    /// layer tells a network planner where the map can be trusted and where
    /// more UAV sampling is needed.
    ///
    /// This is the serial per-voxel reference: one scratch (and therefore
    /// one factor cache) is hoisted across the whole lattice walk instead
    /// of being reallocated per voxel. The policy-parallel hot path is
    /// [`RemGrid::generate_with_variance`], which must match this output
    /// bit for bit.
    ///
    /// # Errors
    ///
    /// Propagates estimator errors.
    ///
    /// # Panics
    ///
    /// Panics if `resolution_m` is not positive and finite.
    pub fn generate_with_confidence(
        model: &OrdinaryKriging,
        layout: &FeatureLayout,
        volume: Aabb,
        resolution_m: f64,
        mac: MacAddress,
    ) -> Result<(Self, Self), MlError> {
        let (nx, ny, nz) = Self::lattice_dims(volume, resolution_m);
        let mut values = Vec::with_capacity(nx * ny * nz);
        let mut sigmas = Vec::with_capacity(nx * ny * nz);
        let mut scratch = KrigingScratch::new();
        let mut row = Vec::new();
        for i in 0..nx * ny * nz {
            let p = Self::voxel_center(volume, (nx, ny, nz), i);
            row.clear();
            layout.encode_query_into(p, mac, &mut row)?;
            let (pred, var) = model.predict_with_variance_with(&row, &mut scratch)?;
            values.push(pred);
            sigmas.push(var.sqrt());
        }
        let dims = (nx, ny, nz);
        Ok((
            RemGrid {
                mac,
                volume,
                dims,
                values,
            },
            RemGrid {
                mac,
                volume,
                dims,
                values: sigmas,
            },
        ))
    }

    /// [`RemGrid::generate_with_confidence`] at hardware speed: one
    /// policy-parallel pass produces the prediction grid and the
    /// uncertainty grid (kriging standard deviation, dB) together. The
    /// lattice is encoded into [`REM_FILL_GRAN`] chunks, each chunk is
    /// solved through [`OrdinaryKriging::predict_with_variance_with`] with
    /// one [`KrigingScratch`] per worker thread — so each worker carries a
    /// factor cache across its chunks and consecutive voxels sharing a
    /// neighbour set skip straight to the O(k²) back-substitution.
    ///
    /// Bit-identical to [`RemGrid::generate_with_confidence`] under both
    /// [`ExecPolicy`] arms: the chunk partition is policy-independent and
    /// cache hits are bit-identical to misses by construction.
    ///
    /// Records `rem_krige_predict` / `rem_krige_variance` stages plus
    /// `rem_krige_cache_hits` / `rem_krige_cache_misses` counters on
    /// `inst`, and returns the aggregated cache stats.
    ///
    /// # Errors
    ///
    /// Propagates estimator errors.
    ///
    /// # Panics
    ///
    /// Panics if `resolution_m` is not positive and finite.
    pub fn generate_with_variance(
        model: &OrdinaryKriging,
        layout: &FeatureLayout,
        volume: Aabb,
        resolution_m: f64,
        mac: MacAddress,
        policy: ExecPolicy,
        inst: &mut Instrumentation,
    ) -> Result<(Self, Self, KrigingCacheStats), MlError> {
        let dims = Self::lattice_dims(volume, resolution_m);
        let total = dims.0 * dims.1 * dims.2;
        inst.record_exec("rem_encode", exec::plan(policy, total, REM_FILL_GRAN));
        let chunks =
            inst.time("rem_encode", || Self::encode_chunks(layout, volume, mac, dims, policy))?;
        inst.count("rem_encode_rows", total as u64);
        // One chunk = one work item (it already holds MIN_BATCH_CHUNK+
        // rows); the worker's scratch persists across the chunks it claims.
        inst.record_exec(
            "rem_krige_predict",
            exec::plan(policy, chunks.len(), exec::Granularity::per_item()),
        );
        let pool = exec::ScratchPool::new(KrigingScratch::new);
        let pairs: Vec<(Vec<f64>, Vec<f64>)> = inst.time("rem_krige_predict", || {
            exec::try_map_vec_with(
                policy,
                exec::Granularity::per_item(),
                &pool,
                &chunks,
                |scratch, fm| {
                    let mut vals = Vec::with_capacity(fm.rows());
                    let mut vars = Vec::with_capacity(fm.rows());
                    for q in fm.iter() {
                        let (p, v) = model.predict_with_variance_with(q, scratch)?;
                        vals.push(p);
                        vars.push(v);
                    }
                    Ok((vals, vars))
                },
            )
        })?;
        let mut stats = KrigingCacheStats::default();
        for _ in 0..pool.idle() {
            stats.merge(pool.take().cache_stats());
        }
        inst.count("rem_krige_predict_rows", total as u64);
        inst.count("rem_krige_cache_hits", stats.hits);
        inst.count("rem_krige_cache_misses", stats.misses);
        // Materialize the two grids: flatten chunk outputs in voxel order
        // and map variances to standard deviations.
        let (values, sigmas) = inst.time("rem_krige_variance", || {
            let mut values = Vec::with_capacity(total);
            let mut sigmas = Vec::with_capacity(total);
            for (vals, vars) in &pairs {
                values.extend_from_slice(vals);
                sigmas.extend(vars.iter().map(|v| v.sqrt()));
            }
            (values, sigmas)
        });
        inst.count("rem_krige_variance_rows", total as u64);
        Ok((
            RemGrid {
                mac,
                volume,
                dims,
                values,
            },
            RemGrid {
                mac,
                volume,
                dims,
                values: sigmas,
            },
            stats,
        ))
    }

    /// Renders one horizontal slice of the map as an ASCII heat map —
    /// handy for eyeballing a REM in a terminal without plotting tools.
    ///
    /// `z` selects the slice (nearest cell layer); the glyph ramp runs
    /// `" .:-=+*#%@"` from the map's minimum to its maximum value. Returns
    /// `None` when `z` lies outside the volume.
    ///
    /// # Examples
    ///
    /// ```no_run
    /// # use aerorem_core::rem::RemGrid;
    /// # fn demo(rem: RemGrid) {
    /// println!("{}", rem.render_slice(1.0).unwrap());
    /// # }
    /// ```
    pub fn render_slice(&self, z: f64) -> Option<String> {
        if z < self.volume.min().z || z > self.volume.max().z {
            return None;
        }
        const RAMP: &[u8] = b" .:-=+*#%@";
        let (nx, ny, nz) = self.dims;
        let tz = (z - self.volume.min().z) / self.volume.size().z;
        let iz = ((tz * nz as f64) as usize).min(nz - 1);
        let lo = self.min_dbm();
        let span = (self.max_dbm() - lo).max(1e-9);
        let mut out = format!(
            "z = {z:.2} m  ({:.1} dBm = ' ', {:.1} dBm = '@')\n",
            lo,
            self.max_dbm()
        );
        // Render with y increasing upward, like a map.
        for iy in (0..ny).rev() {
            for ix in 0..nx {
                let v = self.values[iz * nx * ny + iy * nx + ix];
                let t = ((v - lo) / span).clamp(0.0, 1.0);
                let g = RAMP[((t * (RAMP.len() - 1) as f64).round()) as usize];
                out.push(g as char);
            }
            out.push('\n');
        }
        Some(out)
    }

    /// Exports the map as CSV (`x,y,z,rssi_dbm`, one row per cell) for
    /// plotting or GIS-style downstream tools.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("x,y,z,rssi_dbm\n");
        for (p, v) in self.cells() {
            out.push_str(&format!("{},{},{},{v:.2}\n", p.x, p.y, p.z));
        }
        out
    }

    fn cell_index_of(&self, p: Vec3) -> usize {
        let (nx, ny, nz) = self.dims;
        let lo = self.volume.min();
        let size = self.volume.size();
        let clamp_idx = |t: f64, n: usize| ((t * n as f64) as usize).min(n - 1);
        let ix = clamp_idx((p.x - lo.x) / size.x, nx);
        let iy = clamp_idx((p.y - lo.y) / size.y, ny);
        let iz = clamp_idx((p.z - lo.z) / size.z, nz);
        iz * nx * ny + iy * nx + ix
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::{preprocess, PreprocessConfig};
    use aerorem_mission::{Sample, SampleSet};
    use aerorem_ml::knn::KnnRegressor;
    use aerorem_propagation::ap::Ssid;
    use aerorem_propagation::WifiChannel;
    use aerorem_simkit::SimTime;
    use aerorem_uav::UavId;

    fn fitted_world() -> (KnnRegressor, FeatureLayout, Aabb) {
        let volume = Aabb::paper_volume();
        let mut set = SampleSet::new();
        for i in 0..100 {
            let pos = volume.lerp_point(
                (i % 5) as f64 / 4.0,
                ((i / 5) % 5) as f64 / 4.0,
                (i / 25) as f64 / 3.0,
            );
            set.push(Sample {
                uav: UavId(0),
                waypoint_index: i,
                position: pos,
                true_position: pos,
                ssid: Ssid::new("net"),
                mac: MacAddress::from_index(1),
                channel: WifiChannel::new(6).unwrap(),
                rssi_dbm: (-60.0 - 5.0 * pos.x) as i32,
                timestamp: SimTime::ZERO,
            });
        }
        let (data, layout, _) = preprocess(&set, &PreprocessConfig::paper()).unwrap();
        let mut knn = KnnRegressor::paper_tuned();
        knn.fit(&data.x, &data.y).unwrap();
        (knn, layout, volume)
    }

    #[test]
    fn generates_and_samples() {
        let (model, layout, volume) = fitted_world();
        let grid =
            RemGrid::generate(&model, &layout, volume, 0.5, MacAddress::from_index(1)).unwrap();
        assert!(!grid.is_empty());
        let (nx, ny, nz) = grid.dims();
        assert_eq!(grid.len(), nx * ny * nz);
        // In-volume query returns a plausible dBm.
        let v = grid.sample(volume.center()).unwrap();
        assert!((-90.0..=-50.0).contains(&v), "got {v}");
        // Out-of-volume query is None.
        assert!(grid.sample(Vec3::new(-5.0, 0.0, 0.0)).is_none());
    }

    #[test]
    fn map_reflects_spatial_gradient() {
        let (model, layout, volume) = fitted_world();
        let grid =
            RemGrid::generate(&model, &layout, volume, 0.4, MacAddress::from_index(1)).unwrap();
        // Training field decays with x: low-x cells are stronger.
        let left = grid.sample(volume.lerp_point(0.1, 0.5, 0.5)).unwrap();
        let right = grid.sample(volume.lerp_point(0.9, 0.5, 0.5)).unwrap();
        assert!(left > right, "left {left} vs right {right}");
        assert!(grid.min_dbm() <= grid.mean_dbm());
        assert!(grid.mean_dbm() <= grid.max_dbm());
    }

    #[test]
    fn cells_iterate_entire_volume() {
        let (model, layout, volume) = fitted_world();
        let grid =
            RemGrid::generate(&model, &layout, volume, 0.8, MacAddress::from_index(1)).unwrap();
        let cells: Vec<(Vec3, f64)> = grid.cells().collect();
        assert_eq!(cells.len(), grid.len());
        assert!(cells.iter().all(|(p, _)| volume.contains(*p)));
        // Cell lookup agrees with iteration.
        for (p, v) in cells.iter().take(10) {
            assert_eq!(grid.sample(*p), Some(*v));
        }
    }

    #[test]
    fn serial_and_parallel_grids_are_identical() {
        let (model, layout, volume) = fitted_world();
        let mac = MacAddress::from_index(1);
        let serial =
            RemGrid::generate_with(&model, &layout, volume, 0.3, mac, ExecPolicy::Serial).unwrap();
        let parallel =
            RemGrid::generate_with(&model, &layout, volume, 0.3, mac, ExecPolicy::Parallel)
                .unwrap();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn batched_and_per_voxel_grids_are_identical() {
        let (model, layout, volume) = fitted_world();
        let mac = MacAddress::from_index(1);
        for policy in [ExecPolicy::Serial, ExecPolicy::Parallel] {
            let batched =
                RemGrid::generate_with(&model, &layout, volume, 0.3, mac, policy).unwrap();
            let per_voxel =
                RemGrid::generate_per_voxel_with(&model, &layout, volume, 0.3, mac, policy)
                    .unwrap();
            assert_eq!(batched, per_voxel, "{policy}");
        }
    }

    #[test]
    fn instrumented_generation_records_stage_throughput() {
        let (model, layout, volume) = fitted_world();
        let mac = MacAddress::from_index(1);
        let mut inst = crate::instrument::Instrumentation::new();
        let grid = RemGrid::generate_instrumented(
            &model,
            &layout,
            volume,
            0.4,
            mac,
            ExecPolicy::Serial,
            &mut inst,
        )
        .unwrap();
        let plain =
            RemGrid::generate_with(&model, &layout, volume, 0.4, mac, ExecPolicy::Serial).unwrap();
        assert_eq!(grid, plain, "instrumentation must not change the map");
        assert!(inst.stage("rem_encode").is_some());
        assert!(inst.stage("rem_predict").is_some());
        assert_eq!(inst.counter("rem_encode_rows"), Some(grid.len() as u64));
        assert_eq!(inst.counter("rem_predict_rows"), Some(grid.len() as u64));
        assert!(inst.throughput("rem_predict", "rem_predict_rows").is_some());
    }

    #[test]
    fn fill_granularity_is_policy_independent() {
        // The chunk partition must be a pure function of the voxel count:
        // identical under both policies, bounded by the amortization floor
        // and the load-balance cap.
        for total in [1usize, 100, 50_000, 1_000_000] {
            let serial = exec::plan(ExecPolicy::Serial, total, REM_FILL_GRAN);
            let parallel = exec::plan(ExecPolicy::Parallel, total, REM_FILL_GRAN);
            assert_eq!(serial.chunk, parallel.chunk, "total={total}");
            assert_eq!(serial.chunks, parallel.chunks, "total={total}");
            assert!(
                (MIN_BATCH_CHUNK..=MAX_BATCH_CHUNK).contains(&serial.chunk),
                "total={total} chunk={}",
                serial.chunk
            );
        }
    }

    #[test]
    fn unknown_mac_propagates_error() {
        let (model, layout, volume) = fitted_world();
        let err = RemGrid::generate(&model, &layout, volume, 0.5, MacAddress::from_index(9));
        assert!(err.is_err());
    }

    #[test]
    #[should_panic(expected = "resolution")]
    fn zero_resolution_panics() {
        let (model, layout, volume) = fitted_world();
        let _ = RemGrid::generate(&model, &layout, volume, 0.0, MacAddress::from_index(1));
    }

    #[test]
    fn slice_rendering_shows_the_gradient() {
        let (model, layout, volume) = fitted_world();
        let grid =
            RemGrid::generate(&model, &layout, volume, 0.4, MacAddress::from_index(1)).unwrap();
        let art = grid.render_slice(1.0).unwrap();
        let rows: Vec<&str> = art.lines().skip(1).collect();
        assert_eq!(rows.len(), grid.dims().1);
        assert!(rows.iter().all(|r| r.len() == grid.dims().0));
        // Field decays with x: left columns darker glyphs (higher RSS) than
        // right. Compare glyph ramp indices at the row middle.
        const RAMP: &str = " .:-=+*#%@";
        let mid = rows[rows.len() / 2];
        let left = RAMP.find(mid.chars().next().unwrap()).unwrap();
        let right = RAMP.find(mid.chars().last().unwrap()).unwrap();
        assert!(left > right, "left {left} vs right {right} in {mid:?}");
        // Out-of-volume slice rejected.
        assert!(grid.render_slice(99.0).is_none());
    }

    #[test]
    fn csv_export_covers_all_cells() {
        let (model, layout, volume) = fitted_world();
        let grid =
            RemGrid::generate(&model, &layout, volume, 0.8, MacAddress::from_index(1)).unwrap();
        let csv = grid.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "x,y,z,rssi_dbm");
        assert_eq!(lines.len(), grid.len() + 1);
        // Every row parses back into four floats.
        for row in &lines[1..] {
            let fields: Vec<f64> = row.split(',').map(|f| f.parse().unwrap()).collect();
            assert_eq!(fields.len(), 4);
            assert!(volume.contains(Vec3::new(fields[0], fields[1], fields[2])));
        }
    }

    #[test]
    fn confidence_layer_tracks_sampling_density() {
        use aerorem_ml::kriging::{KrigingConfig, OrdinaryKriging};
        let (_, layout, volume) = fitted_world();
        // Refit a kriging model on the same preprocessed world.
        let volume2 = volume;
        let mut set = SampleSet::new();
        for i in 0..60 {
            let pos = volume2.lerp_point(
                (i % 5) as f64 / 4.0,
                ((i / 5) % 4) as f64 / 3.0,
                (i / 20) as f64 / 2.0,
            );
            set.push(Sample {
                uav: UavId(0),
                waypoint_index: i,
                position: pos,
                true_position: pos,
                ssid: Ssid::new("net"),
                mac: MacAddress::from_index(1),
                channel: WifiChannel::new(6).unwrap(),
                rssi_dbm: (-60.0 - 5.0 * pos.x) as i32,
                timestamp: SimTime::ZERO,
            });
        }
        let (data, layout2, _) =
            preprocess(&set, &PreprocessConfig::paper()).unwrap();
        let _ = layout;
        let mut ok = OrdinaryKriging::new(KrigingConfig::default());
        ok.fit(&data.x, &data.y).unwrap();
        let (rem, sigma) = RemGrid::generate_with_confidence(
            &ok,
            &layout2,
            volume2,
            0.5,
            MacAddress::from_index(1),
        )
        .unwrap();
        assert_eq!(rem.dims(), sigma.dims());
        // Uncertainty is non-negative everywhere and not identically zero.
        assert!(sigma.min_dbm() >= 0.0);
        assert!(sigma.max_dbm() > 0.0);
        // The value layer still reflects the field.
        assert!(rem.mean_dbm() < -50.0);
    }

    /// A fitted kriging model over a deterministic low-dimensional world
    /// (one MAC keeps the feature dimension inside the KD-tree gate).
    fn fitted_kriging_world() -> (
        aerorem_ml::kriging::OrdinaryKriging,
        FeatureLayout,
        Aabb,
    ) {
        use aerorem_ml::kriging::{KrigingConfig, OrdinaryKriging};
        let volume = Aabb::paper_volume();
        let mut set = SampleSet::new();
        for i in 0..80 {
            let pos = volume.lerp_point(
                (i % 5) as f64 / 4.0,
                ((i / 5) % 4) as f64 / 3.0,
                (i / 20) as f64 / 3.0,
            );
            set.push(Sample {
                uav: UavId(0),
                waypoint_index: i,
                position: pos,
                true_position: pos,
                ssid: Ssid::new("net"),
                mac: MacAddress::from_index(1),
                channel: WifiChannel::new(6).unwrap(),
                rssi_dbm: (-60.0 - 5.0 * pos.x - 2.0 * pos.y) as i32,
                timestamp: SimTime::ZERO,
            });
        }
        let (data, layout, _) = preprocess(&set, &PreprocessConfig::paper()).unwrap();
        let mut ok = OrdinaryKriging::new(KrigingConfig::default());
        ok.fit(&data.x, &data.y).unwrap();
        (ok, layout, volume)
    }

    #[test]
    fn variance_fill_matches_per_voxel_confidence_bits() {
        let (ok, layout, volume) = fitted_kriging_world();
        let mac = MacAddress::from_index(1);
        let (ref_rem, ref_sigma) =
            RemGrid::generate_with_confidence(&ok, &layout, volume, 0.2, mac).unwrap();
        let mut grids = Vec::new();
        for policy in [ExecPolicy::Serial, ExecPolicy::Parallel] {
            let mut inst = Instrumentation::new();
            let (rem, sigma, stats) = RemGrid::generate_with_variance(
                &ok, &layout, volume, 0.2, mac, policy, &mut inst,
            )
            .unwrap();
            assert_eq!(rem, ref_rem, "{policy}: prediction grid drifted");
            assert_eq!(sigma, ref_sigma, "{policy}: uncertainty grid drifted");
            // Every non-exact voxel goes through the cached solver, and a
            // fine lattice over a coarse survey must actually hit.
            assert!(stats.total() > 0);
            assert!(stats.hits > 0, "{policy}: no factor-cache hits on a lattice");
            assert_eq!(inst.counter("rem_krige_cache_hits"), Some(stats.hits));
            assert_eq!(inst.counter("rem_krige_cache_misses"), Some(stats.misses));
            assert!(inst.stage("rem_krige_predict").is_some());
            assert!(inst.stage("rem_krige_variance").is_some());
            assert_eq!(
                inst.counter("rem_krige_predict_rows"),
                Some(rem.len() as u64)
            );
            grids.push((rem, sigma));
        }
        assert_eq!(grids[0], grids[1], "serial ≡ parallel");
    }

    #[test]
    fn from_parts_validates_shape() {
        let volume = Aabb::paper_volume();
        let mac = MacAddress::from_index(1);
        let ok = RemGrid::from_parts(mac, volume, (2, 3, 4), vec![-60.0; 24]).unwrap();
        assert_eq!(ok.dims(), (2, 3, 4));
        assert_eq!(ok.values().len(), 24);
        // Shape mismatches and degenerate dims are rejected.
        assert!(RemGrid::from_parts(mac, volume, (2, 3, 4), vec![-60.0; 23]).is_none());
        assert!(RemGrid::from_parts(mac, volume, (0, 3, 4), vec![]).is_none());
    }

    #[test]
    fn from_parts_round_trips_a_generated_grid() {
        let (model, layout, volume) = fitted_world();
        let grid =
            RemGrid::generate(&model, &layout, volume, 0.7, MacAddress::from_index(1)).unwrap();
        let rebuilt = RemGrid::from_parts(
            grid.mac(),
            grid.volume(),
            grid.dims(),
            grid.values().to_vec(),
        )
        .unwrap();
        assert_eq!(rebuilt, grid);
    }

    #[test]
    fn grid_accessors() {
        let (model, layout, volume) = fitted_world();
        let grid =
            RemGrid::generate(&model, &layout, volume, 0.7, MacAddress::from_index(1)).unwrap();
        assert_eq!(grid.mac(), MacAddress::from_index(1));
        assert_eq!(grid.volume(), volume);
    }
}
