//! Coverage analysis on top of REMs: the introduction's motivating uses.
//!
//! §I argues REMs are "beneficial and utilized more broadly, for example in
//! optimizing the positioning of UAVs serving as mobile relays or planning
//! the extensions of any wireless networking infrastructure by adding
//! Access Points … to cover 'dark' connectivity regions". This module does
//! both: find the dark cells of a multi-AP coverage map and greedily place
//! a relay/AP to cover as many as possible.

use aerorem_spatial::Vec3;

use crate::rem::RemGrid;

/// Multi-AP coverage: per cell, the best (maximum) RSS over all mapped APs.
#[derive(Debug, Clone, PartialEq)]
pub struct CoverageMap {
    cells: Vec<(Vec3, f64)>,
}

impl CoverageMap {
    /// Combines per-AP REMs into a best-server coverage map.
    ///
    /// All grids must share the same dimensions and volume (generate them
    /// with the same resolution).
    ///
    /// Returns `None` when `grids` is empty or shapes disagree.
    pub fn from_rems(grids: &[RemGrid]) -> Option<Self> {
        let first = grids.first()?;
        if grids
            .iter()
            .any(|g| g.dims() != first.dims() || g.volume() != first.volume())
        {
            return None;
        }
        let mut cells: Vec<(Vec3, f64)> = first.cells().collect();
        for g in &grids[1..] {
            for ((_, best), (_, v)) in cells.iter_mut().zip(g.cells()) {
                if v > *best {
                    *best = v;
                }
            }
        }
        Some(CoverageMap { cells })
    }

    /// All `(position, best RSS)` cells.
    pub fn cells(&self) -> &[(Vec3, f64)] {
        &self.cells
    }

    /// Cells whose best-server RSS is below `threshold_dbm` — the "dark"
    /// connectivity regions.
    pub fn dark_cells(&self, threshold_dbm: f64) -> Vec<Vec3> {
        self.cells
            .iter()
            .filter(|(_, v)| *v < threshold_dbm)
            .map(|(p, _)| *p)
            .collect()
    }

    /// Fraction of the volume covered at the threshold.
    pub fn coverage_fraction(&self, threshold_dbm: f64) -> f64 {
        if self.cells.is_empty() {
            return 0.0;
        }
        let covered = self
            .cells
            .iter()
            .filter(|(_, v)| *v >= threshold_dbm)
            .count();
        covered as f64 / self.cells.len() as f64
    }

    /// Greedy relay/AP placement: the candidate position (among cell
    /// centers) that covers the most dark cells within `relay_radius_m`.
    ///
    /// Returns `None` when there are no dark cells — coverage is complete.
    pub fn suggest_relay(&self, threshold_dbm: f64, relay_radius_m: f64) -> Option<RelayPlan> {
        let dark = self.dark_cells(threshold_dbm);
        if dark.is_empty() {
            return None;
        }
        let mut best: Option<RelayPlan> = None;
        for &(candidate, _) in &self.cells {
            let covered = dark
                .iter()
                .filter(|d| d.distance(candidate) <= relay_radius_m)
                .count();
            let better = match &best {
                Some(b) => covered > b.dark_cells_covered,
                None => covered > 0,
            };
            if better {
                best = Some(RelayPlan {
                    position: candidate,
                    dark_cells_covered: covered,
                    dark_cells_total: dark.len(),
                });
            }
        }
        best
    }
}

/// A suggested relay/AP placement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RelayPlan {
    /// Where to put the relay.
    pub position: Vec3,
    /// Dark cells within the relay's radius.
    pub dark_cells_covered: usize,
    /// Total dark cells before placement.
    pub dark_cells_total: usize,
}

impl RelayPlan {
    /// Fraction of the dark region this placement fixes.
    pub fn fix_fraction(&self) -> f64 {
        if self.dark_cells_total == 0 {
            1.0
        } else {
            self.dark_cells_covered as f64 / self.dark_cells_total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::{preprocess, PreprocessConfig};
    use crate::rem::RemGrid;
    use aerorem_mission::{Sample, SampleSet};
    use aerorem_ml::knn::KnnRegressor;
    use aerorem_ml::Regressor as _;
    use aerorem_propagation::ap::{MacAddress, Ssid};
    use aerorem_propagation::WifiChannel;
    use aerorem_simkit::SimTime;
    use aerorem_spatial::Aabb;
    use aerorem_uav::UavId;

    /// Two APs: one strong at low x, one strong at high x, weak belt in the
    /// middle.
    fn rems() -> Vec<RemGrid> {
        let volume = Aabb::paper_volume();
        let mut set = SampleSet::new();
        for i in 0..120 {
            let pos = volume.lerp_point(
                (i % 6) as f64 / 5.0,
                ((i / 6) % 5) as f64 / 4.0,
                (i / 30) as f64 / 3.0,
            );
            // AP 1 decays fast with x; AP 2 decays fast with (max-x).
            set.push(sample(1, pos, -50.0 - 22.0 * pos.x));
            set.push(sample(2, pos, -50.0 - 22.0 * (3.74 - pos.x)));
        }
        let (data, layout, _) = preprocess(&set, &PreprocessConfig::paper()).unwrap();
        let mut knn = KnnRegressor::paper_tuned();
        knn.fit(&data.x, &data.y).unwrap();
        vec![
            RemGrid::generate(&knn, &layout, volume, 0.4, MacAddress::from_index(1)).unwrap(),
            RemGrid::generate(&knn, &layout, volume, 0.4, MacAddress::from_index(2)).unwrap(),
        ]
    }

    fn sample(mac: u32, pos: aerorem_spatial::Vec3, rssi: f64) -> Sample {
        Sample {
            uav: UavId(0),
            waypoint_index: 0,
            position: pos,
            true_position: pos,
            ssid: Ssid::new(format!("net{mac}")),
            mac: MacAddress::from_index(mac),
            channel: WifiChannel::new(6).unwrap(),
            rssi_dbm: rssi.round() as i32,
            timestamp: SimTime::ZERO,
        }
    }

    #[test]
    fn best_server_combination() {
        let grids = rems();
        let cov = CoverageMap::from_rems(&grids).unwrap();
        assert_eq!(cov.cells().len(), grids[0].len());
        // Near x=0 the best server is AP1's strong signal.
        let strong_left = cov
            .cells()
            .iter()
            .filter(|(p, _)| p.x < 0.5)
            .map(|(_, v)| *v)
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(strong_left > -65.0, "left edge best {strong_left}");
    }

    #[test]
    fn dark_belt_in_the_middle() {
        let cov = CoverageMap::from_rems(&rems()).unwrap();
        // Both APs are ~−91 dBm mid-volume: dark at a −80 dBm threshold.
        let dark = cov.dark_cells(-80.0);
        assert!(!dark.is_empty());
        let mean_x = dark.iter().map(|p| p.x).sum::<f64>() / dark.len() as f64;
        assert!(
            (1.2..=2.6).contains(&mean_x),
            "dark belt should sit mid-x, centroid {mean_x}"
        );
        // Coverage improves when the threshold drops.
        assert!(cov.coverage_fraction(-95.0) >= cov.coverage_fraction(-80.0));
    }

    #[test]
    fn relay_lands_in_the_dark_belt() {
        let cov = CoverageMap::from_rems(&rems()).unwrap();
        let plan = cov.suggest_relay(-80.0, 1.0).unwrap();
        assert!(
            (1.0..=2.8).contains(&plan.position.x),
            "relay at x={}",
            plan.position.x
        );
        assert!(plan.dark_cells_covered > 0);
        assert!(plan.fix_fraction() > 0.2);
        assert!(plan.fix_fraction() <= 1.0);
    }

    #[test]
    fn complete_coverage_needs_no_relay() {
        let cov = CoverageMap::from_rems(&rems()).unwrap();
        assert!(cov.suggest_relay(-200.0, 1.0).is_none());
        assert_eq!(cov.coverage_fraction(-200.0), 1.0);
    }

    #[test]
    fn mismatched_grids_rejected() {
        let grids = rems();
        let volume = Aabb::paper_volume();
        // A grid with a different resolution cannot combine.
        let mut set = SampleSet::new();
        for i in 0..20 {
            set.push(sample(1, volume.lerp_point(i as f64 / 19.0, 0.5, 0.5), -60.0));
        }
        let (data, layout, _) = preprocess(&set, &PreprocessConfig::paper()).unwrap();
        let mut knn = KnnRegressor::paper_tuned();
        knn.fit(&data.x, &data.y).unwrap();
        let odd =
            RemGrid::generate(&knn, &layout, volume, 1.5, MacAddress::from_index(1)).unwrap();
        assert!(CoverageMap::from_rems(&[grids[0].clone(), odd]).is_none());
        assert!(CoverageMap::from_rems(&[]).is_none());
    }
}
