//! Lightweight pipeline instrumentation: wall-clock time per stage plus
//! named counters and labels.
//!
//! [`Instrumentation`] is threaded through
//! [`PipelineResult`](crate::pipeline::PipelineResult) so every pipeline
//! run reports where its time went (campaign, preprocessing, model
//! evaluation, REM fitting) and how much data flowed through (raw vs
//! retained samples, retained MACs, REM voxels). The `aerorem` CLI and the
//! experiment harness print [`Instrumentation::report`] after each run —
//! in particular for the serial-vs-parallel comparison, where the stage
//! table *is* the result.

use std::time::{Duration, Instant};

use aerorem_numerics::exec::ExecPlan;

/// Stage timings, counters, and labels collected over one pipeline run.
///
/// Stages and counters keep insertion order; timing the same stage twice
/// accumulates, counting the same counter twice adds.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Instrumentation {
    stages: Vec<(String, Duration)>,
    counters: Vec<(String, u64)>,
    labels: Vec<(String, String)>,
}

impl Instrumentation {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs `f`, recording its wall-clock duration under `stage`.
    pub fn time<T>(&mut self, stage: &str, f: impl FnOnce() -> T) -> T {
        // lint:allow(wall-clock) — instrumentation measures wall time by design; durations never feed simulation results
        let start = Instant::now();
        let out = f();
        self.record(stage, start.elapsed());
        out
    }

    /// Adds `took` to the stage's accumulated duration.
    pub fn record(&mut self, stage: &str, took: Duration) {
        match self.stages.iter_mut().find(|(name, _)| name == stage) {
            Some((_, d)) => *d += took,
            None => self.stages.push((stage.to_string(), took)),
        }
    }

    /// Adds `value` to the named counter.
    pub fn count(&mut self, counter: &str, value: u64) {
        match self.counters.iter_mut().find(|(name, _)| name == counter) {
            Some((_, v)) => *v += value,
            None => self.counters.push((counter.to_string(), value)),
        }
    }

    /// Sets a free-form label (e.g. `exec = parallel`), replacing any
    /// previous value.
    pub fn label(&mut self, key: &str, value: impl Into<String>) {
        let value = value.into();
        match self.labels.iter_mut().find(|(k, _)| k == key) {
            Some((_, v)) => *v = value,
            None => self.labels.push((key.to_string(), value)),
        }
    }

    /// Records a parallel stage's execution plan as the labels
    /// `{stage}_workers` and `{stage}_chunk`, so granularity regressions
    /// (a stage degrading to one worker, chunks collapsing to per-item)
    /// are visible in every `aerorem demo` report without a profiler.
    pub fn record_exec(&mut self, stage: &str, plan: ExecPlan) {
        self.label(&format!("{stage}_workers"), plan.workers.to_string());
        self.label(&format!("{stage}_chunk"), plan.chunk.to_string());
    }

    /// The execution plan previously recorded for `stage`, if any —
    /// `(workers, chunk)` parsed back from the labels.
    pub fn exec_plan(&self, stage: &str) -> Option<(usize, usize)> {
        let workers = self.get_label(&format!("{stage}_workers"))?.parse().ok()?;
        let chunk = self.get_label(&format!("{stage}_chunk"))?.parse().ok()?;
        Some((workers, chunk))
    }

    /// The recorded stages in insertion order.
    pub fn stages(&self) -> impl Iterator<Item = (&str, Duration)> {
        self.stages.iter().map(|(n, d)| (n.as_str(), *d))
    }

    /// One stage's accumulated duration.
    pub fn stage(&self, name: &str) -> Option<Duration> {
        self.stages
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, d)| *d)
    }

    /// One counter's value.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// One label's value.
    pub fn get_label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Sum of all stage durations.
    pub fn total(&self) -> Duration {
        self.stages.iter().map(|(_, d)| *d).sum()
    }

    /// Items per second through a stage: `counter / stage duration`.
    ///
    /// Returns `None` when either the stage or the counter is missing, or
    /// when the stage took no measurable time.
    pub fn throughput(&self, stage: &str, counter: &str) -> Option<f64> {
        let took = self.stage(stage)?.as_secs_f64();
        let items = self.counter(counter)?;
        if took <= 0.0 {
            return None;
        }
        Some(items as f64 / took)
    }

    /// Renders the stage table, counters, and labels as plain text.
    pub fn report(&self) -> String {
        let mut out = String::new();
        if !self.labels.is_empty() {
            let kv: Vec<String> = self
                .labels
                .iter()
                .map(|(k, v)| format!("{k}={v}"))
                .collect();
            out.push_str(&kv.join(" "));
            out.push('\n');
        }
        if !self.stages.is_empty() {
            out.push_str(&format!("{:<28} {:>12}\n", "stage", "wall [ms]"));
            for (name, d) in &self.stages {
                out.push_str(&format!("{:<28} {:>12.2}\n", name, d.as_secs_f64() * 1e3));
            }
            out.push_str(&format!(
                "{:<28} {:>12.2}\n",
                "total",
                self.total().as_secs_f64() * 1e3
            ));
        }
        for (name, v) in &self.counters {
            out.push_str(&format!("{name} = {v}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stages_accumulate_and_keep_order() {
        let mut inst = Instrumentation::new();
        inst.record("b", Duration::from_millis(10));
        inst.record("a", Duration::from_millis(5));
        inst.record("b", Duration::from_millis(10));
        let names: Vec<&str> = inst.stages().map(|(n, _)| n).collect();
        assert_eq!(names, ["b", "a"]);
        assert_eq!(inst.stage("b"), Some(Duration::from_millis(20)));
        assert_eq!(inst.total(), Duration::from_millis(25));
        assert_eq!(inst.stage("missing"), None);
    }

    #[test]
    fn time_records_and_passes_through() {
        let mut inst = Instrumentation::new();
        let out = inst.time("work", || 40 + 2);
        assert_eq!(out, 42);
        assert!(inst.stage("work").is_some());
    }

    #[test]
    fn counters_add_and_labels_replace() {
        let mut inst = Instrumentation::new();
        inst.count("voxels", 100);
        inst.count("voxels", 20);
        assert_eq!(inst.counter("voxels"), Some(120));
        inst.label("exec", "serial");
        inst.label("exec", "parallel");
        assert_eq!(inst.get_label("exec"), Some("parallel"));
    }

    #[test]
    fn throughput_is_counter_over_stage_time() {
        let mut inst = Instrumentation::new();
        inst.record("predict", Duration::from_millis(500));
        inst.count("rows", 1000);
        let rate = inst.throughput("predict", "rows").unwrap();
        assert!((rate - 2000.0).abs() < 1e-9, "got {rate}");
        assert_eq!(inst.throughput("missing", "rows"), None);
        assert_eq!(inst.throughput("predict", "missing"), None);
        inst.record("instant", Duration::ZERO);
        inst.count("n", 5);
        assert_eq!(inst.throughput("instant", "n"), None);
    }

    #[test]
    fn exec_plans_round_trip_through_labels() {
        let mut inst = Instrumentation::new();
        inst.record_exec(
            "rem_encode",
            ExecPlan {
                workers: 4,
                chunk: 1024,
                chunks: 49,
            },
        );
        assert_eq!(inst.exec_plan("rem_encode"), Some((4, 1024)));
        assert_eq!(inst.get_label("rem_encode_workers"), Some("4"));
        assert_eq!(inst.get_label("rem_encode_chunk"), Some("1024"));
        assert_eq!(inst.exec_plan("missing"), None);
    }

    #[test]
    fn report_renders_everything() {
        let mut inst = Instrumentation::new();
        inst.label("exec", "parallel");
        inst.record("campaign", Duration::from_millis(123));
        inst.count("raw_samples", 2696);
        let report = inst.report();
        assert!(report.contains("exec=parallel"));
        assert!(report.contains("campaign"));
        assert!(report.contains("total"));
        assert!(report.contains("raw_samples = 2696"));
        // An empty recorder renders to nothing rather than headers.
        assert!(Instrumentation::new().report().is_empty());
    }
}
