//! Versioned binary on-disk format for REM snapshots.
//!
//! A [`RemSnapshot`] is the serving-layer artifact: the set of per-AP
//! [`RemGrid`]s a survey produced, frozen into a compact, endian-stable
//! byte stream that a query engine (or another tool entirely) can load
//! without running the pipeline. The byte-level layout is specified in
//! `docs/SNAPSHOT_FORMAT.md`; this module is the reference codec.
//!
//! Format properties, all test-enforced:
//!
//! * **Endian-stable** — every multi-byte field is little-endian via
//!   `aerorem_numerics::codec`, regardless of host byte order.
//! * **Bit-identical round trips** — voxel values travel as raw IEEE-754
//!   bit patterns; `load(save(grid)) == grid` down to NaN payloads.
//! * **Corruption-detecting** — each grid header and each voxel payload
//!   carries a CRC-32; any flipped bit surfaces as a typed
//!   [`SnapshotError`], never a panic or a silently wrong map.
//! * **Versioned** — a major version field is checked on load; readers
//!   reject versions they do not understand instead of misparsing.

use std::fmt;
use std::path::Path;

use aerorem_numerics::codec::{crc32, ByteReader, ByteWriter, CodecError};
use aerorem_propagation::ap::MacAddress;
use aerorem_spatial::{Aabb, Vec3};

use crate::rem::RemGrid;

/// First 8 bytes of every snapshot file.
pub const MAGIC: [u8; 8] = *b"AREMSNAP";

/// Current (and only) format version. Readers reject anything else.
pub const FORMAT_VERSION: u16 = 1;

/// Endianness canary. Written as the little-endian encoding of `0x1234`
/// (bytes `34 12` on disk); a reader that decodes it as `0x3412` is
/// byte-swapping and must abort.
pub const ENDIAN_TAG: u16 = 0x1234;

/// Fixed size of the file header in bytes.
pub const FILE_HEADER_LEN: usize = 16;

/// Fixed size of each per-grid header in bytes.
pub const GRID_HEADER_LEN: usize = 84;

/// Typed failure modes of snapshot encode/decode/IO.
#[derive(Debug)]
pub enum SnapshotError {
    /// The snapshot holds no grids. A zero-grid snapshot has nothing to
    /// serve and used to slip through the codec all the way to
    /// `RemStore::build`; it is now rejected at construction *and* at
    /// decode, so a daemon can never hot-swap in an empty store.
    Empty,
    /// The file does not start with [`MAGIC`].
    BadMagic {
        /// The 8 bytes actually found.
        found: [u8; 8],
    },
    /// The format version is not one this reader understands.
    UnsupportedVersion {
        /// Version field from the file.
        found: u16,
    },
    /// The endianness canary decoded to the wrong value.
    BadEndianTag {
        /// Tag as decoded little-endian.
        found: u16,
    },
    /// A grid header's CRC-32 did not match its bytes.
    HeaderChecksum {
        /// Zero-based index of the offending grid.
        grid: u32,
    },
    /// A voxel payload's CRC-32 did not match its bytes.
    PayloadChecksum {
        /// Zero-based index of the offending grid.
        grid: u32,
    },
    /// Grid dimensions were zero, overflowed, or disagreed with the
    /// declared value count.
    BadShape {
        /// Zero-based index of the offending grid.
        grid: u32,
    },
    /// The stored volume was not a valid axis-aligned box
    /// (non-finite corner or `min >= max` on some axis).
    BadVolume {
        /// Zero-based index of the offending grid.
        grid: u32,
    },
    /// The input ended mid-field.
    Truncated(CodecError),
    /// Bytes remained after the last declared grid.
    TrailingBytes {
        /// How many undeclared bytes followed the final payload.
        extra: usize,
    },
    /// Filesystem error while saving or loading.
    Io(std::io::Error),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Empty => {
                write!(f, "snapshot holds no grids (at least one is required)")
            }
            SnapshotError::BadMagic { found } => {
                write!(f, "not a REM snapshot: magic {found:02x?} != {MAGIC:02x?}")
            }
            SnapshotError::UnsupportedVersion { found } => write!(
                f,
                "unsupported snapshot version {found} (this reader understands {FORMAT_VERSION})"
            ),
            SnapshotError::BadEndianTag { found } => write!(
                f,
                "endianness canary decoded to {found:#06x}, expected {ENDIAN_TAG:#06x}"
            ),
            SnapshotError::HeaderChecksum { grid } => {
                write!(f, "grid {grid}: header CRC-32 mismatch (corrupt header)")
            }
            SnapshotError::PayloadChecksum { grid } => {
                write!(f, "grid {grid}: payload CRC-32 mismatch (corrupt voxel data)")
            }
            SnapshotError::BadShape { grid } => write!(
                f,
                "grid {grid}: dimensions are zero/overflowing or disagree with value count"
            ),
            SnapshotError::BadVolume { grid } => {
                write!(f, "grid {grid}: stored volume is not a valid box")
            }
            SnapshotError::Truncated(e) => write!(f, "truncated snapshot: {e}"),
            SnapshotError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after the last declared grid")
            }
            SnapshotError::Io(e) => write!(f, "snapshot io: {e}"),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Truncated(e) => Some(e),
            SnapshotError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CodecError> for SnapshotError {
    fn from(e: CodecError) -> Self {
        SnapshotError::Truncated(e)
    }
}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

/// A set of per-AP REM grids frozen as one serving artifact.
///
/// # Examples
///
/// ```no_run
/// # use aerorem_core::rem::RemGrid;
/// # use aerorem_core::snapshot::RemSnapshot;
/// # fn demo(grids: Vec<RemGrid>) -> Result<(), Box<dyn std::error::Error>> {
/// let snap = RemSnapshot::new(grids)?;
/// snap.save("rem.snap")?;
/// let loaded = RemSnapshot::load("rem.snap")?;
/// assert_eq!(loaded, snap);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RemSnapshot {
    grids: Vec<RemGrid>,
}

impl RemSnapshot {
    /// Wraps a set of grids (one per AP; order is preserved on disk).
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::Empty`] for a zero-grid set: a snapshot is
    /// a serving artifact, and an empty one has nothing to serve. The
    /// decoder enforces the same invariant, so the two paths into a
    /// `RemSnapshot` agree.
    pub fn new(grids: Vec<RemGrid>) -> Result<Self, SnapshotError> {
        if grids.is_empty() {
            return Err(SnapshotError::Empty);
        }
        Ok(RemSnapshot { grids })
    }

    /// The grids, in stored order.
    pub fn grids(&self) -> &[RemGrid] {
        &self.grids
    }

    /// Consumes the snapshot, yielding its grids.
    pub fn into_grids(self) -> Vec<RemGrid> {
        self.grids
    }

    /// Number of grids.
    pub fn len(&self) -> usize {
        self.grids.len()
    }

    /// Whether the snapshot holds no grids — always `false`, since both
    /// [`RemSnapshot::new`] and the decoder reject zero-grid sets; kept
    /// for container-API symmetry with [`RemSnapshot::len`].
    pub fn is_empty(&self) -> bool {
        self.grids.is_empty()
    }

    /// Encodes the snapshot as format-v1 bytes.
    ///
    /// Layout (all integers and floats little-endian; see
    /// `docs/SNAPSHOT_FORMAT.md` for the normative spec):
    ///
    /// ```text
    /// file header   magic[8] version:u16 endian_tag:u16 grid_count:u32
    /// per grid      header[84] then value_count × f64 voxel payload
    /// ```
    pub fn to_bytes(&self) -> Vec<u8> {
        let payload_bytes: usize = self.grids.iter().map(|g| g.len() * 8).sum();
        let mut w = ByteWriter::with_capacity(
            FILE_HEADER_LEN + self.grids.len() * GRID_HEADER_LEN + payload_bytes,
        );
        w.put_bytes(&MAGIC);
        w.put_u16(FORMAT_VERSION);
        w.put_u16(ENDIAN_TAG);
        w.put_u32(self.grids.len() as u32);
        for grid in &self.grids {
            // Payload first (into a scratch writer) so its CRC can live in
            // the header that precedes it.
            let mut payload = ByteWriter::with_capacity(grid.len() * 8);
            for &v in grid.values() {
                payload.put_f64(v);
            }
            let payload_crc = crc32(payload.as_slice());

            let mut header = ByteWriter::with_capacity(GRID_HEADER_LEN);
            header.put_bytes(&grid.mac().octets());
            header.put_u16(0); // reserved, must be zero in v1
            let (lo, hi) = (grid.volume().min(), grid.volume().max());
            for c in [lo.x, lo.y, lo.z, hi.x, hi.y, hi.z] {
                header.put_f64(c);
            }
            let (nx, ny, nz) = grid.dims();
            header.put_u32(nx as u32);
            header.put_u32(ny as u32);
            header.put_u32(nz as u32);
            header.put_u64(grid.len() as u64);
            header.put_u32(payload_crc);
            let header_crc = crc32(header.as_slice());
            header.put_u32(header_crc);

            w.put_bytes(header.as_slice());
            w.put_bytes(payload.as_slice());
        }
        w.into_bytes()
    }

    /// Decodes format-v1 bytes back into a snapshot.
    ///
    /// Every structural invariant is checked before any field is trusted:
    /// magic, version, endianness canary, non-zero grid count, per-grid
    /// header CRC, shape consistency, volume validity, payload CRC, and
    /// exact input length.
    ///
    /// # Errors
    ///
    /// Returns the specific [`SnapshotError`] for the first violated
    /// invariant; never panics on hostile input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let mut r = ByteReader::new(bytes);
        let magic = r.take_bytes(8)?;
        if magic != MAGIC {
            let mut found = [0u8; 8];
            found.copy_from_slice(magic);
            return Err(SnapshotError::BadMagic { found });
        }
        let version = r.take_u16()?;
        if version != FORMAT_VERSION {
            return Err(SnapshotError::UnsupportedVersion { found: version });
        }
        let tag = r.take_u16()?;
        if tag != ENDIAN_TAG {
            return Err(SnapshotError::BadEndianTag { found: tag });
        }
        let grid_count = r.take_u32()?;
        if grid_count == 0 {
            return Err(SnapshotError::Empty);
        }

        let mut grids = Vec::with_capacity(grid_count.min(1024) as usize);
        for grid_idx in 0..grid_count {
            let header_bytes = r.take_bytes(GRID_HEADER_LEN)?;
            let (body, crc_field) = header_bytes.split_at(GRID_HEADER_LEN - 4);
            let stored_crc =
                u32::from_le_bytes([crc_field[0], crc_field[1], crc_field[2], crc_field[3]]);
            if crc32(body) != stored_crc {
                return Err(SnapshotError::HeaderChecksum { grid: grid_idx });
            }

            let mut h = ByteReader::new(body);
            let mac_bytes = h.take_bytes(6)?;
            let mut mac = [0u8; 6];
            mac.copy_from_slice(mac_bytes);
            let _reserved = h.take_u16()?;
            let lo = Vec3::new(h.take_f64()?, h.take_f64()?, h.take_f64()?);
            let hi = Vec3::new(h.take_f64()?, h.take_f64()?, h.take_f64()?);
            let nx = h.take_u32()? as usize;
            let ny = h.take_u32()? as usize;
            let nz = h.take_u32()? as usize;
            let value_count = h.take_u64()?;
            let payload_crc = h.take_u32()?;

            let cells = nx
                .checked_mul(ny)
                .and_then(|v| v.checked_mul(nz))
                .ok_or(SnapshotError::BadShape { grid: grid_idx })?;
            if nx == 0 || ny == 0 || nz == 0 || value_count != cells as u64 {
                return Err(SnapshotError::BadShape { grid: grid_idx });
            }
            let volume =
                Aabb::new(lo, hi).ok_or(SnapshotError::BadVolume { grid: grid_idx })?;

            // Take the payload bytes *before* allocating value storage, so
            // a corrupt (huge) value_count fails as Truncated instead of
            // attempting an enormous allocation.
            let payload_len = cells
                .checked_mul(8)
                .ok_or(SnapshotError::BadShape { grid: grid_idx })?;
            let payload = r.take_bytes(payload_len)?;
            if crc32(payload) != payload_crc {
                return Err(SnapshotError::PayloadChecksum { grid: grid_idx });
            }
            let mut values = Vec::with_capacity(cells);
            let mut pr = ByteReader::new(payload);
            for _ in 0..cells {
                values.push(pr.take_f64()?);
            }

            let grid = RemGrid::from_parts(MacAddress(mac), volume, (nx, ny, nz), values)
                .ok_or(SnapshotError::BadShape { grid: grid_idx })?;
            grids.push(grid);
        }
        if !r.is_empty() {
            return Err(SnapshotError::TrailingBytes {
                extra: r.remaining(),
            });
        }
        Ok(RemSnapshot { grids })
    }

    /// Writes the snapshot to `path` in format v1.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::Io`] on filesystem failure.
    pub fn save<P: AsRef<Path>>(&self, path: P) -> Result<(), SnapshotError> {
        std::fs::write(path, self.to_bytes())?;
        Ok(())
    }

    /// Reads and decodes a snapshot from `path`.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::Io`] on filesystem failure, or the
    /// decode-time error for malformed content (see
    /// [`RemSnapshot::from_bytes`]).
    pub fn load<P: AsRef<Path>>(path: P) -> Result<Self, SnapshotError> {
        let bytes = std::fs::read(path)?;
        Self::from_bytes(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deterministic synthetic grid whose values exercise varied bit
    /// patterns (negative dBm ramp plus a NaN-free irrational stride).
    fn synth_grid(mac_index: u32, dims: (usize, usize, usize)) -> RemGrid {
        let (nx, ny, nz) = dims;
        let values: Vec<f64> = (0..nx * ny * nz)
            .map(|i| -30.0 - (i as f64 * 0.737_123).sin() * 40.0)
            .collect();
        RemGrid::from_parts(
            MacAddress::from_index(mac_index),
            Aabb::paper_volume(),
            dims,
            values,
        )
        .unwrap()
    }

    #[test]
    fn round_trip_is_bit_identical() {
        let snap = RemSnapshot::new(vec![
            synth_grid(1, (7, 5, 3)),
            synth_grid(2, (2, 2, 2)),
            synth_grid(3, (11, 1, 1)),
        ])
        .unwrap();
        let bytes = snap.to_bytes();
        let loaded = RemSnapshot::from_bytes(&bytes).unwrap();
        assert_eq!(loaded, snap);
        for (a, b) in loaded.grids().iter().zip(snap.grids()) {
            for (x, y) in a.values().iter().zip(b.values()) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn nan_payloads_survive_the_round_trip() {
        let weird = f64::from_bits(0x7FF8_DEAD_BEEF_0001);
        let mut values = vec![-60.0; 8];
        values[3] = weird;
        values[5] = f64::NEG_INFINITY;
        let grid = RemGrid::from_parts(
            MacAddress::from_index(1),
            Aabb::paper_volume(),
            (2, 2, 2),
            values,
        )
        .unwrap();
        let snap = RemSnapshot::new(vec![grid]).unwrap();
        let loaded = RemSnapshot::from_bytes(&snap.to_bytes()).unwrap();
        assert_eq!(loaded.grids()[0].values()[3].to_bits(), weird.to_bits());
        assert_eq!(loaded.grids()[0].values()[5], f64::NEG_INFINITY);
    }

    #[test]
    fn zero_grid_snapshots_are_rejected() {
        assert!(matches!(
            RemSnapshot::new(vec![]),
            Err(SnapshotError::Empty)
        ));
        // A hand-built v1 file header declaring zero grids must be refused
        // at decode too, so a daemon can never hot-swap in an empty store.
        let mut bytes = Vec::with_capacity(FILE_HEADER_LEN);
        bytes.extend_from_slice(b"AREMSNAP");
        bytes.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        bytes.extend_from_slice(&ENDIAN_TAG.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        assert_eq!(bytes.len(), FILE_HEADER_LEN);
        assert!(matches!(
            RemSnapshot::from_bytes(&bytes),
            Err(SnapshotError::Empty)
        ));
    }

    #[test]
    fn header_layout_matches_the_spec() {
        let snap = RemSnapshot::new(vec![synth_grid(1, (2, 2, 2))]).unwrap();
        let bytes = snap.to_bytes();
        assert_eq!(&bytes[0..8], b"AREMSNAP");
        assert_eq!(u16::from_le_bytes([bytes[8], bytes[9]]), FORMAT_VERSION);
        // Endian canary: bytes 34 12 on disk.
        assert_eq!(bytes[10], 0x34);
        assert_eq!(bytes[11], 0x12);
        assert_eq!(
            u32::from_le_bytes([bytes[12], bytes[13], bytes[14], bytes[15]]),
            1
        );
        assert_eq!(
            bytes.len(),
            FILE_HEADER_LEN + GRID_HEADER_LEN + 8 * 8,
            "one grid of 8 cells"
        );
    }

    #[test]
    fn bad_magic_is_rejected() {
        let snap = RemSnapshot::new(vec![synth_grid(1, (2, 2, 2))]).unwrap();
        let mut bytes = snap.to_bytes();
        bytes[0] = b'X';
        match RemSnapshot::from_bytes(&bytes) {
            Err(SnapshotError::BadMagic { .. }) => {}
            other => panic!("expected BadMagic, got {other:?}"),
        }
    }

    #[test]
    fn future_version_is_rejected_not_misparsed() {
        let snap = RemSnapshot::new(vec![synth_grid(1, (2, 2, 2))]).unwrap();
        let mut bytes = snap.to_bytes();
        bytes[8] = 2; // version := 2
        match RemSnapshot::from_bytes(&bytes) {
            Err(SnapshotError::UnsupportedVersion { found: 2 }) => {}
            other => panic!("expected UnsupportedVersion, got {other:?}"),
        }
    }

    #[test]
    fn byte_swapped_endian_tag_is_rejected() {
        let snap = RemSnapshot::new(vec![synth_grid(1, (2, 2, 2))]).unwrap();
        let mut bytes = snap.to_bytes();
        bytes.swap(10, 11); // now decodes LE as 0x3412
        match RemSnapshot::from_bytes(&bytes) {
            Err(SnapshotError::BadEndianTag { found: 0x3412 }) => {}
            other => panic!("expected BadEndianTag, got {other:?}"),
        }
    }

    #[test]
    fn flipped_header_bit_is_caught_by_header_crc() {
        let snap = RemSnapshot::new(vec![synth_grid(1, (3, 3, 3))]).unwrap();
        let mut bytes = snap.to_bytes();
        bytes[FILE_HEADER_LEN + 3] ^= 0x01; // inside the MAC field
        match RemSnapshot::from_bytes(&bytes) {
            Err(SnapshotError::HeaderChecksum { grid: 0 }) => {}
            other => panic!("expected HeaderChecksum, got {other:?}"),
        }
    }

    #[test]
    fn flipped_payload_bit_is_caught_by_payload_crc() {
        let snap = RemSnapshot::new(vec![synth_grid(1, (3, 3, 3))]).unwrap();
        let mut bytes = snap.to_bytes();
        let n = bytes.len();
        bytes[n - 1] ^= 0x80; // sign bit of the last voxel
        match RemSnapshot::from_bytes(&bytes) {
            Err(SnapshotError::PayloadChecksum { grid: 0 }) => {}
            other => panic!("expected PayloadChecksum, got {other:?}"),
        }
    }

    #[test]
    fn truncation_at_every_byte_is_a_typed_error() {
        let snap = RemSnapshot::new(vec![synth_grid(1, (2, 3, 2))]).unwrap();
        let bytes = snap.to_bytes();
        for cut in 0..bytes.len() {
            let err = RemSnapshot::from_bytes(&bytes[..cut])
                .expect_err("every prefix must be rejected");
            // Any typed error is fine (a cut inside a CRC field reads as
            // corruption); what matters is that nothing panics and nothing
            // parses.
            let _ = err.to_string();
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let snap = RemSnapshot::new(vec![synth_grid(1, (2, 2, 2))]).unwrap();
        let mut bytes = snap.to_bytes();
        bytes.push(0);
        match RemSnapshot::from_bytes(&bytes) {
            Err(SnapshotError::TrailingBytes { extra: 1 }) => {}
            other => panic!("expected TrailingBytes, got {other:?}"),
        }
    }

    #[test]
    fn save_and_load_via_filesystem() {
        let dir = std::env::temp_dir().join("aerorem-snapshot-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.snap");
        let snap = RemSnapshot::new(vec![synth_grid(7, (4, 4, 4))]).unwrap();
        snap.save(&path).unwrap();
        let loaded = RemSnapshot::load(&path).unwrap();
        assert_eq!(loaded, snap);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_of_missing_file_is_io_error() {
        match RemSnapshot::load("/definitely/not/a/real/path.snap") {
            Err(SnapshotError::Io(_)) => {}
            other => panic!("expected Io, got {other:?}"),
        }
    }
}
