//! The `aerorem` toolchain: end-to-end autonomous generation of fine-grained
//! 3D indoor radio environmental maps.
//!
//! This crate ties the substrates together into the paper's pipeline:
//!
//! ```text
//! SyntheticBuilding ─→ Campaign (UAVs + UWB + ESP scans) ─→ SampleSet
//!        │                                                     │
//!        │                                   [`features`] preprocessing
//!        │                                   (drop MACs < 16, one-hot)
//!        │                                                     │
//!        └────────── ground truth ──────┐      [`models`] Figure-8 zoo
//!                                       │      (baseline/kNN/MLP/kriging)
//!                                       ▼                      │
//!                              [`pipeline::RemPipeline`] ──────┘
//!                                       │
//!                              [`rem::RemGrid`] — the 3D map
//!                                       │
//!                              [`coverage`] — dark regions, relay placement
//!                              [`adaptive`] — uncertainty-driven resurvey
//! ```
//!
//! Generated grids can be frozen into the versioned on-disk snapshot
//! format via [`snapshot::RemSnapshot`] (spec: `docs/SNAPSHOT_FORMAT.md`)
//! and served by the `aerorem-serve` query engine.
//!
//! Two cross-cutting concerns thread through every stage: [`exec`] selects
//! serial or parallel execution at runtime (identical outputs either way),
//! and [`instrument`] records per-stage wall-clock timings and data-flow
//! counters into [`pipeline::PipelineResult::instrumentation`]. See
//! `ARCHITECTURE.md` at the repository root for the full paper-to-crate
//! map.
//!
//! # Examples
//!
//! Train the paper's best model on a (small) campaign and predict RSS at an
//! unvisited point:
//!
//! ```no_run
//! use aerorem_core::pipeline::{RemPipeline, PipelineConfig};
//! use aerorem_spatial::Vec3;
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut rng = rand::rngs::StdRng::seed_from_u64(2206);
//! let result = RemPipeline::new(PipelineConfig::paper_demo()).run(&mut rng)?;
//! let mac = result.strongest_mac().expect("campaign saw APs");
//! let rss = result.predict(Vec3::new(1.0, 1.0, 1.0), mac)?;
//! println!("predicted {rss:.1} dBm");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adaptive;
pub mod coverage;
pub mod exec;
pub mod features;
pub mod instrument;
pub mod models;
pub mod pipeline;
pub mod rem;
pub mod snapshot;

pub use exec::ExecPolicy;
pub use features::{FeatureLayout, PreprocessConfig, PreprocessReport};
pub use instrument::Instrumentation;
pub use models::ModelKind;
pub use pipeline::{PipelineConfig, PipelineResult, RemPipeline};
pub use rem::RemGrid;
pub use snapshot::{RemSnapshot, SnapshotError};
