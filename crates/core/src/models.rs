//! The Figure-8 model zoo.
//!
//! One constructor per estimator the paper compares, plus the two
//! geostatistical extensions. [`evaluate_all`] reproduces the figure: fit on
//! 75 % of the preprocessed data, report test RMSE per model.

use rand::Rng;

use aerorem_ml::baseline::GroupMeanBaseline;
use aerorem_ml::dataset::Dataset;
use aerorem_ml::ensemble::PerGroupKnn;
use aerorem_ml::idw::IdwInterpolator;
use aerorem_ml::knn::{KnnRegressor, Weighting};
use aerorem_ml::kriging::{KrigingConfig, OrdinaryKriging};
use aerorem_ml::mlp::{Mlp, MlpConfig};
use aerorem_ml::{MlError, Regressor};
#[cfg(doc)]
use aerorem_ml::FeatureMatrix;
use aerorem_numerics::stats;

use crate::exec::{self, ExecPolicy};
use crate::features::FeatureLayout;

/// Every estimator in the comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// The paper's baseline: mean RSS per MAC.
    MeanPerMac,
    /// kNN, k = 3, distance weights, Euclidean — the plain tuned kNN.
    Knn3,
    /// kNN with the one-hot MAC block scaled ×3 and k = 16 — the paper's
    /// best performer.
    KnnScaled16,
    /// One kNN per MAC on coordinates only.
    PerMacKnn,
    /// The tuned MLP: 16 sigmoid hidden nodes, linear output, Adam.
    Mlp16,
    /// Extension: inverse-distance weighting on coordinates + MAC block.
    Idw,
    /// Extension: ordinary kriging with an exponential variogram.
    Kriging,
}

impl ModelKind {
    /// The models evaluated in the paper's Figure 8, in its order.
    pub const PAPER_FIGURE8: [ModelKind; 5] = [
        ModelKind::MeanPerMac,
        ModelKind::Knn3,
        ModelKind::KnnScaled16,
        ModelKind::PerMacKnn,
        ModelKind::Mlp16,
    ];

    /// Paper models plus the geostatistical extensions.
    pub const ALL: [ModelKind; 7] = [
        ModelKind::MeanPerMac,
        ModelKind::Knn3,
        ModelKind::KnnScaled16,
        ModelKind::PerMacKnn,
        ModelKind::Mlp16,
        ModelKind::Idw,
        ModelKind::Kriging,
    ];

    /// Display label matching the paper's terminology.
    pub fn label(self) -> &'static str {
        match self {
            ModelKind::MeanPerMac => "baseline: mean per MAC",
            ModelKind::Knn3 => "kNN (k=3, distance, p=2)",
            ModelKind::KnnScaled16 => "kNN (one-hot x3, k=16)",
            ModelKind::PerMacKnn => "kNN per MAC (xyz only)",
            ModelKind::Mlp16 => "MLP (16 sigmoid, Adam)",
            ModelKind::Idw => "IDW (extension)",
            ModelKind::Kriging => "ordinary kriging (extension)",
        }
    }

    /// Builds an unfitted estimator for this kind against a feature layout.
    ///
    /// # Errors
    ///
    /// Returns [`MlError`] when the layout cannot support the model (e.g. a
    /// degenerate MAC block).
    pub fn build(self, layout: &FeatureLayout) -> Result<Box<dyn Regressor>, MlError> {
        Ok(match self {
            ModelKind::MeanPerMac => Box::new(GroupMeanBaseline::new(layout.mac_range())?),
            ModelKind::Knn3 => Box::new(KnnRegressor::new(3, Weighting::Distance, 2.0)?),
            ModelKind::KnnScaled16 => Box::new(
                KnnRegressor::new(16, Weighting::Distance, 2.0)?
                    .with_feature_scaling(layout.mac_scale_vector(3.0))?,
            ),
            ModelKind::PerMacKnn => {
                // Group by the MAC block; the channel one-hots stay as
                // features but are constant within a MAC (an AP beacons on
                // one channel), so distances reduce to xyz as in the paper.
                Box::new(PerGroupKnn::new(
                    layout.mac_range(),
                    3,
                    Weighting::Distance,
                    2.0,
                )?)
            }
            ModelKind::Mlp16 => Box::new(Mlp::new(MlpConfig::paper_tuned())),
            ModelKind::Idw => Box::new(IdwInterpolator::new(2.0, Some(16))?),
            ModelKind::Kriging => Box::new(OrdinaryKriging::new(KrigingConfig::default())),
        })
    }
}

impl std::fmt::Display for ModelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One row of the Figure-8 comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelScore {
    /// Which model.
    pub kind: ModelKind,
    /// Test RMSE in dBm.
    pub rmse_dbm: f64,
}

/// Fits and scores the given models on a 75/25 split of the dataset —
/// exactly the paper's Figure-8 protocol, under the default
/// [`ExecPolicy`]. The split is shared across models so the comparison is
/// paired.
///
/// # Errors
///
/// Propagates estimator and split errors.
pub fn evaluate_all<R: Rng>(
    kinds: &[ModelKind],
    data: &Dataset,
    layout: &FeatureLayout,
    rng: &mut R,
) -> Result<Vec<ModelScore>, MlError> {
    evaluate_all_with(kinds, data, layout, rng, ExecPolicy::default())
}

/// [`evaluate_all`] with an explicit execution policy.
///
/// The random 75/25 split is drawn *once* before any model runs; fitting
/// and scoring consume no randomness, so each model is an independent work
/// item and [`ExecPolicy::Parallel`] evaluates the zoo across worker
/// threads with results identical to the serial path (scores come back in
/// `kinds` order either way).
///
/// The split is taken as borrowed [`aerorem_ml::dataset::DatasetView`]s and
/// materialised once into contiguous train/test [`FeatureMatrix`] pairs
/// shared by every model — no per-model deep copies. Models train through
/// [`Regressor::fit_batch`] and score through [`Regressor::predict_batch`],
/// the same batched hot path the REM lattice fill uses; both are
/// contractually bit-identical to the row-at-a-time forms.
///
/// # Errors
///
/// Propagates estimator and split errors.
pub fn evaluate_all_with<R: Rng>(
    kinds: &[ModelKind],
    data: &Dataset,
    layout: &FeatureLayout,
    rng: &mut R,
    policy: ExecPolicy,
) -> Result<Vec<ModelScore>, MlError> {
    let (train_view, test_view) = data.split_views(0.75, rng)?;
    let (train_x, train_y) = train_view.to_matrix();
    let (test_x, test_y) = test_view.to_matrix();
    // One model = one chunk: each fit dwarfs the executor's bookkeeping,
    // and per-item chunks balance the zoo's wildly uneven model costs.
    let pool = exec::ScratchPool::new(|| ());
    exec::try_map_vec_with(
        policy,
        exec::Granularity::per_item(),
        &pool,
        kinds,
        |(), &kind| {
            let mut model = kind.build(layout)?;
            model.fit_batch(&train_x, &train_y)?;
            let preds = model.predict_batch(&test_x)?;
            Ok(ModelScore {
                kind,
                rmse_dbm: stats::rmse(&preds, &test_y),
            })
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::{preprocess, PreprocessConfig};
    use aerorem_mission::{Sample, SampleSet};
    use aerorem_propagation::ap::{MacAddress, Ssid};
    use aerorem_propagation::WifiChannel;
    use aerorem_simkit::SimTime;
    use aerorem_spatial::Vec3;
    use aerorem_uav::UavId;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A synthetic dataset with per-MAC spatial RSS gradients plus noise-free
    /// structure, enough for all models to fit.
    fn world() -> (Dataset, FeatureLayout) {
        let mut set = SampleSet::new();
        for mac in 1..=4u32 {
            for i in 0..60 {
                let pos = Vec3::new(
                    (i % 6) as f64 * 0.6,
                    ((i / 6) % 5) as f64 * 0.6,
                    (i / 30) as f64 * 0.8 + 0.4,
                );
                let base = -60.0 - 4.0 * mac as f64;
                let rssi = base - 2.0 * pos.x - 1.0 * pos.y + 0.5 * pos.z;
                set.push(Sample {
                    uav: UavId(0),
                    waypoint_index: i,
                    position: pos,
                    true_position: pos,
                    ssid: Ssid::new(format!("net{mac}")),
                    mac: MacAddress::from_index(mac),
                    channel: WifiChannel::new(if mac % 2 == 0 { 6 } else { 1 }).unwrap(),
                    rssi_dbm: rssi.round() as i32,
                    timestamp: SimTime::ZERO,
                });
            }
        }
        let (d, l, _) = preprocess(&set, &PreprocessConfig::paper()).unwrap();
        (d, l)
    }

    #[test]
    fn all_models_build_and_fit() {
        let (data, layout) = world();
        let mut rng = StdRng::seed_from_u64(1);
        let scores = evaluate_all(&ModelKind::ALL, &data, &layout, &mut rng).unwrap();
        assert_eq!(scores.len(), 7);
        for s in &scores {
            assert!(s.rmse_dbm.is_finite());
            assert!(s.rmse_dbm < 30.0, "{}: rmse {}", s.kind, s.rmse_dbm);
        }
    }

    #[test]
    fn spatial_models_beat_the_baseline_on_spatial_data() {
        // The synthetic field has a strong spatial gradient, so kNN must
        // beat mean-per-MAC clearly.
        let (data, layout) = world();
        let mut rng = StdRng::seed_from_u64(2);
        let scores = evaluate_all(&ModelKind::PAPER_FIGURE8, &data, &layout, &mut rng).unwrap();
        let rmse_of = |k: ModelKind| {
            scores
                .iter()
                .find(|s| s.kind == k)
                .map(|s| s.rmse_dbm)
                .unwrap()
        };
        let baseline = rmse_of(ModelKind::MeanPerMac);
        for k in [ModelKind::Knn3, ModelKind::KnnScaled16, ModelKind::PerMacKnn] {
            assert!(
                rmse_of(k) < baseline,
                "{k} ({}) should beat baseline ({baseline})",
                rmse_of(k)
            );
        }
    }

    #[test]
    fn labels_are_distinct() {
        let labels: std::collections::BTreeSet<&str> =
            ModelKind::ALL.iter().map(|k| k.label()).collect();
        assert_eq!(labels.len(), ModelKind::ALL.len());
        assert_eq!(ModelKind::PAPER_FIGURE8.len(), 5);
        assert!(format!("{}", ModelKind::Knn3).contains("k=3"));
    }

    #[test]
    fn serial_and_parallel_evaluation_agree_exactly() {
        let (data, layout) = world();
        let serial = evaluate_all_with(
            &ModelKind::ALL,
            &data,
            &layout,
            &mut StdRng::seed_from_u64(9),
            ExecPolicy::Serial,
        )
        .unwrap();
        let parallel = evaluate_all_with(
            &ModelKind::ALL,
            &data,
            &layout,
            &mut StdRng::seed_from_u64(9),
            ExecPolicy::Parallel,
        )
        .unwrap();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn evaluation_is_seeded() {
        let (data, layout) = world();
        let kinds = [ModelKind::MeanPerMac, ModelKind::Knn3];
        let a = evaluate_all(&kinds, &data, &layout, &mut StdRng::seed_from_u64(3)).unwrap();
        let b = evaluate_all(&kinds, &data, &layout, &mut StdRng::seed_from_u64(3)).unwrap();
        assert_eq!(a, b);
    }
}
