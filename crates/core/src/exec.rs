//! Serial-vs-parallel execution policy for the pipeline's data-parallel
//! stages.
//!
//! The policy type and its order-preserving map helpers live in
//! [`aerorem_numerics::exec`] — the workspace's dependency root — so that
//! `aerorem-ml`'s grid search and k-fold cross-validation can share the
//! exact same machinery as the pipeline stages here. This module re-exports
//! them under the historical `aerorem_core::exec` path; see the numerics
//! module for the determinism contract.

pub use aerorem_numerics::exec::{
    map_chunks, map_vec, map_vec_with, plan, try_map_chunks, try_map_vec, try_map_vec_with,
    ExecPlan, ExecPolicy, Granularity, ScratchPool,
};
