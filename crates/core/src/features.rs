//! Paper-faithful preprocessing: samples → feature matrix.
//!
//! §III-B, step by step:
//!
//! * "Since SSIDs can be shared between devices, they were generally not
//!   used. Instead, RSS readings were grouped based on their MAC addresses."
//! * "The timestamps were left out of consideration as well."
//! * "MAC addresses with less than 16 samples were dropped."
//! * "MAC and channel features were considered as categorical and one-hot
//!   encoded."
//!
//! The output feature row is `[x, y, z, one-hot MAC…, one-hot channel…]`;
//! [`FeatureLayout`] records the block boundaries so downstream models can
//! target the MAC block (mean-per-MAC baseline, per-MAC ensemble, the ×3
//! scaling trick).

use std::collections::{BTreeMap, BTreeSet};

use aerorem_mission::SampleSet;
use aerorem_ml::dataset::Dataset;
use aerorem_ml::preprocess::OneHotEncoder;
use aerorem_ml::MlError;
use aerorem_propagation::ap::MacAddress;
use aerorem_propagation::WifiChannel;
use aerorem_spatial::Vec3;

use crate::exec::{self, ExecPolicy};

/// Preprocessing knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PreprocessConfig {
    /// Minimum samples a MAC needs to be retained (paper: 16).
    pub min_samples_per_mac: usize,
}

impl PreprocessConfig {
    /// The paper's configuration.
    pub fn paper() -> Self {
        PreprocessConfig {
            min_samples_per_mac: 16,
        }
    }
}

impl Default for PreprocessConfig {
    fn default() -> Self {
        Self::paper()
    }
}

/// Where each feature block lives in a row.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureLayout {
    mac_encoder: OneHotEncoder<MacAddress>,
    channel_encoder: OneHotEncoder<u8>,
    /// Most common beacon channel per retained MAC — needed to encode
    /// queries for arbitrary positions.
    mac_channels: BTreeMap<MacAddress, u8>,
}

impl FeatureLayout {
    /// Total feature dimension.
    pub fn dim(&self) -> usize {
        3 + self.mac_encoder.width() + self.channel_encoder.width()
    }

    /// Index range of the coordinate block (always `0..3`).
    pub fn coord_range(&self) -> std::ops::Range<usize> {
        0..3
    }

    /// Index range of the one-hot MAC block.
    pub fn mac_range(&self) -> std::ops::Range<usize> {
        3..3 + self.mac_encoder.width()
    }

    /// Index range of the one-hot channel block.
    pub fn channel_range(&self) -> std::ops::Range<usize> {
        let start = 3 + self.mac_encoder.width();
        start..start + self.channel_encoder.width()
    }

    /// The retained MACs in column order.
    pub fn macs(&self) -> Vec<MacAddress> {
        self.mac_encoder.categories().into_iter().copied().collect()
    }

    /// Whether a MAC survived preprocessing.
    pub fn contains_mac(&self, mac: MacAddress) -> bool {
        self.mac_encoder.column(&mac).is_some()
    }

    /// The per-feature scale vector implementing the paper's "one-hot
    /// values multiplied by the factor of `f`" trick: 1.0 everywhere except
    /// the MAC block.
    pub fn mac_scale_vector(&self, factor: f64) -> Vec<f64> {
        let mut v = vec![1.0; self.dim()];
        for i in self.mac_range() {
            v[i] = factor;
        }
        v
    }

    /// Encodes a feature row for a position/MAC query (channel taken from
    /// the MAC's observed beacon channel).
    ///
    /// # Errors
    ///
    /// Returns [`MlError::InvalidHyperparameter`] for a MAC that was dropped
    /// or never seen.
    pub fn encode_query(&self, position: Vec3, mac: MacAddress) -> Result<Vec<f64>, MlError> {
        let mut row = Vec::with_capacity(self.dim());
        self.encode_query_into(position, mac, &mut row)?;
        Ok(row)
    }

    /// Appends the encoded query row onto `out` without allocating — the
    /// building block for batch-encoding lattices into a
    /// [`aerorem_ml::FeatureMatrix`] via `push_row_with`. Appends exactly
    /// [`FeatureLayout::dim`] values on success and nothing on error.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::InvalidHyperparameter`] for a MAC that was dropped
    /// or never seen.
    pub fn encode_query_into(
        &self,
        position: Vec3,
        mac: MacAddress,
        out: &mut Vec<f64>,
    ) -> Result<(), MlError> {
        if !self.contains_mac(mac) {
            return Err(MlError::InvalidHyperparameter {
                name: "mac",
                reason: "MAC was dropped in preprocessing or never observed",
            });
        }
        let ch = *self
            .mac_channels
            .get(&mac)
            .expect("every encoded MAC has a channel"); // lint:allow(panic-reach) — contains_mac() returned above, and fit() inserts a channel for every MAC it keeps
        out.extend([position.x, position.y, position.z]);
        // Presence was checked above and the channel encoder covers every
        // observed channel, so both encodings are Known; an Unknown would
        // still zero-fill and keep the row aligned.
        let mac_enc = self.mac_encoder.encode_into(&mac, out);
        debug_assert!(mac_enc.is_known(), "presence checked above");
        let ch_enc = self.channel_encoder.encode_into(&ch, out);
        debug_assert!(ch_enc.is_known(), "channel encoder covers observed channels");
        Ok(())
    }

    /// Encodes a row with an explicit channel — used when rebuilding
    /// training rows.
    fn encode_row(&self, position: Vec3, mac: MacAddress, channel: WifiChannel) -> Option<Vec<f64>> {
        let mac_oh = self.mac_encoder.encode(&mac)?;
        let ch_oh = self.channel_encoder.encode(&channel.number())?;
        let mut row = Vec::with_capacity(self.dim());
        row.extend([position.x, position.y, position.z]);
        row.extend(mac_oh);
        row.extend(ch_oh);
        Some(row)
    }
}

/// What preprocessing kept and dropped — the paper reports "2565 retained
/// samples (131 dropped)".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PreprocessReport {
    /// Samples in the raw set.
    pub total_samples: usize,
    /// Samples surviving the MAC filter.
    pub retained_samples: usize,
    /// Samples dropped with rare MACs.
    pub dropped_samples: usize,
    /// Distinct MACs before filtering.
    pub total_macs: usize,
    /// MACs retained.
    pub retained_macs: usize,
}

/// Runs the paper's preprocessing over a sample set under the default
/// [`ExecPolicy`].
///
/// Returns the feature dataset, the layout, and the retention report.
///
/// # Errors
///
/// Returns [`MlError::EmptyTrainingSet`] when nothing survives the filter.
pub fn preprocess(
    samples: &SampleSet,
    config: &PreprocessConfig,
) -> Result<(Dataset, FeatureLayout, PreprocessReport), MlError> {
    preprocess_with(samples, config, ExecPolicy::default())
}

/// [`preprocess`] with an explicit execution policy.
///
/// Two stages parallelize: the per-MAC channel grouping (each retained MAC
/// scans the kept samples independently) and the per-sample feature-row
/// encoding. Both are pure per-item maps reassembled in input order, so
/// serial and parallel runs produce identical datasets and layouts.
///
/// # Errors
///
/// Returns [`MlError::EmptyTrainingSet`] when nothing survives the filter.
pub fn preprocess_with(
    samples: &SampleSet,
    config: &PreprocessConfig,
    policy: ExecPolicy,
) -> Result<(Dataset, FeatureLayout, PreprocessReport), MlError> {
    let counts = samples.counts_per_mac();
    let retained: Vec<MacAddress> = counts
        .iter()
        .filter(|(_, &n)| n >= config.min_samples_per_mac)
        .map(|(&m, _)| m)
        .collect();
    if retained.is_empty() {
        return Err(MlError::EmptyTrainingSet);
    }
    let retained_set: BTreeSet<MacAddress> = retained.iter().copied().collect();

    let kept: Vec<_> = samples
        .iter()
        .filter(|s| retained_set.contains(&s.mac))
        .collect();

    // Encoders over the retained population.
    let mac_encoder = OneHotEncoder::fit(kept.iter().map(|s| s.mac));
    let channel_encoder = OneHotEncoder::fit(kept.iter().map(|s| s.channel.number()));

    // Dominant channel per MAC (APs beacon on one channel; ties broken by
    // channel number for determinism). Each MAC is grouped independently.
    // Each MAC scans all kept samples (O(macs × samples)), so one MAC is
    // an expensive item: per-item chunks keep the claimer balanced.
    let mac_pool = exec::ScratchPool::new(|| ());
    let mac_channels: BTreeMap<MacAddress, u8> = exec::map_vec_with(
        policy,
        exec::Granularity::per_item(),
        &mac_pool,
        &retained,
        |(), &mac| {
            let mut chans: BTreeMap<u8, usize> = BTreeMap::new();
            for s in kept.iter().filter(|s| s.mac == mac) {
                *chans.entry(s.channel.number()).or_insert(0) += 1;
            }
            let best = chans
                .into_iter()
                .max_by_key(|&(ch, n)| (n, std::cmp::Reverse(ch)))
                .map(|(ch, _)| ch)
                .expect("retained mac has samples");
            (mac, best)
        },
    )
    .into_iter()
    .collect();

    let layout = FeatureLayout {
        mac_encoder,
        channel_encoder,
        mac_channels,
    };

    // Per-sample feature rows: independent, order-preserving. Encoding one
    // row is cheap, so rows-scale chunks amortize the executor overhead.
    let row_pool = exec::ScratchPool::new(|| ());
    let rows = exec::map_vec_with(
        policy,
        exec::Granularity::rows(),
        &row_pool,
        &kept,
        |(), s| {
            let row = layout
                .encode_row(s.position, s.mac, s.channel)
                .expect("retained samples encode");
            (row, f64::from(s.rssi_dbm))
        },
    );
    let mut x = Vec::with_capacity(rows.len());
    let mut y = Vec::with_capacity(rows.len());
    for (row, target) in rows {
        x.push(row);
        y.push(target);
    }
    let report = PreprocessReport {
        total_samples: samples.len(),
        retained_samples: kept.len(),
        dropped_samples: samples.len() - kept.len(),
        total_macs: counts.len(),
        retained_macs: retained.len(),
    };
    Ok((Dataset::new(x, y)?, layout, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use aerorem_mission::Sample;
    use aerorem_propagation::ap::Ssid;
    use aerorem_simkit::SimTime;
    use aerorem_uav::UavId;

    fn sample(mac: u32, channel: u8, rssi: i32, pos: Vec3) -> Sample {
        Sample {
            uav: UavId(0),
            waypoint_index: 0,
            position: pos,
            true_position: pos,
            ssid: Ssid::new(format!("net{mac}")),
            mac: MacAddress::from_index(mac),
            channel: WifiChannel::new(channel).unwrap(),
            rssi_dbm: rssi,
            timestamp: SimTime::ZERO,
        }
    }

    fn set_with(counts: &[(u32, usize)]) -> SampleSet {
        let mut set = SampleSet::new();
        for &(mac, n) in counts {
            for i in 0..n {
                set.push(sample(
                    mac,
                    if mac % 2 == 0 { 6 } else { 11 },
                    -70 - (i as i32 % 5),
                    Vec3::new(i as f64 * 0.1, 0.5, 1.0),
                ));
            }
        }
        set
    }

    #[test]
    fn rare_macs_dropped_like_paper() {
        let set = set_with(&[(1, 20), (2, 16), (3, 15), (4, 1)]);
        let (data, layout, report) = preprocess(&set, &PreprocessConfig::paper()).unwrap();
        assert_eq!(report.total_samples, 52);
        assert_eq!(report.retained_samples, 36);
        assert_eq!(report.dropped_samples, 16);
        assert_eq!(report.total_macs, 4);
        assert_eq!(report.retained_macs, 2);
        assert_eq!(data.len(), 36);
        assert!(layout.contains_mac(MacAddress::from_index(1)));
        assert!(!layout.contains_mac(MacAddress::from_index(3)));
    }

    #[test]
    fn feature_layout_blocks() {
        let set = set_with(&[(1, 20), (2, 20)]);
        let (data, layout, _) = preprocess(&set, &PreprocessConfig::paper()).unwrap();
        // 3 coords + 2 macs + 2 channels (6 and 11).
        assert_eq!(layout.dim(), 7);
        assert_eq!(layout.coord_range(), 0..3);
        assert_eq!(layout.mac_range(), 3..5);
        assert_eq!(layout.channel_range(), 5..7);
        assert_eq!(data.dim(), 7);
        // Each row is one-hot within each block.
        for row in &data.x {
            let mac_sum: f64 = row[layout.mac_range()].iter().sum();
            let ch_sum: f64 = row[layout.channel_range()].iter().sum();
            assert_eq!(mac_sum, 1.0);
            assert_eq!(ch_sum, 1.0);
        }
    }

    #[test]
    fn scale_vector_targets_mac_block() {
        let set = set_with(&[(1, 20), (2, 20)]);
        let (_, layout, _) = preprocess(&set, &PreprocessConfig::paper()).unwrap();
        let v = layout.mac_scale_vector(3.0);
        assert_eq!(v.len(), layout.dim());
        assert!(v[layout.coord_range()].iter().all(|&s| s == 1.0));
        assert!(v[layout.mac_range()].iter().all(|&s| s == 3.0));
        assert!(v[layout.channel_range()].iter().all(|&s| s == 1.0));
    }

    #[test]
    fn query_encoding_round_trips() {
        let set = set_with(&[(1, 20), (2, 20)]);
        let (_, layout, _) = preprocess(&set, &PreprocessConfig::paper()).unwrap();
        let q = layout
            .encode_query(Vec3::new(1.0, 2.0, 0.5), MacAddress::from_index(2))
            .unwrap();
        assert_eq!(q.len(), layout.dim());
        assert_eq!(&q[0..3], &[1.0, 2.0, 0.5]);
        // Dropped MAC rejected.
        assert!(layout
            .encode_query(Vec3::ZERO, MacAddress::from_index(99))
            .is_err());
    }

    #[test]
    fn macs_listed_in_column_order() {
        let set = set_with(&[(5, 20), (1, 20)]);
        let (_, layout, _) = preprocess(&set, &PreprocessConfig::paper()).unwrap();
        let macs = layout.macs();
        assert_eq!(macs.len(), 2);
        assert!(macs[0] < macs[1], "sorted by MAC bytes");
    }

    #[test]
    fn serial_and_parallel_preprocessing_agree_exactly() {
        let set = set_with(&[(1, 40), (2, 25), (3, 17), (4, 3)]);
        let cfg = PreprocessConfig::paper();
        let (ds, ls, rs) = preprocess_with(&set, &cfg, ExecPolicy::Serial).unwrap();
        let (dp, lp, rp) = preprocess_with(&set, &cfg, ExecPolicy::Parallel).unwrap();
        assert_eq!(ds.x, dp.x);
        assert_eq!(ds.y, dp.y);
        assert_eq!(ls, lp);
        assert_eq!(rs, rp);
    }

    #[test]
    fn everything_dropped_is_an_error() {
        let set = set_with(&[(1, 3), (2, 2)]);
        assert_eq!(
            preprocess(&set, &PreprocessConfig::paper()).err(),
            Some(MlError::EmptyTrainingSet)
        );
    }

    #[test]
    fn targets_are_rssi() {
        let set = set_with(&[(1, 16)]);
        let (data, _, _) = preprocess(&set, &PreprocessConfig::paper()).unwrap();
        assert!(data.y.iter().all(|&t| (-76.0..=-70.0).contains(&t)));
    }
}
