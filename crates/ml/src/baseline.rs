//! Baseline estimators.
//!
//! §III-B: "In order to assess more elaborate estimators we used a baseline
//! estimator that always returns the mean per MAC address" — that is
//! [`GroupMeanBaseline`] keyed on the one-hot MAC block. [`GlobalMean`] is
//! the even dumber floor.

use std::collections::BTreeMap;

use crate::{validate_matrix_y, validate_xy, FeatureMatrix, MlError, Regressor};

/// Predicts the global training mean for every input.
#[derive(Debug, Clone, Default)]
pub struct GlobalMean {
    mean: Option<f64>,
    dim: usize,
}

impl GlobalMean {
    /// Creates an unfitted global-mean predictor.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Regressor for GlobalMean {
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) -> Result<(), MlError> {
        self.dim = validate_xy(x, y)?;
        self.mean = Some(y.iter().sum::<f64>() / y.len() as f64);
        Ok(())
    }

    fn fit_batch(&mut self, xs: &FeatureMatrix, y: &[f64]) -> Result<(), MlError> {
        self.dim = validate_matrix_y(xs, y)?;
        self.mean = Some(y.iter().sum::<f64>() / y.len() as f64);
        Ok(())
    }

    fn predict_one(&self, x: &[f64]) -> Result<f64, MlError> {
        let mean = self.mean.ok_or(MlError::NotFitted)?;
        if x.len() != self.dim {
            return Err(MlError::DimensionMismatch {
                expected: self.dim,
                found: x.len(),
            });
        }
        Ok(mean)
    }
}

/// Predicts the mean target of the group identified by a one-hot block of
/// the feature row — the paper's mean-per-MAC baseline.
///
/// The group key is the index of the maximum feature within
/// `group_range`; rows whose group never appeared in training fall back to
/// the global mean.
///
/// # Examples
///
/// ```
/// use aerorem_ml::baseline::GroupMeanBaseline;
/// use aerorem_ml::Regressor;
///
/// # fn main() -> Result<(), aerorem_ml::MlError> {
/// // Rows: [x, mac0, mac1]; group block is features 1..3.
/// let x = vec![
///     vec![0.0, 1.0, 0.0],
///     vec![9.0, 1.0, 0.0],
///     vec![5.0, 0.0, 1.0],
/// ];
/// let y = vec![-70.0, -74.0, -60.0];
/// let mut b = GroupMeanBaseline::new(1..3)?;
/// b.fit(&x, &y)?;
/// assert_eq!(b.predict_one(&[3.3, 1.0, 0.0])?, -72.0); // mean of mac0
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct GroupMeanBaseline {
    group_range: std::ops::Range<usize>,
    group_means: BTreeMap<usize, f64>,
    global_mean: Option<f64>,
    dim: usize,
}

impl GroupMeanBaseline {
    /// Creates a baseline whose group key is the argmax within
    /// `group_range` of the feature row.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::InvalidHyperparameter`] for an empty range.
    pub fn new(group_range: std::ops::Range<usize>) -> Result<Self, MlError> {
        if group_range.is_empty() {
            return Err(MlError::InvalidHyperparameter {
                name: "group_range",
                reason: "must be non-empty",
            });
        }
        Ok(GroupMeanBaseline {
            group_range,
            group_means: BTreeMap::new(),
            global_mean: None,
            dim: 0,
        })
    }

    fn group_of(&self, row: &[f64]) -> usize {
        let slice = &row[self.group_range.clone()];
        slice
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite features"))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// Number of groups seen in training.
    pub fn group_count(&self) -> usize {
        self.group_means.len()
    }

    /// Shared fitting core: both [`Regressor::fit`] and
    /// [`Regressor::fit_batch`] run this exact accumulation (same row
    /// order), so the two entry points leave identical state behind.
    fn fit_rows<'r>(
        &mut self,
        rows: impl Iterator<Item = &'r [f64]>,
        y: &[f64],
        dim: usize,
    ) -> Result<(), MlError> {
        if self.group_range.end > dim {
            return Err(MlError::DimensionMismatch {
                expected: self.group_range.end,
                found: dim,
            });
        }
        self.dim = dim;
        let mut sums: BTreeMap<usize, (f64, usize)> = BTreeMap::new();
        for (row, &t) in rows.zip(y) {
            let e = sums.entry(self.group_of(row)).or_insert((0.0, 0));
            e.0 += t;
            e.1 += 1;
        }
        self.group_means = sums
            .into_iter()
            .map(|(g, (sum, n))| (g, sum / n as f64))
            .collect();
        self.global_mean = Some(y.iter().sum::<f64>() / y.len() as f64);
        Ok(())
    }
}

impl Regressor for GroupMeanBaseline {
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) -> Result<(), MlError> {
        let dim = validate_xy(x, y)?;
        self.fit_rows(x.iter().map(Vec::as_slice), y, dim)
    }

    fn fit_batch(&mut self, xs: &FeatureMatrix, y: &[f64]) -> Result<(), MlError> {
        let dim = validate_matrix_y(xs, y)?;
        self.fit_rows(xs.iter(), y, dim)
    }

    fn predict_one(&self, x: &[f64]) -> Result<f64, MlError> {
        let global = self.global_mean.ok_or(MlError::NotFitted)?;
        if x.len() != self.dim {
            return Err(MlError::DimensionMismatch {
                expected: self.dim,
                found: x.len(),
            });
        }
        Ok(self
            .group_means
            .get(&self.group_of(x))
            .copied()
            .unwrap_or(global))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_mean_predicts_mean() {
        let mut g = GlobalMean::new();
        g.fit(&[vec![1.0], vec![2.0], vec![3.0]], &[10.0, 20.0, 30.0])
            .unwrap();
        assert_eq!(g.predict_one(&[99.0]).unwrap(), 20.0);
        assert!(matches!(
            g.predict_one(&[1.0, 2.0]),
            Err(MlError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn global_mean_not_fitted() {
        let g = GlobalMean::new();
        assert_eq!(g.predict_one(&[1.0]), Err(MlError::NotFitted));
    }

    #[test]
    fn group_means_per_mac() {
        // 3 MACs one-hot at features 0..3.
        let x = vec![
            vec![1.0, 0.0, 0.0],
            vec![1.0, 0.0, 0.0],
            vec![0.0, 1.0, 0.0],
            vec![0.0, 0.0, 1.0],
        ];
        let y = vec![-70.0, -80.0, -60.0, -50.0];
        let mut b = GroupMeanBaseline::new(0..3).unwrap();
        b.fit(&x, &y).unwrap();
        assert_eq!(b.group_count(), 3);
        assert_eq!(b.predict_one(&[1.0, 0.0, 0.0]).unwrap(), -75.0);
        assert_eq!(b.predict_one(&[0.0, 1.0, 0.0]).unwrap(), -60.0);
        assert_eq!(b.predict_one(&[0.0, 0.0, 1.0]).unwrap(), -50.0);
    }

    #[test]
    fn unseen_group_falls_back_to_global() {
        let x = vec![vec![1.0, 0.0, 9.9], vec![1.0, 0.0, 1.1]];
        let y = vec![-70.0, -74.0];
        // Group block is features 0..2; feature 2 is a coordinate.
        let mut b = GroupMeanBaseline::new(0..2).unwrap();
        b.fit(&x, &y).unwrap();
        // Group 1 (one-hot at position 1) never trained.
        assert_eq!(b.predict_one(&[0.0, 1.0, 0.0]).unwrap(), -72.0);
    }

    #[test]
    fn validation() {
        assert!(GroupMeanBaseline::new(3..3).is_err());
        let mut b = GroupMeanBaseline::new(0..5).unwrap();
        assert!(b.fit(&[vec![1.0, 2.0]], &[0.0]).is_err());
        let b = GroupMeanBaseline::new(0..1).unwrap();
        assert_eq!(b.predict_one(&[1.0]), Err(MlError::NotFitted));
    }

    #[test]
    fn group_ignores_non_block_features() {
        let x = vec![vec![5.0, 1.0, 0.0], vec![-3.0, 1.0, 0.0]];
        let y = vec![1.0, 3.0];
        let mut b = GroupMeanBaseline::new(1..3).unwrap();
        b.fit(&x, &y).unwrap();
        // Wildly different coordinate, same MAC → same prediction.
        assert_eq!(b.predict_one(&[100.0, 1.0, 0.0]).unwrap(), 2.0);
    }
}
