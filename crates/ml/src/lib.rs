//! From-scratch machine learning and geostatistics for REM prediction.
//!
//! §III-B of the paper trains several estimators on the collected
//! `(x, y, z, one-hot MAC, one-hot channel) → RSS` samples and compares
//! their RMSE on a 75/25 split (Figure 8):
//!
//! * a **baseline** that "always returns the mean per MAC address"
//!   ([`baseline::GroupMeanBaseline`]);
//! * **kNN regressors** ([`knn::KnnRegressor`]) with Minkowski metric,
//!   distance weighting, grid-searched `k`, optionally with the one-hot MAC
//!   block scaled ×3, plus a **per-MAC ensemble** ([`ensemble`]);
//! * a **neural network** ([`mlp::Mlp`]): one 16-node sigmoid hidden layer,
//!   linear output, Adam.
//!
//! The Rust ecosystem offers no scikit-learn, so everything here — KD-trees,
//! backprop, Adam, grid search, k-fold CV — is implemented from scratch on
//! `aerorem-numerics` (see `DESIGN.md` §2).
//!
//! Beyond the paper, the crate ships the geostatistical interpolators the
//! REM community usually reaches for: **inverse-distance weighting**
//! ([`idw`]) and **ordinary kriging** with variogram fitting ([`kriging`])
//! — used as ablation baselines in the benches.
//!
//! # Examples
//!
//! ```
//! use aerorem_ml::knn::{KnnRegressor, Weighting};
//! use aerorem_ml::Regressor;
//!
//! # fn main() -> Result<(), aerorem_ml::MlError> {
//! let x = vec![vec![0.0], vec![1.0], vec![2.0], vec![3.0]];
//! let y = vec![0.0, 1.0, 2.0, 3.0];
//! let mut knn = KnnRegressor::new(2, Weighting::Distance, 2.0)?;
//! knn.fit(&x, &y)?;
//! let pred = knn.predict_one(&[1.4])?;
//! assert!((pred - 1.4).abs() < 0.5);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod crossval;
pub mod dataset;
pub mod ensemble;
pub mod gridsearch;
pub mod idw;
pub mod kdtree;
pub mod knn;
pub mod kriging;
pub mod mlp;
pub mod preprocess;

use std::fmt;

pub use aerorem_numerics::FeatureMatrix;

/// Error type shared by all estimators.
#[derive(Debug, Clone, PartialEq)]
pub enum MlError {
    /// Predict called before fit.
    NotFitted,
    /// The training set was empty.
    EmptyTrainingSet,
    /// Feature dimensions disagree (between rows, or fit vs predict).
    DimensionMismatch {
        /// Expected feature count.
        expected: usize,
        /// Found feature count.
        found: usize,
    },
    /// A hyperparameter was out of its valid range.
    InvalidHyperparameter {
        /// Which hyperparameter.
        name: &'static str,
        /// Why it is invalid.
        reason: &'static str,
    },
    /// The targets/features length mismatch.
    LengthMismatch {
        /// Number of feature rows.
        rows: usize,
        /// Number of targets.
        targets: usize,
    },
    /// A numerical routine failed (singular kriging system, NaN loss, …).
    Numerical(String),
}

impl fmt::Display for MlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MlError::NotFitted => write!(f, "estimator used before fit"),
            MlError::EmptyTrainingSet => write!(f, "training set is empty"),
            MlError::DimensionMismatch { expected, found } => {
                write!(
                    f,
                    "feature dimension mismatch: expected {expected}, found {found}"
                )
            }
            MlError::InvalidHyperparameter { name, reason } => {
                write!(f, "invalid hyperparameter {name}: {reason}")
            }
            MlError::LengthMismatch { rows, targets } => {
                write!(f, "{rows} feature rows but {targets} targets")
            }
            MlError::Numerical(msg) => write!(f, "numerical failure: {msg}"),
        }
    }
}

impl std::error::Error for MlError {}

/// A regression estimator: fit on rows, predict scalars.
///
/// `Send + Sync` is a supertrait so fitted models can be shared across
/// worker threads — the REM generator predicts every lattice voxel in
/// parallel from one `&dyn Regressor`. All estimators here are plain
/// value types, so the bound costs implementors nothing.
pub trait Regressor: Send + Sync {
    /// Fits the estimator to feature rows `x` and targets `y`.
    ///
    /// # Errors
    ///
    /// Returns [`MlError`] for empty, ragged, or mismatched input.
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) -> Result<(), MlError>;

    /// Predicts the target for one feature row.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::NotFitted`] before fit and
    /// [`MlError::DimensionMismatch`] for wrong-width rows.
    fn predict_one(&self, x: &[f64]) -> Result<f64, MlError>;

    /// Predicts a batch of rows.
    ///
    /// # Errors
    ///
    /// Propagates the first row error.
    fn predict(&self, xs: &[Vec<f64>]) -> Result<Vec<f64>, MlError> {
        xs.iter().map(|x| self.predict_one(x)).collect()
    }

    /// Predicts every row of a contiguous [`FeatureMatrix`] — the batched
    /// inference hot path.
    ///
    /// The contract is strict: implementations must return **exactly** the
    /// bits that mapping [`Regressor::predict_one`] over the rows would
    /// produce. Batching is a performance optimization (buffer reuse, flat
    /// scans, matrix-level kernels), never a numerical one; tests/properties.rs
    /// enforces this for every estimator in the zoo. The default
    /// implementation simply maps `predict_one`.
    ///
    /// # Errors
    ///
    /// Propagates the first row error (in row order).
    fn predict_batch(&self, xs: &FeatureMatrix) -> Result<Vec<f64>, MlError> {
        xs.iter().map(|x| self.predict_one(x)).collect()
    }

    /// Fits the estimator from a contiguous [`FeatureMatrix`] — the batched
    /// training hot path, fed directly by `dataset::DatasetView` gathers.
    ///
    /// Same strict contract as [`Regressor::predict_batch`], mirrored for
    /// training: implementations must leave the estimator in **exactly** the
    /// state that [`Regressor::fit`] on the equivalent row slices would.
    /// Batching buys flat copies and zero-copy row views, never different
    /// numerics. The default implementation materializes the rows and
    /// delegates to `fit`; estimators on the model-selection hot path
    /// override it to consume the flat storage directly.
    ///
    /// # Errors
    ///
    /// Returns the same errors as [`Regressor::fit`].
    fn fit_batch(&mut self, xs: &FeatureMatrix, y: &[f64]) -> Result<(), MlError> {
        let rows: Vec<Vec<f64>> = xs.iter().map(<[f64]>::to_vec).collect();
        self.fit(&rows, y)
    }
}

/// Validates a [`FeatureMatrix`] + target vector pair, returning the
/// feature dimension. The matrix guarantees rectangular non-ragged rows by
/// construction, so only emptiness and length alignment need checking.
pub(crate) fn validate_matrix_y(xs: &FeatureMatrix, y: &[f64]) -> Result<usize, MlError> {
    if xs.is_empty() {
        return Err(MlError::EmptyTrainingSet);
    }
    if xs.rows() != y.len() {
        return Err(MlError::LengthMismatch {
            rows: xs.rows(),
            targets: y.len(),
        });
    }
    Ok(xs.dim())
}

/// Validates a feature matrix + target vector pair, returning the feature
/// dimension.
pub(crate) fn validate_xy(x: &[Vec<f64>], y: &[f64]) -> Result<usize, MlError> {
    if x.is_empty() {
        return Err(MlError::EmptyTrainingSet);
    }
    if x.len() != y.len() {
        return Err(MlError::LengthMismatch {
            rows: x.len(),
            targets: y.len(),
        });
    }
    let dim = x[0].len();
    if dim == 0 {
        return Err(MlError::DimensionMismatch {
            expected: 1,
            found: 0,
        });
    }
    for row in x {
        if row.len() != dim {
            return Err(MlError::DimensionMismatch {
                expected: dim,
                found: row.len(),
            });
        }
    }
    Ok(dim)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_xy_catches_problems() {
        assert_eq!(validate_xy(&[], &[]), Err(MlError::EmptyTrainingSet));
        assert_eq!(
            validate_xy(&[vec![1.0]], &[1.0, 2.0]),
            Err(MlError::LengthMismatch {
                rows: 1,
                targets: 2
            })
        );
        assert_eq!(
            validate_xy(&[vec![1.0], vec![1.0, 2.0]], &[0.0, 0.0]),
            Err(MlError::DimensionMismatch {
                expected: 1,
                found: 2
            })
        );
        assert_eq!(
            validate_xy(&[vec![]], &[0.0]),
            Err(MlError::DimensionMismatch {
                expected: 1,
                found: 0
            })
        );
        assert_eq!(validate_xy(&[vec![1.0, 2.0]], &[0.0]), Ok(2));
    }

    #[test]
    fn error_displays() {
        assert!(MlError::NotFitted.to_string().contains("before fit"));
        assert!(MlError::Numerical("nan".into()).to_string().contains("nan"));
        let e = MlError::InvalidHyperparameter {
            name: "k",
            reason: "must be positive",
        };
        assert!(e.to_string().contains('k'));
    }
}
