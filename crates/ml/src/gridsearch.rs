//! Hyperparameter grid search.
//!
//! §III-B tunes every estimator "using a grid search considering an
//! exhaustive set of hyperparameters", with "the validation set … taken out
//! of the training set". [`grid_search`] does exactly that over any list of
//! named candidate builders. Candidates are independent, so
//! [`grid_search_with`] evaluates them under an [`ExecPolicy`]: the split is
//! materialised **once** into flat [`FeatureMatrix`] fit/validation sets
//! (via [`Dataset::split_views`], no per-candidate deep copies) and each
//! candidate trains through [`Regressor::fit_batch`] and scores through
//! [`Regressor::predict_batch`]. Both policies produce bit-identical
//! rankings because candidate evaluation never communicates and the final
//! sort is a stable serial pass.

use rand::Rng;

use aerorem_numerics::exec::{self, ExecPolicy};
use aerorem_numerics::stats;
#[cfg(doc)]
use aerorem_numerics::FeatureMatrix;

use crate::dataset::Dataset;
use crate::{MlError, Regressor};

/// One evaluated grid-search candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct CandidateScore {
    /// Human-readable candidate description, e.g. `"k=16 w=distance p=2"`.
    pub name: String,
    /// Validation RMSE.
    pub rmse: f64,
}

/// Result of a grid search: every candidate scored, best first.
#[derive(Debug, Clone, PartialEq)]
pub struct GridSearchResult {
    /// Scores sorted ascending by RMSE (best first). Candidates that failed
    /// to fit are excluded.
    pub scores: Vec<CandidateScore>,
}

impl GridSearchResult {
    /// The winning candidate.
    ///
    /// Returns `None` when every candidate failed.
    pub fn best(&self) -> Option<&CandidateScore> {
        self.scores.first()
    }
}

/// A named estimator factory for the search grid.
pub type Candidate<M> = (String, Box<dyn Fn() -> M + Sync>);

/// Evaluates every candidate on a validation split carved out of the
/// training data, under the default execution policy.
///
/// `val_fraction` of `train` becomes the validation set (the paper's
/// protocol); each candidate is fitted on the remainder and scored by
/// validation RMSE. Candidates whose fit or predict fails are dropped from
/// the ranking (a grid may legitimately contain configurations that cannot
/// fit a given dataset).
///
/// # Errors
///
/// Returns [`MlError::InvalidHyperparameter`] for an empty candidate list
/// or a degenerate split, [`MlError::Numerical`] if *all* candidates failed.
pub fn grid_search<M, R>(
    candidates: Vec<Candidate<M>>,
    train: &Dataset,
    val_fraction: f64,
    rng: &mut R,
) -> Result<GridSearchResult, MlError>
where
    M: Regressor + Send,
    R: Rng,
{
    grid_search_with(candidates, train, val_fraction, rng, ExecPolicy::default())
}

/// [`grid_search`] with an explicit [`ExecPolicy`].
///
/// The ranking is bit-identical across policies: the validation split is
/// drawn from `rng` before any candidate work starts, every candidate sees
/// the same flat fit/validation matrices, and scores are sorted by a stable
/// serial pass.
///
/// # Errors
///
/// Same contract as [`grid_search`].
pub fn grid_search_with<M, R>(
    candidates: Vec<Candidate<M>>,
    train: &Dataset,
    val_fraction: f64,
    rng: &mut R,
    policy: ExecPolicy,
) -> Result<GridSearchResult, MlError>
where
    M: Regressor,
    R: Rng,
{
    if candidates.is_empty() {
        return Err(MlError::InvalidHyperparameter {
            name: "candidates",
            reason: "grid must contain at least one candidate",
        });
    }
    let (fit_view, val_view) = train.split_views(1.0 - val_fraction, rng)?;
    let (fit_x, fit_y) = fit_view.to_matrix();
    let (val_x, val_y) = val_view.to_matrix();

    // One candidate = one chunk: a fit + validation pass is orders of
    // magnitude heavier than the executor's per-chunk bookkeeping, and
    // per-item chunks give the dynamic claimer maximal load balance across
    // heterogeneous model costs (an MLP fit vs a kNN tree build).
    let pool = exec::ScratchPool::new(|| ());
    let results: Vec<Option<CandidateScore>> = exec::map_vec_with(
        policy,
        exec::Granularity::per_item(),
        &pool,
        &candidates,
        |(), (name, make)| {
            let mut model = make();
            model.fit_batch(&fit_x, &fit_y).ok()?;
            let preds = model.predict_batch(&val_x).ok()?;
            Some(CandidateScore {
                name: name.clone(),
                rmse: stats::rmse(&preds, &val_y),
            })
        },
    );

    let mut scores: Vec<CandidateScore> = results.into_iter().flatten().collect();
    if scores.is_empty() {
        return Err(MlError::Numerical(
            "every grid-search candidate failed to fit".into(),
        ));
    }
    scores.sort_by(|a, b| a.rmse.partial_cmp(&b.rmse).expect("finite RMSE"));
    Ok(GridSearchResult { scores })
}

/// Builds the paper's kNN hyperparameter grid: `k ∈ ks`,
/// `weights ∈ {uniform, distance}`, `p ∈ {1, 2}`.
pub fn knn_grid(ks: &[usize]) -> Vec<Candidate<crate::knn::KnnRegressor>> {
    use crate::knn::{KnnRegressor, Weighting};
    let mut out: Vec<Candidate<crate::knn::KnnRegressor>> = Vec::new();
    for &k in ks {
        for (wname, w) in [
            ("uniform", Weighting::Uniform),
            ("distance", Weighting::Distance),
        ] {
            for p in [1.0, 2.0] {
                let name = format!("k={k} w={wname} p={p}");
                out.push((
                    name,
                    Box::new(move || {
                        KnnRegressor::new(k, w, p).expect("grid parameters are valid")
                    }),
                ));
            }
        }
    }
    out
}

/// Builds the paper's MLP grid: "multiple hidden layers with a varying
/// amount of nodes … different activation functions and optimizers"
/// (§III-B). Epochs are reduced relative to the final training budget so
/// the grid stays affordable.
pub fn mlp_grid() -> Vec<Candidate<crate::mlp::Mlp>> {
    use crate::mlp::{Activation, Mlp, MlpConfig, Optimizer};
    let mut out: Vec<Candidate<crate::mlp::Mlp>> = Vec::new();
    for width in [8usize, 16, 32] {
        for (aname, act) in [("sigmoid", Activation::Sigmoid), ("relu", Activation::Relu)] {
            for (oname, opt) in [
                ("adam", Optimizer::adam(0.01)),
                ("sgd", Optimizer::Sgd { lr: 0.01 }),
            ] {
                let name = format!("mlp {width}x{aname} {oname}");
                out.push((
                    name,
                    Box::new(move || {
                        Mlp::new(MlpConfig {
                            hidden: vec![(width, act)],
                            optimizer: opt,
                            epochs: 120,
                            ..MlpConfig::paper_tuned()
                        })
                    }),
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knn::KnnRegressor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn noisy_line(n: usize) -> Dataset {
        // y = 2x with a deterministic "noise" wiggle.
        Dataset::new(
            (0..n).map(|i| vec![i as f64 / 10.0]).collect(),
            (0..n)
                .map(|i| 2.0 * (i as f64 / 10.0) + ((i * 7) % 3) as f64 * 0.05)
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn search_ranks_candidates() {
        let data = noisy_line(80);
        let mut rng = StdRng::seed_from_u64(1);
        let result = grid_search(knn_grid(&[1, 3, 8]), &data, 0.25, &mut rng).unwrap();
        assert_eq!(result.scores.len(), 12);
        // Sorted ascending.
        for w in result.scores.windows(2) {
            assert!(w[0].rmse <= w[1].rmse);
        }
        let best = result.best().unwrap();
        assert!(best.rmse < 0.5, "best rmse {}", best.rmse);
    }

    #[test]
    fn search_is_deterministic() {
        let data = noisy_line(60);
        let a = grid_search(
            knn_grid(&[1, 3]),
            &data,
            0.25,
            &mut StdRng::seed_from_u64(2),
        )
        .unwrap();
        let b = grid_search(
            knn_grid(&[1, 3]),
            &data,
            0.25,
            &mut StdRng::seed_from_u64(2),
        )
        .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn policies_agree_bit_for_bit() {
        let data = noisy_line(70);
        let serial = grid_search_with(
            knn_grid(&[1, 3, 8]),
            &data,
            0.25,
            &mut StdRng::seed_from_u64(9),
            ExecPolicy::Serial,
        )
        .unwrap();
        let parallel = grid_search_with(
            knn_grid(&[1, 3, 8]),
            &data,
            0.25,
            &mut StdRng::seed_from_u64(9),
            ExecPolicy::Parallel,
        )
        .unwrap();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn empty_grid_rejected() {
        let data = noisy_line(10);
        let mut rng = StdRng::seed_from_u64(3);
        let empty: Vec<Candidate<KnnRegressor>> = Vec::new();
        assert!(grid_search(empty, &data, 0.25, &mut rng).is_err());
    }

    #[test]
    fn failing_candidates_are_dropped() {
        // k larger than the fit set is fine for kNN (it clamps), so use an
        // impossible feature-scaled model to force a fit error.
        let data = noisy_line(20);
        let mut rng = StdRng::seed_from_u64(4);
        let mut cands = knn_grid(&[2]);
        cands.push((
            "broken".into(),
            Box::new(|| {
                KnnRegressor::new(1, crate::knn::Weighting::Uniform, 2.0)
                    .unwrap()
                    .with_feature_scaling(vec![1.0, 1.0, 1.0]) // wrong dim
                    .unwrap()
            }),
        ));
        let result = grid_search(cands, &data, 0.25, &mut rng).unwrap();
        assert!(result.scores.iter().all(|s| s.name != "broken"));
        assert_eq!(result.scores.len(), 4);
    }

    #[test]
    fn mlp_grid_runs_and_ranks() {
        // y = x0 + x1 on [0,1]²: every configuration can fit this, and the
        // grid search must rank them without failures.
        let data = Dataset::new(
            (0..80)
                .map(|i| vec![(i % 9) as f64 / 9.0, (i / 9) as f64 / 9.0])
                .collect(),
            (0..80)
                .map(|i| (i % 9) as f64 / 9.0 + (i / 9) as f64 / 9.0)
                .collect(),
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        let result = grid_search(mlp_grid(), &data, 0.25, &mut rng).unwrap();
        assert_eq!(result.scores.len(), 12);
        let best = result.best().unwrap();
        assert!(best.rmse < 0.25, "best MLP rmse {}", best.rmse);
        // Adam dominates the top of the table on this budget.
        assert!(best.name.contains("adam"), "winner {}", best.name);
    }

    #[test]
    fn knn_grid_shape() {
        let grid = knn_grid(&[3, 16]);
        assert_eq!(grid.len(), 2 * 2 * 2);
        assert!(grid.iter().any(|(n, _)| n == "k=16 w=distance p=2"));
    }
}
