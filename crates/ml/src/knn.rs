//! k-nearest-neighbour regression.
//!
//! §III-B: "a k-nearest neighbor regressor was considered … configured to
//! use Euclidean distance by setting `metric=minkowski` and `p=2` … the
//! optimal values were `weights = distance` and `n_neighbors = 3`", and a
//! variant "multiplying the one-hot encoded values by the factor of 3 and
//! setting the `n_neighbors` parameter to 16" performed best overall. All
//! of those knobs exist here; the ×3 trick is the
//! [`KnnRegressor::with_feature_scaling`] hook.
//!
//! The fitted training set is stored exactly once, as flat row-major
//! storage: the arena [`KdTree`] owns it on the tree backend, and the
//! brute-force backend keeps the same flat layout directly — there is no
//! `Vec<Vec<f64>>` copy alongside the tree.

use crate::kdtree::{
    brute_force_nearest_flat, brute_force_topk_into, top_k_from_candidates, KdTree, NeighborScratch,
};
use crate::{validate_matrix_y, validate_xy, FeatureMatrix, MlError, Regressor};
use aerorem_numerics::kernels::{sq_euclidean, taxicab};

/// Neighbour weighting scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Weighting {
    /// Plain average of the k targets.
    Uniform,
    /// Average weighted by inverse distance (`weights = distance` in
    /// scikit-learn terms). Exact matches dominate entirely.
    Distance,
}

/// Above this dimensionality the KD-tree backend loses to brute force and
/// the regressor switches automatically (see the `knn_backends` bench).
const KDTREE_MAX_DIM: usize = 8;

/// Fitted neighbour-search backend. Either variant is the sole owner of the
/// (scaled) training features, in flat row-major form.
#[derive(Debug, Clone)]
enum Fitted {
    /// Arena KD-tree for low-dimensional Euclidean search; owns the points.
    Tree(KdTree),
    /// Flat row-major training rows scanned exhaustively.
    Brute {
        /// `rows × dim` scaled feature values.
        data: Vec<f64>,
    },
}

/// A kNN regressor with Minkowski metric.
///
/// # Examples
///
/// ```
/// use aerorem_ml::knn::{KnnRegressor, Weighting};
/// use aerorem_ml::Regressor;
///
/// # fn main() -> Result<(), aerorem_ml::MlError> {
/// let x: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
/// let y: Vec<f64> = (0..10).map(|i| (i * i) as f64).collect();
/// let mut knn = KnnRegressor::new(3, Weighting::Distance, 2.0)?;
/// knn.fit(&x, &y)?;
/// assert_eq!(knn.predict_one(&[4.0])?, 16.0); // exact match wins
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct KnnRegressor {
    k: usize,
    weighting: Weighting,
    minkowski_p: f64,
    feature_scale: Option<Vec<f64>>,
    // Fitted state.
    y: Vec<f64>,
    fitted: Option<Fitted>,
    dim: Option<usize>,
}

impl KnnRegressor {
    /// Creates a regressor with `k` neighbours, a weighting scheme, and
    /// Minkowski order `p` (`p = 2` is Euclidean, `p = 1` Manhattan).
    ///
    /// # Errors
    ///
    /// Returns [`MlError::InvalidHyperparameter`] for `k = 0` or `p < 1`.
    pub fn new(k: usize, weighting: Weighting, minkowski_p: f64) -> Result<Self, MlError> {
        if k == 0 {
            return Err(MlError::InvalidHyperparameter {
                name: "k",
                reason: "must be at least 1",
            });
        }
        if minkowski_p < 1.0 || !minkowski_p.is_finite() {
            return Err(MlError::InvalidHyperparameter {
                name: "minkowski_p",
                reason: "must be finite and >= 1",
            });
        }
        Ok(KnnRegressor {
            k,
            weighting,
            minkowski_p,
            feature_scale: None,
            y: Vec::new(),
            fitted: None,
            dim: None,
        })
    }

    /// The paper's best plain configuration: `k = 3`, distance weights,
    /// Euclidean metric.
    pub fn paper_tuned() -> Self {
        Self::new(3, Weighting::Distance, 2.0).expect("valid constants")
    }

    /// Applies a per-feature scale before distance computation — the
    /// paper's "one-hot encoded values multiplied by the factor of 3" trick
    /// scales the MAC block by 3.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::InvalidHyperparameter`] if any scale is negative
    /// or not finite.
    pub fn with_feature_scaling(mut self, scale: Vec<f64>) -> Result<Self, MlError> {
        if scale.iter().any(|s| !s.is_finite() || *s < 0.0) {
            return Err(MlError::InvalidHyperparameter {
                name: "feature_scale",
                reason: "scales must be finite and non-negative",
            });
        }
        self.feature_scale = Some(scale);
        Ok(self)
    }

    /// The configured neighbour count.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Whether the fitted model is using the KD-tree backend.
    pub fn uses_kdtree(&self) -> bool {
        matches!(self.fitted, Some(Fitted::Tree(_)))
    }

    fn is_euclidean(&self) -> bool {
        (self.minkowski_p - 2.0).abs() < 1e-12
    }

    /// Applies the optional per-feature scale, writing into a reusable
    /// buffer.
    fn scale_into(&self, row: &[f64], out: &mut Vec<f64>) {
        out.clear();
        match &self.feature_scale {
            Some(s) => out.extend(row.iter().zip(s).map(|(v, w)| v * w)),
            None => out.extend_from_slice(row),
        }
    }

    fn minkowski(&self, a: &[f64], b: &[f64]) -> f64 {
        let p = self.minkowski_p;
        if (p - 2.0).abs() < 1e-12 {
            return sq_euclidean(a, b).sqrt();
        }
        if (p - 1.0).abs() < 1e-12 {
            // Taxicab fast path: IEEE 754 `pow(x, 1)` returns `x` exactly,
            // so dropping both `powf` calls leaves the per-term values
            // unchanged, and the shared eight-lane kernel fixes the
            // accumulation order workspace-wide (for `dim < 8` it is
            // bit-identical to the plain sequential sum).
            return taxicab(a, b);
        }
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y).abs().powf(p))
            .sum::<f64>()
            .powf(1.0 / p)
    }

    /// Finds the k nearest fitted rows to the (already scaled) query.
    fn neighbours(&self, query: &[f64]) -> Vec<(usize, f64)> {
        match self.fitted.as_ref().expect("checked by callers") {
            Fitted::Tree(tree) => tree.nearest(query, self.k),
            Fitted::Brute { data } => {
                if self.is_euclidean() {
                    brute_force_nearest_flat(data, query.len(), query, self.k)
                } else {
                    let mut all: Vec<(usize, f64)> = data
                        .chunks_exact(query.len())
                        .enumerate()
                        .map(|(i, p)| (i, self.minkowski(p, query)))
                        .collect();
                    all.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite").then(a.0.cmp(&b.0)));
                    all.truncate(self.k);
                    all
                }
            }
        }
    }

    /// Combines the neighbour targets under the configured weighting. Shared
    /// by the per-item and batched paths so both aggregate in the same order.
    fn aggregate(&self, nn: &[(usize, f64)]) -> f64 {
        debug_assert!(!nn.is_empty(), "fitted set is non-empty");
        match self.weighting {
            Weighting::Uniform => nn.iter().map(|&(i, _)| self.y[i]).sum::<f64>() / nn.len() as f64,
            Weighting::Distance => {
                // Exact matches dominate (scikit-learn semantics).
                let mut exact_sum = 0.0;
                let mut exact_n = 0usize;
                for &(i, d) in nn {
                    if d == 0.0 {
                        exact_sum += self.y[i];
                        exact_n += 1;
                    }
                }
                if exact_n > 0 {
                    return exact_sum / exact_n as f64;
                }
                let mut num = 0.0;
                let mut den = 0.0;
                for &(i, d) in nn {
                    let w = 1.0 / d;
                    num += w * self.y[i];
                    den += w;
                }
                num / den
            }
        }
    }

    fn check_dim(&self, found: usize) -> Result<usize, MlError> {
        let dim = self.dim.ok_or(MlError::NotFitted)?;
        if found != dim {
            return Err(MlError::DimensionMismatch {
                expected: dim,
                found,
            });
        }
        Ok(dim)
    }
}

impl KnnRegressor {
    /// Shared fit core: installs the already-flattened (scaled) training
    /// set. Both `fit` and `fit_batch` end here, so the two are
    /// bit-identical by construction.
    fn fit_flat(&mut self, flat: Vec<f64>, y: &[f64], dim: usize) -> Result<(), MlError> {
        if let Some(scale) = &self.feature_scale {
            if scale.len() != dim {
                return Err(MlError::DimensionMismatch {
                    expected: dim,
                    found: scale.len(),
                });
            }
        }
        self.y = y.to_vec();
        self.dim = Some(dim);
        // The KD-tree only accelerates the Euclidean metric in low
        // dimensions; otherwise stick to brute force.
        self.fitted = Some(if dim <= KDTREE_MAX_DIM && self.is_euclidean() {
            Fitted::Tree(KdTree::build_flat(flat, dim).expect("validated non-empty training set"))
        } else {
            Fitted::Brute { data: flat }
        });
        Ok(())
    }

    /// Single flat copy of the (scaled) training set; whichever backend is
    /// chosen takes ownership of it.
    fn flatten_scaled<'r>(
        &self,
        rows: impl Iterator<Item = &'r [f64]>,
        n: usize,
        dim: usize,
    ) -> Vec<f64> {
        let mut flat = Vec::with_capacity(n * dim);
        match &self.feature_scale {
            Some(s) => {
                for row in rows {
                    flat.extend(row.iter().zip(s).map(|(v, w)| v * w));
                }
            }
            None => {
                for row in rows {
                    flat.extend_from_slice(row);
                }
            }
        }
        flat
    }
}

impl Regressor for KnnRegressor {
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) -> Result<(), MlError> {
        let dim = validate_xy(x, y)?;
        if let Some(scale) = &self.feature_scale {
            if scale.len() != dim {
                return Err(MlError::DimensionMismatch {
                    expected: dim,
                    found: scale.len(),
                });
            }
        }
        let flat = self.flatten_scaled(x.iter().map(Vec::as_slice), x.len(), dim);
        self.fit_flat(flat, y, dim)
    }

    fn fit_batch(&mut self, xs: &FeatureMatrix, y: &[f64]) -> Result<(), MlError> {
        let dim = validate_matrix_y(xs, y)?;
        // Unscaled fits take the flat storage in one memcpy; scaled fits
        // stream it through the same per-element multiply `fit` uses.
        let flat = match &self.feature_scale {
            None => xs.as_slice().to_vec(),
            Some(_) => self.flatten_scaled(xs.iter(), xs.rows(), dim),
        };
        self.fit_flat(flat, y, dim)
    }

    fn predict_one(&self, x: &[f64]) -> Result<f64, MlError> {
        self.check_dim(x.len())?;
        let mut query = Vec::with_capacity(x.len());
        self.scale_into(x, &mut query);
        let nn = self.neighbours(&query);
        Ok(self.aggregate(&nn))
    }

    fn predict_batch(&self, xs: &FeatureMatrix) -> Result<Vec<f64>, MlError> {
        let dim = self.check_dim(xs.dim())?;
        let fitted = self.fitted.as_ref().ok_or(MlError::NotFitted)?;
        let mut out = Vec::with_capacity(xs.rows());
        // All per-query state is hoisted out of the loop and reused.
        let mut query: Vec<f64> = Vec::with_capacity(dim);
        let mut scratch = NeighborScratch::default();
        let mut cand: Vec<(usize, f64)> = Vec::new();
        let mut nn: Vec<(usize, f64)> = Vec::new();
        for row in xs.iter() {
            self.scale_into(row, &mut query);
            match fitted {
                Fitted::Tree(tree) => tree.nearest_into(&query, self.k, &mut scratch, &mut nn),
                Fitted::Brute { data } => {
                    if self.is_euclidean() {
                        brute_force_topk_into(data, dim, &query, self.k, &mut cand, &mut nn);
                    } else {
                        cand.clear();
                        cand.extend(
                            data.chunks_exact(dim)
                                .enumerate()
                                .map(|(i, p)| (i, self.minkowski(p, &query))),
                        );
                        top_k_from_candidates(&mut cand, self.k, &mut nn);
                    }
                }
            }
            out.push(self.aggregate(&nn));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn taxicab_fast_path_matches_the_general_formula_bits() {
        let model = KnnRegressor::new(1, Weighting::Uniform, 1.0).unwrap();
        for dim in [3usize, 7, 14] {
            let a: Vec<f64> = (0..dim).map(|i| (i as f64 * 0.37).sin() * 9.0).collect();
            let b: Vec<f64> = (0..dim).map(|i| (i as f64 * 0.61).cos() * 7.0).collect();
            // The fast path is the shared eight-lane kernel, bit for bit.
            assert_eq!(model.minkowski(&a, &b), taxicab(&a, &b), "dim {dim}");
            let general: f64 = a
                .iter()
                .zip(&b)
                .map(|(x, y)| (x - y).abs().powf(1.0))
                .sum::<f64>()
                .powf(1.0);
            if dim < 8 {
                // Below a full lane group the kernel IS the sequential sum.
                assert_eq!(model.minkowski(&a, &b), general, "dim {dim}");
            } else {
                let got = model.minkowski(&a, &b);
                assert!((got - general).abs() <= 1e-12 * general.abs(), "dim {dim}");
            }
        }
    }

    fn line_data() -> (Vec<Vec<f64>>, Vec<f64>) {
        let x: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64 * 0.5]).collect();
        let y: Vec<f64> = x.iter().map(|r| 2.0 * r[0] + 1.0).collect();
        (x, y)
    }

    #[test]
    fn interpolates_a_line() {
        let (x, y) = line_data();
        let mut knn = KnnRegressor::new(2, Weighting::Distance, 2.0).unwrap();
        knn.fit(&x, &y).unwrap();
        for q in [0.25, 1.3, 7.1] {
            let p = knn.predict_one(&[q]).unwrap();
            assert!((p - (2.0 * q + 1.0)).abs() < 0.6, "at {q}: {p}");
        }
    }

    #[test]
    fn exact_match_dominates_distance_weighting() {
        let (x, y) = line_data();
        let mut knn = KnnRegressor::new(5, Weighting::Distance, 2.0).unwrap();
        knn.fit(&x, &y).unwrap();
        assert_eq!(knn.predict_one(&[3.0]).unwrap(), 7.0);
    }

    #[test]
    fn uniform_weighting_is_plain_mean() {
        let x = vec![vec![0.0], vec![1.0], vec![10.0]];
        let y = vec![0.0, 10.0, 100.0];
        let mut knn = KnnRegressor::new(2, Weighting::Uniform, 2.0).unwrap();
        knn.fit(&x, &y).unwrap();
        // Neighbours of 0.4 are x=0 and x=1 → mean 5.
        assert_eq!(knn.predict_one(&[0.4]).unwrap(), 5.0);
    }

    #[test]
    fn k_larger_than_dataset_uses_everything() {
        let x = vec![vec![0.0], vec![1.0]];
        let y = vec![2.0, 4.0];
        let mut knn = KnnRegressor::new(16, Weighting::Uniform, 2.0).unwrap();
        knn.fit(&x, &y).unwrap();
        assert_eq!(knn.predict_one(&[0.5]).unwrap(), 3.0);
    }

    #[test]
    fn backend_selection_by_dimension() {
        let (x, y) = line_data();
        let mut low = KnnRegressor::new(3, Weighting::Uniform, 2.0).unwrap();
        low.fit(&x, &y).unwrap();
        assert!(low.uses_kdtree(), "1-D Euclidean → KD-tree");

        let x_hi: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64; 20]).collect();
        let mut hi = KnnRegressor::new(3, Weighting::Uniform, 2.0).unwrap();
        hi.fit(&x_hi, &y).unwrap();
        assert!(!hi.uses_kdtree(), "20-D → brute force");

        let mut manhattan = KnnRegressor::new(3, Weighting::Uniform, 1.0).unwrap();
        manhattan.fit(&x, &y).unwrap();
        assert!(!manhattan.uses_kdtree(), "p=1 → brute force");
    }

    #[test]
    fn backends_agree() {
        // Same data low-dim via tree vs forced brute force (p=1.9999…
        // rounds differently, so compare p=2 tree against p=2 brute by
        // padding dimensions instead).
        let x3: Vec<Vec<f64>> = (0..50)
            .map(|i| vec![(i % 7) as f64, (i % 5) as f64, (i % 3) as f64])
            .collect();
        let y: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let mut tree = KnnRegressor::new(4, Weighting::Distance, 2.0).unwrap();
        tree.fit(&x3, &y).unwrap();
        assert!(tree.uses_kdtree());
        // Pad with 6 constant zero dims: distances unchanged, but the
        // regressor now picks brute force.
        let x9: Vec<Vec<f64>> = x3
            .iter()
            .map(|r| {
                let mut v = r.clone();
                v.extend([0.0; 6]);
                v
            })
            .collect();
        let mut brute = KnnRegressor::new(4, Weighting::Distance, 2.0).unwrap();
        brute.fit(&x9, &y).unwrap();
        assert!(!brute.uses_kdtree());
        for i in 0..10 {
            let q3 = vec![i as f64 * 0.37, i as f64 * 0.21, 1.1];
            let mut q9 = q3.clone();
            q9.extend([0.0; 6]);
            let a = tree.predict_one(&q3).unwrap();
            let b = brute.predict_one(&q9).unwrap();
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn minkowski_p1_differs_from_p2() {
        let x = vec![vec![0.0, 0.0], vec![3.0, 4.0], vec![5.0, 0.0]];
        let y = vec![0.0, 1.0, 2.0];
        let mut p1 = KnnRegressor::new(1, Weighting::Uniform, 1.0).unwrap();
        let mut p2 = KnnRegressor::new(1, Weighting::Uniform, 2.0).unwrap();
        p1.fit(&x, &y).unwrap();
        p2.fit(&x, &y).unwrap();
        // Query (4, 0): Manhattan → (3,4) costs 5, (5,0) costs 1 → y=2.
        //               Euclidean → (5,0) costs 1 vs (3,4) costs √17 → y=2.
        // Query (3, 2): Manhattan → (3,4)=2, (5,0)=4, origin=5 → y=1.
        //               Euclidean → (3,4)=2, (5,0)=√8≈2.83 → y=1. Same…
        // Use (2.0, 2.5): Manhattan: origin 4.5, (3,4) 2.5, (5,0) 5.5 → y=1.
        //                 Euclidean: origin 3.20, (3,4) 1.80 → y=1. Same.
        // The metrics disagree at (4.4, 0.1): Manhattan (5,0)=0.7,(3,4)=5.3;
        // Euclidean (5,0)=0.608 → same winner. Verify distances instead.
        let d1 = p1.minkowski(&[0.0, 0.0], &[3.0, 4.0]);
        let d2 = p2.minkowski(&[0.0, 0.0], &[3.0, 4.0]);
        assert_eq!(d1, 7.0);
        assert_eq!(d2, 5.0);
    }

    #[test]
    fn feature_scaling_changes_neighbourhoods() {
        // Two clusters separated along dim 1; the query is nearer cluster B
        // spatially, but scaling the "MAC" dimension ×3 flips the verdict.
        let x = vec![
            vec![0.0, 1.0], // group A, near
            vec![1.2, 0.0], // group B
        ];
        let y = vec![10.0, 20.0];
        let query = [0.0, 0.0]; // group B's one-hot position
        let mut plain = KnnRegressor::new(1, Weighting::Uniform, 2.0).unwrap();
        plain.fit(&x, &y).unwrap();
        assert_eq!(plain.predict_one(&query).unwrap(), 10.0);
        let mut scaled = KnnRegressor::new(1, Weighting::Uniform, 2.0)
            .unwrap()
            .with_feature_scaling(vec![1.0, 3.0])
            .unwrap();
        scaled.fit(&x, &y).unwrap();
        assert_eq!(scaled.predict_one(&query).unwrap(), 20.0);
    }

    #[test]
    fn hyperparameter_validation() {
        assert!(KnnRegressor::new(0, Weighting::Uniform, 2.0).is_err());
        assert!(KnnRegressor::new(3, Weighting::Uniform, 0.5).is_err());
        assert!(KnnRegressor::new(3, Weighting::Uniform, f64::NAN).is_err());
        assert!(KnnRegressor::new(1, Weighting::Uniform, 2.0)
            .unwrap()
            .with_feature_scaling(vec![-1.0])
            .is_err());
    }

    #[test]
    fn lifecycle_errors() {
        let knn = KnnRegressor::paper_tuned();
        assert_eq!(knn.predict_one(&[1.0, 2.0]), Err(MlError::NotFitted));
        let mut knn = KnnRegressor::paper_tuned();
        knn.fit(&[vec![1.0, 2.0]], &[1.0]).unwrap();
        assert!(matches!(
            knn.predict_one(&[1.0]),
            Err(MlError::DimensionMismatch { .. })
        ));
        // Scale length must match fit dimension.
        let mut bad = KnnRegressor::new(1, Weighting::Uniform, 2.0)
            .unwrap()
            .with_feature_scaling(vec![1.0])
            .unwrap();
        assert!(bad.fit(&[vec![1.0, 2.0]], &[1.0]).is_err());
    }

    #[test]
    fn paper_tuned_settings() {
        let knn = KnnRegressor::paper_tuned();
        assert_eq!(knn.k(), 3);
    }

    #[test]
    fn batch_predict() {
        let (x, y) = line_data();
        let mut knn = KnnRegressor::paper_tuned();
        knn.fit(&x, &y).unwrap();
        let preds = knn.predict(&x).unwrap();
        assert_eq!(preds.len(), x.len());
        // Exact training points reproduce their targets under distance
        // weighting.
        for (p, t) in preds.iter().zip(&y) {
            assert!((p - t).abs() < 1e-9);
        }
    }

    #[test]
    fn predict_batch_matches_predict_one_bits() {
        // Both backends: 1-D (tree) and a scaled 10-D (brute force).
        let (x, y) = line_data();
        let mut tree = KnnRegressor::paper_tuned();
        tree.fit(&x, &y).unwrap();
        assert!(tree.uses_kdtree());
        let queries: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64 * 0.31 - 2.0]).collect();
        let fm = FeatureMatrix::from_rows(&queries).unwrap();
        let batch = tree.predict_batch(&fm).unwrap();
        for (q, b) in queries.iter().zip(&batch) {
            assert_eq!(tree.predict_one(q).unwrap(), *b);
        }

        let x10: Vec<Vec<f64>> = (0..60)
            .map(|i| {
                (0..10)
                    .map(|j| ((i * 7 + j * 3) % 11) as f64 * 0.4)
                    .collect()
            })
            .collect();
        let y10: Vec<f64> = (0..60).map(|i| -50.0 - i as f64).collect();
        let mut brute = KnnRegressor::new(5, Weighting::Distance, 2.0)
            .unwrap()
            .with_feature_scaling((0..10).map(|j| 1.0 + j as f64 * 0.1).collect())
            .unwrap();
        brute.fit(&x10, &y10).unwrap();
        assert!(!brute.uses_kdtree());
        let queries: Vec<Vec<f64>> = (0..25)
            .map(|i| (0..10).map(|j| ((i + j) % 9) as f64 * 0.7).collect())
            .collect();
        let fm = FeatureMatrix::from_rows(&queries).unwrap();
        let batch = brute.predict_batch(&fm).unwrap();
        for (q, b) in queries.iter().zip(&batch) {
            assert_eq!(brute.predict_one(q).unwrap(), *b);
        }
    }
}
