//! Feature/target datasets and deterministic splitting.
//!
//! §III-B: "the preprocessed data was split into a training (75%) and test
//! (25%) sets. For those estimators that require an additional validation
//! set for tuning their hyperparameters, the validation set was taken out
//! of the training set."

use rand::seq::SliceRandom;
use rand::Rng;

use crate::{validate_xy, FeatureMatrix, MlError};

/// A feature matrix with aligned targets.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Dataset {
    /// Feature rows.
    pub x: Vec<Vec<f64>>,
    /// Targets, one per row.
    pub y: Vec<f64>,
}

impl Dataset {
    /// Creates a dataset after validating shape consistency.
    ///
    /// # Errors
    ///
    /// Returns [`MlError`] for empty, ragged, or mismatched input.
    pub fn new(x: Vec<Vec<f64>>, y: Vec<f64>) -> Result<Self, MlError> {
        validate_xy(&x, &y)?;
        Ok(Dataset { x, y })
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// Whether the dataset has no rows.
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    /// Feature dimension.
    pub fn dim(&self) -> usize {
        self.x.first().map_or(0, Vec::len)
    }

    /// Splits into `(train, test)` with the given training fraction, after a
    /// seeded shuffle — the paper's 75/25 split uses `train_fraction = 0.75`.
    ///
    /// Both halves are guaranteed non-empty.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::InvalidHyperparameter`] when the fraction would
    /// leave either side empty (needs at least 2 rows and a fraction in
    /// `(0, 1)`).
    pub fn train_test_split<R: Rng>(
        &self,
        train_fraction: f64,
        rng: &mut R,
    ) -> Result<(Dataset, Dataset), MlError> {
        if !(0.0 < train_fraction && train_fraction < 1.0) {
            return Err(MlError::InvalidHyperparameter {
                name: "train_fraction",
                reason: "must be strictly between 0 and 1",
            });
        }
        if self.len() < 2 {
            return Err(MlError::InvalidHyperparameter {
                name: "train_fraction",
                reason: "need at least 2 rows to split",
            });
        }
        let mut idx: Vec<usize> = (0..self.len()).collect();
        idx.shuffle(rng);
        let n_train =
            ((self.len() as f64 * train_fraction).round() as usize).clamp(1, self.len() - 1);
        let take = |ids: &[usize]| Dataset {
            x: ids.iter().map(|&i| self.x[i].clone()).collect(),
            y: ids.iter().map(|&i| self.y[i]).collect(),
        };
        Ok((take(&idx[..n_train]), take(&idx[n_train..])))
    }

    /// Selects a subset of rows by index.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        Dataset {
            x: indices.iter().map(|&i| self.x[i].clone()).collect(),
            y: indices.iter().map(|&i| self.y[i]).collect(),
        }
    }

    /// A borrowed view over the rows selected by `indices` — no feature or
    /// target data is copied until the view is gathered into flat storage.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn view(&self, indices: Vec<usize>) -> DatasetView<'_> {
        assert!(
            indices.iter().all(|&i| i < self.len()),
            "view index out of bounds"
        );
        DatasetView {
            data: self,
            indices,
        }
    }

    /// Splits into borrowed `(train, test)` views with the given training
    /// fraction. Consumes the RNG **exactly** like
    /// [`Dataset::train_test_split`] (same shuffle, same rounding), so the
    /// two are interchangeable: the views select the identical rows the
    /// deep-copying split would have copied.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Dataset::train_test_split`].
    pub fn split_views<R: Rng>(
        &self,
        train_fraction: f64,
        rng: &mut R,
    ) -> Result<(DatasetView<'_>, DatasetView<'_>), MlError> {
        if !(0.0 < train_fraction && train_fraction < 1.0) {
            return Err(MlError::InvalidHyperparameter {
                name: "train_fraction",
                reason: "must be strictly between 0 and 1",
            });
        }
        if self.len() < 2 {
            return Err(MlError::InvalidHyperparameter {
                name: "train_fraction",
                reason: "need at least 2 rows to split",
            });
        }
        let mut idx: Vec<usize> = (0..self.len()).collect();
        idx.shuffle(rng);
        let n_train =
            ((self.len() as f64 * train_fraction).round() as usize).clamp(1, self.len() - 1);
        let test = idx.split_off(n_train);
        Ok((
            DatasetView {
                data: self,
                indices: idx,
            },
            DatasetView {
                data: self,
                indices: test,
            },
        ))
    }

    /// Appends another dataset's rows.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::DimensionMismatch`] when dimensions differ.
    pub fn append(&mut self, other: &Dataset) -> Result<(), MlError> {
        if !other.is_empty() && !self.is_empty() && other.dim() != self.dim() {
            return Err(MlError::DimensionMismatch {
                expected: self.dim(),
                found: other.dim(),
            });
        }
        self.x.extend(other.x.iter().cloned());
        self.y.extend(other.y.iter().copied());
        Ok(())
    }
}

/// A borrowed index-slice over a [`Dataset`]: the zero-copy split/fold
/// currency of grid search and cross-validation.
///
/// Where the deep-copying [`Dataset::subset`] clones every selected row,
/// a view holds only `&Dataset` plus the row indices; the rows are copied
/// exactly once, straight into the flat [`FeatureMatrix`] an estimator's
/// `fit_batch` consumes ([`DatasetView::gather_into`]).
///
/// # Examples
///
/// ```
/// use aerorem_ml::dataset::Dataset;
///
/// # fn main() -> Result<(), aerorem_ml::MlError> {
/// let data = Dataset::new(
///     (0..10).map(|i| vec![i as f64]).collect(),
///     (0..10).map(|i| i as f64).collect(),
/// )?;
/// let view = data.view(vec![1, 3, 5]);
/// assert_eq!(view.len(), 3);
/// let (x, y) = view.to_matrix();
/// assert_eq!(x.row(2), &[5.0]);
/// assert_eq!(y, vec![1.0, 3.0, 5.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetView<'a> {
    data: &'a Dataset,
    indices: Vec<usize>,
}

impl<'a> DatasetView<'a> {
    /// Number of rows selected by the view.
    pub fn len(&self) -> usize {
        self.indices.len()
    }

    /// Whether the view selects no rows.
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// Feature dimension of the underlying dataset.
    pub fn dim(&self) -> usize {
        self.data.dim()
    }

    /// The selected row indices, in view order.
    pub fn indices(&self) -> &[usize] {
        &self.indices
    }

    /// Zero-copy access to the `i`-th selected feature row.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn row(&self, i: usize) -> &'a [f64] {
        &self.data.x[self.indices[i]]
    }

    /// The `i`-th selected target.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn target(&self, i: usize) -> f64 {
        self.data.y[self.indices[i]]
    }

    /// Gathers the selected rows into reusable flat buffers: `x` is cleared
    /// and refilled row by row (keeping its allocation), `y` likewise. This
    /// is the single copy a fold makes — straight from the parent dataset
    /// into the storage `fit_batch`/`predict_batch` consume.
    ///
    /// # Panics
    ///
    /// Panics if `x` was created with a different feature dimension.
    pub fn gather_into(&self, x: &mut FeatureMatrix, y: &mut Vec<f64>) {
        assert_eq!(x.dim(), self.dim(), "gather buffer dim mismatch");
        x.clear();
        y.clear();
        for &i in &self.indices {
            x.push_row(&self.data.x[i]);
            y.push(self.data.y[i]);
        }
    }

    /// Materializes the view as a fresh `(features, targets)` pair.
    ///
    /// # Panics
    ///
    /// Panics if the view is empty (a view from [`Dataset::split_views`] or
    /// a non-empty fold never is).
    pub fn to_matrix(&self) -> (FeatureMatrix, Vec<f64>) {
        assert!(!self.is_empty(), "cannot materialize an empty view");
        let mut x = FeatureMatrix::with_capacity(self.dim(), self.len());
        let mut y = Vec::with_capacity(self.len());
        self.gather_into(&mut x, &mut y);
        (x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy(n: usize) -> Dataset {
        Dataset::new(
            (0..n).map(|i| vec![i as f64, (i * 2) as f64]).collect(),
            (0..n).map(|i| i as f64).collect(),
        )
        .unwrap()
    }

    #[test]
    fn split_sizes_75_25() {
        let d = toy(100);
        let mut rng = StdRng::seed_from_u64(1);
        let (train, test) = d.train_test_split(0.75, &mut rng).unwrap();
        assert_eq!(train.len(), 75);
        assert_eq!(test.len(), 25);
        assert_eq!(train.dim(), 2);
    }

    #[test]
    fn split_partitions_rows() {
        let d = toy(40);
        let mut rng = StdRng::seed_from_u64(2);
        let (train, test) = d.train_test_split(0.75, &mut rng).unwrap();
        let mut targets: Vec<f64> = train.y.iter().chain(test.y.iter()).copied().collect();
        targets.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let expected: Vec<f64> = (0..40).map(|i| i as f64).collect();
        assert_eq!(targets, expected, "every row lands exactly once");
        // Rows stay aligned with their targets.
        for (row, &t) in train.x.iter().zip(&train.y) {
            assert_eq!(row[0], t);
        }
    }

    #[test]
    fn split_is_seeded() {
        let d = toy(30);
        let a = d
            .train_test_split(0.5, &mut StdRng::seed_from_u64(3))
            .unwrap();
        let b = d
            .train_test_split(0.5, &mut StdRng::seed_from_u64(3))
            .unwrap();
        assert_eq!(a.0, b.0);
        let c = d
            .train_test_split(0.5, &mut StdRng::seed_from_u64(4))
            .unwrap();
        assert_ne!(a.0, c.0);
    }

    #[test]
    fn split_never_empties_a_side() {
        let d = toy(3);
        let mut rng = StdRng::seed_from_u64(5);
        let (train, test) = d.train_test_split(0.99, &mut rng).unwrap();
        assert!(!train.is_empty());
        assert!(!test.is_empty());
    }

    #[test]
    fn split_rejects_bad_input() {
        let d = toy(10);
        let mut rng = StdRng::seed_from_u64(6);
        assert!(d.train_test_split(0.0, &mut rng).is_err());
        assert!(d.train_test_split(1.0, &mut rng).is_err());
        assert!(toy(1).train_test_split(0.5, &mut rng).is_err());
    }

    #[test]
    fn construction_validates() {
        assert!(Dataset::new(vec![vec![1.0]], vec![1.0, 2.0]).is_err());
        assert!(Dataset::new(vec![], vec![]).is_err());
    }

    #[test]
    fn split_views_select_exactly_what_the_copying_split_copies() {
        let d = toy(37);
        for seed in [0u64, 1, 7, 42] {
            let (train, test) = d
                .train_test_split(0.75, &mut StdRng::seed_from_u64(seed))
                .unwrap();
            let (tv, sv) = d
                .split_views(0.75, &mut StdRng::seed_from_u64(seed))
                .unwrap();
            assert_eq!(tv.len(), train.len());
            assert_eq!(sv.len(), test.len());
            let (tx, ty) = tv.to_matrix();
            assert_eq!(ty, train.y);
            for (i, row) in train.x.iter().enumerate() {
                assert_eq!(tx.row(i), row.as_slice());
                assert_eq!(tv.row(i), row.as_slice());
                assert_eq!(tv.target(i), train.y[i]);
            }
            let (_, sy) = sv.to_matrix();
            assert_eq!(sy, test.y);
        }
    }

    #[test]
    fn split_views_validate_like_the_copying_split() {
        let d = toy(10);
        let mut rng = StdRng::seed_from_u64(6);
        assert!(d.split_views(0.0, &mut rng).is_err());
        assert!(d.split_views(1.0, &mut rng).is_err());
        assert!(toy(1).split_views(0.5, &mut rng).is_err());
    }

    #[test]
    fn view_gathers_into_reused_buffers() {
        let d = toy(12);
        let mut x = FeatureMatrix::new(2);
        let mut y = Vec::new();
        d.view(vec![0, 4]).gather_into(&mut x, &mut y);
        assert_eq!(x.rows(), 2);
        d.view(vec![11, 2, 7]).gather_into(&mut x, &mut y);
        assert_eq!(x.rows(), 3);
        assert_eq!(y, vec![11.0, 2.0, 7.0]);
        assert_eq!(x.row(0), &[11.0, 22.0]);
        assert_eq!(d.view(vec![3]).indices(), &[3]);
        assert!(!d.view(vec![3]).is_empty());
        assert_eq!(d.view(vec![3]).dim(), 2);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn view_rejects_bad_indices() {
        let d = toy(3);
        let _ = d.view(vec![0, 3]);
    }

    #[test]
    fn subset_and_append() {
        let d = toy(10);
        let s = d.subset(&[0, 5, 9]);
        assert_eq!(s.y, vec![0.0, 5.0, 9.0]);
        let mut a = d.subset(&[0, 1]);
        a.append(&s).unwrap();
        assert_eq!(a.len(), 5);
        let bad = Dataset::new(vec![vec![1.0]], vec![1.0]).unwrap();
        assert!(a.append(&bad).is_err());
    }
}
