//! Ordinary kriging with variogram fitting.
//!
//! The geostatistical gold standard for radio-map interpolation — not in the
//! paper's lineup (see `DESIGN.md` §6: "kriging/REM tools scattered; no
//! canonical 3D indoor REM pipeline"), implemented here as the extension
//! estimator and ablation baseline.
//!
//! Pipeline: an **empirical semivariogram** is estimated from the training
//! pairs ([`empirical_variogram`]), a parametric model (exponential /
//! spherical / Gaussian) is fitted by weighted least squares over a
//! parameter grid ([`fit_variogram`]), and predictions solve the ordinary
//! kriging system over the nearest neighbours with the Lagrange multiplier
//! enforcing unbiasedness.

use aerorem_numerics::exec::{self, ExecPolicy};
use aerorem_numerics::kernels::sq_euclidean;
use aerorem_numerics::Matrix;

use crate::kdtree::brute_force_topk_into;
use crate::{validate_matrix_y, validate_xy, FeatureMatrix, MlError, Regressor};

/// Parametric semivariogram families.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VariogramKind {
    /// `γ(h) = n + s·(1 − exp(−3h/r))`.
    Exponential,
    /// The spherical model: rises to the sill at exactly `h = r`.
    Spherical,
    /// `γ(h) = n + s·(1 − exp(−3h²/r²))` — very smooth near the origin.
    Gaussian,
}

/// A fitted semivariogram.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Variogram {
    /// Model family.
    pub kind: VariogramKind,
    /// Nugget: variance at zero lag (measurement noise).
    pub nugget: f64,
    /// Partial sill: variance gained from nugget to plateau.
    pub sill: f64,
    /// Range: lag at which the plateau is (practically) reached.
    pub range: f64,
}

impl Variogram {
    /// Evaluates `γ(h)`.
    ///
    /// # Panics
    ///
    /// Panics if `h` is negative.
    pub fn gamma(&self, h: f64) -> f64 {
        assert!(h >= 0.0, "lag must be non-negative");
        if h == 0.0 {
            return 0.0;
        }
        let r = self.range.max(1e-9);
        let structured = match self.kind {
            VariogramKind::Exponential => 1.0 - (-3.0 * h / r).exp(),
            VariogramKind::Spherical => {
                if h >= r {
                    1.0
                } else {
                    1.5 * h / r - 0.5 * (h / r).powi(3)
                }
            }
            VariogramKind::Gaussian => 1.0 - (-3.0 * h * h / (r * r)).exp(),
        };
        self.nugget + self.sill * structured
    }
}

/// One bin of an empirical semivariogram.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VariogramBin {
    /// Mean lag of the pairs in the bin, meters.
    pub lag: f64,
    /// Semivariance `½·mean[(zᵢ − zⱼ)²]`.
    pub gamma: f64,
    /// Number of pairs.
    pub pairs: usize,
}

/// Rows per accumulation block of the O(n²) pair loop. The block partition
/// depends only on the row count — never on the worker-thread count — and
/// the per-block partial sums are reduced in ascending block order, so the
/// bins are bit-identical under [`ExecPolicy::Serial`] and
/// [`ExecPolicy::Parallel`] on any machine.
const VARIOGRAM_BLOCK: usize = 128;

/// Per-bin partial sums accumulated by one row block — the reusable
/// scratch of the blocked pair loop.
struct BinPartial {
    sum_gamma: Vec<f64>,
    sum_lag: Vec<f64>,
    count: Vec<usize>,
}

/// Accumulates all pairs `(i, j)` with `lo <= i < hi`, `i < j` into
/// per-bin partial sums.
///
/// The pair loop runs over the flat row-major slice with `chunks_exact`
/// (no per-row bounds checks) and pre-filters pairs on *squared* distance
/// before taking any square root: `d² > max_lag²·(1+1e-12)` guarantees
/// `√d² > max_lag` even through the rounding of the threshold multiply, so
/// the guard can never disagree with the exact `h >= max_lag` test that
/// still gates every surviving pair — out-of-range pairs (the majority in
/// a large survey) skip the `sqrt` entirely without changing a single bit.
fn variogram_block(
    points: &FeatureMatrix,
    values: &[f64],
    n_bins: usize,
    max_lag: f64,
    width: f64,
    lo: usize,
    hi: usize,
) -> BinPartial {
    let mut p = BinPartial {
        sum_gamma: vec![0.0; n_bins],
        sum_lag: vec![0.0; n_bins],
        count: vec![0; n_bins],
    };
    let dim = points.dim();
    let flat = points.as_slice();
    let skip2 = max_lag * max_lag * (1.0 + 1e-12);
    for i in lo..hi {
        let xi = &flat[i * dim..(i + 1) * dim];
        let vi = values[i];
        let rest = flat[(i + 1) * dim..]
            .chunks_exact(dim)
            .zip(&values[i + 1..]);
        if dim == 3 {
            // 3-D positions dominate this workload; the explicit form sums
            // the three squares in the same sequential order as the shared
            // kernel's sub-lane tail, so it is bit-identical to it.
            let (x0, x1, x2) = (xi[0], xi[1], xi[2]);
            for (xj, &vj) in rest {
                let d0 = x0 - xj[0];
                let d1 = x1 - xj[1];
                let d2 = x2 - xj[2];
                let sq = d0 * d0 + d1 * d1 + d2 * d2;
                if sq > skip2 {
                    continue;
                }
                accumulate_pair(&mut p, sq, vi, vj, max_lag, width, n_bins);
            }
        } else {
            for (xj, &vj) in rest {
                let sq = sq_euclidean(xi, xj);
                if sq > skip2 {
                    continue;
                }
                accumulate_pair(&mut p, sq, vi, vj, max_lag, width, n_bins);
            }
        }
    }
    p
}

/// Bins one surviving pair, applying the exact `h >= max_lag` cut.
#[inline(always)]
fn accumulate_pair(
    p: &mut BinPartial,
    sq: f64,
    vi: f64,
    vj: f64,
    max_lag: f64,
    width: f64,
    n_bins: usize,
) {
    let h = sq.sqrt();
    if h >= max_lag {
        return;
    }
    let bin = ((h / width) as usize).min(n_bins - 1);
    p.sum_gamma[bin] += 0.5 * (vi - vj).powi(2);
    p.sum_lag[bin] += h;
    p.count[bin] += 1;
}

/// Estimates the empirical semivariogram with `n_bins` equal-width lag bins
/// up to `max_lag`, reading flat row-major points directly and splitting
/// the O(n²) pair loop into fixed-size row blocks mapped under `policy`.
///
/// # Errors
///
/// Returns [`MlError::InvalidHyperparameter`] for zero bins or non-positive
/// `max_lag`, [`MlError::EmptyTrainingSet`] for fewer than 2 points,
/// [`MlError::LengthMismatch`] when points and values disagree.
pub fn empirical_variogram_matrix(
    points: &FeatureMatrix,
    values: &[f64],
    n_bins: usize,
    max_lag: f64,
    policy: ExecPolicy,
) -> Result<Vec<VariogramBin>, MlError> {
    if n_bins == 0 {
        return Err(MlError::InvalidHyperparameter {
            name: "n_bins",
            reason: "must be at least 1",
        });
    }
    if max_lag <= 0.0 {
        return Err(MlError::InvalidHyperparameter {
            name: "max_lag",
            reason: "must be positive",
        });
    }
    if points.rows() < 2 {
        return Err(MlError::EmptyTrainingSet);
    }
    validate_matrix_y(points, values)?;
    let width = max_lag / n_bins as f64;
    // Chunk the row range through the chunked executor, using the values
    // slice as the item list (chunk offset == first row of the block). The
    // pinned granularity reproduces the fixed VARIOGRAM_BLOCK partition on
    // every machine and policy.
    let gran = exec::Granularity::new(VARIOGRAM_BLOCK, VARIOGRAM_BLOCK);
    let partials = exec::map_chunks(policy, gran, values, |lo, chunk| {
        variogram_block(points, values, n_bins, max_lag, width, lo, lo + chunk.len())
    });
    // Reduce in block order: the summation order is a pure function of the
    // input, independent of the execution policy.
    let mut sum_gamma = vec![0.0; n_bins];
    let mut sum_lag = vec![0.0; n_bins];
    let mut count = vec![0usize; n_bins];
    for p in partials {
        for b in 0..n_bins {
            sum_gamma[b] += p.sum_gamma[b];
            sum_lag[b] += p.sum_lag[b];
            count[b] += p.count[b];
        }
    }
    Ok((0..n_bins)
        .filter(|&b| count[b] > 0)
        .map(|b| VariogramBin {
            lag: sum_lag[b] / count[b] as f64,
            gamma: sum_gamma[b] / count[b] as f64,
            pairs: count[b],
        })
        .collect())
}

/// Estimates the empirical semivariogram with `n_bins` equal-width lag bins
/// up to `max_lag`.
///
/// Convenience wrapper over [`empirical_variogram_matrix`] for nested-row
/// input, run under the default execution policy.
///
/// # Errors
///
/// Returns [`MlError::InvalidHyperparameter`] for zero bins or non-positive
/// `max_lag`, [`MlError::EmptyTrainingSet`] for fewer than 2 points.
pub fn empirical_variogram(
    points: &[Vec<f64>],
    values: &[f64],
    n_bins: usize,
    max_lag: f64,
) -> Result<Vec<VariogramBin>, MlError> {
    if points.len() < 2 {
        return Err(MlError::EmptyTrainingSet);
    }
    validate_xy(points, values)?;
    let xm = FeatureMatrix::from_rows(points).expect("validated rows");
    empirical_variogram_matrix(&xm, values, n_bins, max_lag, ExecPolicy::default())
}

/// Fits a variogram model to empirical bins by pair-count-weighted least
/// squares over a dense parameter grid, scoring grid candidates under
/// `policy`. The argmin scan runs serially in grid order with a strict `<`,
/// so ties resolve to the first candidate no matter the policy.
///
/// # Errors
///
/// Returns [`MlError::EmptyTrainingSet`] when no bins are provided.
pub fn fit_variogram_with(
    bins: &[VariogramBin],
    kind: VariogramKind,
    policy: ExecPolicy,
) -> Result<Variogram, MlError> {
    if bins.is_empty() {
        return Err(MlError::EmptyTrainingSet);
    }
    let max_gamma = bins
        .iter()
        .map(|b| b.gamma)
        .fold(0.0f64, f64::max)
        .max(1e-9);
    let max_lag = bins.iter().map(|b| b.lag).fold(0.0f64, f64::max).max(1e-9);
    let mut grid = Vec::with_capacity(6 * 6 * 8);
    for nug_frac in [0.0, 0.05, 0.1, 0.2, 0.35, 0.5] {
        for sill_frac in [0.4, 0.6, 0.8, 1.0, 1.2, 1.5] {
            for range_frac in [0.1, 0.2, 0.35, 0.5, 0.75, 1.0, 1.5, 2.0] {
                grid.push(Variogram {
                    kind,
                    nugget: nug_frac * max_gamma,
                    sill: sill_frac * max_gamma,
                    range: range_frac * max_lag,
                });
            }
        }
    }
    // Scoring one candidate touches every bin but allocates nothing, so
    // chunks of a few dozen amortize the executor's per-chunk bookkeeping.
    let pool = exec::ScratchPool::new(|| ());
    let scored = exec::map_vec_with(
        policy,
        exec::Granularity::new(16, 48),
        &pool,
        &grid,
        |(), v| {
            let err: f64 = bins
                .iter()
                .map(|b| b.pairs as f64 * (v.gamma(b.lag) - b.gamma).powi(2))
                // lint:allow(par-float-reduce) — serial sum over `bins` in index order within one work item; no cross-worker combine
                .sum();
            (*v, err)
        },
    );
    let mut best = Variogram {
        kind,
        nugget: 0.0,
        sill: max_gamma,
        range: max_lag,
    };
    let mut best_err = f64::INFINITY;
    for (v, err) in scored {
        if err < best_err {
            best_err = err;
            best = v;
        }
    }
    Ok(best)
}

/// Fits a variogram model to empirical bins by pair-count-weighted least
/// squares over a dense parameter grid, under the default execution policy.
///
/// # Errors
///
/// Returns [`MlError::EmptyTrainingSet`] when no bins are provided.
pub fn fit_variogram(bins: &[VariogramBin], kind: VariogramKind) -> Result<Variogram, MlError> {
    fit_variogram_with(bins, kind, ExecPolicy::default())
}

/// Ordinary kriging configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KrigingConfig {
    /// Variogram family to fit.
    pub variogram: VariogramKind,
    /// Lag bins for the empirical variogram.
    pub n_bins: usize,
    /// Neighbours per prediction (keeps the linear solve small).
    pub max_neighbors: usize,
}

impl Default for KrigingConfig {
    fn default() -> Self {
        KrigingConfig {
            variogram: VariogramKind::Exponential,
            n_bins: 12,
            max_neighbors: 24,
        }
    }
}

/// Ordinary kriging regressor.
///
/// # Examples
///
/// ```
/// use aerorem_ml::kriging::{KrigingConfig, OrdinaryKriging};
/// use aerorem_ml::Regressor;
///
/// # fn main() -> Result<(), aerorem_ml::MlError> {
/// let x: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64 * 0.5]).collect();
/// let y: Vec<f64> = x.iter().map(|r| -70.0 - r[0]).collect();
/// let mut ok = OrdinaryKriging::new(KrigingConfig::default());
/// ok.fit(&x, &y)?;
/// let p = ok.predict_one(&[2.25])?;
/// assert!((p - -72.25).abs() < 1.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct OrdinaryKriging {
    config: KrigingConfig,
    variogram: Option<Variogram>,
    x: Option<FeatureMatrix>,
    y: Vec<f64>,
}

/// Reusable per-query buffers for the kriging solve: neighbour candidates,
/// the selected neighbours, the `(n+1)×(n+1)` system matrix, and its RHS.
/// The batched prediction path keeps one of these across all queries, so the
/// system matrix is allocated once instead of once per voxel.
#[derive(Debug, Default, Clone)]
struct KrigingScratch {
    cand: Vec<(usize, f64)>,
    nn: Vec<(usize, f64)>,
    a: Option<Matrix>,
    b: Vec<f64>,
}

impl OrdinaryKriging {
    /// Creates an unfitted kriging estimator.
    pub fn new(config: KrigingConfig) -> Self {
        OrdinaryKriging {
            config,
            variogram: None,
            x: None,
            y: Vec::new(),
        }
    }

    /// The fitted variogram, if any.
    pub fn variogram(&self) -> Option<Variogram> {
        self.variogram
    }
}

impl OrdinaryKriging {
    /// Predicts the target **and the kriging variance** at one row — the
    /// model's own uncertainty about the prediction, in squared target
    /// units. Zero at sampled locations, growing toward the variogram sill
    /// far from any sample. This is what separates kriging from the other
    /// interpolators: the REM can carry a confidence layer.
    ///
    /// # Errors
    ///
    /// Same error conditions as [`Regressor::predict_one`].
    pub fn predict_with_variance(&self, q: &[f64]) -> Result<(f64, f64), MlError> {
        self.predict_with_variance_scratch(q, &mut KrigingScratch::default())
    }

    /// Shared prediction core: both the per-item and batched paths run this
    /// exact code, so they agree bit-for-bit. The scratch carries the
    /// neighbour buffers, the `(n+1)×(n+1)` system matrix, and its RHS.
    fn predict_with_variance_scratch(
        &self,
        q: &[f64],
        scratch: &mut KrigingScratch,
    ) -> Result<(f64, f64), MlError> {
        let x = self.x.as_ref().ok_or(MlError::NotFitted)?;
        let vgram = self.variogram.ok_or(MlError::NotFitted)?;
        if q.len() != x.dim() {
            return Err(MlError::DimensionMismatch {
                expected: x.dim(),
                found: q.len(),
            });
        }
        let KrigingScratch { cand, nn, a, b } = scratch;
        brute_force_topk_into(
            x.as_slice(),
            x.dim(),
            q,
            self.config.max_neighbors,
            cand,
            nn,
        );
        if let Some(&(i, d)) = nn.first() {
            if d < 1e-12 {
                return Ok((self.y[i], 0.0));
            }
        }
        let n = nn.len();
        match a.as_mut() {
            Some(m) if m.rows() == n + 1 => m.fill(0.0),
            _ => *a = Some(Matrix::zeros(n + 1, n + 1)),
        }
        let a = a.as_mut().expect("system matrix initialized above");
        b.clear();
        b.resize(n + 1, 0.0);
        for (ri, &(i, _)) in nn.iter().enumerate() {
            for (rj, &(j, _)) in nn.iter().enumerate() {
                let h = sq_euclidean(x.row(i), x.row(j)).sqrt();
                a[(ri, rj)] = vgram.gamma(h);
            }
            a[(ri, n)] = 1.0;
            a[(n, ri)] = 1.0;
            b[ri] = vgram.gamma(nn[ri].1);
        }
        b[n] = 1.0;
        for ri in 0..n {
            a[(ri, ri)] += 1e-10;
        }
        let sol = a
            .solve(b)
            .map_err(|e| MlError::Numerical(format!("kriging system: {e}")))?;
        let pred: f64 = nn
            .iter()
            .enumerate()
            .map(|(ri, &(i, _))| sol[ri] * self.y[i])
            .sum();
        // Kriging variance: sigma^2 = sum_i w_i gamma(q, x_i) + mu.
        let variance: f64 = (0..n).map(|ri| sol[ri] * b[ri]).sum::<f64>() + sol[n];
        Ok((pred, variance.max(0.0)))
    }
}

impl OrdinaryKriging {
    /// Shared fit core over flat storage: both `fit` (after one flatten)
    /// and `fit_batch` (one clone of the flat matrix) run this exact code,
    /// so the two produce bit-identical variograms and predictions.
    fn fit_matrix(&mut self, xm: FeatureMatrix, y: &[f64]) -> Result<(), MlError> {
        if xm.rows() < 2 {
            return Err(MlError::EmptyTrainingSet);
        }
        // Max lag: half the data diameter (standard practice).
        let probe = xm.rows().min(200);
        let mut max_lag = 0.0f64;
        for i in 0..probe {
            let xi = xm.row(i);
            for j in (i + 1)..probe {
                max_lag = max_lag.max(sq_euclidean(xi, xm.row(j)).sqrt());
            }
        }
        // Half the data diameter is standard; tiny datasets can leave that
        // window empty, so fall back to the full diameter.
        let policy = ExecPolicy::default();
        let mut bins = empirical_variogram_matrix(
            &xm,
            y,
            self.config.n_bins,
            (max_lag / 2.0).max(1e-6),
            policy,
        )?;
        if bins.is_empty() {
            bins = empirical_variogram_matrix(&xm, y, self.config.n_bins, max_lag * 1.01, policy)?;
        }
        self.variogram = Some(fit_variogram_with(&bins, self.config.variogram, policy)?);
        self.x = Some(xm);
        self.y = y.to_vec();
        Ok(())
    }
}

impl Regressor for OrdinaryKriging {
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) -> Result<(), MlError> {
        validate_xy(x, y)?;
        if x.len() < 2 {
            return Err(MlError::EmptyTrainingSet);
        }
        let xm = FeatureMatrix::from_rows(x).expect("validated rows");
        self.fit_matrix(xm, y)
    }

    fn fit_batch(&mut self, xs: &FeatureMatrix, y: &[f64]) -> Result<(), MlError> {
        validate_matrix_y(xs, y)?;
        self.fit_matrix(xs.clone(), y)
    }

    fn predict_one(&self, q: &[f64]) -> Result<f64, MlError> {
        self.predict_with_variance(q).map(|(pred, _)| pred)
    }

    fn predict_batch(&self, xs: &FeatureMatrix) -> Result<Vec<f64>, MlError> {
        let mut scratch = KrigingScratch::default();
        xs.iter()
            .map(|q| {
                self.predict_with_variance_scratch(q, &mut scratch)
                    .map(|(pred, _)| pred)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gamma_properties() {
        for kind in [
            VariogramKind::Exponential,
            VariogramKind::Spherical,
            VariogramKind::Gaussian,
        ] {
            let v = Variogram {
                kind,
                nugget: 0.5,
                sill: 2.0,
                range: 3.0,
            };
            assert_eq!(v.gamma(0.0), 0.0, "{kind:?} at zero");
            // Monotone non-decreasing.
            let mut last = 0.0;
            for i in 1..50 {
                let g = v.gamma(i as f64 * 0.2);
                assert!(g >= last - 1e-12, "{kind:?} not monotone");
                last = g;
            }
            // Approaches nugget+sill at large lag.
            assert!((v.gamma(100.0) - 2.5).abs() < 1e-6, "{kind:?} sill");
            // Nugget discontinuity just above zero.
            assert!(v.gamma(1e-9) >= 0.5);
        }
    }

    #[test]
    fn spherical_hits_sill_exactly_at_range() {
        let v = Variogram {
            kind: VariogramKind::Spherical,
            nugget: 0.0,
            sill: 1.0,
            range: 2.0,
        };
        assert!((v.gamma(2.0) - 1.0).abs() < 1e-12);
        assert!((v.gamma(5.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empirical_variogram_of_linear_field_grows() {
        // z = x → γ(h) = h²/2: strictly growing in lag.
        let pts: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64 * 0.5]).collect();
        let vals: Vec<f64> = pts.iter().map(|p| p[0]).collect();
        let bins = empirical_variogram(&pts, &vals, 8, 8.0).unwrap();
        assert!(bins.len() >= 4);
        for w in bins.windows(2) {
            assert!(w[1].gamma > w[0].gamma);
        }
    }

    #[test]
    fn empirical_variogram_validation() {
        let pts = vec![vec![0.0], vec![1.0]];
        let vals = vec![0.0, 1.0];
        assert!(empirical_variogram(&pts, &vals, 0, 1.0).is_err());
        assert!(empirical_variogram(&pts, &vals, 4, 0.0).is_err());
        assert!(empirical_variogram(&pts[..1], &vals[..1], 4, 1.0).is_err());
    }

    #[test]
    fn fit_recovers_reasonable_parameters() {
        // Synthesize bins from a known exponential variogram.
        let truth = Variogram {
            kind: VariogramKind::Exponential,
            nugget: 0.0,
            sill: 4.0,
            range: 5.0,
        };
        let bins: Vec<VariogramBin> = (1..=12)
            .map(|i| {
                let lag = i as f64 * 0.8;
                VariogramBin {
                    lag,
                    gamma: truth.gamma(lag),
                    pairs: 100,
                }
            })
            .collect();
        let fitted = fit_variogram(&bins, VariogramKind::Exponential).unwrap();
        // Grid resolution limits precision; check the shape matches.
        for b in &bins {
            assert!(
                (fitted.gamma(b.lag) - b.gamma).abs() < 0.8,
                "at {}: {} vs {}",
                b.lag,
                fitted.gamma(b.lag),
                b.gamma
            );
        }
        assert!(fit_variogram(&[], VariogramKind::Gaussian).is_err());
    }

    #[test]
    fn kriging_is_exact_at_samples() {
        let x: Vec<Vec<f64>> = (0..15).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = x.iter().map(|r| (r[0] * 0.5).sin() * 5.0 - 70.0).collect();
        let mut ok = OrdinaryKriging::new(KrigingConfig::default());
        ok.fit(&x, &y).unwrap();
        for (xi, &yi) in x.iter().zip(&y) {
            let p = ok.predict_one(xi).unwrap();
            assert!((p - yi).abs() < 1e-6, "at {xi:?}: {p} vs {yi}");
        }
    }

    #[test]
    fn kriging_interpolates_smoothly() {
        let x: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64 * 0.5]).collect();
        let y: Vec<f64> = x.iter().map(|r| -70.0 - 2.0 * r[0]).collect();
        let mut ok = OrdinaryKriging::new(KrigingConfig::default());
        ok.fit(&x, &y).unwrap();
        let p = ok.predict_one(&[3.25]).unwrap();
        assert!((p - -76.5).abs() < 1.0, "got {p}");
        assert!(ok.variogram().is_some());
    }

    #[test]
    fn kriging_2d_field() {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..8 {
            for j in 0..8 {
                x.push(vec![i as f64, j as f64]);
                y.push(-60.0 - (i as f64) - 0.5 * (j as f64));
            }
        }
        let mut ok = OrdinaryKriging::new(KrigingConfig::default());
        ok.fit(&x, &y).unwrap();
        let p = ok.predict_one(&[3.5, 3.5]).unwrap();
        assert!((p - (-60.0 - 3.5 - 1.75)).abs() < 0.5, "got {p}");
    }

    #[test]
    fn variance_zero_at_samples_grows_away() {
        let x: Vec<Vec<f64>> = (0..12).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = x.iter().map(|r| -70.0 - r[0]).collect();
        let mut ok = OrdinaryKriging::new(KrigingConfig::default());
        ok.fit(&x, &y).unwrap();
        let (_, v_at_sample) = ok.predict_with_variance(&[4.0]).unwrap();
        assert_eq!(v_at_sample, 0.0);
        let (_, v_near) = ok.predict_with_variance(&[4.3]).unwrap();
        let (_, v_far) = ok.predict_with_variance(&[30.0]).unwrap();
        assert!(v_near >= 0.0);
        assert!(
            v_far > v_near,
            "extrapolation must be less certain: {v_far} vs {v_near}"
        );
    }

    #[test]
    fn variance_errors_match_prediction_errors() {
        let ok = OrdinaryKriging::new(KrigingConfig::default());
        assert!(ok.predict_with_variance(&[0.0]).is_err());
    }

    #[test]
    fn duplicate_points_do_not_break_the_solve() {
        let x = vec![vec![0.0], vec![0.0], vec![1.0], vec![2.0]];
        let y = vec![5.0, 5.0, 6.0, 7.0];
        let mut ok = OrdinaryKriging::new(KrigingConfig::default());
        ok.fit(&x, &y).unwrap();
        let p = ok.predict_one(&[1.5]).unwrap();
        assert!(p.is_finite());
        assert!((5.0..=7.5).contains(&p));
    }

    #[test]
    fn predict_batch_matches_predict_one_bits() {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..9 {
            for j in 0..9 {
                x.push(vec![i as f64 * 0.45, j as f64 * 0.4]);
                y.push(-60.0 - (i as f64) * 1.3 - 0.7 * (j as f64));
            }
        }
        let mut ok = OrdinaryKriging::new(KrigingConfig::default());
        ok.fit(&x, &y).unwrap();
        let queries: Vec<Vec<f64>> = (0..20)
            .map(|i| vec![i as f64 * 0.19, 3.2 - i as f64 * 0.13])
            .collect();
        let fm = FeatureMatrix::from_rows(&queries).unwrap();
        let batch = ok.predict_batch(&fm).unwrap();
        assert_eq!(batch.len(), queries.len());
        for (q, b) in queries.iter().zip(&batch) {
            assert_eq!(ok.predict_one(q).unwrap(), *b);
        }
    }

    #[test]
    fn blocked_variogram_is_policy_invariant() {
        // More rows than one accumulation block so the reduce actually
        // crosses block boundaries; exact equality, not tolerance.
        let pts: Vec<Vec<f64>> = (0..300)
            .map(|i| vec![(i % 17) as f64 * 0.3, (i % 23) as f64 * 0.2])
            .collect();
        let vals: Vec<f64> = (0..300).map(|i| ((i * 13) % 29) as f64 * 0.5).collect();
        let xm = FeatureMatrix::from_rows(&pts).unwrap();
        let a = empirical_variogram_matrix(&xm, &vals, 10, 4.0, ExecPolicy::Serial).unwrap();
        let b = empirical_variogram_matrix(&xm, &vals, 10, 4.0, ExecPolicy::Parallel).unwrap();
        assert_eq!(a, b);
        let nested = empirical_variogram(&pts, &vals, 10, 4.0).unwrap();
        assert_eq!(a, nested, "nested-row wrapper shares the blocked core");
        let fa = fit_variogram_with(&a, VariogramKind::Exponential, ExecPolicy::Serial).unwrap();
        let fb = fit_variogram_with(&b, VariogramKind::Exponential, ExecPolicy::Parallel).unwrap();
        assert_eq!(fa, fb);
    }

    #[test]
    fn fit_batch_matches_fit_bits() {
        let x: Vec<Vec<f64>> = (0..40)
            .map(|i| vec![(i % 8) as f64 * 0.5, (i / 8) as f64 * 0.7])
            .collect();
        let y: Vec<f64> = (0..40).map(|i| -65.0 - (i % 11) as f64 * 0.9).collect();
        let mut a = OrdinaryKriging::new(KrigingConfig::default());
        a.fit(&x, &y).unwrap();
        let mut b = OrdinaryKriging::new(KrigingConfig::default());
        b.fit_batch(&FeatureMatrix::from_rows(&x).unwrap(), &y)
            .unwrap();
        assert_eq!(a.variogram(), b.variogram());
        for q in [[0.3, 1.1], [2.7, 0.2], [1.9, 2.4]] {
            assert_eq!(a.predict_one(&q).unwrap(), b.predict_one(&q).unwrap());
        }
    }

    #[test]
    fn lifecycle_errors() {
        let ok = OrdinaryKriging::new(KrigingConfig::default());
        assert_eq!(ok.predict_one(&[0.0]), Err(MlError::NotFitted));
        let mut ok = OrdinaryKriging::new(KrigingConfig::default());
        assert!(
            ok.fit(&[vec![1.0]], &[1.0]).is_err(),
            "one point is not enough"
        );
        let mut ok = OrdinaryKriging::new(KrigingConfig::default());
        ok.fit(&[vec![0.0], vec![1.0]], &[0.0, 1.0]).unwrap();
        assert!(matches!(
            ok.predict_one(&[0.0, 1.0]),
            Err(MlError::DimensionMismatch { .. })
        ));
    }
}
