//! Ordinary kriging with variogram fitting.
//!
//! The geostatistical gold standard for radio-map interpolation — not in the
//! paper's lineup (see `DESIGN.md` §6: "kriging/REM tools scattered; no
//! canonical 3D indoor REM pipeline"), implemented here as the extension
//! estimator and ablation baseline.
//!
//! Pipeline: an **empirical semivariogram** is estimated from the training
//! pairs ([`empirical_variogram`]), a parametric model (exponential /
//! spherical / Gaussian) is fitted by weighted least squares over a
//! parameter grid ([`fit_variogram`]), and predictions solve the ordinary
//! kriging system over the nearest neighbours with the Lagrange multiplier
//! enforcing unbiasedness.

use aerorem_numerics::exec::{self, ExecPolicy};
use aerorem_numerics::kernels::sq_euclidean;
use aerorem_numerics::{LuFactors, Matrix};

use crate::kdtree::{brute_force_topk_into, KdTree, NeighborScratch};
use crate::{validate_matrix_y, validate_xy, FeatureMatrix, MlError, Regressor};

/// Parametric semivariogram families.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VariogramKind {
    /// `γ(h) = n + s·(1 − exp(−3h/r))`.
    Exponential,
    /// The spherical model: rises to the sill at exactly `h = r`.
    Spherical,
    /// `γ(h) = n + s·(1 − exp(−3h²/r²))` — very smooth near the origin.
    Gaussian,
}

/// A fitted semivariogram.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Variogram {
    /// Model family.
    pub kind: VariogramKind,
    /// Nugget: variance at zero lag (measurement noise).
    pub nugget: f64,
    /// Partial sill: variance gained from nugget to plateau.
    pub sill: f64,
    /// Range: lag at which the plateau is (practically) reached.
    pub range: f64,
}

impl Variogram {
    /// Evaluates `γ(h)`.
    ///
    /// # Panics
    ///
    /// Panics if `h` is negative.
    pub fn gamma(&self, h: f64) -> f64 {
        assert!(h >= 0.0, "lag must be non-negative");
        if h == 0.0 {
            return 0.0;
        }
        let r = self.range.max(1e-9);
        let structured = match self.kind {
            VariogramKind::Exponential => 1.0 - (-3.0 * h / r).exp(),
            VariogramKind::Spherical => {
                if h >= r {
                    1.0
                } else {
                    1.5 * h / r - 0.5 * (h / r).powi(3)
                }
            }
            VariogramKind::Gaussian => 1.0 - (-3.0 * h * h / (r * r)).exp(),
        };
        self.nugget + self.sill * structured
    }
}

/// One bin of an empirical semivariogram.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VariogramBin {
    /// Mean lag of the pairs in the bin, meters.
    pub lag: f64,
    /// Semivariance `½·mean[(zᵢ − zⱼ)²]`.
    pub gamma: f64,
    /// Number of pairs.
    pub pairs: usize,
}

/// Rows per accumulation block of the O(n²) pair loop. The block partition
/// depends only on the row count — never on the worker-thread count — and
/// the per-block partial sums are reduced in ascending block order, so the
/// bins are bit-identical under [`ExecPolicy::Serial`] and
/// [`ExecPolicy::Parallel`] on any machine.
const VARIOGRAM_BLOCK: usize = 128;

/// Per-bin partial sums accumulated by one row block — the reusable
/// scratch of the blocked pair loop.
struct BinPartial {
    sum_gamma: Vec<f64>,
    sum_lag: Vec<f64>,
    count: Vec<usize>,
}

/// Accumulates all pairs `(i, j)` with `lo <= i < hi`, `i < j` into
/// per-bin partial sums.
///
/// The pair loop runs over the flat row-major slice with `chunks_exact`
/// (no per-row bounds checks) and pre-filters pairs on *squared* distance
/// before taking any square root: `d² > max_lag²·(1+1e-12)` guarantees
/// `√d² > max_lag` even through the rounding of the threshold multiply, so
/// the guard can never disagree with the exact `h >= max_lag` test that
/// still gates every surviving pair — out-of-range pairs (the majority in
/// a large survey) skip the `sqrt` entirely without changing a single bit.
fn variogram_block(
    points: &FeatureMatrix,
    values: &[f64],
    n_bins: usize,
    max_lag: f64,
    width: f64,
    lo: usize,
    hi: usize,
) -> BinPartial {
    let mut p = BinPartial {
        sum_gamma: vec![0.0; n_bins],
        sum_lag: vec![0.0; n_bins],
        count: vec![0; n_bins],
    };
    let dim = points.dim();
    let flat = points.as_slice();
    let skip2 = max_lag * max_lag * (1.0 + 1e-12);
    for i in lo..hi {
        let xi = &flat[i * dim..(i + 1) * dim];
        let vi = values[i];
        let rest = flat[(i + 1) * dim..]
            .chunks_exact(dim)
            .zip(&values[i + 1..]);
        if dim == 3 {
            // 3-D positions dominate this workload; the explicit form sums
            // the three squares in the same sequential order as the shared
            // kernel's sub-lane tail, so it is bit-identical to it.
            let (x0, x1, x2) = (xi[0], xi[1], xi[2]);
            for (xj, &vj) in rest {
                let d0 = x0 - xj[0];
                let d1 = x1 - xj[1];
                let d2 = x2 - xj[2];
                let sq = d0 * d0 + d1 * d1 + d2 * d2;
                if sq > skip2 {
                    continue;
                }
                accumulate_pair(&mut p, sq, vi, vj, max_lag, width, n_bins);
            }
        } else {
            for (xj, &vj) in rest {
                let sq = sq_euclidean(xi, xj);
                if sq > skip2 {
                    continue;
                }
                accumulate_pair(&mut p, sq, vi, vj, max_lag, width, n_bins);
            }
        }
    }
    p
}

/// Bins one surviving pair, applying the exact `h >= max_lag` cut.
#[inline(always)]
fn accumulate_pair(
    p: &mut BinPartial,
    sq: f64,
    vi: f64,
    vj: f64,
    max_lag: f64,
    width: f64,
    n_bins: usize,
) {
    let h = sq.sqrt();
    if h >= max_lag {
        return;
    }
    let bin = ((h / width) as usize).min(n_bins - 1);
    p.sum_gamma[bin] += 0.5 * (vi - vj).powi(2);
    p.sum_lag[bin] += h;
    p.count[bin] += 1;
}

/// Estimates the empirical semivariogram with `n_bins` equal-width lag bins
/// up to `max_lag`, reading flat row-major points directly and splitting
/// the O(n²) pair loop into fixed-size row blocks mapped under `policy`.
///
/// # Errors
///
/// Returns [`MlError::InvalidHyperparameter`] for zero bins or non-positive
/// `max_lag`, [`MlError::EmptyTrainingSet`] for fewer than 2 points,
/// [`MlError::LengthMismatch`] when points and values disagree.
pub fn empirical_variogram_matrix(
    points: &FeatureMatrix,
    values: &[f64],
    n_bins: usize,
    max_lag: f64,
    policy: ExecPolicy,
) -> Result<Vec<VariogramBin>, MlError> {
    if n_bins == 0 {
        return Err(MlError::InvalidHyperparameter {
            name: "n_bins",
            reason: "must be at least 1",
        });
    }
    if max_lag <= 0.0 {
        return Err(MlError::InvalidHyperparameter {
            name: "max_lag",
            reason: "must be positive",
        });
    }
    if points.rows() < 2 {
        return Err(MlError::EmptyTrainingSet);
    }
    validate_matrix_y(points, values)?;
    let width = max_lag / n_bins as f64;
    // Chunk the row range through the chunked executor, using the values
    // slice as the item list (chunk offset == first row of the block). The
    // pinned granularity reproduces the fixed VARIOGRAM_BLOCK partition on
    // every machine and policy.
    let gran = exec::Granularity::new(VARIOGRAM_BLOCK, VARIOGRAM_BLOCK);
    let partials = exec::map_chunks(policy, gran, values, |lo, chunk| {
        variogram_block(points, values, n_bins, max_lag, width, lo, lo + chunk.len())
    });
    // Reduce in block order: the summation order is a pure function of the
    // input, independent of the execution policy.
    let mut sum_gamma = vec![0.0; n_bins];
    let mut sum_lag = vec![0.0; n_bins];
    let mut count = vec![0usize; n_bins];
    for p in partials {
        for b in 0..n_bins {
            sum_gamma[b] += p.sum_gamma[b];
            sum_lag[b] += p.sum_lag[b];
            count[b] += p.count[b];
        }
    }
    Ok((0..n_bins)
        .filter(|&b| count[b] > 0)
        .map(|b| VariogramBin {
            lag: sum_lag[b] / count[b] as f64,
            gamma: sum_gamma[b] / count[b] as f64,
            pairs: count[b],
        })
        .collect())
}

/// Estimates the empirical semivariogram with `n_bins` equal-width lag bins
/// up to `max_lag`.
///
/// Convenience wrapper over [`empirical_variogram_matrix`] for nested-row
/// input, run under the default execution policy.
///
/// # Errors
///
/// Returns [`MlError::InvalidHyperparameter`] for zero bins or non-positive
/// `max_lag`, [`MlError::EmptyTrainingSet`] for fewer than 2 points.
pub fn empirical_variogram(
    points: &[Vec<f64>],
    values: &[f64],
    n_bins: usize,
    max_lag: f64,
) -> Result<Vec<VariogramBin>, MlError> {
    if points.len() < 2 {
        return Err(MlError::EmptyTrainingSet);
    }
    validate_xy(points, values)?;
    let xm = FeatureMatrix::from_rows(points).expect("validated rows");
    empirical_variogram_matrix(&xm, values, n_bins, max_lag, ExecPolicy::default())
}

/// Fits a variogram model to empirical bins by pair-count-weighted least
/// squares over a dense parameter grid, scoring grid candidates under
/// `policy`. The argmin scan runs serially in grid order with a strict `<`,
/// so ties resolve to the first candidate no matter the policy.
///
/// # Errors
///
/// Returns [`MlError::EmptyTrainingSet`] when no bins are provided.
pub fn fit_variogram_with(
    bins: &[VariogramBin],
    kind: VariogramKind,
    policy: ExecPolicy,
) -> Result<Variogram, MlError> {
    if bins.is_empty() {
        return Err(MlError::EmptyTrainingSet);
    }
    let max_gamma = bins
        .iter()
        .map(|b| b.gamma)
        .fold(0.0f64, f64::max)
        .max(1e-9);
    let max_lag = bins.iter().map(|b| b.lag).fold(0.0f64, f64::max).max(1e-9);
    let mut grid = Vec::with_capacity(6 * 6 * 8);
    for nug_frac in [0.0, 0.05, 0.1, 0.2, 0.35, 0.5] {
        for sill_frac in [0.4, 0.6, 0.8, 1.0, 1.2, 1.5] {
            for range_frac in [0.1, 0.2, 0.35, 0.5, 0.75, 1.0, 1.5, 2.0] {
                grid.push(Variogram {
                    kind,
                    nugget: nug_frac * max_gamma,
                    sill: sill_frac * max_gamma,
                    range: range_frac * max_lag,
                });
            }
        }
    }
    // Scoring one candidate touches every bin but allocates nothing, and
    // the dense grid is only 288 candidates — below the floor, the whole
    // grid is one chunk and the executor takes its inline serial path
    // (spawning workers for microseconds of arithmetic costs more than the
    // scan itself; BENCH_3 `train_select` measured the parallel arm losing).
    let pool = exec::ScratchPool::new(|| ());
    let scored = exec::map_vec_with(
        policy,
        exec::Granularity::new(512, 1024),
        &pool,
        &grid,
        |(), v| {
            let err: f64 = bins
                .iter()
                .map(|b| b.pairs as f64 * (v.gamma(b.lag) - b.gamma).powi(2))
                // lint:allow(par-float-reduce) — serial sum over `bins` in index order within one work item; no cross-worker combine
                .sum();
            (*v, err)
        },
    );
    let mut best = Variogram {
        kind,
        nugget: 0.0,
        sill: max_gamma,
        range: max_lag,
    };
    let mut best_err = f64::INFINITY;
    for (v, err) in scored {
        if err < best_err {
            best_err = err;
            best = v;
        }
    }
    Ok(best)
}

/// Fits a variogram model to empirical bins by pair-count-weighted least
/// squares over a dense parameter grid, under the default execution policy.
///
/// # Errors
///
/// Returns [`MlError::EmptyTrainingSet`] when no bins are provided.
pub fn fit_variogram(bins: &[VariogramBin], kind: VariogramKind) -> Result<Variogram, MlError> {
    fit_variogram_with(bins, kind, ExecPolicy::default())
}

/// Ordinary kriging configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KrigingConfig {
    /// Variogram family to fit.
    pub variogram: VariogramKind,
    /// Lag bins for the empirical variogram.
    pub n_bins: usize,
    /// Neighbours per prediction (keeps the linear solve small).
    pub max_neighbors: usize,
}

impl Default for KrigingConfig {
    fn default() -> Self {
        KrigingConfig {
            variogram: VariogramKind::Exponential,
            n_bins: 12,
            max_neighbors: 24,
        }
    }
}

/// Ordinary kriging regressor.
///
/// # Examples
///
/// ```
/// use aerorem_ml::kriging::{KrigingConfig, OrdinaryKriging};
/// use aerorem_ml::Regressor;
///
/// # fn main() -> Result<(), aerorem_ml::MlError> {
/// let x: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64 * 0.5]).collect();
/// let y: Vec<f64> = x.iter().map(|r| -70.0 - r[0]).collect();
/// let mut ok = OrdinaryKriging::new(KrigingConfig::default());
/// ok.fit(&x, &y)?;
/// let p = ok.predict_one(&[2.25])?;
/// assert!((p - -72.25).abs() < 1.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct OrdinaryKriging {
    config: KrigingConfig,
    variogram: Option<Variogram>,
    index: Option<NeighborIndex>,
    y: Vec<f64>,
}

/// Feature dimension at or below which `fit` builds the leaf-based SoA
/// [`KdTree`] for neighbour search (the same cutoff as the kNN backend):
/// low-dimensional spatial features prune well, while the paper-scale
/// ~80-MAC one-hot encodings degenerate to a full scan with extra
/// bookkeeping, so they keep the flat brute-force kernel.
const KDTREE_MAX_DIM: usize = 8;

/// Chunk-sizing hint for the batched kriging paths. One kriging query costs
/// a neighbour search plus at least an O(k²) back-substitution, so modest
/// chunks amortize the executor's bookkeeping; the cap keeps millions of
/// voxels claimable for load balance. A pure function of the row count, so
/// both policies run identical chunk partitions.
const KRIGING_BATCH_GRAN: exec::Granularity = exec::Granularity::new(64, 4096);

/// The fitted neighbour-search backend: the training rows, stored once.
#[derive(Debug, Clone)]
enum NeighborIndex {
    /// Leaf-based SoA KD-tree (low-dimensional features). Returns exactly
    /// the same `(index, distance)` pairs as the brute-force scan,
    /// including tie order — proven in the `kdtree` unit tests.
    Tree(KdTree),
    /// Flat brute-force top-k scan (high-dimensional features).
    Brute(FeatureMatrix),
}

impl NeighborIndex {
    fn dim(&self) -> usize {
        match self {
            NeighborIndex::Tree(t) => t.dim(),
            NeighborIndex::Brute(m) => m.dim(),
        }
    }

    /// Training row `i`, original insertion order under both backends.
    fn row(&self, i: usize) -> &[f64] {
        match self {
            NeighborIndex::Tree(t) => t.point(i),
            NeighborIndex::Brute(m) => m.row(i),
        }
    }

    /// Flat row-major training storage, original insertion order.
    fn as_slice(&self) -> &[f64] {
        match self {
            NeighborIndex::Tree(t) => t.points_flat(),
            NeighborIndex::Brute(m) => m.as_slice(),
        }
    }

    /// The `k` nearest training rows to `q`, nearest first, ties by index —
    /// the identical contract from both backends.
    fn nearest_into(&self, q: &[f64], k: usize, scratch: &mut KrigingScratch) {
        match self {
            NeighborIndex::Tree(t) => t.nearest_into(q, k, &mut scratch.tree, &mut scratch.nn),
            NeighborIndex::Brute(m) => {
                brute_force_topk_into(m.as_slice(), m.dim(), q, k, &mut scratch.cand, &mut scratch.nn);
            }
        }
    }
}

/// Factor-cache hit/miss counters for the kriging solver, harvested from
/// [`KrigingScratch::cache_stats`] or returned by the batched prediction
/// paths. Counters only — cache behavior never changes a predicted bit.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct KrigingCacheStats {
    /// Queries whose neighbour index-set matched the cached factorization.
    pub hits: u64,
    /// Queries that assembled and factorized a fresh system.
    pub misses: u64,
}

impl KrigingCacheStats {
    /// Total cached-path queries (hits + misses).
    pub fn total(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of queries served from the cached factorization, in
    /// `[0, 1]`; `0.0` when nothing was counted.
    pub fn hit_rate(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.hits as f64 / self.total() as f64
        }
    }

    /// Accumulates another counter pair into this one.
    pub fn merge(&mut self, other: KrigingCacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
    }
}

/// Reusable per-query state for the kriging solve: neighbour-search
/// buffers, the `(k+1)×(k+1)` system matrix and its RHS, and the
/// **factor cache** — the LU factorization of the last assembled system,
/// keyed on the (index-sorted) neighbour set. Consecutive lattice voxels
/// overwhelmingly share neighbour sets, so a cache hit skips both system
/// assembly and the O(k³) factorization, leaving an O(k²)
/// back-substitution. Hits are bit-identical to misses by construction:
/// an identical neighbour set assembles an identical matrix, which
/// factorizes to identical bits.
///
/// A scratch belongs to **one fitted model**: the cache key carries a
/// fingerprint of the model's training storage and is invalidated when it
/// changes, so reusing a scratch across models degrades to misses rather
/// than corrupting output.
#[derive(Debug, Default, Clone)]
pub struct KrigingScratch {
    cand: Vec<(usize, f64)>,
    tree: NeighborScratch,
    nn: Vec<(usize, f64)>,
    a: Option<Matrix>,
    b: Vec<f64>,
    sol: Vec<f64>,
    /// Index-sorted neighbour set the cached factors were assembled from.
    key: Vec<usize>,
    /// Fingerprint of the model the cached factors belong to.
    token: (usize, usize),
    factors: LuFactors,
    key_valid: bool,
    hits: u64,
    misses: u64,
}

impl KrigingScratch {
    /// A fresh scratch with an empty factor cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Factor-cache hit/miss counters accumulated by this scratch.
    pub fn cache_stats(&self) -> KrigingCacheStats {
        KrigingCacheStats {
            hits: self.hits,
            misses: self.misses,
        }
    }
}

impl OrdinaryKriging {
    /// Creates an unfitted kriging estimator.
    pub fn new(config: KrigingConfig) -> Self {
        OrdinaryKriging {
            config,
            variogram: None,
            index: None,
            y: Vec::new(),
        }
    }

    /// The fitted variogram, if any.
    pub fn variogram(&self) -> Option<Variogram> {
        self.variogram
    }
}

impl OrdinaryKriging {
    /// Predicts the target **and the kriging variance** at one row — the
    /// model's own uncertainty about the prediction, in squared target
    /// units. Zero at sampled locations, growing toward the variogram sill
    /// far from any sample. This is what separates kriging from the other
    /// interpolators: the REM can carry a confidence layer.
    ///
    /// # Errors
    ///
    /// Same error conditions as [`Regressor::predict_one`].
    pub fn predict_with_variance(&self, q: &[f64]) -> Result<(f64, f64), MlError> {
        self.predict_with_variance_with(q, &mut KrigingScratch::default())
    }

    /// Identifies this model's training storage for the scratch-held factor
    /// cache: cached factors are only reused while the fingerprint matches.
    fn cache_token(&self, index: &NeighborIndex) -> (usize, usize) {
        let flat = index.as_slice();
        (flat.as_ptr() as usize, flat.len())
    }

    /// Shared prediction core: every kriging path — per-item, batched,
    /// serial, parallel — runs this exact code with some scratch, so all of
    /// them agree bit-for-bit. The scratch carries the neighbour buffers,
    /// the system matrix, and the factor cache (see [`KrigingScratch`]);
    /// callers that keep one scratch across many nearby queries amortize
    /// the O(k³) factorization down to an O(k²) solve per query.
    ///
    /// # Errors
    ///
    /// Same error conditions as [`Regressor::predict_one`].
    pub fn predict_with_variance_with(
        &self,
        q: &[f64],
        scratch: &mut KrigingScratch,
    ) -> Result<(f64, f64), MlError> {
        let index = self.index.as_ref().ok_or(MlError::NotFitted)?;
        let vgram = self.variogram.ok_or(MlError::NotFitted)?;
        if q.len() != index.dim() {
            return Err(MlError::DimensionMismatch {
                expected: index.dim(),
                found: q.len(),
            });
        }
        index.nearest_into(q, self.config.max_neighbors, scratch);
        if let Some(&(i, d)) = scratch.nn.first() {
            if d < 1e-12 {
                return Ok((self.y[i], 0.0));
            }
        }
        // Canonical neighbour order: sorting by training index makes the
        // assembled system a pure function of the neighbour *set*, so two
        // queries sharing a set share the matrix — and therefore its
        // factorization — bit for bit. (Distances travel with the indices;
        // the RHS below stays query-specific.)
        scratch.nn.sort_unstable_by_key(|&(i, _)| i);
        let n = scratch.nn.len();
        let token = self.cache_token(index);
        let hit = scratch.key_valid
            && scratch.token == token
            && scratch.key.len() == n
            && scratch.key.iter().zip(&scratch.nn).all(|(&k, &(i, _))| k == i);
        if hit {
            scratch.hits += 1;
        } else {
            scratch.misses += 1;
            scratch.key_valid = false;
            let a = match scratch.a.as_mut() {
                Some(m) if m.rows() == n + 1 => {
                    m.fill(0.0);
                    m
                }
                _ => scratch.a.insert(Matrix::zeros(n + 1, n + 1)),
            };
            for (ri, &(i, _)) in scratch.nn.iter().enumerate() {
                // γ is symmetric in the distance, and the distance kernel is
                // bitwise symmetric in its arguments, so fill both triangles
                // from one evaluation. γ(0) = 0 keeps the diagonal at the
                // jitter value alone.
                for (rj, &(j, _)) in scratch.nn.iter().enumerate().skip(ri + 1) {
                    let h = sq_euclidean(index.row(i), index.row(j)).sqrt();
                    let g = vgram.gamma(h);
                    a[(ri, rj)] = g;
                    a[(rj, ri)] = g;
                }
                a[(ri, ri)] = 1e-10;
                a[(ri, n)] = 1.0;
                a[(n, ri)] = 1.0;
            }
            a.lu_factor_into(&mut scratch.factors)
                .map_err(|e| MlError::Numerical(format!("kriging system: {e}")))?;
            scratch.key.clear();
            scratch.key.extend(scratch.nn.iter().map(|&(i, _)| i));
            scratch.token = token;
            scratch.key_valid = true;
        }
        // The RHS is query-specific — γ from the query to each neighbour —
        // and costs O(k); only the factorization behind it is cached.
        scratch.b.clear();
        scratch.b.resize(n + 1, 0.0);
        for (ri, &(_, d)) in scratch.nn.iter().enumerate() {
            scratch.b[ri] = vgram.gamma(d);
        }
        scratch.b[n] = 1.0;
        scratch
            .factors
            .solve_factored_into(&scratch.b, &mut scratch.sol)
            .map_err(|e| MlError::Numerical(format!("kriging system: {e}")))?;
        let sol = &scratch.sol;
        let pred: f64 = scratch
            .nn
            .iter()
            .enumerate()
            .map(|(ri, &(i, _))| sol[ri] * self.y[i])
            .sum();
        // Kriging variance: sigma^2 = sum_i w_i gamma(q, x_i) + mu.
        let variance: f64 = (0..n).map(|ri| sol[ri] * scratch.b[ri]).sum::<f64>() + sol[n];
        Ok((pred, variance.max(0.0)))
    }

    /// Batched [`OrdinaryKriging::predict_with_variance`] under the default
    /// execution policy: one prediction vector and one variance vector,
    /// row-aligned with `xs`. Bit-identical to the per-item path.
    ///
    /// # Errors
    ///
    /// Same error conditions as [`Regressor::predict_one`], first failing
    /// row in input order.
    pub fn predict_with_variance_batch(
        &self,
        xs: &FeatureMatrix,
    ) -> Result<(Vec<f64>, Vec<f64>), MlError> {
        self.predict_with_variance_batch_with(xs, ExecPolicy::default())
            .map(|(preds, vars, _)| (preds, vars))
    }

    /// [`OrdinaryKriging::predict_with_variance_batch`] with an explicit
    /// execution policy, also returning the factor-cache counters
    /// aggregated over all workers.
    ///
    /// Rows fan out through the chunked executor with one
    /// [`KrigingScratch`] per worker thread, so each worker carries its own
    /// factor cache across its chunks. Results are bit-identical across
    /// policies and to the per-item path: the cache only changes *when*
    /// factorizations run, never their bits. The hit counters, by contrast,
    /// are legitimately execution-dependent (each worker warms its own
    /// cache) — they are observability, not output.
    ///
    /// # Errors
    ///
    /// Same error conditions as [`Regressor::predict_one`], first failing
    /// row in input order.
    pub fn predict_with_variance_batch_with(
        &self,
        xs: &FeatureMatrix,
        policy: ExecPolicy,
    ) -> Result<(Vec<f64>, Vec<f64>, KrigingCacheStats), MlError> {
        let rows: Vec<usize> = (0..xs.rows()).collect();
        let pool = exec::ScratchPool::new(KrigingScratch::default);
        let pairs = exec::try_map_vec_with(policy, KRIGING_BATCH_GRAN, &pool, &rows, |s, &i| {
            self.predict_with_variance_with(xs.row(i), s)
        })?;
        let stats = drain_cache_stats(&pool);
        let (preds, vars) = pairs.into_iter().unzip();
        Ok((preds, vars, stats))
    }
}

/// Sums the factor-cache counters of every scratch a finished batch run
/// returned to `pool`, consuming the scratches.
fn drain_cache_stats<F: Fn() -> KrigingScratch>(
    pool: &exec::ScratchPool<KrigingScratch, F>,
) -> KrigingCacheStats {
    let mut stats = KrigingCacheStats::default();
    for _ in 0..pool.idle() {
        stats.merge(pool.take().cache_stats());
    }
    stats
}

impl OrdinaryKriging {
    /// Shared fit core over flat storage: both `fit` (after one flatten)
    /// and `fit_batch` (one clone of the flat matrix) run this exact code,
    /// so the two produce bit-identical variograms and predictions.
    fn fit_matrix(&mut self, xm: FeatureMatrix, y: &[f64]) -> Result<(), MlError> {
        if xm.rows() < 2 {
            return Err(MlError::EmptyTrainingSet);
        }
        // Max lag: half the data diameter (standard practice).
        let probe = xm.rows().min(200);
        let mut max_lag = 0.0f64;
        for i in 0..probe {
            let xi = xm.row(i);
            for j in (i + 1)..probe {
                max_lag = max_lag.max(sq_euclidean(xi, xm.row(j)).sqrt());
            }
        }
        // Half the data diameter is standard; tiny datasets can leave that
        // window empty, so fall back to the full diameter.
        let policy = ExecPolicy::default();
        let mut bins = empirical_variogram_matrix(
            &xm,
            y,
            self.config.n_bins,
            (max_lag / 2.0).max(1e-6),
            policy,
        )?;
        if bins.is_empty() {
            bins = empirical_variogram_matrix(&xm, y, self.config.n_bins, max_lag * 1.01, policy)?;
        }
        self.variogram = Some(fit_variogram_with(&bins, self.config.variogram, policy)?);
        // Build the neighbour backend once per fit: the KD-tree owns the
        // single flat copy of the training rows and replaces the per-query
        // brute-force scan wherever the dimension gate lets it prune.
        self.index = Some(if xm.dim() <= KDTREE_MAX_DIM {
            match KdTree::build_flat(xm.as_slice().to_vec(), xm.dim()) {
                Some(tree) => NeighborIndex::Tree(tree),
                None => NeighborIndex::Brute(xm),
            }
        } else {
            NeighborIndex::Brute(xm)
        });
        self.y = y.to_vec();
        Ok(())
    }
}

impl Regressor for OrdinaryKriging {
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) -> Result<(), MlError> {
        validate_xy(x, y)?;
        if x.len() < 2 {
            return Err(MlError::EmptyTrainingSet);
        }
        let xm = FeatureMatrix::from_rows(x).expect("validated rows");
        self.fit_matrix(xm, y)
    }

    fn fit_batch(&mut self, xs: &FeatureMatrix, y: &[f64]) -> Result<(), MlError> {
        validate_matrix_y(xs, y)?;
        self.fit_matrix(xs.clone(), y)
    }

    fn predict_one(&self, q: &[f64]) -> Result<f64, MlError> {
        self.predict_with_variance(q).map(|(pred, _)| pred)
    }

    fn predict_batch(&self, xs: &FeatureMatrix) -> Result<Vec<f64>, MlError> {
        self.predict_with_variance_batch_with(xs, ExecPolicy::default())
            .map(|(preds, _, _)| preds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gamma_properties() {
        for kind in [
            VariogramKind::Exponential,
            VariogramKind::Spherical,
            VariogramKind::Gaussian,
        ] {
            let v = Variogram {
                kind,
                nugget: 0.5,
                sill: 2.0,
                range: 3.0,
            };
            assert_eq!(v.gamma(0.0), 0.0, "{kind:?} at zero");
            // Monotone non-decreasing.
            let mut last = 0.0;
            for i in 1..50 {
                let g = v.gamma(i as f64 * 0.2);
                assert!(g >= last - 1e-12, "{kind:?} not monotone");
                last = g;
            }
            // Approaches nugget+sill at large lag.
            assert!((v.gamma(100.0) - 2.5).abs() < 1e-6, "{kind:?} sill");
            // Nugget discontinuity just above zero.
            assert!(v.gamma(1e-9) >= 0.5);
        }
    }

    #[test]
    fn spherical_hits_sill_exactly_at_range() {
        let v = Variogram {
            kind: VariogramKind::Spherical,
            nugget: 0.0,
            sill: 1.0,
            range: 2.0,
        };
        assert!((v.gamma(2.0) - 1.0).abs() < 1e-12);
        assert!((v.gamma(5.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empirical_variogram_of_linear_field_grows() {
        // z = x → γ(h) = h²/2: strictly growing in lag.
        let pts: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64 * 0.5]).collect();
        let vals: Vec<f64> = pts.iter().map(|p| p[0]).collect();
        let bins = empirical_variogram(&pts, &vals, 8, 8.0).unwrap();
        assert!(bins.len() >= 4);
        for w in bins.windows(2) {
            assert!(w[1].gamma > w[0].gamma);
        }
    }

    #[test]
    fn empirical_variogram_validation() {
        let pts = vec![vec![0.0], vec![1.0]];
        let vals = vec![0.0, 1.0];
        assert!(empirical_variogram(&pts, &vals, 0, 1.0).is_err());
        assert!(empirical_variogram(&pts, &vals, 4, 0.0).is_err());
        assert!(empirical_variogram(&pts[..1], &vals[..1], 4, 1.0).is_err());
    }

    #[test]
    fn fit_recovers_reasonable_parameters() {
        // Synthesize bins from a known exponential variogram.
        let truth = Variogram {
            kind: VariogramKind::Exponential,
            nugget: 0.0,
            sill: 4.0,
            range: 5.0,
        };
        let bins: Vec<VariogramBin> = (1..=12)
            .map(|i| {
                let lag = i as f64 * 0.8;
                VariogramBin {
                    lag,
                    gamma: truth.gamma(lag),
                    pairs: 100,
                }
            })
            .collect();
        let fitted = fit_variogram(&bins, VariogramKind::Exponential).unwrap();
        // Grid resolution limits precision; check the shape matches.
        for b in &bins {
            assert!(
                (fitted.gamma(b.lag) - b.gamma).abs() < 0.8,
                "at {}: {} vs {}",
                b.lag,
                fitted.gamma(b.lag),
                b.gamma
            );
        }
        assert!(fit_variogram(&[], VariogramKind::Gaussian).is_err());
    }

    #[test]
    fn kriging_is_exact_at_samples() {
        let x: Vec<Vec<f64>> = (0..15).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = x.iter().map(|r| (r[0] * 0.5).sin() * 5.0 - 70.0).collect();
        let mut ok = OrdinaryKriging::new(KrigingConfig::default());
        ok.fit(&x, &y).unwrap();
        for (xi, &yi) in x.iter().zip(&y) {
            let p = ok.predict_one(xi).unwrap();
            assert!((p - yi).abs() < 1e-6, "at {xi:?}: {p} vs {yi}");
        }
    }

    #[test]
    fn kriging_interpolates_smoothly() {
        let x: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64 * 0.5]).collect();
        let y: Vec<f64> = x.iter().map(|r| -70.0 - 2.0 * r[0]).collect();
        let mut ok = OrdinaryKriging::new(KrigingConfig::default());
        ok.fit(&x, &y).unwrap();
        let p = ok.predict_one(&[3.25]).unwrap();
        assert!((p - -76.5).abs() < 1.0, "got {p}");
        assert!(ok.variogram().is_some());
    }

    #[test]
    fn kriging_2d_field() {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..8 {
            for j in 0..8 {
                x.push(vec![i as f64, j as f64]);
                y.push(-60.0 - (i as f64) - 0.5 * (j as f64));
            }
        }
        let mut ok = OrdinaryKriging::new(KrigingConfig::default());
        ok.fit(&x, &y).unwrap();
        let p = ok.predict_one(&[3.5, 3.5]).unwrap();
        assert!((p - (-60.0 - 3.5 - 1.75)).abs() < 0.5, "got {p}");
    }

    #[test]
    fn variance_zero_at_samples_grows_away() {
        let x: Vec<Vec<f64>> = (0..12).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = x.iter().map(|r| -70.0 - r[0]).collect();
        let mut ok = OrdinaryKriging::new(KrigingConfig::default());
        ok.fit(&x, &y).unwrap();
        let (_, v_at_sample) = ok.predict_with_variance(&[4.0]).unwrap();
        assert_eq!(v_at_sample, 0.0);
        let (_, v_near) = ok.predict_with_variance(&[4.3]).unwrap();
        let (_, v_far) = ok.predict_with_variance(&[30.0]).unwrap();
        assert!(v_near >= 0.0);
        assert!(
            v_far > v_near,
            "extrapolation must be less certain: {v_far} vs {v_near}"
        );
    }

    #[test]
    fn variance_errors_match_prediction_errors() {
        let ok = OrdinaryKriging::new(KrigingConfig::default());
        assert!(ok.predict_with_variance(&[0.0]).is_err());
    }

    #[test]
    fn duplicate_points_do_not_break_the_solve() {
        let x = vec![vec![0.0], vec![0.0], vec![1.0], vec![2.0]];
        let y = vec![5.0, 5.0, 6.0, 7.0];
        let mut ok = OrdinaryKriging::new(KrigingConfig::default());
        ok.fit(&x, &y).unwrap();
        let p = ok.predict_one(&[1.5]).unwrap();
        assert!(p.is_finite());
        assert!((5.0..=7.5).contains(&p));
    }

    #[test]
    fn predict_batch_matches_predict_one_bits() {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..9 {
            for j in 0..9 {
                x.push(vec![i as f64 * 0.45, j as f64 * 0.4]);
                y.push(-60.0 - (i as f64) * 1.3 - 0.7 * (j as f64));
            }
        }
        let mut ok = OrdinaryKriging::new(KrigingConfig::default());
        ok.fit(&x, &y).unwrap();
        let queries: Vec<Vec<f64>> = (0..20)
            .map(|i| vec![i as f64 * 0.19, 3.2 - i as f64 * 0.13])
            .collect();
        let fm = FeatureMatrix::from_rows(&queries).unwrap();
        let batch = ok.predict_batch(&fm).unwrap();
        assert_eq!(batch.len(), queries.len());
        for (q, b) in queries.iter().zip(&batch) {
            assert_eq!(ok.predict_one(q).unwrap(), *b);
        }
    }

    #[test]
    fn blocked_variogram_is_policy_invariant() {
        // More rows than one accumulation block so the reduce actually
        // crosses block boundaries; exact equality, not tolerance.
        let pts: Vec<Vec<f64>> = (0..300)
            .map(|i| vec![(i % 17) as f64 * 0.3, (i % 23) as f64 * 0.2])
            .collect();
        let vals: Vec<f64> = (0..300).map(|i| ((i * 13) % 29) as f64 * 0.5).collect();
        let xm = FeatureMatrix::from_rows(&pts).unwrap();
        let a = empirical_variogram_matrix(&xm, &vals, 10, 4.0, ExecPolicy::Serial).unwrap();
        let b = empirical_variogram_matrix(&xm, &vals, 10, 4.0, ExecPolicy::Parallel).unwrap();
        assert_eq!(a, b);
        let nested = empirical_variogram(&pts, &vals, 10, 4.0).unwrap();
        assert_eq!(a, nested, "nested-row wrapper shares the blocked core");
        let fa = fit_variogram_with(&a, VariogramKind::Exponential, ExecPolicy::Serial).unwrap();
        let fb = fit_variogram_with(&b, VariogramKind::Exponential, ExecPolicy::Parallel).unwrap();
        assert_eq!(fa, fb);
    }

    #[test]
    fn fit_batch_matches_fit_bits() {
        let x: Vec<Vec<f64>> = (0..40)
            .map(|i| vec![(i % 8) as f64 * 0.5, (i / 8) as f64 * 0.7])
            .collect();
        let y: Vec<f64> = (0..40).map(|i| -65.0 - (i % 11) as f64 * 0.9).collect();
        let mut a = OrdinaryKriging::new(KrigingConfig::default());
        a.fit(&x, &y).unwrap();
        let mut b = OrdinaryKriging::new(KrigingConfig::default());
        b.fit_batch(&FeatureMatrix::from_rows(&x).unwrap(), &y)
            .unwrap();
        assert_eq!(a.variogram(), b.variogram());
        for q in [[0.3, 1.1], [2.7, 0.2], [1.9, 2.4]] {
            assert_eq!(a.predict_one(&q).unwrap(), b.predict_one(&q).unwrap());
        }
    }

    /// A 2-D fitted model (KD-tree backend) over a deterministic grid.
    fn fitted_2d() -> OrdinaryKriging {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..9 {
            for j in 0..9 {
                x.push(vec![i as f64 * 0.45, j as f64 * 0.4]);
                y.push(-60.0 - (i as f64) * 1.3 - 0.7 * (j as f64));
            }
        }
        let mut ok = OrdinaryKriging::new(KrigingConfig::default());
        ok.fit(&x, &y).unwrap();
        ok
    }

    #[test]
    fn factor_cache_hits_are_bit_identical_to_misses() {
        let ok = fitted_2d();
        // Two clusters of tightly packed queries: within a cluster the
        // neighbour set is shared (hits after the first), across clusters it
        // changes (miss).
        let mut queries = Vec::new();
        for c in [[0.93, 0.81], [2.83, 2.61]] {
            for i in 0..6 {
                queries.push(vec![c[0] + i as f64 * 1e-3, c[1] - i as f64 * 1e-3]);
            }
        }
        let mut cached = KrigingScratch::new();
        for q in &queries {
            // Fresh scratch per query: every solve is a cold miss.
            let cold = ok
                .predict_with_variance_with(q, &mut KrigingScratch::new())
                .unwrap();
            let warm = ok.predict_with_variance_with(q, &mut cached).unwrap();
            assert_eq!(cold.0.to_bits(), warm.0.to_bits(), "prediction at {q:?}");
            assert_eq!(cold.1.to_bits(), warm.1.to_bits(), "variance at {q:?}");
        }
        let stats = cached.cache_stats();
        assert_eq!(stats.total(), queries.len() as u64);
        assert!(stats.hits >= 8, "clustered queries must hit: {stats:?}");
        assert!(stats.misses >= 2, "cluster changes must miss: {stats:?}");
        assert!(stats.hit_rate() > 0.5 && stats.hit_rate() < 1.0);
    }

    #[test]
    fn variance_batch_matches_per_item_bits_under_both_policies() {
        let ok = fitted_2d();
        // Interleave clustered rows (factor-cache hits) with scattered rows
        // (misses) so both cache paths run under every policy.
        let mut rows = Vec::new();
        for i in 0..40 {
            if i % 3 == 0 {
                rows.push(vec![i as f64 * 0.09, 3.0 - i as f64 * 0.07]);
            } else {
                rows.push(vec![1.5 + (i % 2) as f64 * 1e-3, 1.4]);
            }
        }
        let fm = FeatureMatrix::from_rows(&rows).unwrap();
        let mut per_item = Vec::new();
        for q in &rows {
            per_item.push(
                ok.predict_with_variance_with(q, &mut KrigingScratch::new())
                    .unwrap(),
            );
        }
        let mut by_policy = Vec::new();
        for policy in [ExecPolicy::Serial, ExecPolicy::Parallel] {
            let (preds, vars, stats) = ok.predict_with_variance_batch_with(&fm, policy).unwrap();
            assert_eq!(preds.len(), rows.len());
            assert_eq!(vars.len(), rows.len());
            for (i, &(p, v)) in per_item.iter().enumerate() {
                assert_eq!(preds[i].to_bits(), p.to_bits(), "{policy} pred row {i}");
                assert_eq!(vars[i].to_bits(), v.to_bits(), "{policy} var row {i}");
            }
            assert!(stats.hits > 0, "{policy}: clustered rows must hit the cache");
            assert!(stats.misses > 0, "{policy}: fresh sets must miss");
            by_policy.push((preds, vars));
        }
        assert_eq!(by_policy[0], by_policy[1], "serial ≡ parallel");
        // The plain batch wrapper and the Regressor path share the core.
        let (wp, wv) = ok.predict_with_variance_batch(&fm).unwrap();
        assert_eq!((wp, wv), by_policy[0]);
        let trait_preds = ok.predict_batch(&fm).unwrap();
        assert_eq!(trait_preds, by_policy[0].0);
    }

    #[test]
    fn scratch_reused_across_models_degrades_to_miss_not_corruption() {
        let a = fitted_2d();
        let x: Vec<Vec<f64>> = (0..30)
            .map(|i| vec![(i % 6) as f64 * 0.5, (i / 6) as f64 * 0.45])
            .collect();
        let y: Vec<f64> = (0..30).map(|i| -75.0 + (i % 7) as f64 * 1.1).collect();
        let mut b = OrdinaryKriging::new(KrigingConfig::default());
        b.fit(&x, &y).unwrap();
        let q = [1.05, 0.95];
        let mut shared = KrigingScratch::new();
        let a_ref = a.predict_with_variance(&q).unwrap();
        let b_ref = b.predict_with_variance(&q).unwrap();
        // Alternating models through one (misused) scratch must still give
        // each model's own answer: the cache token invalidates the factors.
        for _ in 0..3 {
            assert_eq!(a.predict_with_variance_with(&q, &mut shared).unwrap(), a_ref);
            assert_eq!(b.predict_with_variance_with(&q, &mut shared).unwrap(), b_ref);
        }
        assert_eq!(shared.cache_stats().hits, 0);
    }

    mod variance_batch_props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            // Batched predictions AND variances are bit-identical to the
            // fresh-scratch per-item path under both policies, across
            // random worlds and query mixes — including duplicated queries
            // (factor-cache hits) and scattered ones (misses).
            #[test]
            fn batched_equals_per_item_bits(
                seed in 0u64..1000,
                n_train in 12usize..60,
                n_query in 1usize..50,
                dup_every in 1usize..5,
            ) {
                use rand::{Rng, SeedableRng};
                let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
                let x: Vec<Vec<f64>> = (0..n_train)
                    .map(|_| vec![rng.gen_range(0.0..4.0), rng.gen_range(0.0..4.0)])
                    .collect();
                let y: Vec<f64> = (0..n_train).map(|_| rng.gen_range(-90.0..-50.0)).collect();
                let mut ok = OrdinaryKriging::new(KrigingConfig::default());
                ok.fit(&x, &y).unwrap();
                let mut rows = Vec::new();
                for i in 0..n_query {
                    if i % dup_every == 0 || rows.is_empty() {
                        rows.push(vec![rng.gen_range(-0.5..4.5), rng.gen_range(-0.5..4.5)]);
                    } else {
                        // Nudge the previous query: same neighbour set with
                        // overwhelming probability — a factor-cache hit.
                        let prev = rows.last().unwrap().clone();
                        rows.push(vec![prev[0] + 1e-4, prev[1] - 1e-4]);
                    }
                }
                let fm = FeatureMatrix::from_rows(&rows).unwrap();
                let mut reference = Vec::new();
                for q in &rows {
                    reference.push(
                        ok.predict_with_variance_with(q, &mut KrigingScratch::new()).unwrap(),
                    );
                }
                for policy in [ExecPolicy::Serial, ExecPolicy::Parallel] {
                    let (preds, vars, stats) =
                        ok.predict_with_variance_batch_with(&fm, policy).unwrap();
                    prop_assert_eq!(stats.total(), reference.len() as u64);
                    for (i, &(p, v)) in reference.iter().enumerate() {
                        prop_assert_eq!(preds[i].to_bits(), p.to_bits(), "{} pred {}", policy, i);
                        prop_assert_eq!(vars[i].to_bits(), v.to_bits(), "{} var {}", policy, i);
                    }
                }
            }
        }
    }

    #[test]
    fn lifecycle_errors() {
        let ok = OrdinaryKriging::new(KrigingConfig::default());
        assert_eq!(ok.predict_one(&[0.0]), Err(MlError::NotFitted));
        let mut ok = OrdinaryKriging::new(KrigingConfig::default());
        assert!(
            ok.fit(&[vec![1.0]], &[1.0]).is_err(),
            "one point is not enough"
        );
        let mut ok = OrdinaryKriging::new(KrigingConfig::default());
        ok.fit(&[vec![0.0], vec![1.0]], &[0.0, 1.0]).unwrap();
        assert!(matches!(
            ok.predict_one(&[0.0, 1.0]),
            Err(MlError::DimensionMismatch { .. })
        ));
    }
}
