//! Per-group estimator ensembles.
//!
//! §III-B: "as an intuitive alternative to assigning samples with different
//! MAC addresses a greater distance, we considered a kNN estimator per MAC
//! address … and took samples with the same MAC address into account,
//! reducing the feature set to only the x, y, z coordinates."
//! [`PerGroupKnn`] is that estimator, generalized to any one-hot group
//! block.

use std::collections::BTreeMap;
use std::ops::Range;

use crate::knn::{KnnRegressor, Weighting};
use crate::{validate_matrix_y, validate_xy, FeatureMatrix, MlError, Regressor};

/// One kNN model per group (per MAC), trained on the non-group features
/// only. Groups never seen in training fall back to the global mean.
///
/// # Examples
///
/// ```
/// use aerorem_ml::ensemble::PerGroupKnn;
/// use aerorem_ml::knn::Weighting;
/// use aerorem_ml::Regressor;
///
/// # fn main() -> Result<(), aerorem_ml::MlError> {
/// // Rows: [coord, mac0, mac1]. Two interleaved functions, one per MAC.
/// let x = vec![
///     vec![0.0, 1.0, 0.0], vec![1.0, 1.0, 0.0],
///     vec![0.0, 0.0, 1.0], vec![1.0, 0.0, 1.0],
/// ];
/// let y = vec![-70.0, -72.0, -50.0, -48.0];
/// let mut m = PerGroupKnn::new(1..3, 1, Weighting::Distance, 2.0)?;
/// m.fit(&x, &y)?;
/// assert_eq!(m.predict_one(&[0.0, 0.0, 1.0])?, -50.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct PerGroupKnn {
    group_range: Range<usize>,
    k: usize,
    weighting: Weighting,
    minkowski_p: f64,
    models: BTreeMap<usize, KnnRegressor>,
    global_mean: Option<f64>,
    dim: usize,
}

impl PerGroupKnn {
    /// Creates the ensemble: group key is the argmax within `group_range`;
    /// each group's kNN uses `k` neighbours on the features outside the
    /// group block.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::InvalidHyperparameter`] for an empty range, zero
    /// `k`, or invalid Minkowski order.
    pub fn new(
        group_range: Range<usize>,
        k: usize,
        weighting: Weighting,
        minkowski_p: f64,
    ) -> Result<Self, MlError> {
        if group_range.is_empty() {
            return Err(MlError::InvalidHyperparameter {
                name: "group_range",
                reason: "must be non-empty",
            });
        }
        // Validate the kNN hyperparameters early by building a probe model.
        KnnRegressor::new(k, weighting, minkowski_p)?;
        Ok(PerGroupKnn {
            group_range,
            k,
            weighting,
            minkowski_p,
            models: BTreeMap::new(),
            global_mean: None,
            dim: 0,
        })
    }

    /// The paper's per-MAC configuration: same hyperparameters as the tuned
    /// plain kNN (`k = 3`, distance weights, Euclidean).
    ///
    /// # Errors
    ///
    /// Returns [`MlError::InvalidHyperparameter`] for an empty group range.
    pub fn paper_tuned(group_range: Range<usize>) -> Result<Self, MlError> {
        Self::new(group_range, 3, Weighting::Distance, 2.0)
    }

    /// Number of per-group models fitted.
    pub fn group_count(&self) -> usize {
        self.models.len()
    }

    fn group_of(&self, row: &[f64]) -> usize {
        let slice = &row[self.group_range.clone()];
        slice
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite features"))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    fn strip_group(&self, row: &[f64]) -> Vec<f64> {
        row.iter()
            .enumerate()
            .filter(|(i, _)| !self.group_range.contains(i))
            .map(|(_, &v)| v)
            .collect()
    }

    /// Shared fitting core behind [`Regressor::fit`] and
    /// [`Regressor::fit_batch`]: rows are bucketed in input order and each
    /// submodel trains through the same `KnnRegressor::fit`, so the two
    /// entry points produce identical models.
    fn fit_rows<'r>(
        &mut self,
        rows: impl Iterator<Item = &'r [f64]>,
        y: &[f64],
        dim: usize,
    ) -> Result<(), MlError> {
        if self.group_range.end > dim {
            return Err(MlError::DimensionMismatch {
                expected: self.group_range.end,
                found: dim,
            });
        }
        if self.group_range.len() == dim {
            return Err(MlError::InvalidHyperparameter {
                name: "group_range",
                reason: "no features left outside the group block",
            });
        }
        self.dim = dim;
        self.global_mean = Some(y.iter().sum::<f64>() / y.len() as f64);
        // Bucket rows by group.
        let mut buckets: BTreeMap<usize, (Vec<Vec<f64>>, Vec<f64>)> = BTreeMap::new();
        for (row, &t) in rows.zip(y) {
            let g = self.group_of(row);
            let e = buckets.entry(g).or_default();
            e.0.push(self.strip_group(row));
            e.1.push(t);
        }
        self.models.clear();
        for (g, (gx, gy)) in buckets {
            let mut model = KnnRegressor::new(self.k, self.weighting, self.minkowski_p)?;
            model.fit(&gx, &gy)?;
            self.models.insert(g, model);
        }
        Ok(())
    }
}

impl Regressor for PerGroupKnn {
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) -> Result<(), MlError> {
        let dim = validate_xy(x, y)?;
        self.fit_rows(x.iter().map(Vec::as_slice), y, dim)
    }

    fn fit_batch(&mut self, xs: &FeatureMatrix, y: &[f64]) -> Result<(), MlError> {
        let dim = validate_matrix_y(xs, y)?;
        self.fit_rows(xs.iter(), y, dim)
    }

    fn predict_one(&self, x: &[f64]) -> Result<f64, MlError> {
        let global = self.global_mean.ok_or(MlError::NotFitted)?;
        if x.len() != self.dim {
            return Err(MlError::DimensionMismatch {
                expected: self.dim,
                found: x.len(),
            });
        }
        match self.models.get(&self.group_of(x)) {
            Some(model) => model.predict_one(&self.strip_group(x)),
            None => Ok(global),
        }
    }

    fn predict_batch(&self, xs: &FeatureMatrix) -> Result<Vec<f64>, MlError> {
        let global = self.global_mean.ok_or(MlError::NotFitted)?;
        if xs.dim() != self.dim {
            return Err(MlError::DimensionMismatch {
                expected: self.dim,
                found: xs.dim(),
            });
        }
        let stripped_dim = self.dim - self.group_range.len();
        // Bucket row indices by group, then delegate each group's stripped
        // rows to its submodel in one batched call and scatter the results
        // back into input order.
        let mut buckets: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for (ri, row) in xs.iter().enumerate() {
            buckets.entry(self.group_of(row)).or_default().push(ri);
        }
        let mut out = vec![global; xs.rows()];
        for (g, rows) in buckets {
            let Some(model) = self.models.get(&g) else {
                continue; // unseen group: rows keep the global mean
            };
            let mut sub = FeatureMatrix::with_capacity(stripped_dim, rows.len());
            for &ri in &rows {
                sub.push_row(&self.strip_group(xs.row(ri)));
            }
            let preds = model.predict_batch(&sub)?;
            for (&ri, p) in rows.iter().zip(preds) {
                out[ri] = p;
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Rows: [coord, mac0, mac1]; MAC 0 maps coord→−70−2c, MAC 1 → −50+2c.
    fn two_group_data() -> (Vec<Vec<f64>>, Vec<f64>) {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..10 {
            let c = i as f64 * 0.3;
            x.push(vec![c, 1.0, 0.0]);
            y.push(-70.0 - 2.0 * c);
            x.push(vec![c, 0.0, 1.0]);
            y.push(-50.0 + 2.0 * c);
        }
        (x, y)
    }

    #[test]
    fn per_group_models_do_not_mix() {
        let (x, y) = two_group_data();
        let mut m = PerGroupKnn::new(1..3, 2, Weighting::Distance, 2.0).unwrap();
        m.fit(&x, &y).unwrap();
        assert_eq!(m.group_count(), 2);
        // Predictions land on the correct branch even where the two
        // functions are 20+ dB apart.
        let p0 = m.predict_one(&[1.5, 1.0, 0.0]).unwrap();
        let p1 = m.predict_one(&[1.5, 0.0, 1.0]).unwrap();
        assert!((p0 - -73.0).abs() < 1.0, "group 0: {p0}");
        assert!((p1 - -47.0).abs() < 1.0, "group 1: {p1}");
    }

    #[test]
    fn unseen_group_gets_global_mean() {
        let (x, y) = two_group_data();
        // Group block of width 3, but only groups 0 and 1 ever appear.
        let x3: Vec<Vec<f64>> = x.iter().map(|r| vec![r[0], r[1], r[2], 0.0]).collect();
        let mut m = PerGroupKnn::new(1..4, 2, Weighting::Distance, 2.0).unwrap();
        m.fit(&x3, &y).unwrap();
        let global = y.iter().sum::<f64>() / y.len() as f64;
        let p = m.predict_one(&[0.5, 0.0, 0.0, 1.0]).unwrap();
        assert_eq!(p, global);
    }

    #[test]
    fn validation() {
        assert!(PerGroupKnn::new(2..2, 3, Weighting::Uniform, 2.0).is_err());
        assert!(PerGroupKnn::new(0..2, 0, Weighting::Uniform, 2.0).is_err());
        let mut m = PerGroupKnn::new(0..5, 3, Weighting::Uniform, 2.0).unwrap();
        assert!(m.fit(&[vec![1.0, 0.0]], &[1.0]).is_err());
        // Group block covering everything leaves no features.
        let mut m = PerGroupKnn::new(0..2, 3, Weighting::Uniform, 2.0).unwrap();
        assert!(m.fit(&[vec![1.0, 0.0]], &[1.0]).is_err());
        let m = PerGroupKnn::paper_tuned(1..3).unwrap();
        assert_eq!(m.predict_one(&[0.0, 1.0, 0.0]), Err(MlError::NotFitted));
    }

    #[test]
    fn dimension_check_on_predict() {
        let (x, y) = two_group_data();
        let mut m = PerGroupKnn::paper_tuned(1..3).unwrap();
        m.fit(&x, &y).unwrap();
        assert!(matches!(
            m.predict_one(&[1.0]),
            Err(MlError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn predict_batch_matches_predict_one_bits() {
        let (x, y) = two_group_data();
        // Add a third, never-trained group column so the batch path also
        // exercises the global-mean fallback.
        let x3: Vec<Vec<f64>> = x.iter().map(|r| vec![r[0], r[1], r[2], 0.0]).collect();
        let mut m = PerGroupKnn::new(1..4, 2, Weighting::Distance, 2.0).unwrap();
        m.fit(&x3, &y).unwrap();
        let queries: Vec<Vec<f64>> = (0..12)
            .map(|i| {
                let c = i as f64 * 0.27;
                match i % 3 {
                    0 => vec![c, 1.0, 0.0, 0.0],
                    1 => vec![c, 0.0, 1.0, 0.0],
                    _ => vec![c, 0.0, 0.0, 1.0], // unseen group
                }
            })
            .collect();
        let fm = FeatureMatrix::from_rows(&queries).unwrap();
        let batch = m.predict_batch(&fm).unwrap();
        for (q, b) in queries.iter().zip(&batch) {
            assert_eq!(m.predict_one(q).unwrap(), *b);
        }
    }

    #[test]
    fn tiny_groups_still_work() {
        // A group with a single sample: kNN with k=3 just returns it.
        let x = vec![
            vec![0.0, 1.0, 0.0],
            vec![1.0, 1.0, 0.0],
            vec![0.5, 0.0, 1.0],
        ];
        let y = vec![-70.0, -72.0, -40.0];
        let mut m = PerGroupKnn::paper_tuned(1..3).unwrap();
        m.fit(&x, &y).unwrap();
        assert_eq!(m.predict_one(&[9.9, 0.0, 1.0]).unwrap(), -40.0);
    }
}
