//! Inverse-distance-weighted (Shepard) interpolation.
//!
//! Not in the paper's estimator lineup, but the simplest spatial
//! interpolator the REM literature uses — included as an extension and as
//! an ablation baseline for the Figure-8 bench (see `DESIGN.md` §6).

use crate::kdtree::top_k_from_candidates;
use crate::{validate_matrix_y, validate_xy, FeatureMatrix, MlError, Regressor};
use aerorem_numerics::kernels::sq_euclidean;

/// Shepard interpolation: `ŷ(q) = Σ wᵢ yᵢ / Σ wᵢ` with `wᵢ = 1/dᵢᵖ`,
/// optionally restricted to the `max_neighbors` nearest samples.
///
/// The fitted samples are stored in one flat [`FeatureMatrix`]; the batched
/// prediction path reuses its distance and neighbour buffers across queries.
///
/// # Examples
///
/// ```
/// use aerorem_ml::idw::IdwInterpolator;
/// use aerorem_ml::Regressor;
///
/// # fn main() -> Result<(), aerorem_ml::MlError> {
/// let x = vec![vec![0.0], vec![2.0]];
/// let y = vec![0.0, 10.0];
/// let mut idw = IdwInterpolator::new(2.0, None)?;
/// idw.fit(&x, &y)?;
/// assert_eq!(idw.predict_one(&[1.0])?, 5.0); // symmetric point
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct IdwInterpolator {
    power: f64,
    max_neighbors: Option<usize>,
    x: Option<FeatureMatrix>,
    y: Vec<f64>,
}

impl IdwInterpolator {
    /// Creates an interpolator with distance power `p` (2 is classic) and
    /// an optional neighbour cap.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::InvalidHyperparameter`] for non-positive or
    /// non-finite `power`, or a zero neighbour cap.
    pub fn new(power: f64, max_neighbors: Option<usize>) -> Result<Self, MlError> {
        if power <= 0.0 || !power.is_finite() {
            return Err(MlError::InvalidHyperparameter {
                name: "power",
                reason: "must be positive and finite",
            });
        }
        if max_neighbors == Some(0) {
            return Err(MlError::InvalidHyperparameter {
                name: "max_neighbors",
                reason: "must be at least 1 when set",
            });
        }
        Ok(IdwInterpolator {
            power,
            max_neighbors,
            x: None,
            y: Vec::new(),
        })
    }

    /// Shared prediction core: both the per-item and batched paths run this
    /// exact code, so they agree bit-for-bit. `dists` and `nn` are reusable
    /// scratch buffers.
    fn predict_with_scratch(
        &self,
        q: &[f64],
        dists: &mut Vec<(usize, f64)>,
        nn: &mut Vec<(usize, f64)>,
    ) -> Result<f64, MlError> {
        let x = self.x.as_ref().ok_or(MlError::NotFitted)?;
        if q.len() != x.dim() {
            return Err(MlError::DimensionMismatch {
                expected: x.dim(),
                found: q.len(),
            });
        }
        dists.clear();
        dists.extend(
            x.iter()
                .enumerate()
                .map(|(i, p)| (i, sq_euclidean(p, q).sqrt())),
        );
        let active: &[(usize, f64)] = if let Some(cap) = self.max_neighbors {
            top_k_from_candidates(dists, cap, nn);
            nn
        } else {
            dists
        };
        // Exact hits dominate.
        let mut exact_sum = 0.0;
        let mut exact_n = 0usize;
        for &(i, d) in active {
            if d == 0.0 {
                exact_sum += self.y[i];
                exact_n += 1;
            }
        }
        if exact_n > 0 {
            return Ok(exact_sum / exact_n as f64);
        }
        let mut num = 0.0;
        let mut den = 0.0;
        for &(i, d) in active {
            let w = d.powf(-self.power);
            num += w * self.y[i];
            den += w;
        }
        Ok(num / den)
    }
}

impl Regressor for IdwInterpolator {
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) -> Result<(), MlError> {
        validate_xy(x, y)?;
        self.x = Some(FeatureMatrix::from_rows(x).expect("validated rows"));
        self.y = y.to_vec();
        Ok(())
    }

    fn fit_batch(&mut self, xs: &FeatureMatrix, y: &[f64]) -> Result<(), MlError> {
        validate_matrix_y(xs, y)?;
        self.x = Some(xs.clone());
        self.y = y.to_vec();
        Ok(())
    }

    fn predict_one(&self, q: &[f64]) -> Result<f64, MlError> {
        self.predict_with_scratch(q, &mut Vec::new(), &mut Vec::new())
    }

    fn predict_batch(&self, xs: &FeatureMatrix) -> Result<Vec<f64>, MlError> {
        let mut dists = Vec::new();
        let mut nn = Vec::new();
        xs.iter()
            .map(|q| self.predict_with_scratch(q, &mut dists, &mut nn))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_hit_returns_sample() {
        let mut idw = IdwInterpolator::new(2.0, None).unwrap();
        idw.fit(&[vec![0.0], vec![1.0]], &[3.0, 7.0]).unwrap();
        assert_eq!(idw.predict_one(&[1.0]).unwrap(), 7.0);
    }

    #[test]
    fn predictions_bounded_by_sample_range() {
        let mut idw = IdwInterpolator::new(2.0, None).unwrap();
        let x: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..10).map(|i| (i % 4) as f64).collect();
        idw.fit(&x, &y).unwrap();
        for q in [0.3, 4.7, 11.0, -3.0] {
            let p = idw.predict_one(&[q]).unwrap();
            assert!((0.0..=3.0).contains(&p), "IDW is a convex combination");
        }
    }

    #[test]
    fn higher_power_localizes() {
        let x = vec![vec![0.0], vec![1.0], vec![10.0]];
        let y = vec![0.0, 0.0, 100.0];
        let q = [0.5];
        let mut soft = IdwInterpolator::new(1.0, None).unwrap();
        let mut sharp = IdwInterpolator::new(6.0, None).unwrap();
        soft.fit(&x, &y).unwrap();
        sharp.fit(&x, &y).unwrap();
        let p_soft = soft.predict_one(&q).unwrap();
        let p_sharp = sharp.predict_one(&q).unwrap();
        assert!(
            p_sharp < p_soft,
            "sharp ({p_sharp}) should ignore the far sample more than soft ({p_soft})"
        );
    }

    #[test]
    fn neighbor_cap_limits_influence() {
        let x = vec![vec![0.0], vec![1.0], vec![100.0]];
        let y = vec![0.0, 1.0, 1000.0];
        let mut capped = IdwInterpolator::new(2.0, Some(2)).unwrap();
        capped.fit(&x, &y).unwrap();
        // The far outlier is excluded entirely.
        let p = capped.predict_one(&[0.5]).unwrap();
        assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    fn predict_batch_matches_predict_one_bits() {
        for cap in [None, Some(3)] {
            let mut idw = IdwInterpolator::new(2.0, cap).unwrap();
            let x: Vec<Vec<f64>> = (0..25)
                .map(|i| vec![(i % 5) as f64 * 0.8, (i / 5) as f64 * 1.1])
                .collect();
            let y: Vec<f64> = (0..25).map(|i| -60.0 - (i % 9) as f64).collect();
            idw.fit(&x, &y).unwrap();
            let queries: Vec<Vec<f64>> = (0..15)
                .map(|i| vec![i as f64 * 0.37, 4.0 - i as f64 * 0.21])
                .collect();
            let fm = FeatureMatrix::from_rows(&queries).unwrap();
            let batch = idw.predict_batch(&fm).unwrap();
            for (q, b) in queries.iter().zip(&batch) {
                assert_eq!(idw.predict_one(q).unwrap(), *b, "cap {cap:?}");
            }
        }
    }

    #[test]
    fn validation() {
        assert!(IdwInterpolator::new(0.0, None).is_err());
        assert!(IdwInterpolator::new(f64::NAN, None).is_err());
        assert!(IdwInterpolator::new(2.0, Some(0)).is_err());
        let idw = IdwInterpolator::new(2.0, None).unwrap();
        assert_eq!(idw.predict_one(&[0.0]), Err(MlError::NotFitted));
        let mut idw = IdwInterpolator::new(2.0, None).unwrap();
        idw.fit(&[vec![0.0, 1.0]], &[1.0]).unwrap();
        assert!(matches!(
            idw.predict_one(&[0.0]),
            Err(MlError::DimensionMismatch { .. })
        ));
    }
}
