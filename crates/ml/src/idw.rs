//! Inverse-distance-weighted (Shepard) interpolation.
//!
//! Not in the paper's estimator lineup, but the simplest spatial
//! interpolator the REM literature uses — included as an extension and as
//! an ablation baseline for the Figure-8 bench (see `DESIGN.md` §6).

use crate::{validate_xy, MlError, Regressor};

/// Shepard interpolation: `ŷ(q) = Σ wᵢ yᵢ / Σ wᵢ` with `wᵢ = 1/dᵢᵖ`,
/// optionally restricted to the `max_neighbors` nearest samples.
///
/// # Examples
///
/// ```
/// use aerorem_ml::idw::IdwInterpolator;
/// use aerorem_ml::Regressor;
///
/// # fn main() -> Result<(), aerorem_ml::MlError> {
/// let x = vec![vec![0.0], vec![2.0]];
/// let y = vec![0.0, 10.0];
/// let mut idw = IdwInterpolator::new(2.0, None)?;
/// idw.fit(&x, &y)?;
/// assert_eq!(idw.predict_one(&[1.0])?, 5.0); // symmetric point
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct IdwInterpolator {
    power: f64,
    max_neighbors: Option<usize>,
    x: Vec<Vec<f64>>,
    y: Vec<f64>,
    dim: Option<usize>,
}

impl IdwInterpolator {
    /// Creates an interpolator with distance power `p` (2 is classic) and
    /// an optional neighbour cap.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::InvalidHyperparameter`] for non-positive or
    /// non-finite `power`, or a zero neighbour cap.
    pub fn new(power: f64, max_neighbors: Option<usize>) -> Result<Self, MlError> {
        if power <= 0.0 || !power.is_finite() {
            return Err(MlError::InvalidHyperparameter {
                name: "power",
                reason: "must be positive and finite",
            });
        }
        if max_neighbors == Some(0) {
            return Err(MlError::InvalidHyperparameter {
                name: "max_neighbors",
                reason: "must be at least 1 when set",
            });
        }
        Ok(IdwInterpolator {
            power,
            max_neighbors,
            x: Vec::new(),
            y: Vec::new(),
            dim: None,
        })
    }
}

impl Regressor for IdwInterpolator {
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) -> Result<(), MlError> {
        let dim = validate_xy(x, y)?;
        self.x = x.to_vec();
        self.y = y.to_vec();
        self.dim = Some(dim);
        Ok(())
    }

    fn predict_one(&self, q: &[f64]) -> Result<f64, MlError> {
        let dim = self.dim.ok_or(MlError::NotFitted)?;
        if q.len() != dim {
            return Err(MlError::DimensionMismatch {
                expected: dim,
                found: q.len(),
            });
        }
        let mut dists: Vec<(usize, f64)> = self
            .x
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let d2: f64 = p.iter().zip(q).map(|(a, b)| (a - b) * (a - b)).sum();
                (i, d2.sqrt())
            })
            .collect();
        if let Some(cap) = self.max_neighbors {
            dists.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite").then(a.0.cmp(&b.0)));
            dists.truncate(cap);
        }
        // Exact hits dominate.
        let exact: Vec<usize> = dists
            .iter()
            .filter(|&&(_, d)| d == 0.0)
            .map(|&(i, _)| i)
            .collect();
        if !exact.is_empty() {
            return Ok(exact.iter().map(|&i| self.y[i]).sum::<f64>() / exact.len() as f64);
        }
        let mut num = 0.0;
        let mut den = 0.0;
        for &(i, d) in &dists {
            let w = d.powf(-self.power);
            num += w * self.y[i];
            den += w;
        }
        Ok(num / den)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_hit_returns_sample() {
        let mut idw = IdwInterpolator::new(2.0, None).unwrap();
        idw.fit(&[vec![0.0], vec![1.0]], &[3.0, 7.0]).unwrap();
        assert_eq!(idw.predict_one(&[1.0]).unwrap(), 7.0);
    }

    #[test]
    fn predictions_bounded_by_sample_range() {
        let mut idw = IdwInterpolator::new(2.0, None).unwrap();
        let x: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..10).map(|i| (i % 4) as f64).collect();
        idw.fit(&x, &y).unwrap();
        for q in [0.3, 4.7, 11.0, -3.0] {
            let p = idw.predict_one(&[q]).unwrap();
            assert!((0.0..=3.0).contains(&p), "IDW is a convex combination");
        }
    }

    #[test]
    fn higher_power_localizes() {
        let x = vec![vec![0.0], vec![1.0], vec![10.0]];
        let y = vec![0.0, 0.0, 100.0];
        let q = [0.5];
        let mut soft = IdwInterpolator::new(1.0, None).unwrap();
        let mut sharp = IdwInterpolator::new(6.0, None).unwrap();
        soft.fit(&x, &y).unwrap();
        sharp.fit(&x, &y).unwrap();
        let p_soft = soft.predict_one(&q).unwrap();
        let p_sharp = sharp.predict_one(&q).unwrap();
        assert!(
            p_sharp < p_soft,
            "sharp ({p_sharp}) should ignore the far sample more than soft ({p_soft})"
        );
    }

    #[test]
    fn neighbor_cap_limits_influence() {
        let x = vec![vec![0.0], vec![1.0], vec![100.0]];
        let y = vec![0.0, 1.0, 1000.0];
        let mut capped = IdwInterpolator::new(2.0, Some(2)).unwrap();
        capped.fit(&x, &y).unwrap();
        // The far outlier is excluded entirely.
        let p = capped.predict_one(&[0.5]).unwrap();
        assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    fn validation() {
        assert!(IdwInterpolator::new(0.0, None).is_err());
        assert!(IdwInterpolator::new(f64::NAN, None).is_err());
        assert!(IdwInterpolator::new(2.0, Some(0)).is_err());
        let idw = IdwInterpolator::new(2.0, None).unwrap();
        assert_eq!(idw.predict_one(&[0.0]), Err(MlError::NotFitted));
        let mut idw = IdwInterpolator::new(2.0, None).unwrap();
        idw.fit(&[vec![0.0, 1.0]], &[1.0]).unwrap();
        assert!(matches!(
            idw.predict_one(&[0.0]),
            Err(MlError::DimensionMismatch { .. })
        ));
    }
}
