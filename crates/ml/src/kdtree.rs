//! A flattened, leaf-based KD-tree for k-nearest-neighbour queries in low
//! dimensions.
//!
//! The paper's kNN feature space mixes 3 spatial coordinates with ~80
//! one-hot dimensions, where KD-trees degrade to brute force — so
//! [`crate::knn::KnnRegressor`] picks its backend by dimensionality, and the
//! `knn_backends` bench quantifies the crossover. This tree is exact: it
//! returns the same neighbours as brute force, including on exact distance
//! ties, because every comparison in the search uses the full
//! `(squared distance, index)` total order.
//!
//! # Layout
//!
//! The tree is **leaf-based**: points are permuted into *slot order* so
//! every leaf owns a contiguous slot range of up to [`LEAF_SIZE`] points,
//! and internal nodes store only a split axis and coordinate. The permuted
//! points live **dimension-major** (structure-of-arrays): `cols[d * n +
//! slot]` is coordinate `d` of the point in `slot`, so a leaf scan streams
//! contiguous memory per dimension and runs through the block kernel
//! [`aerorem_numerics::kernels::sq_euclidean_cols_into`], which is
//! bit-identical per point to the scalar [`sq_euclidean`] every other
//! distance path uses — tree, brute-force, per-item, and batched paths all
//! agree bit-for-bit.
//!
//! A second, row-major copy in original insertion order backs the
//! zero-copy [`KdTree::point`] / [`KdTree::points_flat`] accessors.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use aerorem_numerics::kernels::{sq_euclidean, sq_euclidean_cols_into};

/// Sentinel child index meaning "no child" and, in a node's `axis` field,
/// "this node is a leaf".
const NO_NODE: u32 = u32::MAX;

/// Maximum points per leaf. Around the point where one block-kernel scan of
/// a leaf costs the same as the node descent it replaces: big enough that
/// the SoA kernel gets contiguous runs to vectorize, small enough that a
/// query still prunes most of the tree.
const LEAF_SIZE: usize = 16;

/// A (squared-distance, index) candidate in the bounded max-heap.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Candidate {
    dist2: f64,
    index: usize,
}

impl Eq for Candidate {}

impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> Ordering {
        self.dist2
            .partial_cmp(&other.dist2)
            .expect("distances are finite")
            .then_with(|| self.index.cmp(&other.index))
    }
}

/// One arena node. Internal nodes split on `axis` at coordinate `split`
/// with child node ids in `left`/`right`; leaves (`axis == NO_NODE`) own
/// the contiguous slot range `left..right` of the SoA point storage.
#[derive(Debug, Clone, Copy)]
struct Node {
    axis: u32,
    split: f64,
    left: u32,
    right: u32,
}

/// Reusable per-query search state for [`KdTree::nearest_into`], letting the
/// batched prediction path run thousands of queries without reallocating the
/// candidate heap or the leaf distance buffer.
#[derive(Debug, Default, Clone)]
pub struct NeighborScratch {
    heap: BinaryHeap<Candidate>,
    dists: Vec<f64>,
}

/// An exact KD-tree over owned points in a flat arena.
///
/// # Examples
///
/// ```
/// use aerorem_ml::kdtree::KdTree;
///
/// let pts = vec![vec![0.0, 0.0], vec![1.0, 1.0], vec![2.0, 2.0]];
/// let tree = KdTree::build(pts).unwrap();
/// let nn = tree.nearest(&[0.9, 1.1], 1);
/// assert_eq!(nn[0].0, 1); // index of (1,1)
/// ```
#[derive(Debug, Clone)]
pub struct KdTree {
    /// Flat row-major point storage, `len() * dim` values, original order
    /// (backs the public accessors).
    data: Vec<f64>,
    /// Dimension-major permuted storage: `cols[d * len() + slot]`.
    cols: Vec<f64>,
    /// Maps a slot in `cols` back to the original point index.
    slot_to_index: Vec<u32>,
    nodes: Vec<Node>,
    root: u32,
    dim: usize,
}

impl KdTree {
    /// Builds a tree from points. Returns `None` for an empty set, ragged
    /// rows, or zero-dimensional points.
    pub fn build(points: Vec<Vec<f64>>) -> Option<Self> {
        let dim = points.first()?.len();
        if dim == 0 || points.iter().any(|p| p.len() != dim) {
            return None;
        }
        let mut data = Vec::with_capacity(points.len() * dim);
        for p in &points {
            data.extend_from_slice(p);
        }
        Self::build_flat(data, dim)
    }

    /// Builds a tree directly from flat row-major storage, which the tree
    /// then owns (the single copy of the training set for the kNN tree
    /// backend). Returns `None` for empty data, `dim == 0`, a length that is
    /// not a multiple of `dim`, or more than `u32::MAX - 1` points.
    pub fn build_flat(data: Vec<f64>, dim: usize) -> Option<Self> {
        if dim == 0 || data.is_empty() || !data.len().is_multiple_of(dim) {
            return None;
        }
        let n = data.len() / dim;
        if n >= NO_NODE as usize {
            return None;
        }
        let mut indices: Vec<usize> = (0..n).collect();
        let mut nodes = Vec::with_capacity(2 * n.div_ceil(LEAF_SIZE));
        let root = build_arena(&data, dim, &mut indices, 0, &mut nodes);
        // After the build the index permutation *is* the slot order; lay the
        // permuted points out dimension-major for the leaf-scan kernel.
        let mut cols = vec![0.0; n * dim];
        for (slot, &pi) in indices.iter().enumerate() {
            for d in 0..dim {
                cols[d * n + slot] = data[pi * dim + d];
            }
        }
        let slot_to_index = indices.iter().map(|&pi| pi as u32).collect();
        Some(KdTree {
            data,
            cols,
            slot_to_index,
            nodes,
            root,
            dim,
        })
    }

    /// Number of points in the tree.
    pub fn len(&self) -> usize {
        self.data.len() / self.dim
    }

    /// Whether the tree is empty (never true for built trees).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The point dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Zero-copy view of point `i` (original insertion order).
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn point(&self, i: usize) -> &[f64] {
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// The flat row-major point storage, in original insertion order.
    pub fn points_flat(&self) -> &[f64] {
        &self.data
    }

    /// Returns the `k` nearest points to `query` as `(index, distance)`
    /// pairs, nearest first. Fewer than `k` results when the tree is small.
    ///
    /// # Panics
    ///
    /// Panics if `query.len() != self.dim()`.
    pub fn nearest(&self, query: &[f64], k: usize) -> Vec<(usize, f64)> {
        let mut scratch = NeighborScratch::default();
        let mut out = Vec::new();
        self.nearest_into(query, k, &mut scratch, &mut out);
        out
    }

    /// Allocation-free variant of [`KdTree::nearest`]: the candidate heap
    /// and leaf distance buffer live in `scratch` and results replace the
    /// contents of `out`, so a batched caller reuses both across queries.
    /// Produces exactly the same results as [`KdTree::nearest`].
    ///
    /// # Panics
    ///
    /// Panics if `query.len() != self.dim()`.
    pub fn nearest_into(
        &self,
        query: &[f64],
        k: usize,
        scratch: &mut NeighborScratch,
        out: &mut Vec<(usize, f64)>,
    ) {
        assert_eq!(query.len(), self.dim, "query dimension mismatch");
        out.clear();
        if k == 0 {
            return;
        }
        scratch.heap.clear();
        self.search(self.root, query, k, &mut scratch.heap, &mut scratch.dists);
        out.extend(scratch.heap.drain().map(|c| (c.index, c.dist2.sqrt())));
        out.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite").then(a.0.cmp(&b.0)));
    }

    fn search(
        &self,
        node: u32,
        query: &[f64],
        k: usize,
        heap: &mut BinaryHeap<Candidate>,
        dists: &mut Vec<f64>,
    ) {
        if node == NO_NODE {
            return;
        }
        let n = self.nodes[node as usize];
        if n.axis == NO_NODE {
            // Leaf: one SoA block scan over the slot range, then tie-exact
            // heap maintenance. The kernel output is bit-identical per point
            // to the scalar sq_euclidean all other paths use.
            let (lo, hi) = (n.left as usize, n.right as usize);
            dists.resize(hi - lo, 0.0);
            sq_euclidean_cols_into(&self.cols, self.len(), query, lo, hi, dists);
            for (jj, &dist2) in dists.iter().enumerate() {
                let cand = Candidate {
                    dist2,
                    index: self.slot_to_index[lo + jj] as usize,
                };
                if heap.len() < k {
                    heap.push(cand);
                } else if let Some(&worst) = heap.peek() {
                    // Full (dist2, index) order: on exact distance ties the
                    // lower index wins, matching the brute-force truncation.
                    if cand < worst {
                        heap.pop();
                        heap.push(cand);
                    }
                }
            }
            return;
        }
        let delta = query[n.axis as usize] - n.split;
        let (near, far) = if delta < 0.0 {
            (n.left, n.right)
        } else {
            (n.right, n.left)
        };
        self.search(near, query, k, heap, dists);
        // Visit the far side unless every point there is provably worse than
        // the current worst candidate. `delta²` lower-bounds any far-side
        // distance, and the comparison is non-strict: at exact equality a
        // far-side point could tie the worst distance with a smaller index,
        // which the (dist2, index) order must still admit.
        let worst = heap.peek().map_or(f64::INFINITY, |c| c.dist2);
        if heap.len() < k || delta * delta <= worst {
            self.search(far, query, k, heap, dists);
        }
    }
}

/// Recursive arena build over a slot range. Ranges of up to [`LEAF_SIZE`]
/// points become leaves; larger ranges stable-sort their index subslice
/// along the chosen axis and split at the upper median, so slots
/// `[lo, lo+mid)` hold coordinates `<=` the split value and the rest hold
/// `>=` — which is what makes `|query[axis] - split|` a valid far-side
/// distance bound even with duplicate coordinates. The final permutation of
/// `indices` is the slot order. Nodes are stored pre-order.
///
/// The split axis is the one with the **largest coordinate spread** in the
/// node's point subset (ties to the lowest axis), not a round-robin of
/// `depth % dim`. Round-robin is pathological for the one-hot feature
/// blocks this workspace feeds the tree: a query's delta on a one-hot axis
/// it shares with the split is exactly 0, so such a level can never prune
/// and every search walks both subtrees. Spread selection splits each
/// one-hot axis at most once — separating the categories with a far-side
/// bound of 1 — and spends the remaining depth on the spatial axes where
/// pruning actually works. Axis choice only shapes the tree; the search
/// remains exact, so results are bit-identical to brute force either way.
fn build_arena(
    data: &[f64],
    dim: usize,
    indices: &mut [usize],
    lo: usize,
    nodes: &mut Vec<Node>,
) -> u32 {
    if indices.is_empty() {
        return NO_NODE;
    }
    let id = nodes.len();
    if indices.len() <= LEAF_SIZE {
        nodes.push(Node {
            axis: NO_NODE,
            split: 0.0,
            left: lo as u32,
            right: (lo + indices.len()) as u32,
        });
        return id as u32;
    }
    let mut axis = 0usize;
    let mut best_spread = f64::NEG_INFINITY;
    for d in 0..dim {
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for &i in indices.iter() {
            let v = data[i * dim + d];
            min = min.min(v);
            max = max.max(v);
        }
        let spread = max - min;
        if spread > best_spread {
            best_spread = spread;
            axis = d;
        }
    }
    indices.sort_by(|&a, &b| {
        data[a * dim + axis]
            .partial_cmp(&data[b * dim + axis])
            .expect("finite coordinates")
    });
    let mid = indices.len() / 2;
    let split = data[indices[mid] * dim + axis];
    nodes.push(Node {
        axis: axis as u32,
        split,
        left: NO_NODE,
        right: NO_NODE,
    });
    let (left_slice, right_slice) = indices.split_at_mut(mid);
    let left = build_arena(data, dim, left_slice, lo, nodes);
    let right = build_arena(data, dim, right_slice, lo + mid, nodes);
    nodes[id].left = left;
    nodes[id].right = right;
    id as u32
}

/// Brute-force exact k-nearest-neighbour reference, used as the test oracle.
pub fn brute_force_nearest(points: &[Vec<f64>], query: &[f64], k: usize) -> Vec<(usize, f64)> {
    let mut all: Vec<(usize, f64)> = points
        .iter()
        .enumerate()
        .map(|(i, p)| (i, sq_euclidean(p, query).sqrt()))
        .collect();
    all.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite").then(a.0.cmp(&b.0)));
    all.truncate(k);
    all
}

/// Brute-force exact k-nearest-neighbour over flat row-major points: full
/// sort of all `(index, distance)` pairs by `(distance, index)`, truncated to
/// `k`. The per-item brute-force backend.
pub fn brute_force_nearest_flat(
    data: &[f64],
    dim: usize,
    query: &[f64],
    k: usize,
) -> Vec<(usize, f64)> {
    let mut all: Vec<(usize, f64)> = data
        .chunks_exact(dim)
        .enumerate()
        .map(|(i, p)| (i, sq_euclidean(p, query).sqrt()))
        .collect();
    all.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite").then(a.0.cmp(&b.0)));
    all.truncate(k);
    all
}

/// Allocation-free top-`k` selection over flat row-major points, replacing
/// the contents of `out` with the `k` nearest `(index, distance)` pairs,
/// nearest first. `cand` is a reusable scratch buffer.
///
/// Uses `select_nth_unstable_by` (O(n)) instead of a full sort, then sorts
/// only the `k`-prefix. Because `(distance, index)` is a total order, the set
/// of `k` smallest pairs is unique, so this returns **exactly** the same
/// pairs as [`brute_force_nearest_flat`] — the batched fast path is
/// bit-identical to the per-item reference.
pub fn brute_force_topk_into(
    data: &[f64],
    dim: usize,
    query: &[f64],
    k: usize,
    cand: &mut Vec<(usize, f64)>,
    out: &mut Vec<(usize, f64)>,
) {
    cand.clear();
    cand.extend(
        data.chunks_exact(dim)
            .enumerate()
            .map(|(i, p)| (i, sq_euclidean(p, query).sqrt())),
    );
    top_k_from_candidates(cand, k, out);
}

/// Shared tail of the top-`k` selection: partition `cand` so its first `k`
/// entries are the smallest under `(distance, index)`, then sort that prefix
/// into `out`.
pub(crate) fn top_k_from_candidates(
    cand: &mut [(usize, f64)],
    k: usize,
    out: &mut Vec<(usize, f64)>,
) {
    out.clear();
    let k = k.min(cand.len());
    if k == 0 {
        return;
    }
    let cmp = |a: &(usize, f64), b: &(usize, f64)| {
        a.1.partial_cmp(&b.1).expect("finite").then(a.0.cmp(&b.0))
    };
    if k < cand.len() {
        cand.select_nth_unstable_by(k - 1, cmp);
    }
    let head = &mut cand[..k];
    head.sort_by(cmp);
    out.extend_from_slice(head);
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn build_rejects_bad_input() {
        assert!(KdTree::build(vec![]).is_none());
        assert!(KdTree::build(vec![vec![]]).is_none());
        assert!(KdTree::build(vec![vec![1.0], vec![1.0, 2.0]]).is_none());
        assert!(KdTree::build_flat(vec![], 2).is_none());
        assert!(KdTree::build_flat(vec![1.0, 2.0, 3.0], 2).is_none());
        assert!(KdTree::build_flat(vec![1.0], 0).is_none());
    }

    #[test]
    fn single_point() {
        let t = KdTree::build(vec![vec![1.0, 2.0, 3.0]]).unwrap();
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
        assert_eq!(t.dim(), 3);
        assert_eq!(t.point(0), &[1.0, 2.0, 3.0]);
        let nn = t.nearest(&[0.0, 0.0, 0.0], 5);
        assert_eq!(nn.len(), 1);
        assert_eq!(nn[0].0, 0);
    }

    #[test]
    fn k_zero_returns_empty() {
        let t = KdTree::build(vec![vec![1.0]]).unwrap();
        assert!(t.nearest(&[0.0], 0).is_empty());
    }

    #[test]
    fn matches_brute_force_3d() {
        let mut rng = StdRng::seed_from_u64(0x3D);
        let points: Vec<Vec<f64>> = (0..500)
            .map(|_| (0..3).map(|_| rng.gen_range(-10.0..10.0)).collect())
            .collect();
        let tree = KdTree::build(points.clone()).unwrap();
        for _ in 0..50 {
            let q: Vec<f64> = (0..3).map(|_| rng.gen_range(-10.0..10.0)).collect();
            for k in [1, 3, 16] {
                let got = tree.nearest(&q, k);
                let want = brute_force_nearest(&points, &q, k);
                let got_d: Vec<f64> = got.iter().map(|g| g.1).collect();
                let want_d: Vec<f64> = want.iter().map(|w| w.1).collect();
                for (g, w) in got_d.iter().zip(&want_d) {
                    assert!((g - w).abs() < 1e-9, "k={k}: {got_d:?} vs {want_d:?}");
                }
            }
        }
    }

    #[test]
    fn arena_tree_identical_to_brute_force() {
        // Stronger than distance tolerance: the arena tree must return the
        // exact same (index, distance) pairs, bit for bit.
        let mut rng = StdRng::seed_from_u64(0xA7E4A);
        for dim in [1, 2, 3, 5, 8] {
            let points: Vec<Vec<f64>> = (0..300)
                .map(|_| (0..dim).map(|_| rng.gen_range(-10.0..10.0)).collect())
                .collect();
            let tree = KdTree::build(points.clone()).unwrap();
            for _ in 0..20 {
                let q: Vec<f64> = (0..dim).map(|_| rng.gen_range(-10.0..10.0)).collect();
                for k in [1, 4, 16, 300] {
                    assert_eq!(
                        tree.nearest(&q, k),
                        brute_force_nearest(&points, &q, k),
                        "dim={dim} k={k}"
                    );
                }
            }
        }
    }

    #[test]
    fn exact_distance_ties_resolve_by_index_like_brute_force() {
        // A lattice of duplicated coordinates makes distance ties at the k
        // boundary routine; the tree must pick the same tied indices brute
        // force does (lowest index first), for queries on and off points.
        let mut points = Vec::new();
        for x in 0..4 {
            for y in 0..4 {
                for _copy in 0..2 {
                    points.push(vec![f64::from(x), f64::from(y)]);
                }
            }
        }
        let tree = KdTree::build(points.clone()).unwrap();
        for q in [[1.0, 1.0], [1.5, 1.5], [0.0, 2.0], [3.5, 0.5], [2.0, 2.5]] {
            for k in [1, 2, 3, 5, 8, 13, 32] {
                assert_eq!(
                    tree.nearest(&q, k),
                    brute_force_nearest(&points, &q, k),
                    "q={q:?} k={k}"
                );
            }
        }
    }

    #[test]
    fn topk_select_identical_to_full_sort() {
        let mut rng = StdRng::seed_from_u64(0x0709);
        let dim = 5;
        let data: Vec<f64> = (0..250 * dim).map(|_| rng.gen_range(-4.0..4.0)).collect();
        let mut cand = Vec::new();
        let mut out = Vec::new();
        for _ in 0..30 {
            let q: Vec<f64> = (0..dim).map(|_| rng.gen_range(-4.0..4.0)).collect();
            for k in [0, 1, 7, 16, 249, 250, 400] {
                brute_force_topk_into(&data, dim, &q, k, &mut cand, &mut out);
                assert_eq!(out, brute_force_nearest_flat(&data, dim, &q, k), "k={k}");
            }
        }
    }

    #[test]
    fn nearest_into_reuses_buffers() {
        let t = KdTree::build(vec![vec![0.0], vec![5.0], vec![2.0]]).unwrap();
        let mut scratch = NeighborScratch::default();
        let mut out = Vec::new();
        t.nearest_into(&[4.9], 2, &mut scratch, &mut out);
        assert_eq!(out, t.nearest(&[4.9], 2));
        t.nearest_into(&[0.1], 1, &mut scratch, &mut out);
        assert_eq!(out, t.nearest(&[0.1], 1));
    }

    #[test]
    fn matches_brute_force_high_dim() {
        // Even where the tree is slow it must stay exact.
        let mut rng = StdRng::seed_from_u64(0xD1E);
        let points: Vec<Vec<f64>> = (0..200)
            .map(|_| (0..12).map(|_| rng.gen_range(0.0..1.0)).collect())
            .collect();
        let tree = KdTree::build(points.clone()).unwrap();
        let q: Vec<f64> = (0..12).map(|_| rng.gen_range(0.0..1.0)).collect();
        let got = tree.nearest(&q, 5);
        let want = brute_force_nearest(&points, &q, 5);
        for (g, w) in got.iter().zip(&want) {
            assert!((g.1 - w.1).abs() < 1e-9);
        }
    }

    #[test]
    fn duplicate_points_all_returned() {
        let points = vec![vec![1.0, 1.0]; 4];
        let tree = KdTree::build(points).unwrap();
        let nn = tree.nearest(&[1.0, 1.0], 4);
        assert_eq!(nn.len(), 4);
        let mut idx: Vec<usize> = nn.iter().map(|n| n.0).collect();
        idx.sort_unstable();
        assert_eq!(idx, vec![0, 1, 2, 3]);
        assert!(nn.iter().all(|n| n.1 == 0.0));
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn wrong_query_dim_panics() {
        let t = KdTree::build(vec![vec![1.0, 2.0]]).unwrap();
        t.nearest(&[1.0], 1);
    }

    #[test]
    fn results_sorted_nearest_first() {
        let points = vec![vec![0.0], vec![5.0], vec![2.0], vec![8.0]];
        let tree = KdTree::build(points).unwrap();
        let nn = tree.nearest(&[1.0], 3);
        let dists: Vec<f64> = nn.iter().map(|n| n.1).collect();
        assert_eq!(dists, vec![1.0, 1.0, 4.0]);
    }

    #[test]
    fn multi_leaf_trees_stay_exact_across_sizes() {
        // Sizes chosen to straddle the leaf threshold and its multiples so
        // both the single-leaf and deep-split code paths are exercised.
        let mut rng = StdRng::seed_from_u64(0x1EAF);
        for n in [1usize, 2, 15, 16, 17, 33, 64, 257] {
            let points: Vec<Vec<f64>> = (0..n)
                .map(|_| (0..3).map(|_| rng.gen_range(-5.0..5.0)).collect())
                .collect();
            let tree = KdTree::build(points.clone()).unwrap();
            let q: Vec<f64> = (0..3).map(|_| rng.gen_range(-5.0..5.0)).collect();
            for k in [1, 4, n] {
                assert_eq!(
                    tree.nearest(&q, k),
                    brute_force_nearest(&points, &q, k),
                    "n={n} k={k}"
                );
            }
        }
    }
}
