//! A KD-tree for k-nearest-neighbour queries in low dimensions.
//!
//! The paper's kNN feature space mixes 3 spatial coordinates with ~80
//! one-hot dimensions, where KD-trees degrade to brute force — so
//! [`crate::knn::KnnRegressor`] picks its backend by dimensionality, and the
//! `knn_backends` bench quantifies the crossover. This tree is exact: it
//! returns the same neighbours as brute force.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A (squared-distance, index) candidate in the bounded max-heap.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Candidate {
    dist2: f64,
    index: usize,
}

impl Eq for Candidate {}

impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> Ordering {
        self.dist2
            .partial_cmp(&other.dist2)
            .expect("distances are finite")
            .then_with(|| self.index.cmp(&other.index))
    }
}

#[derive(Debug, Clone)]
struct Node {
    /// Index into the point set.
    point: usize,
    axis: usize,
    left: Option<Box<Node>>,
    right: Option<Box<Node>>,
}

/// An exact KD-tree over owned points.
///
/// # Examples
///
/// ```
/// use aerorem_ml::kdtree::KdTree;
///
/// let pts = vec![vec![0.0, 0.0], vec![1.0, 1.0], vec![2.0, 2.0]];
/// let tree = KdTree::build(pts).unwrap();
/// let nn = tree.nearest(&[0.9, 1.1], 1);
/// assert_eq!(nn[0].0, 1); // index of (1,1)
/// ```
#[derive(Debug, Clone)]
pub struct KdTree {
    points: Vec<Vec<f64>>,
    root: Option<Box<Node>>,
    dim: usize,
}

impl KdTree {
    /// Builds a tree from points. Returns `None` for an empty set, ragged
    /// rows, or zero-dimensional points.
    pub fn build(points: Vec<Vec<f64>>) -> Option<Self> {
        let dim = points.first()?.len();
        if dim == 0 || points.iter().any(|p| p.len() != dim) {
            return None;
        }
        let mut indices: Vec<usize> = (0..points.len()).collect();
        let root = build_node(&points, &mut indices, 0, dim);
        Some(KdTree { points, root, dim })
    }

    /// Number of points in the tree.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the tree is empty (never true for built trees).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The point dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Returns the `k` nearest points to `query` as `(index, distance)`
    /// pairs, nearest first. Fewer than `k` results when the tree is small.
    ///
    /// # Panics
    ///
    /// Panics if `query.len() != self.dim()`.
    pub fn nearest(&self, query: &[f64], k: usize) -> Vec<(usize, f64)> {
        assert_eq!(query.len(), self.dim, "query dimension mismatch");
        if k == 0 {
            return Vec::new();
        }
        let mut heap: BinaryHeap<Candidate> = BinaryHeap::new();
        self.search(self.root.as_deref(), query, k, &mut heap);
        let mut out: Vec<(usize, f64)> = heap
            .into_sorted_vec()
            .into_iter()
            .map(|c| (c.index, c.dist2.sqrt()))
            .collect();
        // into_sorted_vec is ascending by our Ord (nearest first).
        out.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite").then(a.0.cmp(&b.0)));
        out
    }

    fn search(
        &self,
        node: Option<&Node>,
        query: &[f64],
        k: usize,
        heap: &mut BinaryHeap<Candidate>,
    ) {
        let Some(node) = node else { return };
        let p = &self.points[node.point];
        let dist2 = sq_dist(p, query);
        if heap.len() < k {
            heap.push(Candidate {
                dist2,
                index: node.point,
            });
        } else if let Some(worst) = heap.peek() {
            if dist2 < worst.dist2 {
                heap.pop();
                heap.push(Candidate {
                    dist2,
                    index: node.point,
                });
            }
        }
        let delta = query[node.axis] - p[node.axis];
        let (near, far) = if delta < 0.0 {
            (node.left.as_deref(), node.right.as_deref())
        } else {
            (node.right.as_deref(), node.left.as_deref())
        };
        self.search(near, query, k, heap);
        // Prune the far side unless the splitting plane is within the
        // current worst distance.
        let worst = heap.peek().map_or(f64::INFINITY, |c| c.dist2);
        if heap.len() < k || delta * delta < worst {
            self.search(far, query, k, heap);
        }
    }
}

fn build_node(
    points: &[Vec<f64>],
    indices: &mut [usize],
    depth: usize,
    dim: usize,
) -> Option<Box<Node>> {
    if indices.is_empty() {
        return None;
    }
    let axis = depth % dim;
    indices.sort_by(|&a, &b| {
        points[a][axis]
            .partial_cmp(&points[b][axis])
            .expect("finite coordinates")
    });
    let mid = indices.len() / 2;
    let point = indices[mid];
    let (left, rest) = indices.split_at_mut(mid);
    let right = &mut rest[1..];
    Some(Box::new(Node {
        point,
        axis,
        left: build_node(points, left, depth + 1, dim),
        right: build_node(points, right, depth + 1, dim),
    }))
}

fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Brute-force exact k-nearest-neighbour reference, used as the fallback
/// backend in high dimensions and as the test oracle.
pub fn brute_force_nearest(points: &[Vec<f64>], query: &[f64], k: usize) -> Vec<(usize, f64)> {
    let mut all: Vec<(usize, f64)> = points
        .iter()
        .enumerate()
        .map(|(i, p)| (i, sq_dist(p, query).sqrt()))
        .collect();
    all.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite").then(a.0.cmp(&b.0)));
    all.truncate(k);
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn build_rejects_bad_input() {
        assert!(KdTree::build(vec![]).is_none());
        assert!(KdTree::build(vec![vec![]]).is_none());
        assert!(KdTree::build(vec![vec![1.0], vec![1.0, 2.0]]).is_none());
    }

    #[test]
    fn single_point() {
        let t = KdTree::build(vec![vec![1.0, 2.0, 3.0]]).unwrap();
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
        assert_eq!(t.dim(), 3);
        let nn = t.nearest(&[0.0, 0.0, 0.0], 5);
        assert_eq!(nn.len(), 1);
        assert_eq!(nn[0].0, 0);
    }

    #[test]
    fn k_zero_returns_empty() {
        let t = KdTree::build(vec![vec![1.0]]).unwrap();
        assert!(t.nearest(&[0.0], 0).is_empty());
    }

    #[test]
    fn matches_brute_force_3d() {
        let mut rng = StdRng::seed_from_u64(0x3D);
        let points: Vec<Vec<f64>> = (0..500)
            .map(|_| (0..3).map(|_| rng.gen_range(-10.0..10.0)).collect())
            .collect();
        let tree = KdTree::build(points.clone()).unwrap();
        for _ in 0..50 {
            let q: Vec<f64> = (0..3).map(|_| rng.gen_range(-10.0..10.0)).collect();
            for k in [1, 3, 16] {
                let got = tree.nearest(&q, k);
                let want = brute_force_nearest(&points, &q, k);
                let got_d: Vec<f64> = got.iter().map(|g| g.1).collect();
                let want_d: Vec<f64> = want.iter().map(|w| w.1).collect();
                for (g, w) in got_d.iter().zip(&want_d) {
                    assert!((g - w).abs() < 1e-9, "k={k}: {got_d:?} vs {want_d:?}");
                }
            }
        }
    }

    #[test]
    fn matches_brute_force_high_dim() {
        // Even where the tree is slow it must stay exact.
        let mut rng = StdRng::seed_from_u64(0xD1E);
        let points: Vec<Vec<f64>> = (0..200)
            .map(|_| (0..12).map(|_| rng.gen_range(0.0..1.0)).collect())
            .collect();
        let tree = KdTree::build(points.clone()).unwrap();
        let q: Vec<f64> = (0..12).map(|_| rng.gen_range(0.0..1.0)).collect();
        let got = tree.nearest(&q, 5);
        let want = brute_force_nearest(&points, &q, 5);
        for (g, w) in got.iter().zip(&want) {
            assert!((g.1 - w.1).abs() < 1e-9);
        }
    }

    #[test]
    fn duplicate_points_all_returned() {
        let points = vec![vec![1.0, 1.0]; 4];
        let tree = KdTree::build(points).unwrap();
        let nn = tree.nearest(&[1.0, 1.0], 4);
        assert_eq!(nn.len(), 4);
        let mut idx: Vec<usize> = nn.iter().map(|n| n.0).collect();
        idx.sort_unstable();
        assert_eq!(idx, vec![0, 1, 2, 3]);
        assert!(nn.iter().all(|n| n.1 == 0.0));
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn wrong_query_dim_panics() {
        let t = KdTree::build(vec![vec![1.0, 2.0]]).unwrap();
        t.nearest(&[1.0], 1);
    }

    #[test]
    fn results_sorted_nearest_first() {
        let points = vec![vec![0.0], vec![5.0], vec![2.0], vec![8.0]];
        let tree = KdTree::build(points).unwrap();
        let nn = tree.nearest(&[1.0], 3);
        let dists: Vec<f64> = nn.iter().map(|n| n.1).collect();
        assert_eq!(dists, vec![1.0, 1.0, 4.0]);
    }
}
