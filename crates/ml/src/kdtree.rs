//! A flattened arena KD-tree for k-nearest-neighbour queries in low
//! dimensions.
//!
//! The paper's kNN feature space mixes 3 spatial coordinates with ~80
//! one-hot dimensions, where KD-trees degrade to brute force — so
//! [`crate::knn::KnnRegressor`] picks its backend by dimensionality, and the
//! `knn_backends` bench quantifies the crossover. This tree is exact: it
//! returns the same neighbours as brute force.
//!
//! # Layout
//!
//! Points live in one flat row-major `Vec<f64>` and nodes in one pre-order
//! `Vec` of 16-byte [`ArenaNode`]s addressed by `u32` index (no `Box`
//! pointer chasing): a node's near subtree is adjacent in memory, so a
//! descent touches a contiguous prefix of the arena. All distances go
//! through the shared [`aerorem_numerics::kernels::sq_euclidean`] kernel so
//! tree, brute-force, per-item, and batched paths agree bit-for-bit.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use aerorem_numerics::kernels::sq_euclidean;

/// Sentinel child index meaning "no child".
const NO_NODE: u32 = u32::MAX;

/// A (squared-distance, index) candidate in the bounded max-heap.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Candidate {
    dist2: f64,
    index: usize,
}

impl Eq for Candidate {}

impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> Ordering {
        self.dist2
            .partial_cmp(&other.dist2)
            .expect("distances are finite")
            .then_with(|| self.index.cmp(&other.index))
    }
}

/// One implicit-array tree node: a point index, a split axis, and two child
/// slots ([`NO_NODE`] when absent).
#[derive(Debug, Clone, Copy)]
struct ArenaNode {
    point: u32,
    axis: u32,
    left: u32,
    right: u32,
}

/// Reusable per-query search state for [`KdTree::nearest_into`], letting the
/// batched prediction path run thousands of queries without reallocating the
/// candidate heap.
#[derive(Debug, Default, Clone)]
pub struct NeighborScratch {
    heap: BinaryHeap<Candidate>,
}

/// An exact KD-tree over owned points in a flat arena.
///
/// # Examples
///
/// ```
/// use aerorem_ml::kdtree::KdTree;
///
/// let pts = vec![vec![0.0, 0.0], vec![1.0, 1.0], vec![2.0, 2.0]];
/// let tree = KdTree::build(pts).unwrap();
/// let nn = tree.nearest(&[0.9, 1.1], 1);
/// assert_eq!(nn[0].0, 1); // index of (1,1)
/// ```
#[derive(Debug, Clone)]
pub struct KdTree {
    /// Flat row-major point storage, `len() * dim` values, original order.
    data: Vec<f64>,
    nodes: Vec<ArenaNode>,
    root: u32,
    dim: usize,
}

impl KdTree {
    /// Builds a tree from points. Returns `None` for an empty set, ragged
    /// rows, or zero-dimensional points.
    pub fn build(points: Vec<Vec<f64>>) -> Option<Self> {
        let dim = points.first()?.len();
        if dim == 0 || points.iter().any(|p| p.len() != dim) {
            return None;
        }
        let mut data = Vec::with_capacity(points.len() * dim);
        for p in &points {
            data.extend_from_slice(p);
        }
        Self::build_flat(data, dim)
    }

    /// Builds a tree directly from flat row-major storage, which the tree
    /// then owns (the single copy of the training set for the kNN tree
    /// backend). Returns `None` for empty data, `dim == 0`, a length that is
    /// not a multiple of `dim`, or more than `u32::MAX - 1` points.
    pub fn build_flat(data: Vec<f64>, dim: usize) -> Option<Self> {
        if dim == 0 || data.is_empty() || !data.len().is_multiple_of(dim) {
            return None;
        }
        let n = data.len() / dim;
        if n >= NO_NODE as usize {
            return None;
        }
        let mut indices: Vec<usize> = (0..n).collect();
        let mut nodes = Vec::with_capacity(n);
        let root = build_arena(&data, dim, &mut indices, 0, &mut nodes);
        Some(KdTree {
            data,
            nodes,
            root,
            dim,
        })
    }

    /// Number of points in the tree.
    pub fn len(&self) -> usize {
        self.data.len() / self.dim
    }

    /// Whether the tree is empty (never true for built trees).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The point dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Zero-copy view of point `i` (original insertion order).
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn point(&self, i: usize) -> &[f64] {
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// The flat row-major point storage, in original insertion order.
    pub fn points_flat(&self) -> &[f64] {
        &self.data
    }

    /// Returns the `k` nearest points to `query` as `(index, distance)`
    /// pairs, nearest first. Fewer than `k` results when the tree is small.
    ///
    /// # Panics
    ///
    /// Panics if `query.len() != self.dim()`.
    pub fn nearest(&self, query: &[f64], k: usize) -> Vec<(usize, f64)> {
        let mut scratch = NeighborScratch::default();
        let mut out = Vec::new();
        self.nearest_into(query, k, &mut scratch, &mut out);
        out
    }

    /// Allocation-free variant of [`KdTree::nearest`]: the candidate heap
    /// lives in `scratch` and results replace the contents of `out`, so a
    /// batched caller reuses both across queries. Produces exactly the same
    /// results as [`KdTree::nearest`].
    ///
    /// # Panics
    ///
    /// Panics if `query.len() != self.dim()`.
    pub fn nearest_into(
        &self,
        query: &[f64],
        k: usize,
        scratch: &mut NeighborScratch,
        out: &mut Vec<(usize, f64)>,
    ) {
        assert_eq!(query.len(), self.dim, "query dimension mismatch");
        out.clear();
        if k == 0 {
            return;
        }
        scratch.heap.clear();
        self.search(self.root, query, k, &mut scratch.heap);
        out.extend(
            scratch
                .heap
                .drain()
                .map(|c| (c.index, c.dist2.sqrt())),
        );
        out.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite").then(a.0.cmp(&b.0)));
    }

    fn search(&self, node: u32, query: &[f64], k: usize, heap: &mut BinaryHeap<Candidate>) {
        if node == NO_NODE {
            return;
        }
        let n = self.nodes[node as usize];
        let point = n.point as usize;
        let p = self.point(point);
        let dist2 = sq_euclidean(p, query);
        if heap.len() < k {
            heap.push(Candidate { dist2, index: point });
        } else if let Some(worst) = heap.peek() {
            if dist2 < worst.dist2 {
                heap.pop();
                heap.push(Candidate { dist2, index: point });
            }
        }
        let axis = n.axis as usize;
        let delta = query[axis] - p[axis];
        let (near, far) = if delta < 0.0 {
            (n.left, n.right)
        } else {
            (n.right, n.left)
        };
        self.search(near, query, k, heap);
        // Prune the far side unless the splitting plane is within the
        // current worst distance.
        let worst = heap.peek().map_or(f64::INFINITY, |c| c.dist2);
        if heap.len() < k || delta * delta < worst {
            self.search(far, query, k, heap);
        }
    }
}

/// Recursive arena build: stable-sorts the index slice along the depth's
/// axis, takes the upper median as the node, and recurses. Identical
/// structure to the old pointer-based build (same stable sort, same median),
/// just stored pre-order in a flat `Vec`.
fn build_arena(
    data: &[f64],
    dim: usize,
    indices: &mut [usize],
    depth: usize,
    nodes: &mut Vec<ArenaNode>,
) -> u32 {
    if indices.is_empty() {
        return NO_NODE;
    }
    let axis = depth % dim;
    indices.sort_by(|&a, &b| {
        data[a * dim + axis]
            .partial_cmp(&data[b * dim + axis])
            .expect("finite coordinates")
    });
    let mid = indices.len() / 2;
    let point = indices[mid];
    let id = nodes.len();
    nodes.push(ArenaNode {
        point: point as u32,
        axis: axis as u32,
        left: NO_NODE,
        right: NO_NODE,
    });
    let (left_slice, rest) = indices.split_at_mut(mid);
    let left = build_arena(data, dim, left_slice, depth + 1, nodes);
    let right = build_arena(data, dim, &mut rest[1..], depth + 1, nodes);
    nodes[id].left = left;
    nodes[id].right = right;
    id as u32
}

/// Brute-force exact k-nearest-neighbour reference, used as the test oracle.
pub fn brute_force_nearest(points: &[Vec<f64>], query: &[f64], k: usize) -> Vec<(usize, f64)> {
    let mut all: Vec<(usize, f64)> = points
        .iter()
        .enumerate()
        .map(|(i, p)| (i, sq_euclidean(p, query).sqrt()))
        .collect();
    all.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite").then(a.0.cmp(&b.0)));
    all.truncate(k);
    all
}

/// Brute-force exact k-nearest-neighbour over flat row-major points: full
/// sort of all `(index, distance)` pairs by `(distance, index)`, truncated to
/// `k`. The per-item brute-force backend.
pub fn brute_force_nearest_flat(
    data: &[f64],
    dim: usize,
    query: &[f64],
    k: usize,
) -> Vec<(usize, f64)> {
    let mut all: Vec<(usize, f64)> = data
        .chunks_exact(dim)
        .enumerate()
        .map(|(i, p)| (i, sq_euclidean(p, query).sqrt()))
        .collect();
    all.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite").then(a.0.cmp(&b.0)));
    all.truncate(k);
    all
}

/// Allocation-free top-`k` selection over flat row-major points, replacing
/// the contents of `out` with the `k` nearest `(index, distance)` pairs,
/// nearest first. `cand` is a reusable scratch buffer.
///
/// Uses `select_nth_unstable_by` (O(n)) instead of a full sort, then sorts
/// only the `k`-prefix. Because `(distance, index)` is a total order, the set
/// of `k` smallest pairs is unique, so this returns **exactly** the same
/// pairs as [`brute_force_nearest_flat`] — the batched fast path is
/// bit-identical to the per-item reference.
pub fn brute_force_topk_into(
    data: &[f64],
    dim: usize,
    query: &[f64],
    k: usize,
    cand: &mut Vec<(usize, f64)>,
    out: &mut Vec<(usize, f64)>,
) {
    cand.clear();
    cand.extend(
        data.chunks_exact(dim)
            .enumerate()
            .map(|(i, p)| (i, sq_euclidean(p, query).sqrt())),
    );
    top_k_from_candidates(cand, k, out);
}

/// Shared tail of the top-`k` selection: partition `cand` so its first `k`
/// entries are the smallest under `(distance, index)`, then sort that prefix
/// into `out`.
pub(crate) fn top_k_from_candidates(
    cand: &mut [(usize, f64)],
    k: usize,
    out: &mut Vec<(usize, f64)>,
) {
    out.clear();
    let k = k.min(cand.len());
    if k == 0 {
        return;
    }
    let cmp = |a: &(usize, f64), b: &(usize, f64)| {
        a.1.partial_cmp(&b.1).expect("finite").then(a.0.cmp(&b.0))
    };
    if k < cand.len() {
        cand.select_nth_unstable_by(k - 1, cmp);
    }
    let head = &mut cand[..k];
    head.sort_by(cmp);
    out.extend_from_slice(head);
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn build_rejects_bad_input() {
        assert!(KdTree::build(vec![]).is_none());
        assert!(KdTree::build(vec![vec![]]).is_none());
        assert!(KdTree::build(vec![vec![1.0], vec![1.0, 2.0]]).is_none());
        assert!(KdTree::build_flat(vec![], 2).is_none());
        assert!(KdTree::build_flat(vec![1.0, 2.0, 3.0], 2).is_none());
        assert!(KdTree::build_flat(vec![1.0], 0).is_none());
    }

    #[test]
    fn single_point() {
        let t = KdTree::build(vec![vec![1.0, 2.0, 3.0]]).unwrap();
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
        assert_eq!(t.dim(), 3);
        assert_eq!(t.point(0), &[1.0, 2.0, 3.0]);
        let nn = t.nearest(&[0.0, 0.0, 0.0], 5);
        assert_eq!(nn.len(), 1);
        assert_eq!(nn[0].0, 0);
    }

    #[test]
    fn k_zero_returns_empty() {
        let t = KdTree::build(vec![vec![1.0]]).unwrap();
        assert!(t.nearest(&[0.0], 0).is_empty());
    }

    #[test]
    fn matches_brute_force_3d() {
        let mut rng = StdRng::seed_from_u64(0x3D);
        let points: Vec<Vec<f64>> = (0..500)
            .map(|_| (0..3).map(|_| rng.gen_range(-10.0..10.0)).collect())
            .collect();
        let tree = KdTree::build(points.clone()).unwrap();
        for _ in 0..50 {
            let q: Vec<f64> = (0..3).map(|_| rng.gen_range(-10.0..10.0)).collect();
            for k in [1, 3, 16] {
                let got = tree.nearest(&q, k);
                let want = brute_force_nearest(&points, &q, k);
                let got_d: Vec<f64> = got.iter().map(|g| g.1).collect();
                let want_d: Vec<f64> = want.iter().map(|w| w.1).collect();
                for (g, w) in got_d.iter().zip(&want_d) {
                    assert!((g - w).abs() < 1e-9, "k={k}: {got_d:?} vs {want_d:?}");
                }
            }
        }
    }

    #[test]
    fn arena_tree_identical_to_brute_force() {
        // Stronger than distance tolerance: the arena tree must return the
        // exact same (index, distance) pairs, bit for bit.
        let mut rng = StdRng::seed_from_u64(0xA7E4A);
        for dim in [1, 2, 3, 5, 8] {
            let points: Vec<Vec<f64>> = (0..300)
                .map(|_| (0..dim).map(|_| rng.gen_range(-10.0..10.0)).collect())
                .collect();
            let tree = KdTree::build(points.clone()).unwrap();
            for _ in 0..20 {
                let q: Vec<f64> = (0..dim).map(|_| rng.gen_range(-10.0..10.0)).collect();
                for k in [1, 4, 16, 300] {
                    assert_eq!(
                        tree.nearest(&q, k),
                        brute_force_nearest(&points, &q, k),
                        "dim={dim} k={k}"
                    );
                }
            }
        }
    }

    #[test]
    fn topk_select_identical_to_full_sort() {
        let mut rng = StdRng::seed_from_u64(0x0709);
        let dim = 5;
        let data: Vec<f64> = (0..250 * dim).map(|_| rng.gen_range(-4.0..4.0)).collect();
        let mut cand = Vec::new();
        let mut out = Vec::new();
        for _ in 0..30 {
            let q: Vec<f64> = (0..dim).map(|_| rng.gen_range(-4.0..4.0)).collect();
            for k in [0, 1, 7, 16, 249, 250, 400] {
                brute_force_topk_into(&data, dim, &q, k, &mut cand, &mut out);
                assert_eq!(out, brute_force_nearest_flat(&data, dim, &q, k), "k={k}");
            }
        }
    }

    #[test]
    fn nearest_into_reuses_buffers() {
        let t = KdTree::build(vec![vec![0.0], vec![5.0], vec![2.0]]).unwrap();
        let mut scratch = NeighborScratch::default();
        let mut out = Vec::new();
        t.nearest_into(&[4.9], 2, &mut scratch, &mut out);
        assert_eq!(out, t.nearest(&[4.9], 2));
        t.nearest_into(&[0.1], 1, &mut scratch, &mut out);
        assert_eq!(out, t.nearest(&[0.1], 1));
    }

    #[test]
    fn matches_brute_force_high_dim() {
        // Even where the tree is slow it must stay exact.
        let mut rng = StdRng::seed_from_u64(0xD1E);
        let points: Vec<Vec<f64>> = (0..200)
            .map(|_| (0..12).map(|_| rng.gen_range(0.0..1.0)).collect())
            .collect();
        let tree = KdTree::build(points.clone()).unwrap();
        let q: Vec<f64> = (0..12).map(|_| rng.gen_range(0.0..1.0)).collect();
        let got = tree.nearest(&q, 5);
        let want = brute_force_nearest(&points, &q, 5);
        for (g, w) in got.iter().zip(&want) {
            assert!((g.1 - w.1).abs() < 1e-9);
        }
    }

    #[test]
    fn duplicate_points_all_returned() {
        let points = vec![vec![1.0, 1.0]; 4];
        let tree = KdTree::build(points).unwrap();
        let nn = tree.nearest(&[1.0, 1.0], 4);
        assert_eq!(nn.len(), 4);
        let mut idx: Vec<usize> = nn.iter().map(|n| n.0).collect();
        idx.sort_unstable();
        assert_eq!(idx, vec![0, 1, 2, 3]);
        assert!(nn.iter().all(|n| n.1 == 0.0));
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn wrong_query_dim_panics() {
        let t = KdTree::build(vec![vec![1.0, 2.0]]).unwrap();
        t.nearest(&[1.0], 1);
    }

    #[test]
    fn results_sorted_nearest_first() {
        let points = vec![vec![0.0], vec![5.0], vec![2.0], vec![8.0]];
        let tree = KdTree::build(points).unwrap();
        let nn = tree.nearest(&[1.0], 3);
        let dists: Vec<f64> = nn.iter().map(|n| n.1).collect();
        assert_eq!(dists, vec![1.0, 1.0, 4.0]);
    }
}
