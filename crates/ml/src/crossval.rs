//! k-fold cross-validation.
//!
//! [`cross_validate_with`] evaluates folds under an [`ExecPolicy`]: the fold
//! assignment is drawn from the caller's RNG before any training starts, each
//! fold gathers its train/test rows through a borrowed
//! [`crate::dataset::DatasetView`] (one flat copy per fold, no nested-`Vec`
//! deep copies), and models train through [`Regressor::fit_batch`]. Fold
//! results are collected in fold order, so both policies return bit-identical
//! RMSE vectors.

use rand::seq::SliceRandom;
use rand::Rng;

use aerorem_numerics::exec::{self, ExecPolicy};
use aerorem_numerics::stats;

use crate::dataset::Dataset;
use crate::{MlError, Regressor};

/// Generates `k` folds of row indices after a seeded shuffle. Every row
/// appears in exactly one fold; fold sizes differ by at most one.
///
/// # Errors
///
/// Returns [`MlError::InvalidHyperparameter`] when `k < 2` or `k > n`.
pub fn kfold_indices<R: Rng>(n: usize, k: usize, rng: &mut R) -> Result<Vec<Vec<usize>>, MlError> {
    if k < 2 || k > n {
        return Err(MlError::InvalidHyperparameter {
            name: "k_folds",
            reason: "need 2 <= k <= n",
        });
    }
    let mut idx: Vec<usize> = (0..n).collect();
    idx.shuffle(rng);
    let mut folds = vec![Vec::new(); k];
    for (i, row) in idx.into_iter().enumerate() {
        folds[i % k].push(row);
    }
    Ok(folds)
}

/// Runs k-fold cross-validation of a regressor builder, returning the
/// per-fold RMSEs.
///
/// `make` is called once per fold so each fold trains a fresh model.
///
/// # Errors
///
/// Propagates fold-index and estimator errors.
///
/// # Examples
///
/// ```
/// use aerorem_ml::crossval::cross_validate;
/// use aerorem_ml::dataset::Dataset;
/// use aerorem_ml::knn::{KnnRegressor, Weighting};
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), aerorem_ml::MlError> {
/// let data = Dataset::new(
///     (0..20).map(|i| vec![i as f64]).collect(),
///     (0..20).map(|i| i as f64).collect(),
/// )?;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let rmses = cross_validate(&data, 4, &mut rng, || KnnRegressor::paper_tuned())?;
/// assert_eq!(rmses.len(), 4);
/// # Ok(())
/// # }
/// ```
pub fn cross_validate<M, F, R>(
    data: &Dataset,
    k: usize,
    rng: &mut R,
    make: F,
) -> Result<Vec<f64>, MlError>
where
    M: Regressor,
    F: Fn() -> M + Sync,
    R: Rng,
{
    cross_validate_with(data, k, rng, make, ExecPolicy::default())
}

/// [`cross_validate`] with an explicit [`ExecPolicy`].
///
/// Folds are independent once the seeded fold assignment is fixed, so they
/// can run concurrently; results come back in fold order either way, and
/// every fold trains on the exact rows (in the exact order) the serial loop
/// would use — the returned RMSEs are bit-identical across policies.
///
/// # Errors
///
/// Propagates fold-index and estimator errors; with several failing folds
/// the error for the lowest fold index is returned.
pub fn cross_validate_with<M, F, R>(
    data: &Dataset,
    k: usize,
    rng: &mut R,
    make: F,
    policy: ExecPolicy,
) -> Result<Vec<f64>, MlError>
where
    M: Regressor,
    F: Fn() -> M + Sync,
    R: Rng,
{
    let folds = kfold_indices(data.len(), k, rng)?;
    let folds = &folds;
    let make = &make;
    // One fold = one chunk: each fold's fit dwarfs the chunk bookkeeping.
    let pool = exec::ScratchPool::new(|| ());
    let fold_ids: Vec<usize> = (0..k).collect();
    exec::try_map_vec_with(
        policy,
        exec::Granularity::per_item(),
        &pool,
        &fold_ids,
        |(), &held_out| {
            let test = data.view(folds[held_out].clone());
            let train_idx: Vec<usize> = folds
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != held_out)
                .flat_map(|(_, f)| f.iter().copied())
                .collect();
            let (train_x, train_y) = data.view(train_idx).to_matrix();
            let (test_x, test_y) = test.to_matrix();
            let mut model = make();
            model.fit_batch(&train_x, &train_y)?;
            let preds = model.predict_batch(&test_x)?;
            Ok(stats::rmse(&preds, &test_y))
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::GlobalMean;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn folds_partition_rows() {
        let mut rng = StdRng::seed_from_u64(1);
        let folds = kfold_indices(23, 5, &mut rng).unwrap();
        assert_eq!(folds.len(), 5);
        let mut all: Vec<usize> = folds.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..23).collect::<Vec<_>>());
        // Balanced within one.
        let sizes: Vec<usize> = folds.iter().map(Vec::len).collect();
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
    }

    #[test]
    fn fold_validation() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(kfold_indices(10, 1, &mut rng).is_err());
        assert!(kfold_indices(3, 4, &mut rng).is_err());
        assert!(kfold_indices(4, 4, &mut rng).is_ok());
    }

    #[test]
    fn cv_on_constant_targets_is_zero_error() {
        let data = Dataset::new((0..12).map(|i| vec![i as f64]).collect(), vec![5.0; 12]).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let rmses = cross_validate(&data, 3, &mut rng, GlobalMean::new).unwrap();
        for r in rmses {
            assert!(r < 1e-12);
        }
    }

    #[test]
    fn cv_policies_agree_bit_for_bit() {
        let data = Dataset::new(
            (0..40).map(|i| vec![i as f64, (i % 5) as f64]).collect(),
            (0..40).map(|i| -60.0 - (i % 9) as f64 * 1.3).collect(),
        )
        .unwrap();
        let make = crate::knn::KnnRegressor::paper_tuned;
        let serial = cross_validate_with(
            &data,
            4,
            &mut StdRng::seed_from_u64(11),
            make,
            ExecPolicy::Serial,
        )
        .unwrap();
        let parallel = cross_validate_with(
            &data,
            4,
            &mut StdRng::seed_from_u64(11),
            make,
            ExecPolicy::Parallel,
        )
        .unwrap();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn cv_is_seeded() {
        let data = Dataset::new(
            (0..30).map(|i| vec![i as f64]).collect(),
            (0..30).map(|i| (i % 7) as f64).collect(),
        )
        .unwrap();
        let a = cross_validate(&data, 5, &mut StdRng::seed_from_u64(4), GlobalMean::new).unwrap();
        let b = cross_validate(&data, 5, &mut StdRng::seed_from_u64(4), GlobalMean::new).unwrap();
        assert_eq!(a, b);
    }
}
