//! Feature preprocessing: one-hot encoding and standardization.
//!
//! §III-B: "MAC and channel features were considered as categorical and
//! one-hot encoded", after dropping MACs with fewer than 16 samples. The
//! paper-specific sample filtering lives in `aerorem-core`; the reusable
//! encoders live here.

use std::collections::BTreeMap;

use crate::MlError;

/// A one-hot encoder over arbitrary ordered keys.
///
/// Categories are assigned columns in sorted order so the encoding is
/// independent of input order (reproducible feature layouts).
///
/// # Examples
///
/// ```
/// use aerorem_ml::preprocess::OneHotEncoder;
///
/// let enc = OneHotEncoder::fit(["b", "a", "b", "c"]);
/// assert_eq!(enc.width(), 3);
/// assert_eq!(enc.encode(&"a"), Some(vec![1.0, 0.0, 0.0]));
/// assert_eq!(enc.encode(&"zz"), None);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OneHotEncoder<K: Ord> {
    columns: BTreeMap<K, usize>,
}

impl<K: Ord + Clone> OneHotEncoder<K> {
    /// Learns the category set from an iterator of keys.
    pub fn fit<I: IntoIterator<Item = K>>(keys: I) -> Self {
        let unique: std::collections::BTreeSet<K> = keys.into_iter().collect();
        let columns = unique
            .into_iter()
            .enumerate()
            .map(|(i, k)| (k, i))
            .collect();
        OneHotEncoder { columns }
    }

    /// Number of one-hot columns.
    pub fn width(&self) -> usize {
        self.columns.len()
    }

    /// Column index of a category, if known.
    pub fn column(&self, key: &K) -> Option<usize> {
        self.columns.get(key).copied()
    }

    /// Encodes one key as a one-hot vector, or `None` for unknown keys.
    pub fn encode(&self, key: &K) -> Option<Vec<f64>> {
        let col = self.column(key)?;
        let mut v = vec![0.0; self.width()];
        v[col] = 1.0;
        Some(v)
    }

    /// Appends the one-hot encoding of `key` onto `out` without allocating.
    ///
    /// Always appends exactly [`OneHotEncoder::width`] values: a one-hot
    /// row for known keys, all zeros for unknown ones — so batched rows
    /// built via `push_row_with` stay aligned no matter what arrives at
    /// inference time. The return value says which case occurred.
    pub fn encode_into(&self, key: &K, out: &mut Vec<f64>) -> CategoryEncoding {
        let start = out.len();
        out.resize(start + self.width(), 0.0);
        match self.column(key) {
            Some(col) => {
                out[start + col] = 1.0;
                CategoryEncoding::Known
            }
            None => CategoryEncoding::Unknown,
        }
    }

    /// The known categories in column order.
    pub fn categories(&self) -> Vec<&K> {
        let mut pairs: Vec<(&K, usize)> = self.columns.iter().map(|(k, &c)| (k, c)).collect();
        pairs.sort_by_key(|&(_, c)| c);
        pairs.into_iter().map(|(k, _)| k).collect()
    }
}

/// Whether [`OneHotEncoder::encode_into`] saw a fitted category or
/// zero-filled an unknown one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[must_use = "unknown categories are zero-filled; callers deciding admission must check"]
pub enum CategoryEncoding {
    /// The key was seen at fit time; one column is hot.
    Known,
    /// The key was never fitted; the full width was zero-filled.
    Unknown,
}

impl CategoryEncoding {
    /// True for [`CategoryEncoding::Known`].
    pub fn is_known(self) -> bool {
        matches!(self, CategoryEncoding::Known)
    }
}

/// Z-score standardizer fitted per feature column.
#[derive(Debug, Clone, PartialEq)]
pub struct StandardScaler {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl StandardScaler {
    /// Fits means and standard deviations per column.
    ///
    /// Constant columns get a std of 1 (they become all-zero after
    /// transform rather than NaN).
    ///
    /// # Errors
    ///
    /// Returns [`MlError::EmptyTrainingSet`] for no rows and
    /// [`MlError::DimensionMismatch`] for ragged rows.
    pub fn fit(x: &[Vec<f64>]) -> Result<Self, MlError> {
        if x.is_empty() {
            return Err(MlError::EmptyTrainingSet);
        }
        let dim = x[0].len();
        if x.iter().any(|r| r.len() != dim) {
            return Err(MlError::DimensionMismatch {
                expected: dim,
                found: x.iter().find(|r| r.len() != dim).map_or(0, |r| r.len()),
            });
        }
        let n = x.len() as f64;
        let mut means = vec![0.0; dim];
        for row in x {
            for (m, v) in means.iter_mut().zip(row) {
                *m += v;
            }
        }
        for m in &mut means {
            *m /= n;
        }
        let mut stds = vec![0.0; dim];
        for row in x {
            for ((s, v), m) in stds.iter_mut().zip(row).zip(&means) {
                *s += (v - m) * (v - m);
            }
        }
        for s in &mut stds {
            *s = (*s / n).sqrt();
            if *s < 1e-12 {
                *s = 1.0;
            }
        }
        Ok(StandardScaler { means, stds })
    }

    /// Transforms one row in place.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::DimensionMismatch`] for a wrong-width row.
    pub fn transform_row(&self, row: &mut [f64]) -> Result<(), MlError> {
        if row.len() != self.means.len() {
            return Err(MlError::DimensionMismatch {
                expected: self.means.len(),
                found: row.len(),
            });
        }
        for ((v, m), s) in row.iter_mut().zip(&self.means).zip(&self.stds) {
            *v = (*v - m) / s;
        }
        Ok(())
    }

    /// Transforms a whole matrix, returning a new one.
    ///
    /// With the `parallel` feature, large matrices are transformed across
    /// worker threads; rows are independent and reassembled in input order,
    /// so the output is bit-identical to the serial path.
    ///
    /// # Errors
    ///
    /// Propagates the first row error.
    pub fn transform(&self, x: &[Vec<f64>]) -> Result<Vec<Vec<f64>>, MlError> {
        #[cfg(feature = "parallel")]
        if x.len() >= 1024 {
            use rayon::prelude::*;
            return x
                .par_iter()
                .map(|r| {
                    let mut row = r.clone();
                    self.transform_row(&mut row)?;
                    Ok(row)
                })
                .collect();
        }
        x.iter()
            .map(|r| {
                let mut row = r.clone();
                self.transform_row(&mut row)?;
                Ok(row)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_hot_sorted_stable_columns() {
        let enc = OneHotEncoder::fit(["x", "a", "m", "a"]);
        assert_eq!(enc.width(), 3);
        assert_eq!(enc.column(&"a"), Some(0));
        assert_eq!(enc.column(&"m"), Some(1));
        assert_eq!(enc.column(&"x"), Some(2));
        assert_eq!(enc.categories(), vec![&"a", &"m", &"x"]);
        // Order of fit input does not matter.
        let enc2 = OneHotEncoder::fit(["m", "x", "a"]);
        assert_eq!(enc, enc2);
    }

    #[test]
    fn one_hot_encoding_vectors() {
        let enc = OneHotEncoder::fit([2u32, 5, 9]);
        assert_eq!(enc.encode(&5), Some(vec![0.0, 1.0, 0.0]));
        assert_eq!(enc.encode(&7), None);
    }

    #[test]
    fn encode_into_known_key_appends_one_hot() {
        let enc = OneHotEncoder::fit([2u32, 5, 9]);
        let mut out = vec![-1.0];
        assert!(enc.encode_into(&9, &mut out).is_known());
        assert_eq!(out, vec![-1.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn encode_into_unknown_key_zero_fills_full_width() {
        // An unknown key must not leave the row short/misaligned: it
        // appends width() zeros (the all-zero category) and says so.
        let enc = OneHotEncoder::fit([2u32, 5, 9]);
        let mut out = vec![7.0];
        let signal = enc.encode_into(&1234, &mut out);
        assert_eq!(signal, CategoryEncoding::Unknown);
        assert!(!signal.is_known());
        assert_eq!(out, vec![7.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn scaler_zero_mean_unit_std() {
        let x = vec![vec![1.0, 10.0], vec![3.0, 10.0], vec![5.0, 10.0]];
        let sc = StandardScaler::fit(&x).unwrap();
        let t = sc.transform(&x).unwrap();
        let mean0: f64 = t.iter().map(|r| r[0]).sum::<f64>() / 3.0;
        assert!(mean0.abs() < 1e-12);
        let var0: f64 = t.iter().map(|r| r[0] * r[0]).sum::<f64>() / 3.0;
        assert!((var0 - 1.0).abs() < 1e-12);
        // Constant column maps to zeros, not NaN.
        assert!(t.iter().all(|r| r[1] == 0.0));
    }

    #[test]
    fn scaler_validation() {
        assert!(StandardScaler::fit(&[]).is_err());
        assert!(StandardScaler::fit(&[vec![1.0], vec![1.0, 2.0]]).is_err());
        let sc = StandardScaler::fit(&[vec![1.0, 2.0]]).unwrap();
        let mut bad = vec![1.0];
        assert!(sc.transform_row(&mut bad).is_err());
    }
}
