//! A small multi-layer perceptron with SGD/Adam, from scratch.
//!
//! §III-B's "optimized neural network had an input layer for the x, y, z
//! coordinates and the one-hot encoded MAC addresses, sigmoid activation
//! function, hidden layer with 16 fully connected nodes, linear activation
//! function, output layer with a single node for the prediction, and Adam
//! optimizer", trained on normalized RSS values. [`Mlp::paper_tuned`] is
//! exactly that network.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use aerorem_numerics::dist;
use aerorem_numerics::kernels::matmul_ikj_into;

use crate::{validate_matrix_y, validate_xy, FeatureMatrix, MlError, Regressor};

/// Neuron activation function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Activation {
    /// Logistic sigmoid.
    Sigmoid,
    /// Rectified linear unit.
    Relu,
    /// Hyperbolic tangent.
    Tanh,
    /// Identity (linear output layer).
    Identity,
}

impl Activation {
    fn apply(self, x: f64) -> f64 {
        match self {
            Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            Activation::Relu => x.max(0.0),
            Activation::Tanh => x.tanh(),
            Activation::Identity => x,
        }
    }

    /// Derivative expressed in terms of the *activated* output `a`.
    fn derivative_from_output(self, a: f64) -> f64 {
        match self {
            Activation::Sigmoid => a * (1.0 - a),
            Activation::Relu => {
                if a > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Tanh => 1.0 - a * a,
            Activation::Identity => 1.0,
        }
    }
}

/// Gradient-descent flavour.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Optimizer {
    /// Plain stochastic gradient descent.
    Sgd {
        /// Learning rate.
        lr: f64,
    },
    /// Adam (Kingma & Ba) — the paper's choice.
    Adam {
        /// Learning rate.
        lr: f64,
        /// First-moment decay.
        beta1: f64,
        /// Second-moment decay.
        beta2: f64,
        /// Division-by-zero guard.
        eps: f64,
    },
}

impl Optimizer {
    /// Adam with the canonical defaults and the given learning rate.
    pub fn adam(lr: f64) -> Self {
        Optimizer::Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
        }
    }
}

/// Training hyperparameters.
#[derive(Debug, Clone, PartialEq)]
pub struct MlpConfig {
    /// Hidden layers as `(width, activation)` pairs.
    pub hidden: Vec<(usize, Activation)>,
    /// Output activation (the paper uses a linear output).
    pub output_activation: Activation,
    /// Optimizer.
    pub optimizer: Optimizer,
    /// Full passes over the training data.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Weight-init and shuffle seed.
    pub seed: u64,
    /// Z-score the targets before training (the paper normalizes RSS).
    pub normalize_targets: bool,
}

impl MlpConfig {
    /// The paper's tuned network: 16 sigmoid hidden nodes, linear output,
    /// Adam.
    pub fn paper_tuned() -> Self {
        MlpConfig {
            hidden: vec![(16, Activation::Sigmoid)],
            output_activation: Activation::Identity,
            optimizer: Optimizer::adam(0.01),
            epochs: 300,
            batch_size: 32,
            seed: 0x2206,
            normalize_targets: true,
        }
    }
}

impl Default for MlpConfig {
    fn default() -> Self {
        Self::paper_tuned()
    }
}

#[derive(Debug, Clone)]
struct Layer {
    /// Row-major weights: `w[out][in]`.
    w: Vec<Vec<f64>>,
    b: Vec<f64>,
    activation: Activation,
    // Adam state.
    mw: Vec<Vec<f64>>,
    vw: Vec<Vec<f64>>,
    mb: Vec<f64>,
    vb: Vec<f64>,
}

impl Layer {
    fn new(inputs: usize, outputs: usize, activation: Activation, rng: &mut StdRng) -> Self {
        // Xavier/Glorot initialization.
        let scale = (2.0 / (inputs + outputs) as f64).sqrt();
        let w: Vec<Vec<f64>> = (0..outputs)
            .map(|_| (0..inputs).map(|_| dist::normal(rng, 0.0, scale)).collect())
            .collect();
        Layer {
            mw: vec![vec![0.0; inputs]; outputs],
            vw: vec![vec![0.0; inputs]; outputs],
            mb: vec![0.0; outputs],
            vb: vec![0.0; outputs],
            b: vec![0.0; outputs],
            w,
            activation,
        }
    }

    /// Per-sample forward pass into a reusable buffer. This accumulation
    /// order (`w * x` summed in ascending input index, then `+ b`, then the
    /// activation) is the reference the batched forward must reproduce
    /// bit-for-bit.
    fn forward_into(&self, input: &[f64], out: &mut Vec<f64>) {
        out.clear();
        out.extend(self.w.iter().zip(&self.b).map(|(row, b)| {
            let z: f64 = row.iter().zip(input).map(|(w, x)| w * x).sum::<f64>() + b;
            self.activation.apply(z)
        }));
    }

    /// Matrix-level forward pass over `n` rows of flat row-major `input`
    /// (`n × in_w`), writing `n × out_w` activations to `out`. The weight
    /// matrix is transposed once per call into `wt` so the cache-blocked
    /// i-k-j kernel streams contiguously; since every `out[i][j]` is
    /// accumulated in ascending `k` from `0.0` — the same order as
    /// [`Layer::forward_into`]'s dot product, with IEEE multiplication
    /// commuting `x * w` — the batch is bit-identical to per-sample forward.
    fn forward_batch_into(
        &self,
        input: &[f64],
        n: usize,
        in_w: usize,
        wt: &mut Vec<f64>,
        out: &mut Vec<f64>,
    ) {
        let out_w = self.b.len();
        wt.clear();
        wt.resize(in_w * out_w, 0.0);
        for (o, row) in self.w.iter().enumerate() {
            for (k, &w) in row.iter().enumerate() {
                wt[k * out_w + o] = w;
            }
        }
        out.clear();
        out.resize(n * out_w, 0.0);
        matmul_ikj_into(input, n, in_w, wt, out_w, out);
        for row in out.chunks_exact_mut(out_w) {
            for (v, &b) in row.iter_mut().zip(&self.b) {
                *v = self.activation.apply(*v + b);
            }
        }
    }
}

/// Reusable training buffers: per-layer activations, backprop deltas, and
/// gradient accumulators. Allocated once per `fit` so the epoch inner loop
/// performs no heap allocation at all.
#[derive(Debug, Clone)]
struct TrainScratch {
    /// `acts[0]` is the input copy; `acts[i + 1]` is layer `i`'s output.
    acts: Vec<Vec<f64>>,
    delta: Vec<f64>,
    next_delta: Vec<f64>,
    grad_w: Vec<Vec<Vec<f64>>>,
    grad_b: Vec<Vec<f64>>,
}

impl TrainScratch {
    fn new(layers: &[Layer], dim: usize) -> Self {
        let mut acts = Vec::with_capacity(layers.len() + 1);
        acts.push(vec![0.0; dim]);
        for l in layers {
            acts.push(vec![0.0; l.b.len()]);
        }
        TrainScratch {
            acts,
            delta: Vec::new(),
            next_delta: Vec::new(),
            grad_w: layers
                .iter()
                .map(|l| vec![vec![0.0; l.w[0].len()]; l.w.len()])
                .collect(),
            grad_b: layers.iter().map(|l| vec![0.0; l.b.len()]).collect(),
        }
    }

    fn zero_grads(&mut self) {
        for gw in &mut self.grad_w {
            for row in gw {
                row.fill(0.0);
            }
        }
        for gb in &mut self.grad_b {
            gb.fill(0.0);
        }
    }
}

/// The MLP regressor.
///
/// # Examples
///
/// ```
/// use aerorem_ml::mlp::{Mlp, MlpConfig};
/// use aerorem_ml::Regressor;
///
/// # fn main() -> Result<(), aerorem_ml::MlError> {
/// // Learn y = 2x on a toy set.
/// let x: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64 / 50.0]).collect();
/// let y: Vec<f64> = x.iter().map(|r| 2.0 * r[0]).collect();
/// let mut net = Mlp::new(MlpConfig::paper_tuned());
/// net.fit(&x, &y)?;
/// let p = net.predict_one(&[0.5])?;
/// assert!((p - 1.0).abs() < 0.2, "got {p}");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Mlp {
    config: MlpConfig,
    layers: Vec<Layer>,
    dim: Option<usize>,
    target_mean: f64,
    target_std: f64,
    adam_t: u64,
}

impl Mlp {
    /// Creates an unfitted network.
    pub fn new(config: MlpConfig) -> Self {
        Mlp {
            config,
            layers: Vec::new(),
            dim: None,
            target_mean: 0.0,
            target_std: 1.0,
            adam_t: 0,
        }
    }

    /// The paper's tuned architecture.
    pub fn paper_tuned() -> Self {
        Self::new(MlpConfig::paper_tuned())
    }

    /// Mean squared error over a dataset in the *normalized* target space —
    /// exposed for convergence tests.
    ///
    /// # Errors
    ///
    /// Propagates prediction errors.
    pub fn mse(&self, x: &[Vec<f64>], y: &[f64]) -> Result<f64, MlError> {
        let preds = self.predict(x)?;
        Ok(preds
            .iter()
            .zip(y)
            .map(|(p, t)| (p - t) * (p - t))
            .sum::<f64>()
            / y.len() as f64)
    }

    fn forward_all(&self, input: &[f64]) -> Vec<Vec<f64>> {
        let mut acts = Vec::with_capacity(self.layers.len() + 1);
        acts.push(input.to_vec());
        for layer in &self.layers {
            let mut next = Vec::new();
            layer.forward_into(acts.last().expect("non-empty"), &mut next);
            acts.push(next);
        }
        acts
    }

    /// One gradient step on the mini-batch given by `chunk` (indices into
    /// the flat row-major `x`/`targets`). Returns the batch loss. All
    /// buffers live in `s`, so the inner training loop allocates nothing.
    fn train_batch(
        &mut self,
        x: &[f64],
        dim: usize,
        targets: &[f64],
        chunk: &[usize],
        s: &mut TrainScratch,
    ) -> f64 {
        let n = chunk.len() as f64;
        s.zero_grads();
        let mut loss = 0.0;
        for &idx in chunk {
            s.acts[0].copy_from_slice(&x[idx * dim..(idx + 1) * dim]);
            for (li, layer) in self.layers.iter().enumerate() {
                let (prev, rest) = s.acts.split_at_mut(li + 1);
                layer.forward_into(&prev[li], &mut rest[0]);
            }
            let out = s.acts.last().expect("output layer")[0];
            let err = out - targets[idx];
            loss += err * err;
            // Backprop: delta at output.
            s.delta.clear();
            s.delta
                .push(err * self.config.output_activation.derivative_from_output(out));
            for li in (0..self.layers.len()).rev() {
                let input = &s.acts[li];
                for (o, &d) in s.delta.iter().enumerate() {
                    for (gw, &a) in s.grad_w[li][o].iter_mut().zip(input) {
                        *gw += d * a;
                    }
                    s.grad_b[li][o] += d;
                }
                if li > 0 {
                    let layer = &self.layers[li];
                    let below = &s.acts[li]; // activated output of layer li-1
                    s.next_delta.clear();
                    s.next_delta.resize(below.len(), 0.0);
                    for (o, &d) in s.delta.iter().enumerate() {
                        for (nd, &w) in s.next_delta.iter_mut().zip(&layer.w[o]) {
                            *nd += d * w;
                        }
                    }
                    let act_below = self.layers[li - 1].activation;
                    for (nd, &a) in s.next_delta.iter_mut().zip(below) {
                        *nd *= act_below.derivative_from_output(a);
                    }
                    std::mem::swap(&mut s.delta, &mut s.next_delta);
                }
            }
        }
        // Apply the optimizer.
        self.adam_t += 1;
        let t = self.adam_t as f64;
        for (li, layer) in self.layers.iter_mut().enumerate() {
            for o in 0..layer.w.len() {
                for (i, gw) in s.grad_w[li][o].iter().enumerate() {
                    let g = gw / n;
                    layer.w[o][i] -= step(
                        self.config.optimizer,
                        g,
                        &mut layer.mw[o][i],
                        &mut layer.vw[o][i],
                        t,
                    );
                }
                let g = s.grad_b[li][o] / n;
                layer.b[o] -= step(
                    self.config.optimizer,
                    g,
                    &mut layer.mb[o],
                    &mut layer.vb[o],
                    t,
                );
            }
        }
        loss / n
    }
}

/// Computes the parameter update for one scalar gradient.
fn step(opt: Optimizer, g: f64, m: &mut f64, v: &mut f64, t: f64) -> f64 {
    match opt {
        Optimizer::Sgd { lr } => lr * g,
        Optimizer::Adam {
            lr,
            beta1,
            beta2,
            eps,
        } => {
            *m = beta1 * *m + (1.0 - beta1) * g;
            *v = beta2 * *v + (1.0 - beta2) * g * g;
            let m_hat = *m / (1.0 - beta1.powf(t));
            let v_hat = *v / (1.0 - beta2.powf(t));
            lr * m_hat / (v_hat.sqrt() + eps)
        }
    }
}

impl Mlp {
    /// Shared training core over flat row-major features: both `fit` (after
    /// one flatten) and `fit_batch` (zero-copy) run this exact code, so the
    /// two leave bit-identical network weights.
    fn fit_flat(&mut self, x: &[f64], n_rows: usize, dim: usize, y: &[f64]) -> Result<(), MlError> {
        if self.config.batch_size == 0 {
            return Err(MlError::InvalidHyperparameter {
                name: "batch_size",
                reason: "must be at least 1",
            });
        }
        if self.config.hidden.iter().any(|(w, _)| *w == 0) {
            return Err(MlError::InvalidHyperparameter {
                name: "hidden",
                reason: "layer widths must be positive",
            });
        }
        let mut rng = StdRng::seed_from_u64(self.config.seed);

        // Target normalization (the paper normalizes RSS values).
        if self.config.normalize_targets {
            let mean = y.iter().sum::<f64>() / y.len() as f64;
            let var = y.iter().map(|t| (t - mean).powi(2)).sum::<f64>() / y.len() as f64;
            self.target_mean = mean;
            self.target_std = var.sqrt().max(1e-9);
        } else {
            self.target_mean = 0.0;
            self.target_std = 1.0;
        }
        let targets: Vec<f64> = y
            .iter()
            .map(|t| (t - self.target_mean) / self.target_std)
            .collect();

        // Build layers.
        self.layers.clear();
        self.adam_t = 0;
        let mut prev = dim;
        for &(width, act) in &self.config.hidden {
            self.layers.push(Layer::new(prev, width, act, &mut rng));
            prev = width;
        }
        self.layers
            .push(Layer::new(prev, 1, self.config.output_activation, &mut rng));
        self.dim = Some(dim);

        // Mini-batch training. All per-sample and per-batch buffers are
        // allocated once here and reused for every epoch.
        let mut scratch = TrainScratch::new(&self.layers, dim);
        let mut order: Vec<usize> = (0..n_rows).collect();
        for _epoch in 0..self.config.epochs {
            order.shuffle(&mut rng);
            for chunk in order.chunks(self.config.batch_size) {
                let loss = self.train_batch(x, dim, &targets, chunk, &mut scratch);
                if !loss.is_finite() {
                    return Err(MlError::Numerical("training loss diverged".into()));
                }
            }
        }
        Ok(())
    }
}

impl Regressor for Mlp {
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) -> Result<(), MlError> {
        let dim = validate_xy(x, y)?;
        let mut flat = Vec::with_capacity(x.len() * dim);
        for row in x {
            flat.extend_from_slice(row);
        }
        self.fit_flat(&flat, x.len(), dim, y)
    }

    fn fit_batch(&mut self, xs: &FeatureMatrix, y: &[f64]) -> Result<(), MlError> {
        let dim = validate_matrix_y(xs, y)?;
        self.fit_flat(xs.as_slice(), xs.rows(), dim, y)
    }

    fn predict_one(&self, x: &[f64]) -> Result<f64, MlError> {
        let dim = self.dim.ok_or(MlError::NotFitted)?;
        if x.len() != dim {
            return Err(MlError::DimensionMismatch {
                expected: dim,
                found: x.len(),
            });
        }
        let out = self.forward_all(x).last().expect("output layer")[0];
        Ok(out * self.target_std + self.target_mean)
    }

    fn predict_batch(&self, xs: &FeatureMatrix) -> Result<Vec<f64>, MlError> {
        let dim = self.dim.ok_or(MlError::NotFitted)?;
        if xs.dim() != dim {
            return Err(MlError::DimensionMismatch {
                expected: dim,
                found: xs.dim(),
            });
        }
        let n = xs.rows();
        if n == 0 {
            return Ok(Vec::new());
        }
        // Whole-batch forward: one cache-blocked matmul per layer, two
        // ping-pong activation buffers, one transposed-weight scratch — no
        // per-sample allocation.
        let (first, rest) = self.layers.split_first().expect("fitted net has layers");
        let mut wt = Vec::new();
        let mut cur = Vec::new();
        let mut next = Vec::new();
        first.forward_batch_into(xs.as_slice(), n, dim, &mut wt, &mut cur);
        let mut in_w = first.b.len();
        for layer in rest {
            layer.forward_batch_into(&cur, n, in_w, &mut wt, &mut next);
            std::mem::swap(&mut cur, &mut next);
            in_w = layer.b.len();
        }
        debug_assert_eq!(in_w, 1, "output layer has a single node");
        Ok(cur
            .iter()
            .map(|&o| o * self.target_std + self.target_mean)
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_linear_function() {
        let x: Vec<Vec<f64>> = (0..80).map(|i| vec![i as f64 / 80.0]).collect();
        let y: Vec<f64> = x.iter().map(|r| 3.0 * r[0] - 1.0).collect();
        let mut net = Mlp::paper_tuned();
        net.fit(&x, &y).unwrap();
        for q in [0.1, 0.5, 0.9] {
            let p = net.predict_one(&[q]).unwrap();
            assert!((p - (3.0 * q - 1.0)).abs() < 0.25, "at {q}: {p}");
        }
    }

    #[test]
    fn learns_nonlinear_function() {
        // A sigmoid hidden layer can fit a smooth bump.
        let x: Vec<Vec<f64>> = (0..120)
            .map(|i| vec![i as f64 / 120.0 * 4.0 - 2.0])
            .collect();
        let y: Vec<f64> = x.iter().map(|r| (-r[0] * r[0]).exp()).collect();
        let mut net = Mlp::new(MlpConfig {
            epochs: 800,
            ..MlpConfig::paper_tuned()
        });
        net.fit(&x, &y).unwrap();
        let mse = net.mse(&x, &y).unwrap();
        assert!(mse < 0.01, "mse {mse}");
    }

    #[test]
    fn adam_beats_sgd_on_budget() {
        let x: Vec<Vec<f64>> = (0..100)
            .map(|i| vec![(i % 10) as f64 / 10.0, (i / 10) as f64 / 10.0])
            .collect();
        let y: Vec<f64> = x.iter().map(|r| r[0] * 2.0 + r[1]).collect();
        let budget = 60;
        let mut adam = Mlp::new(MlpConfig {
            epochs: budget,
            ..MlpConfig::paper_tuned()
        });
        adam.fit(&x, &y).unwrap();
        let mut sgd = Mlp::new(MlpConfig {
            epochs: budget,
            optimizer: Optimizer::Sgd { lr: 0.01 },
            ..MlpConfig::paper_tuned()
        });
        sgd.fit(&x, &y).unwrap();
        let mse_adam = adam.mse(&x, &y).unwrap();
        let mse_sgd = sgd.mse(&x, &y).unwrap();
        assert!(
            mse_adam < mse_sgd,
            "adam {mse_adam} should beat sgd {mse_sgd} on a short budget"
        );
    }

    #[test]
    fn training_is_seeded() {
        let x: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..30).map(|i| i as f64).collect();
        let mut a = Mlp::new(MlpConfig {
            epochs: 20,
            ..MlpConfig::paper_tuned()
        });
        let mut b = Mlp::new(MlpConfig {
            epochs: 20,
            ..MlpConfig::paper_tuned()
        });
        a.fit(&x, &y).unwrap();
        b.fit(&x, &y).unwrap();
        assert_eq!(
            a.predict_one(&[3.3]).unwrap(),
            b.predict_one(&[3.3]).unwrap()
        );
    }

    #[test]
    fn normalization_recovers_dbm_scale() {
        // Targets around −73 dBm: without normalization a sigmoid net
        // struggles; with it, predictions land in the right range.
        let x: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64 / 50.0]).collect();
        let y: Vec<f64> = x.iter().map(|r| -80.0 + 10.0 * r[0]).collect();
        let mut net = Mlp::paper_tuned();
        net.fit(&x, &y).unwrap();
        let p = net.predict_one(&[0.5]).unwrap();
        assert!((p - -75.0).abs() < 1.5, "got {p}");
    }

    #[test]
    fn lifecycle_and_validation() {
        let net = Mlp::paper_tuned();
        assert_eq!(net.predict_one(&[1.0]), Err(MlError::NotFitted));
        let mut net = Mlp::new(MlpConfig {
            batch_size: 0,
            ..MlpConfig::paper_tuned()
        });
        assert!(net.fit(&[vec![1.0]], &[1.0]).is_err());
        let mut net = Mlp::new(MlpConfig {
            hidden: vec![(0, Activation::Relu)],
            ..MlpConfig::paper_tuned()
        });
        assert!(net.fit(&[vec![1.0]], &[1.0]).is_err());
        let mut net = Mlp::new(MlpConfig {
            epochs: 1,
            ..MlpConfig::paper_tuned()
        });
        net.fit(&[vec![1.0], vec![2.0]], &[1.0, 2.0]).unwrap();
        assert!(matches!(
            net.predict_one(&[1.0, 2.0]),
            Err(MlError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn activations_behave() {
        assert_eq!(Activation::Relu.apply(-3.0), 0.0);
        assert_eq!(Activation::Relu.apply(3.0), 3.0);
        assert_eq!(Activation::Identity.apply(0.7), 0.7);
        assert!((Activation::Sigmoid.apply(0.0) - 0.5).abs() < 1e-12);
        assert!((Activation::Tanh.apply(0.0)).abs() < 1e-12);
        // Derivatives at characteristic points.
        assert!((Activation::Sigmoid.derivative_from_output(0.5) - 0.25).abs() < 1e-12);
        assert_eq!(Activation::Identity.derivative_from_output(5.0), 1.0);
        assert_eq!(Activation::Relu.derivative_from_output(0.0), 0.0);
        assert!((Activation::Tanh.derivative_from_output(0.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn predict_batch_matches_predict_one_bits() {
        // Multi-dim input plus a deep net so the matmul path crosses layer
        // boundaries; exact equality, not tolerance.
        let x: Vec<Vec<f64>> = (0..60)
            .map(|i| {
                vec![
                    i as f64 / 60.0,
                    (i % 7) as f64 * 0.1,
                    if i % 2 == 0 { 1.0 } else { 0.0 },
                ]
            })
            .collect();
        let y: Vec<f64> = x.iter().map(|r| -70.0 + 5.0 * r[0] - 2.0 * r[1]).collect();
        let mut net = Mlp::new(MlpConfig {
            hidden: vec![(16, Activation::Sigmoid), (8, Activation::Tanh)],
            epochs: 15,
            ..MlpConfig::paper_tuned()
        });
        net.fit(&x, &y).unwrap();
        let fm = crate::FeatureMatrix::from_rows(&x).unwrap();
        let batch = net.predict_batch(&fm).unwrap();
        assert_eq!(batch.len(), x.len());
        for (row, b) in x.iter().zip(&batch) {
            assert_eq!(net.predict_one(row).unwrap(), *b);
        }
    }

    #[test]
    fn deeper_network_trains() {
        let x: Vec<Vec<f64>> = (0..60).map(|i| vec![i as f64 / 60.0]).collect();
        let y: Vec<f64> = x.iter().map(|r| (r[0] * 6.0).sin()).collect();
        let mut net = Mlp::new(MlpConfig {
            hidden: vec![(16, Activation::Tanh), (8, Activation::Tanh)],
            epochs: 600,
            ..MlpConfig::paper_tuned()
        });
        net.fit(&x, &y).unwrap();
        let mse = net.mse(&x, &y).unwrap();
        assert!(mse < 0.05, "deep net mse {mse}");
    }
}
