//! UWB ranging and EKF state estimation — the Loco Positioning System
//! substitute.
//!
//! The paper's UAVs localize with Bitcraze's Loco Positioning System: a
//! DWM1000 UWB tag on the UAV and anchors at the 8 corners of the scan
//! volume, fused by an on-board extended Kalman filter after Mueller et al.
//! (ICRA'15). §II-B's claims, all reproducible here:
//!
//! * a minimum of **4 anchors** is needed for 3D localization, ≥ 6 advised;
//! * ~**9 cm accuracy while hovering** with 6 anchors;
//! * **TDoA** is slightly more accurate than TWR and supports several UAVs
//!   at once;
//! * usable range about **10 m**.
//!
//! Modules:
//!
//! * [`anchors`] — anchor identities and constellations (volume corners).
//! * [`ranging`] — TWR and TDoA measurement generation with Gaussian noise,
//!   occasional NLoS bias, range-limited dropout.
//! * [`ekf`] — a constant-velocity EKF over `[position, velocity]` with
//!   scalar range/TDoA updates.
//! * [`imu`] — accelerometer model + IMU-aided prediction (the Mueller
//!   et al. fusion the Crazyflie actually runs), decisive at low ranging
//!   rates.
//! * [`lighthouse`] — the conclusion's future-work localization system:
//!   sweep-angle (azimuth/elevation) measurements from two base stations,
//!   pluggable into the same EKF.
//! * [`eval`] — Monte-Carlo hover-accuracy runs (the LOC experiment).
//!
//! # Examples
//!
//! ```
//! use aerorem_localization::{anchors::AnchorConstellation, eval};
//! use aerorem_localization::ranging::{RangingConfig, RangingMode};
//! use aerorem_spatial::{Aabb, Vec3};
//!
//! let anchors = AnchorConstellation::volume_corners(Aabb::paper_volume());
//! let cfg = RangingConfig::lps_default(RangingMode::Tdoa);
//! let rmse = eval::hover_rmse(&anchors, &cfg, Vec3::new(1.8, 1.6, 1.0), 200, 7);
//! assert!(rmse < 0.25, "decimeter-level hovering accuracy, got {rmse} m");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod anchors;
pub mod ekf;
pub mod eval;
pub mod imu;
pub mod lighthouse;
pub mod ranging;

pub use anchors::{Anchor, AnchorConstellation, AnchorId};
pub use ekf::Ekf;
pub use ranging::{RangeMeasurement, RangingConfig, RangingMode};
