//! Inertial measurement unit model and IMU-aided EKF prediction.
//!
//! The Crazyflie's estimator is "fusing UWB range measurements with
//! accelerometers and rate gyroscopes" (Mueller et al., cited in §II-B).
//! At the 100 Hz ranging rate of the demo the accelerometer adds little —
//! the blind constant-velocity prediction is corrected fast enough — but at
//! *low* ranging rates (long-range TDoA, congested anchors, multi-UAV air
//! time sharing) the IMU carries the state between fixes. This module
//! provides the sensor model and the control-input prediction step; the
//! [`crate::eval`] helpers quantify the benefit.

use rand::Rng;
use serde::{Deserialize, Serialize};

use aerorem_numerics::dist;
use aerorem_spatial::Vec3;

use crate::ekf::Ekf;

/// Accelerometer error model (world-frame simplification).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ImuConfig {
    /// 1-σ white noise per axis, m/s².
    pub accel_noise_std: f64,
    /// 1-σ of the constant per-axis bias drawn at startup, m/s².
    pub accel_bias_std: f64,
}

impl ImuConfig {
    /// BMI088-class MEMS accelerometer as flown on the Crazyflie 2.1.
    pub fn crazyflie_bmi088() -> Self {
        ImuConfig {
            accel_noise_std: 0.08,
            accel_bias_std: 0.05,
        }
    }
}

impl Default for ImuConfig {
    fn default() -> Self {
        Self::crazyflie_bmi088()
    }
}

/// A simulated accelerometer with a frozen startup bias.
///
/// # Examples
///
/// ```
/// use aerorem_localization::imu::{Imu, ImuConfig};
/// use aerorem_spatial::Vec3;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let imu = Imu::new(ImuConfig::crazyflie_bmi088(), &mut rng);
/// let m = imu.measure(Vec3::ZERO, &mut rng);
/// assert!(m.norm() < 1.0, "noise + bias stay small: {m}");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Imu {
    config: ImuConfig,
    bias: Vec3,
}

impl Imu {
    /// Powers the sensor up, drawing its constant bias.
    pub fn new<R: Rng + ?Sized>(config: ImuConfig, rng: &mut R) -> Self {
        let bias = Vec3::new(
            dist::normal(rng, 0.0, config.accel_bias_std),
            dist::normal(rng, 0.0, config.accel_bias_std),
            dist::normal(rng, 0.0, config.accel_bias_std),
        );
        Imu { config, bias }
    }

    /// The configured error model.
    pub fn config(&self) -> ImuConfig {
        self.config
    }

    /// One accelerometer reading for the given true (gravity-compensated)
    /// acceleration.
    pub fn measure<R: Rng + ?Sized>(&self, true_accel: Vec3, rng: &mut R) -> Vec3 {
        true_accel
            + self.bias
            + Vec3::new(
                dist::normal(rng, 0.0, self.config.accel_noise_std),
                dist::normal(rng, 0.0, self.config.accel_noise_std),
                dist::normal(rng, 0.0, self.config.accel_noise_std),
            )
    }
}

impl Ekf {
    /// Control-input prediction: propagates the state using a measured
    /// acceleration instead of the blind constant-velocity assumption.
    /// The residual process noise should be the IMU's error level
    /// (noise + bias allowance), far below the blind filter's maneuvering
    /// allowance — that is where the accuracy at low ranging rates comes
    /// from.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is negative/not finite or `residual_accel_noise` is
    /// not positive.
    pub fn predict_with_accel(&mut self, dt: f64, accel: Vec3, residual_accel_noise: f64) {
        assert!(dt >= 0.0 && dt.is_finite(), "dt must be non-negative");
        assert!(
            residual_accel_noise > 0.0 && residual_accel_noise.is_finite(),
            "residual noise must be positive"
        );
        if dt == 0.0 {
            return;
        }
        // Deterministic control input first…
        self.apply_accel_input(dt, accel);
        // …then the covariance propagation of a CV model whose process
        // noise is only the IMU residual.
        self.propagate_covariance(dt, residual_accel_noise);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::anchors::AnchorConstellation;
    use crate::ranging::{RangingConfig, RangingMode};
    use aerorem_spatial::Aabb;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn imu_bias_is_frozen_noise_is_not() {
        let mut rng = StdRng::seed_from_u64(7);
        let imu = Imu::new(ImuConfig::crazyflie_bmi088(), &mut rng);
        let a = imu.measure(Vec3::ZERO, &mut rng);
        let b = imu.measure(Vec3::ZERO, &mut rng);
        assert_ne!(a, b, "white noise varies");
        // Averaging many readings recovers the frozen bias.
        let mean = (0..5000)
            .map(|_| imu.measure(Vec3::ZERO, &mut rng))
            .fold(Vec3::ZERO, |acc, m| acc + m)
            / 5000.0;
        assert!(mean.norm() < 3.0 * ImuConfig::crazyflie_bmi088().accel_bias_std + 0.02);
    }

    #[test]
    fn accel_prediction_tracks_maneuver_between_fixes() {
        // A vehicle accelerating at 1 m/s² with ranging only every 0.5 s:
        // the IMU-aided filter coasts through the gap far better.
        let anchors = AnchorConstellation::volume_corners(Aabb::paper_volume());
        let cfg = RangingConfig::lps_default(RangingMode::Twr);
        let var = cfg.noise_std_m * cfg.noise_std_m;
        let mut rng = StdRng::seed_from_u64(42);
        let imu = Imu::new(ImuConfig::crazyflie_bmi088(), &mut rng);

        let accel = Vec3::new(1.0, -0.6, 0.2);
        let dt = 0.01;
        let run = |use_imu: bool, rng: &mut StdRng| -> f64 {
            let mut truth_pos = Vec3::new(0.5, 2.5, 0.5);
            let mut truth_vel = Vec3::ZERO;
            let mut ekf = Ekf::new(truth_pos, 1.0);
            let mut worst: f64 = 0.0;
            for step in 0..300 {
                truth_vel += accel * dt;
                truth_pos += truth_vel * dt;
                if use_imu {
                    let meas = imu.measure(accel, rng);
                    ekf.predict_with_accel(dt, meas, 0.15);
                } else {
                    ekf.predict(dt);
                }
                // A fix only every 50 steps (0.5 s).
                if step % 50 == 0 {
                    let meas = cfg.measure(&anchors, truth_pos, rng);
                    let _ = ekf.update_ranging(&anchors, &meas, var);
                }
                if step > 100 {
                    worst = worst.max(ekf.position().distance(truth_pos));
                }
            }
            worst
        };
        let blind = run(false, &mut rng);
        let aided = run(true, &mut rng);
        assert!(
            aided < blind * 0.6,
            "IMU aiding should cut the coasting error: aided {aided} vs blind {blind}"
        );
        assert!(aided < 0.25, "aided worst-case error {aided} m");
    }

    #[test]
    fn zero_dt_is_noop() {
        let mut ekf = Ekf::new(Vec3::splat(1.0), 1.0);
        let before = ekf.position();
        ekf.predict_with_accel(0.0, Vec3::new(9.0, 9.0, 9.0), 0.1);
        assert_eq!(ekf.position(), before);
    }

    #[test]
    #[should_panic(expected = "residual noise")]
    fn bad_residual_noise_panics() {
        let mut ekf = Ekf::new(Vec3::ZERO, 1.0);
        ekf.predict_with_accel(0.01, Vec3::ZERO, 0.0);
    }
}
