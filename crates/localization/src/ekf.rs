//! The constant-velocity extended Kalman filter.
//!
//! The Crazyflie fuses UWB ranges with its IMU in an EKF following Mueller
//! et al., "Fusing ultra-wideband range measurements with accelerometers and
//! rate gyroscopes for quadrocopter state estimation" (ICRA'15) — the
//! paper's §II-B cites exactly this design. Our simulation-side filter keeps
//! the part that matters for location-annotated sampling: a 6-state
//! `[x, y, z, vx, vy, vz]` filter with scalar range, TDoA, and sweep-angle
//! updates.

use aerorem_numerics::Matrix;
use aerorem_spatial::Vec3;

use crate::anchors::AnchorConstellation;
use crate::ranging::RangeMeasurement;

/// Errors from EKF updates.
#[derive(Debug, Clone, PartialEq)]
pub enum EkfError {
    /// The innovation covariance degenerated (non-positive) — usually a
    /// sign of a broken noise configuration.
    DegenerateInnovation,
    /// A referenced anchor does not exist in the constellation.
    UnknownAnchor,
}

impl std::fmt::Display for EkfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EkfError::DegenerateInnovation => write!(f, "innovation covariance not positive"),
            EkfError::UnknownAnchor => write!(f, "measurement references unknown anchor"),
        }
    }
}

impl std::error::Error for EkfError {}

/// A 6-state constant-velocity EKF.
///
/// # Examples
///
/// ```
/// use aerorem_localization::Ekf;
/// use aerorem_spatial::Vec3;
///
/// let mut ekf = Ekf::new(Vec3::new(1.0, 1.0, 1.0), 1.0);
/// ekf.predict(0.01);
/// ekf.update_range(Vec3::ZERO, ekf.position().norm(), 0.05 * 0.05).unwrap();
/// assert!(ekf.position().is_finite());
/// ```
#[derive(Debug, Clone)]
pub struct Ekf {
    /// State `[x, y, z, vx, vy, vz]`.
    state: [f64; 6],
    /// 6×6 covariance.
    cov: Matrix,
    /// Process (acceleration) noise density, m/s².
    accel_noise: f64,
}

impl Ekf {
    /// Creates a filter at `initial_position` with zero velocity, broad
    /// position uncertainty (1 m σ), and the given acceleration noise
    /// density (m/s², ~1 for a hovering Crazyflie).
    ///
    /// # Panics
    ///
    /// Panics if `accel_noise` is not positive and finite.
    pub fn new(initial_position: Vec3, accel_noise: f64) -> Self {
        assert!(
            accel_noise > 0.0 && accel_noise.is_finite(),
            "acceleration noise must be positive"
        );
        let mut cov = Matrix::zeros(6, 6);
        for i in 0..3 {
            cov[(i, i)] = 1.0; // lint:allow(slice-index) — i < 3 indexes the 6×6 covariance; 1 m σ position
            cov[(i + 3, i + 3)] = 0.25; // lint:allow(slice-index) — i + 3 < 6 indexes the 6×6 covariance; 0.5 m/s σ velocity
        }
        Ekf {
            state: [
                initial_position.x,
                initial_position.y,
                initial_position.z,
                0.0,
                0.0,
                0.0,
            ],
            cov,
            accel_noise,
        }
    }

    /// Current position estimate.
    pub fn position(&self) -> Vec3 {
        Vec3::new(self.state[0], self.state[1], self.state[2])
    }

    /// Current velocity estimate.
    pub fn velocity(&self) -> Vec3 {
        Vec3::new(self.state[3], self.state[4], self.state[5])
    }

    /// Position uncertainty: square root of the position covariance trace,
    /// a scalar "how lost am I" metric.
    pub fn position_sigma(&self) -> f64 {
        (self.cov[(0, 0)] + self.cov[(1, 1)] + self.cov[(2, 2)]).sqrt()
    }

    /// Propagates the state `dt` seconds forward under the
    /// constant-velocity model with white acceleration noise.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is negative or not finite.
    pub fn predict(&mut self, dt: f64) {
        assert!(dt >= 0.0 && dt.is_finite(), "dt must be non-negative");
        if dt == 0.0 {
            return;
        }
        // x ← x + v·dt
        for i in 0..3 {
            // lint:allow(slice-index) — i and i + 3 stay below the fixed state dimension of 6
            self.state[i] += self.state[i + 3] * dt;
        }
        self.propagate_covariance(dt, self.accel_noise);
    }

    /// Applies a known acceleration input to the state:
    /// `x ← x + v·dt + ½a·dt²`, `v ← v + a·dt`. Used by the IMU-aided
    /// prediction in [`crate::imu`].
    pub(crate) fn apply_accel_input(&mut self, dt: f64, accel: Vec3) {
        for (i, &a) in accel.to_array().iter().enumerate() {
            self.state[i] += self.state[i + 3] * dt + 0.5 * a * dt * dt; // lint:allow(slice-index) — i enumerates the 3 axes, i + 3 < 6
            self.state[i + 3] += a * dt; // lint:allow(slice-index) — same bound: i < 3 from the axis enumeration
        }
    }

    /// Propagates the covariance through the constant-velocity transition
    /// with white acceleration noise density `accel_noise`.
    pub(crate) fn propagate_covariance(&mut self, dt: f64, accel_noise: f64) {
        // F = [I, dt·I; 0, I]
        let mut f = Matrix::identity(6);
        for i in 0..3 {
            // lint:allow(slice-index) — i < 3 and i + 3 < 6 index the 6×6 transition matrix
            f[(i, i + 3)] = dt;
        }
        // Q from white acceleration noise q²: standard CV discretization.
        let q2 = accel_noise * accel_noise;
        let dt2 = dt * dt;
        let mut q = Matrix::zeros(6, 6);
        for i in 0..3 {
            q[(i, i)] = q2 * dt2 * dt2 / 4.0; // lint:allow(slice-index) — i < 3 indexes the 6×6 noise matrix
            q[(i, i + 3)] = q2 * dt2 * dt / 2.0; // lint:allow(slice-index) — i + 3 < 6 indexes the 6×6 noise matrix
            q[(i + 3, i)] = q2 * dt2 * dt / 2.0; // lint:allow(slice-index) — i + 3 < 6 indexes the 6×6 noise matrix
            q[(i + 3, i + 3)] = q2 * dt2; // lint:allow(slice-index) — i + 3 < 6 indexes the 6×6 noise matrix
        }
        let fp = f.matmul(&self.cov).expect("6x6"); // lint:allow(panic-path) — F and P are both 6×6 by construction, so matmul dimensions always agree
        let fpft = fp.matmul(&f.transpose()).expect("6x6"); // lint:allow(panic-path) — FP is 6×6 and Fᵀ is 6×6, dimensions always agree
        self.cov = fpft.add_mat(&q).expect("6x6"); // lint:allow(panic-path) — FPFᵀ and Q are both 6×6, dimensions always agree
        self.cov.symmetrize();
    }

    /// Scalar EKF update with measurement `z`, prediction `h`, Jacobian row
    /// `jac` (length 6), and measurement variance `r`.
    fn scalar_update(&mut self, z: f64, h: f64, jac: [f64; 6], r: f64) -> Result<(), EkfError> {
        // S = J P Jᵀ + r
        let pj: Vec<f64> = (0..6)
            // lint:allow(slice-index) — i and j range over 0..6, the fixed covariance/Jacobian dimension
            .map(|i| (0..6).map(|j| self.cov[(i, j)] * jac[j]).sum())
            .collect();
        // lint:allow(slice-index) — i ranges over 0..6 and pj was collected from that same range
        let s: f64 = (0..6).map(|i| jac[i] * pj[i]).sum::<f64>() + r;
        if s <= 0.0 || !s.is_finite() {
            return Err(EkfError::DegenerateInnovation);
        }
        // K = P Jᵀ / S
        let k: Vec<f64> = pj.iter().map(|v| v / s).collect();
        let innovation = z - h;
        for (st, kv) in self.state.iter_mut().zip(&k) {
            *st += kv * innovation;
        }
        // P ← (I − K J) P
        let mut ikj = Matrix::identity(6);
        for i in 0..6 {
            for j in 0..6 {
                // lint:allow(slice-index) — i, j < 6 index the 6×6 matrix and the length-6 gain/Jacobian
                ikj[(i, j)] -= k[i] * jac[j];
            }
        }
        // lint:allow(panic-path) — (I − KJ) and P are both 6×6 by construction, dimensions always agree
        self.cov = ikj.matmul(&self.cov).expect("6x6");
        self.cov.symmetrize();
        Ok(())
    }

    /// Updates with an absolute range to an anchor at `anchor_pos`.
    ///
    /// # Errors
    ///
    /// Returns [`EkfError::DegenerateInnovation`] when the innovation
    /// variance is non-positive.
    pub fn update_range(
        &mut self,
        anchor_pos: Vec3,
        measured_m: f64,
        variance: f64,
    ) -> Result<(), EkfError> {
        let p = self.position();
        let diff = p - anchor_pos;
        let d = diff.norm().max(1e-6);
        let jac = [diff.x / d, diff.y / d, diff.z / d, 0.0, 0.0, 0.0];
        self.scalar_update(measured_m, d, jac, variance)
    }

    /// Updates with a TDoA delta `|p − other| − |p − reference|`.
    ///
    /// # Errors
    ///
    /// Returns [`EkfError::DegenerateInnovation`] when the innovation
    /// variance is non-positive.
    pub fn update_tdoa(
        &mut self,
        reference_pos: Vec3,
        other_pos: Vec3,
        measured_delta_m: f64,
        variance: f64,
    ) -> Result<(), EkfError> {
        let p = self.position();
        let do_ = (p - other_pos).norm().max(1e-6);
        let dr = (p - reference_pos).norm().max(1e-6);
        let jac = [
            (p.x - other_pos.x) / do_ - (p.x - reference_pos.x) / dr,
            (p.y - other_pos.y) / do_ - (p.y - reference_pos.y) / dr,
            (p.z - other_pos.z) / do_ - (p.z - reference_pos.z) / dr,
            0.0,
            0.0,
            0.0,
        ];
        self.scalar_update(measured_delta_m, do_ - dr, jac, variance)
    }

    /// Generic scalar update through any measurement function of position,
    /// using a central finite-difference Jacobian. Used by the Lighthouse
    /// sweep-angle model; range/TDoA have analytic Jacobians above.
    ///
    /// # Errors
    ///
    /// Returns [`EkfError::DegenerateInnovation`] when the innovation
    /// variance is non-positive.
    pub fn update_scalar_numeric<F>(
        &mut self,
        h_of_pos: F,
        measured: f64,
        variance: f64,
    ) -> Result<(), EkfError>
    where
        F: Fn(Vec3) -> f64,
    {
        let p = self.position();
        let h = h_of_pos(p);
        const EPS: f64 = 1e-5;
        let mut jac = [0.0; 6];
        for (i, unit) in [Vec3::X, Vec3::Y, Vec3::Z].into_iter().enumerate() {
            // lint:allow(slice-index) — i enumerates 3 axes into the length-6 Jacobian row
            jac[i] = (h_of_pos(p + unit * EPS) - h_of_pos(p - unit * EPS)) / (2.0 * EPS);
        }
        self.scalar_update(measured, h, jac, variance)
    }

    /// Applies a batch of ranging measurements against a constellation.
    ///
    /// # Errors
    ///
    /// Returns [`EkfError::UnknownAnchor`] if a measurement references an
    /// anchor missing from `anchors`; covariance errors propagate from the
    /// scalar updates.
    pub fn update_ranging(
        &mut self,
        anchors: &AnchorConstellation,
        measurements: &[RangeMeasurement],
        variance: f64,
    ) -> Result<(), EkfError> {
        for m in measurements {
            match *m {
                RangeMeasurement::Twr { anchor, range_m } => {
                    let a = anchors.get(anchor).ok_or(EkfError::UnknownAnchor)?;
                    self.update_range(a.position, range_m, variance)?;
                }
                RangeMeasurement::Tdoa {
                    reference,
                    other,
                    delta_m,
                } => {
                    let r = anchors.get(reference).ok_or(EkfError::UnknownAnchor)?;
                    let o = anchors.get(other).ok_or(EkfError::UnknownAnchor)?;
                    // Two noisy legs: delta variance is ~2× a single range.
                    self.update_tdoa(r.position, o.position, delta_m, 2.0 * variance)?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ranging::{RangingConfig, RangingMode};
    use aerorem_spatial::Aabb;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn predict_moves_with_velocity() {
        let mut ekf = Ekf::new(Vec3::ZERO, 1.0);
        ekf.state[3] = 1.0; // vx = 1 m/s
        ekf.predict(0.5);
        assert!((ekf.position().x - 0.5).abs() < 1e-12);
    }

    #[test]
    fn predict_grows_uncertainty() {
        let mut ekf = Ekf::new(Vec3::ZERO, 1.0);
        let before = ekf.position_sigma();
        ekf.predict(1.0);
        assert!(ekf.position_sigma() > before);
    }

    #[test]
    fn zero_dt_predict_is_noop() {
        let mut ekf = Ekf::new(Vec3::new(1.0, 2.0, 3.0), 1.0);
        let sigma = ekf.position_sigma();
        ekf.predict(0.0);
        assert_eq!(ekf.position(), Vec3::new(1.0, 2.0, 3.0));
        assert_eq!(ekf.position_sigma(), sigma);
    }

    #[test]
    fn range_updates_converge_on_truth() {
        let anchors = AnchorConstellation::volume_corners(Aabb::paper_volume());
        let truth = Vec3::new(1.8, 1.5, 1.1);
        let mut ekf = Ekf::new(Vec3::new(0.5, 0.5, 0.5), 0.5);
        // Noise-free ranges: the filter should lock on quickly.
        for _ in 0..30 {
            ekf.predict(0.01);
            for a in anchors.iter() {
                let d = a.position.distance(truth);
                ekf.update_range(a.position, d, 0.05 * 0.05).unwrap();
            }
        }
        assert!(
            ekf.position().distance(truth) < 0.02,
            "converged to {}",
            ekf.position()
        );
    }

    #[test]
    fn tdoa_updates_converge_on_truth() {
        let anchors = AnchorConstellation::volume_corners(Aabb::paper_volume());
        let truth = Vec3::new(2.5, 0.8, 0.6);
        let r0 = anchors.as_slice()[0].position;
        let mut ekf = Ekf::new(Vec3::new(1.0, 1.5, 1.0), 0.5);
        for _ in 0..50 {
            ekf.predict(0.01);
            for a in anchors.iter().skip(1) {
                let delta = a.position.distance(truth) - r0.distance(truth);
                ekf.update_tdoa(r0, a.position, delta, 0.04 * 0.04).unwrap();
            }
        }
        assert!(
            ekf.position().distance(truth) < 0.05,
            "converged to {}",
            ekf.position()
        );
    }

    #[test]
    fn updates_shrink_uncertainty() {
        let mut ekf = Ekf::new(Vec3::splat(1.0), 1.0);
        let before = ekf.position_sigma();
        ekf.update_range(Vec3::ZERO, 3f64.sqrt(), 0.0025).unwrap();
        assert!(ekf.position_sigma() < before);
    }

    #[test]
    fn noisy_hover_stays_decimeter_accurate() {
        let anchors = AnchorConstellation::volume_corners(Aabb::paper_volume());
        let cfg = RangingConfig::lps_default(RangingMode::Twr);
        let truth = Vec3::new(1.87, 1.60, 1.0);
        let mut rng = StdRng::seed_from_u64(0xE50F);
        let mut ekf = Ekf::new(truth + Vec3::splat(0.3), 0.5);
        let var = cfg.noise_std_m * cfg.noise_std_m;
        let mut errs = Vec::new();
        for step in 0..300 {
            ekf.predict(0.01);
            let meas = cfg.measure(&anchors, truth, &mut rng);
            ekf.update_ranging(&anchors, &meas, var).unwrap();
            if step > 50 {
                errs.push(ekf.position().distance(truth));
            }
        }
        let rmse = (errs.iter().map(|e| e * e).sum::<f64>() / errs.len() as f64).sqrt();
        assert!(rmse < 0.15, "hover RMSE {rmse} m");
    }

    #[test]
    fn batch_update_rejects_unknown_anchor() {
        let anchors = AnchorConstellation::volume_corners(Aabb::paper_volume()).take(2);
        let mut ekf = Ekf::new(Vec3::ZERO, 1.0);
        let bogus = RangeMeasurement::Twr {
            anchor: crate::anchors::AnchorId(99),
            range_m: 1.0,
        };
        assert_eq!(
            ekf.update_ranging(&anchors, &[bogus], 0.0025),
            Err(EkfError::UnknownAnchor)
        );
    }

    #[test]
    fn numeric_update_matches_analytic_range() {
        let anchor = Vec3::new(3.0, -1.0, 2.0);
        let mut a = Ekf::new(Vec3::splat(0.5), 1.0);
        let mut b = a.clone();
        let z = 2.0;
        a.update_range(anchor, z, 0.01).unwrap();
        b.update_scalar_numeric(|p| p.distance(anchor), z, 0.01)
            .unwrap();
        assert!(a.position().distance(b.position()) < 1e-6);
    }

    #[test]
    fn degenerate_variance_detected() {
        let mut ekf = Ekf::new(Vec3::splat(1.0), 1.0);
        let err = ekf.update_range(Vec3::ZERO, 1.0, -5.0);
        assert_eq!(err, Err(EkfError::DegenerateInnovation));
        assert!(EkfError::DegenerateInnovation.to_string().contains("covariance"));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_dt_panics() {
        let mut ekf = Ekf::new(Vec3::ZERO, 1.0);
        ekf.predict(-0.1);
    }
}
