//! Lighthouse-style sweep-angle localization — the paper's future work.
//!
//! The conclusion proposes replacing UWB with Bitcraze's *Lighthouse* infra-
//! red system, "which features comparable precision, while requiring less
//! anchors and being cheaper", and which frees the 2.4 GHz band entirely
//! (no self-interference with the REM receiver). A Lighthouse base station
//! sweeps laser planes across the room; the tag measures the **azimuth and
//! elevation angles** at which the sweeps hit it. Two base stations suffice
//! for a 3D fix.
//!
//! The measurement model here is exactly that: per base station, the pair
//! `(azimuth, elevation)` of the tag as seen from the station, with Gaussian
//! angular noise, fed to the shared EKF through its numeric-Jacobian scalar
//! update.

use rand::Rng;
use serde::{Deserialize, Serialize};

use aerorem_numerics::dist;
use aerorem_spatial::Vec3;

use crate::ekf::{Ekf, EkfError};

/// One Lighthouse base station.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BaseStation {
    /// Position in the volume frame (typically high in two room corners).
    pub position: Vec3,
}

impl BaseStation {
    /// Azimuth of `p` from this station: angle in the x–y plane.
    pub fn azimuth(&self, p: Vec3) -> f64 {
        let d = p - self.position;
        d.y.atan2(d.x)
    }

    /// Elevation of `p` from this station: angle above the x–y plane.
    pub fn elevation(&self, p: Vec3) -> f64 {
        let d = p - self.position;
        d.z.atan2((d.x * d.x + d.y * d.y).sqrt())
    }
}

/// One sweep observation from one base station.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SweepMeasurement {
    /// Index of the base station that produced the sweep.
    pub station: usize,
    /// Measured azimuth, radians.
    pub azimuth: f64,
    /// Measured elevation, radians.
    pub elevation: f64,
}

/// A deployed pair (or more) of Lighthouse base stations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LighthouseSystem {
    stations: Vec<BaseStation>,
    /// 1-σ angular noise in radians (~0.5 mrad for Lighthouse V2).
    pub angle_noise_rad: f64,
}

impl LighthouseSystem {
    /// Two stations mounted high on opposite corners of the given volume
    /// footprint — the standard Lighthouse room setup.
    pub fn two_station(volume: aerorem_spatial::Aabb) -> Self {
        let hi_z = volume.max().z + 0.3;
        LighthouseSystem {
            stations: vec![
                BaseStation {
                    position: Vec3::new(volume.min().x - 0.2, volume.min().y - 0.2, hi_z),
                },
                BaseStation {
                    position: Vec3::new(volume.max().x + 0.2, volume.max().y + 0.2, hi_z),
                },
            ],
            angle_noise_rad: 5e-4,
        }
    }

    /// The base stations.
    pub fn stations(&self) -> &[BaseStation] {
        &self.stations
    }

    /// Draws one epoch of sweep measurements of a tag at `true_pos`.
    pub fn measure<R: Rng + ?Sized>(&self, true_pos: Vec3, rng: &mut R) -> Vec<SweepMeasurement> {
        self.stations
            .iter()
            .enumerate()
            .map(|(i, s)| SweepMeasurement {
                station: i,
                azimuth: s.azimuth(true_pos) + dist::normal(rng, 0.0, self.angle_noise_rad),
                elevation: s.elevation(true_pos) + dist::normal(rng, 0.0, self.angle_noise_rad),
            })
            .collect()
    }

    /// Feeds a batch of sweep measurements to the EKF via numeric-Jacobian
    /// scalar updates.
    ///
    /// # Errors
    ///
    /// Returns [`EkfError::UnknownAnchor`] for out-of-range station indices;
    /// covariance errors propagate from the filter.
    pub fn update_ekf(
        &self,
        ekf: &mut Ekf,
        measurements: &[SweepMeasurement],
    ) -> Result<(), EkfError> {
        let var = self.angle_noise_rad * self.angle_noise_rad;
        for m in measurements {
            let station = *self.stations.get(m.station).ok_or(EkfError::UnknownAnchor)?;
            ekf.update_scalar_numeric(move |p| station.azimuth(p), m.azimuth, var)?;
            ekf.update_scalar_numeric(move |p| station.elevation(p), m.elevation, var)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aerorem_spatial::Aabb;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn geometry_of_angles() {
        let s = BaseStation {
            position: Vec3::ZERO,
        };
        // Directly along +x: azimuth 0, elevation 0.
        assert!(s.azimuth(Vec3::new(2.0, 0.0, 0.0)).abs() < 1e-12);
        assert!(s.elevation(Vec3::new(2.0, 0.0, 0.0)).abs() < 1e-12);
        // Along +y: azimuth π/2.
        assert!((s.azimuth(Vec3::new(0.0, 3.0, 0.0)) - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
        // 45° up.
        let e = s.elevation(Vec3::new(1.0, 0.0, 1.0));
        assert!((e - std::f64::consts::FRAC_PI_4).abs() < 1e-12);
    }

    #[test]
    fn two_stations_cover_volume() {
        let sys = LighthouseSystem::two_station(Aabb::paper_volume());
        assert_eq!(sys.stations().len(), 2);
        // Mounted above the volume.
        for s in sys.stations() {
            assert!(s.position.z > Aabb::paper_volume().max().z);
        }
    }

    #[test]
    fn ekf_converges_with_two_stations() {
        let volume = Aabb::paper_volume();
        let sys = LighthouseSystem::two_station(volume);
        let truth = Vec3::new(2.2, 1.1, 0.9);
        let mut rng = StdRng::seed_from_u64(0x11F);
        let mut ekf = Ekf::new(volume.center(), 0.5);
        for _ in 0..100 {
            ekf.predict(0.01);
            let meas = sys.measure(truth, &mut rng);
            sys.update_ekf(&mut ekf, &meas).unwrap();
        }
        let err = ekf.position().distance(truth);
        assert!(err < 0.05, "lighthouse convergence error {err} m");
    }

    #[test]
    fn fewer_anchors_than_uwb_comparable_precision() {
        // The future-work claim: 2 stations ≈ 6–8 UWB anchors in precision.
        let volume = Aabb::paper_volume();
        let sys = LighthouseSystem::two_station(volume);
        let truth = Vec3::new(1.5, 1.8, 1.2);
        let mut rng = StdRng::seed_from_u64(0x11F2);
        let mut ekf = Ekf::new(truth + Vec3::splat(0.2), 0.5);
        let mut errs = Vec::new();
        for step in 0..300 {
            ekf.predict(0.01);
            let meas = sys.measure(truth, &mut rng);
            sys.update_ekf(&mut ekf, &meas).unwrap();
            if step > 50 {
                errs.push(ekf.position().distance(truth));
            }
        }
        let rmse = (errs.iter().map(|e| e * e).sum::<f64>() / errs.len() as f64).sqrt();
        assert!(rmse < 0.09, "lighthouse hover RMSE {rmse} m");
    }

    #[test]
    fn unknown_station_rejected() {
        let sys = LighthouseSystem::two_station(Aabb::paper_volume());
        let mut ekf = Ekf::new(Vec3::splat(1.0), 1.0);
        let bogus = SweepMeasurement {
            station: 9,
            azimuth: 0.0,
            elevation: 0.0,
        };
        assert!(sys.update_ekf(&mut ekf, &[bogus]).is_err());
    }

    #[test]
    fn measurements_are_noisy_but_unbiased() {
        let sys = LighthouseSystem::two_station(Aabb::paper_volume());
        let truth = Vec3::new(1.0, 1.0, 1.0);
        let mut rng = StdRng::seed_from_u64(3);
        let n = 2000;
        let mut sum_az = 0.0;
        for _ in 0..n {
            sum_az += sys.measure(truth, &mut rng)[0].azimuth;
        }
        let mean_az = sum_az / n as f64;
        let true_az = sys.stations()[0].azimuth(truth);
        assert!((mean_az - true_az).abs() < 1e-4);
    }
}
