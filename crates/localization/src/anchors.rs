//! UWB anchor identities and constellations.

use std::fmt;

use serde::{Deserialize, Serialize};

use aerorem_spatial::{Aabb, Vec3};

/// Identifier of one localization anchor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct AnchorId(pub u8);

impl fmt::Display for AnchorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "anchor{}", self.0)
    }
}

/// One UWB anchor: a fixed, manually surveyed position.
///
/// §II-B: deployment consists of "simply positioning of the localization
/// anchors, measuring their coordinates relative to a chosen origin, and
/// initializing their automated calibration".
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Anchor {
    /// The anchor's identity.
    pub id: AnchorId,
    /// Surveyed position in the volume frame (meters).
    pub position: Vec3,
}

impl fmt::Display for Anchor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} @ {}", self.id, self.position)
    }
}

/// A deployed set of anchors.
///
/// # Examples
///
/// ```
/// use aerorem_localization::AnchorConstellation;
/// use aerorem_spatial::Aabb;
///
/// let c = AnchorConstellation::volume_corners(Aabb::paper_volume());
/// assert_eq!(c.len(), 8);
/// assert!(c.supports_3d());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnchorConstellation {
    anchors: Vec<Anchor>,
}

impl AnchorConstellation {
    /// Minimum anchors for 3D localization (§II-B).
    pub const MIN_FOR_3D: usize = 4;
    /// Bitcraze's advised anchor count (§II-B).
    pub const ADVISED: usize = 6;

    /// Builds a constellation from explicit anchors.
    pub fn new(anchors: Vec<Anchor>) -> Self {
        AnchorConstellation { anchors }
    }

    /// The paper's deployment: one anchor at each of the volume's 8 corners.
    pub fn volume_corners(volume: Aabb) -> Self {
        let anchors = volume
            .corners()
            .iter()
            .enumerate()
            .map(|(i, &position)| Anchor {
                id: AnchorId(i as u8),
                position,
            })
            .collect();
        AnchorConstellation { anchors }
    }

    /// Keeps `n` anchors, chosen to preserve geometric diversity — used by
    /// the anchor-count ablation. For an 8-corner constellation the subset
    /// alternates between bottom and top corners so that even 4 anchors span
    /// all three axes (a pure prefix would be coplanar and ruin the z
    /// estimate).
    pub fn take(&self, n: usize) -> Self {
        const SPREAD_ORDER: [usize; 8] = [0, 7, 3, 4, 5, 2, 6, 1];
        let picked: Vec<Anchor> = if self.anchors.len() == 8 {
            SPREAD_ORDER
                .iter()
                .take(n.min(8))
                // lint:allow(slice-index) — SPREAD_ORDER holds indices 0–7 and this branch requires exactly 8 anchors
                .map(|&i| self.anchors[i])
                .collect()
        } else {
            self.anchors.iter().take(n).copied().collect()
        };
        AnchorConstellation { anchors: picked }
    }

    /// Number of anchors.
    pub fn len(&self) -> usize {
        self.anchors.len()
    }

    /// Whether the constellation is empty.
    pub fn is_empty(&self) -> bool {
        self.anchors.is_empty()
    }

    /// Whether 3D localization is possible (≥ 4 anchors, §II-B).
    pub fn supports_3d(&self) -> bool {
        self.anchors.len() >= Self::MIN_FOR_3D
    }

    /// The anchors as a slice.
    pub fn as_slice(&self) -> &[Anchor] {
        &self.anchors
    }

    /// Iterates over the anchors.
    pub fn iter(&self) -> impl Iterator<Item = &Anchor> {
        self.anchors.iter()
    }

    /// Looks up an anchor by id.
    pub fn get(&self, id: AnchorId) -> Option<&Anchor> {
        self.anchors.iter().find(|a| a.id == id)
    }

    /// The geometric dilution proxy: mean pairwise anchor distance. Larger
    /// constellations around the volume yield better geometry.
    pub fn mean_baseline(&self) -> f64 {
        let n = self.anchors.len();
        if n < 2 {
            return 0.0;
        }
        let mut total = 0.0;
        let mut count = 0u32;
        for i in 0..n {
            for j in (i + 1)..n {
                // lint:allow(slice-index) — i, j < n = anchors.len() by the loop bounds
                total += self.anchors[i]
                    .position
                    // lint:allow(slice-index) — j < n = anchors.len() by the inner loop bound
                    .distance(self.anchors[j].position);
                count += 1;
            }
        }
        total / f64::from(count)
    }
}

impl<'a> IntoIterator for &'a AnchorConstellation {
    type Item = &'a Anchor;
    type IntoIter = std::slice::Iter<'a, Anchor>;

    fn into_iter(self) -> Self::IntoIter {
        self.anchors.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corners_constellation() {
        let c = AnchorConstellation::volume_corners(Aabb::paper_volume());
        assert_eq!(c.len(), 8);
        assert!(!c.is_empty());
        assert!(c.supports_3d());
        // All at distinct corners.
        for (i, a) in c.iter().enumerate() {
            for b in c.as_slice().iter().skip(i + 1) {
                assert!(a.position.distance(b.position) > 1.0);
            }
        }
    }

    #[test]
    fn take_prefix() {
        let c = AnchorConstellation::volume_corners(Aabb::paper_volume());
        let four = c.take(4);
        assert_eq!(four.len(), 4);
        assert!(four.supports_3d());
        assert!(!c.take(3).supports_3d());
        assert_eq!(c.take(100).len(), 8);
    }

    #[test]
    fn take_four_spans_all_axes() {
        let c = AnchorConstellation::volume_corners(Aabb::paper_volume()).take(4);
        let span = |f: fn(&Anchor) -> f64| {
            let vals: Vec<f64> = c.iter().map(f).collect();
            vals.iter().cloned().fold(f64::MIN, f64::max)
                - vals.iter().cloned().fold(f64::MAX, f64::min)
        };
        assert!(span(|a| a.position.x) > 1.0, "x span");
        assert!(span(|a| a.position.y) > 1.0, "y span");
        assert!(span(|a| a.position.z) > 1.0, "z span");
    }

    #[test]
    fn take_is_duplicate_free() {
        let c = AnchorConstellation::volume_corners(Aabb::paper_volume());
        for n in 1..=8 {
            let sub = c.take(n);
            assert_eq!(sub.len(), n);
            let mut ids: Vec<u8> = sub.iter().map(|a| a.id.0).collect();
            ids.sort_unstable();
            ids.dedup();
            assert_eq!(ids.len(), n);
        }
    }

    #[test]
    fn lookup_by_id() {
        let c = AnchorConstellation::volume_corners(Aabb::paper_volume());
        assert!(c.get(AnchorId(0)).is_some());
        assert!(c.get(AnchorId(42)).is_none());
    }

    #[test]
    fn mean_baseline_positive_and_monotone() {
        let c = AnchorConstellation::volume_corners(Aabb::paper_volume());
        assert!(c.mean_baseline() > 2.0);
        assert_eq!(c.take(1).mean_baseline(), 0.0);
        assert_eq!(c.take(0).mean_baseline(), 0.0);
    }

    #[test]
    fn displays() {
        let c = AnchorConstellation::volume_corners(Aabb::paper_volume());
        let a = c.as_slice()[0];
        assert!(a.to_string().contains("anchor0"));
    }

    #[test]
    fn iteration() {
        let c = AnchorConstellation::volume_corners(Aabb::paper_volume());
        assert_eq!((&c).into_iter().count(), 8);
    }
}
