//! TWR and TDoA ranging measurement generation.
//!
//! §II-B: "The localization is then performed using either the Two-Way
//! Ranging (TWR) procedure or different flavors of the Time Difference of
//! Arrival (TDoA) procedure, the latter featuring slightly better accuracy
//! and supporting simultaneous localization of multiple UAVs." The LPS is
//! usable to about 10 m.
//!
//! The noise model is Gaussian with an occasional positive NLoS bias;
//! anchors beyond the usable range (or unlucky, per the dropout
//! probability) produce no measurement.

use rand::Rng;
use serde::{Deserialize, Serialize};

use aerorem_numerics::dist;
use aerorem_spatial::Vec3;

use crate::anchors::{AnchorConstellation, AnchorId};

/// Which UWB localization procedure runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RangingMode {
    /// Two-way ranging: one absolute range per anchor exchange. Simple but
    /// the tag must transact with each anchor (no multi-UAV scaling).
    Twr,
    /// Time-difference-of-arrival: range *differences* against a reference
    /// anchor. Passive at the tag — any number of UAVs can listen at once —
    /// and slightly more precise per §II-B.
    Tdoa,
}

/// One ranging observation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum RangeMeasurement {
    /// Absolute range to one anchor (TWR).
    Twr {
        /// The measured anchor.
        anchor: AnchorId,
        /// Measured distance in meters.
        range_m: f64,
    },
    /// Range difference `|p − other| − |p − reference|` (TDoA).
    Tdoa {
        /// The reference anchor.
        reference: AnchorId,
        /// The other anchor.
        other: AnchorId,
        /// Measured range difference in meters.
        delta_m: f64,
    },
}

/// Ranging noise/availability configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RangingConfig {
    /// Active procedure.
    pub mode: RangingMode,
    /// 1-σ Gaussian measurement noise in meters.
    pub noise_std_m: f64,
    /// Probability that a given measurement suffers an NLoS excess delay.
    pub nlos_probability: f64,
    /// Mean positive bias of an NLoS measurement in meters.
    pub nlos_bias_m: f64,
    /// Maximum usable anchor distance in meters (§II-B: ≈ 10 m).
    pub max_range_m: f64,
    /// Probability an in-range measurement is simply lost.
    pub dropout_probability: f64,
}

impl RangingConfig {
    /// DWM1000-class defaults: 5 cm noise for TWR, 4 cm for TDoA (the
    /// "slightly better accuracy" of §II-B), 3 % NLoS at 30 cm bias, 10 m
    /// range, 2 % dropout.
    pub fn lps_default(mode: RangingMode) -> Self {
        RangingConfig {
            mode,
            noise_std_m: match mode {
                RangingMode::Twr => 0.05,
                RangingMode::Tdoa => 0.04,
            },
            nlos_probability: 0.03,
            nlos_bias_m: 0.30,
            max_range_m: 10.0,
            dropout_probability: 0.02,
        }
    }

    /// Draws one epoch of measurements for a tag at `true_pos`.
    ///
    /// TWR yields up to one range per anchor; TDoA yields up to one delta
    /// per non-reference anchor (anchor 0 of the constellation is the
    /// reference, matching the LPS TDoA-2 scheme).
    pub fn measure<R: Rng + ?Sized>(
        &self,
        anchors: &AnchorConstellation,
        true_pos: Vec3,
        rng: &mut R,
    ) -> Vec<RangeMeasurement> {
        match self.mode {
            RangingMode::Twr => self.measure_twr(anchors, true_pos, rng),
            RangingMode::Tdoa => self.measure_tdoa(anchors, true_pos, rng),
        }
    }

    fn noisy_range<R: Rng + ?Sized>(&self, true_range: f64, rng: &mut R) -> f64 {
        let mut r = true_range + dist::normal(rng, 0.0, self.noise_std_m);
        if dist::bernoulli(rng, self.nlos_probability) {
            // NLoS excess path: always positive, exponential-ish via |N|.
            r += dist::normal(rng, 0.0, self.nlos_bias_m).abs();
        }
        r.max(0.0)
    }

    fn available<R: Rng + ?Sized>(&self, true_range: f64, rng: &mut R) -> bool {
        true_range <= self.max_range_m && !dist::bernoulli(rng, self.dropout_probability)
    }

    fn measure_twr<R: Rng + ?Sized>(
        &self,
        anchors: &AnchorConstellation,
        p: Vec3,
        rng: &mut R,
    ) -> Vec<RangeMeasurement> {
        anchors
            .iter()
            .filter_map(|a| {
                let d = a.position.distance(p);
                if !self.available(d, rng) {
                    return None;
                }
                Some(RangeMeasurement::Twr {
                    anchor: a.id,
                    range_m: self.noisy_range(d, rng),
                })
            })
            .collect()
    }

    fn measure_tdoa<R: Rng + ?Sized>(
        &self,
        anchors: &AnchorConstellation,
        p: Vec3,
        rng: &mut R,
    ) -> Vec<RangeMeasurement> {
        let Some(reference) = anchors.as_slice().first() else {
            return Vec::new();
        };
        let d_ref = reference.position.distance(p);
        if d_ref > self.max_range_m {
            return Vec::new();
        }
        anchors
            .iter()
            .skip(1)
            .filter_map(|a| {
                let d = a.position.distance(p);
                if !self.available(d, rng) {
                    return None;
                }
                // Two arrivals, each with independent noise; difference
                // noise std is sqrt(2)·σ but the LPS clock model does a bit
                // better, so draw each leg separately.
                let delta = self.noisy_range(d, rng) - self.noisy_range(d_ref, rng);
                Some(RangeMeasurement::Tdoa {
                    reference: reference.id,
                    other: a.id,
                    delta_m: delta,
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aerorem_spatial::Aabb;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn anchors() -> AnchorConstellation {
        AnchorConstellation::volume_corners(Aabb::paper_volume())
    }

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0x10C)
    }

    #[test]
    fn twr_yields_one_range_per_anchor_mostly() {
        let cfg = RangingConfig {
            dropout_probability: 0.0,
            ..RangingConfig::lps_default(RangingMode::Twr)
        };
        let m = cfg.measure(&anchors(), Aabb::paper_volume().center(), &mut rng());
        assert_eq!(m.len(), 8);
        for meas in &m {
            let RangeMeasurement::Twr { range_m, .. } = meas else {
                panic!("expected TWR measurement");
            };
            assert!(*range_m > 0.0 && *range_m < 5.0);
        }
    }

    #[test]
    fn twr_ranges_near_truth() {
        let cfg = RangingConfig {
            nlos_probability: 0.0,
            dropout_probability: 0.0,
            ..RangingConfig::lps_default(RangingMode::Twr)
        };
        let p = Vec3::new(1.0, 1.0, 1.0);
        let a = anchors();
        let mut r = rng();
        for _ in 0..50 {
            for meas in cfg.measure(&a, p, &mut r) {
                let RangeMeasurement::Twr { anchor, range_m } = meas else {
                    panic!()
                };
                let truth = a.get(anchor).unwrap().position.distance(p);
                assert!(
                    (range_m - truth).abs() < 0.3,
                    "range {range_m} vs truth {truth}"
                );
            }
        }
    }

    #[test]
    fn tdoa_yields_deltas_against_reference() {
        let cfg = RangingConfig {
            dropout_probability: 0.0,
            ..RangingConfig::lps_default(RangingMode::Tdoa)
        };
        let a = anchors();
        let p = Vec3::new(2.0, 1.0, 1.5);
        let m = cfg.measure(&a, p, &mut rng());
        assert_eq!(m.len(), 7, "one delta per non-reference anchor");
        for meas in &m {
            let RangeMeasurement::Tdoa {
                reference,
                other,
                delta_m,
            } = meas
            else {
                panic!("expected TDoA measurement")
            };
            assert_eq!(*reference, AnchorId(0));
            let truth = a.get(*other).unwrap().position.distance(p)
                - a.get(*reference).unwrap().position.distance(p);
            assert!((delta_m - truth).abs() < 0.5);
        }
    }

    #[test]
    fn out_of_range_anchors_silent() {
        let far = AnchorConstellation::new(vec![crate::anchors::Anchor {
            id: AnchorId(0),
            position: Vec3::new(100.0, 0.0, 0.0),
        }]);
        let cfg = RangingConfig::lps_default(RangingMode::Twr);
        assert!(cfg.measure(&far, Vec3::ZERO, &mut rng()).is_empty());
        let cfg = RangingConfig::lps_default(RangingMode::Tdoa);
        assert!(cfg.measure(&far, Vec3::ZERO, &mut rng()).is_empty());
    }

    #[test]
    fn dropout_loses_measurements() {
        let cfg = RangingConfig {
            dropout_probability: 0.5,
            ..RangingConfig::lps_default(RangingMode::Twr)
        };
        let mut r = rng();
        let total: usize = (0..100)
            .map(|_| cfg.measure(&anchors(), Aabb::paper_volume().center(), &mut r).len())
            .sum();
        // 8 anchors × 100 epochs × 50 % ≈ 400.
        assert!((300..500).contains(&total), "total {total}");
    }

    #[test]
    fn nlos_bias_is_positive() {
        let cfg = RangingConfig {
            nlos_probability: 1.0,
            noise_std_m: 0.0,
            dropout_probability: 0.0,
            ..RangingConfig::lps_default(RangingMode::Twr)
        };
        let p = Vec3::new(1.0, 1.0, 1.0);
        let a = anchors();
        let mut r = rng();
        for meas in cfg.measure(&a, p, &mut r) {
            let RangeMeasurement::Twr { anchor, range_m } = meas else {
                panic!()
            };
            let truth = a.get(anchor).unwrap().position.distance(p);
            assert!(range_m >= truth, "NLoS must only lengthen the path");
        }
    }

    #[test]
    fn empty_constellation_yields_nothing() {
        let empty = AnchorConstellation::new(vec![]);
        let cfg = RangingConfig::lps_default(RangingMode::Tdoa);
        assert!(cfg.measure(&empty, Vec3::ZERO, &mut rng()).is_empty());
    }

    #[test]
    fn tdoa_noise_tighter_than_twr() {
        let twr = RangingConfig::lps_default(RangingMode::Twr);
        let tdoa = RangingConfig::lps_default(RangingMode::Tdoa);
        assert!(tdoa.noise_std_m < twr.noise_std_m);
    }
}
