//! Monte-Carlo hover-accuracy evaluation (the LOC experiment).
//!
//! §II-B cites Chekuri & Won's result that hovering localization with 6
//! anchors reaches ~9 cm accuracy, and Bitcraze's advice that more anchors
//! improve robustness. [`hover_rmse`] and [`anchor_count_sweep`] reproduce
//! those claims against our own ranging + EKF stack.

use rand::rngs::StdRng;
use rand::SeedableRng;

use aerorem_spatial::Vec3;

use crate::anchors::AnchorConstellation;
use crate::ekf::Ekf;
use crate::ranging::{RangingConfig, RangingMode};

/// Simulates a hovering tag and returns the steady-state position RMSE in
/// meters.
///
/// The tag sits at `truth`; the filter runs `epochs` predict/update cycles
/// at 100 Hz, discarding the first quarter as convergence transient.
///
/// # Panics
///
/// Panics if `epochs < 8`.
pub fn hover_rmse(
    anchors: &AnchorConstellation,
    cfg: &RangingConfig,
    truth: Vec3,
    epochs: usize,
    seed: u64,
) -> f64 {
    assert!(epochs >= 8, "too few epochs for a meaningful RMSE");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ekf = Ekf::new(truth + Vec3::new(0.3, -0.2, 0.25), 0.5);
    let var = cfg.noise_std_m * cfg.noise_std_m;
    let warmup = epochs / 4;
    let mut sq_err = 0.0;
    let mut count = 0usize;
    for step in 0..epochs {
        ekf.predict(0.01);
        let meas = cfg.measure(anchors, truth, &mut rng);
        // Measurement faults (dropout epochs) simply skip the update.
        let _ = ekf.update_ranging(anchors, &meas, var);
        if step >= warmup {
            let e = ekf.position().distance(truth);
            sq_err += e * e;
            count += 1;
        }
    }
    (sq_err / count as f64).sqrt()
}

/// One row of the anchor-count ablation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnchorSweepRow {
    /// Number of anchors used.
    pub anchors: usize,
    /// Hover RMSE with TWR, meters.
    pub twr_rmse_m: f64,
    /// Hover RMSE with TDoA, meters.
    pub tdoa_rmse_m: f64,
}

/// Sweeps the anchor count from `min_anchors` up to the full constellation,
/// measuring hover RMSE for both ranging modes (averaged over `trials`
/// seeds).
///
/// # Panics
///
/// Panics if `min_anchors < 4` (no 3D fix below four anchors, §II-B) or
/// `trials == 0`.
pub fn anchor_count_sweep(
    full: &AnchorConstellation,
    truth: Vec3,
    min_anchors: usize,
    trials: usize,
    seed: u64,
) -> Vec<AnchorSweepRow> {
    assert!(
        min_anchors >= AnchorConstellation::MIN_FOR_3D,
        "3D localization needs at least 4 anchors"
    );
    assert!(trials > 0, "need at least one trial");
    let mut rows = Vec::new();
    for n in min_anchors..=full.len() {
        let subset = full.take(n);
        let avg = |mode: RangingMode| -> f64 {
            let cfg = RangingConfig::lps_default(mode);
            (0..trials)
                .map(|t| hover_rmse(&subset, &cfg, truth, 400, seed ^ (n as u64) << 8 ^ t as u64))
                .sum::<f64>()
                / trials as f64
        };
        rows.push(AnchorSweepRow {
            anchors: n,
            twr_rmse_m: avg(RangingMode::Twr),
            tdoa_rmse_m: avg(RangingMode::Tdoa),
        });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use aerorem_spatial::Aabb;

    fn full() -> AnchorConstellation {
        AnchorConstellation::volume_corners(Aabb::paper_volume())
    }

    fn hover_point() -> Vec3 {
        // ~1 m above ground near the middle, like the endurance test.
        Vec3::new(1.87, 1.60, 1.0)
    }

    #[test]
    fn eight_anchor_hover_is_decimeter_level() {
        for mode in [RangingMode::Twr, RangingMode::Tdoa] {
            let rmse = hover_rmse(
                &full(),
                &RangingConfig::lps_default(mode),
                hover_point(),
                400,
                1,
            );
            assert!(rmse < 0.12, "{mode:?} hover RMSE {rmse} m");
        }
    }

    #[test]
    fn six_anchor_accuracy_matches_paper_claim() {
        // §II-B: ~9 cm with 6 anchors while hovering. Allow margin.
        let rmse = hover_rmse(
            &full().take(6),
            &RangingConfig::lps_default(RangingMode::Twr),
            hover_point(),
            400,
            2,
        );
        assert!(rmse < 0.15, "6-anchor hover RMSE {rmse} m");
        assert!(rmse > 0.005, "noise floor exists");
    }

    #[test]
    fn sweep_shows_more_anchors_help() {
        let rows = anchor_count_sweep(&full(), hover_point(), 4, 3, 42);
        assert_eq!(rows.len(), 5); // 4..=8
        let first = &rows[0];
        let last = rows.last().unwrap();
        assert!(
            last.twr_rmse_m <= first.twr_rmse_m * 1.05,
            "8 anchors ({}) should not be worse than 4 ({})",
            last.twr_rmse_m,
            first.twr_rmse_m
        );
    }

    #[test]
    fn tdoa_not_worse_than_twr_on_average() {
        let rows = anchor_count_sweep(&full(), hover_point(), 6, 4, 7);
        let twr: f64 = rows.iter().map(|r| r.twr_rmse_m).sum();
        let tdoa: f64 = rows.iter().map(|r| r.tdoa_rmse_m).sum();
        // §II-B: TDoA "slightly better"; allow equality within 20 %.
        assert!(tdoa < twr * 1.2, "tdoa {tdoa} vs twr {twr}");
    }

    #[test]
    #[should_panic(expected = "at least 4")]
    fn sweep_rejects_sub_3d_minimum() {
        anchor_count_sweep(&full(), hover_point(), 3, 1, 0);
    }

    #[test]
    #[should_panic(expected = "too few epochs")]
    fn rmse_needs_epochs() {
        hover_rmse(
            &full(),
            &RangingConfig::lps_default(RangingMode::Twr),
            hover_point(),
            2,
            0,
        );
    }
}
