//! The sharded in-memory REM store.
//!
//! A [`RemStore`] ingests a [`RemSnapshot`] (all grids must share one
//! volume and lattice) and lays the voxels out twice:
//!
//! * **Bricked shards** — the lattice is cut into cubic *bricks* of
//!   `brick_edge`³ cells; brick `b` lives in shard `b % shard_count`.
//!   Point-shaped queries (point lookup, best-AP) touch exactly one brick
//!   per AP, so a multi-worker request loop can route each query to the
//!   worker that owns its shard and stay cache-local on the hot path.
//! * **Flat per-AP arrays + octrees** — region-shaped queries (box
//!   statistics, coverage isosurfaces) run against a per-AP
//!   [`VoxelOctree`] over the original row-major array, where aggregate
//!   pruning beats brick-by-brick assembly.
//!
//! Both layouts are read-only after construction; every query is a pure
//! function of (store, query), which is what makes batch execution
//! trivially deterministic under either `ExecPolicy` arm.

use std::fmt;

use aerorem_core::snapshot::RemSnapshot;
use aerorem_propagation::ap::MacAddress;
use aerorem_spatial::octree::{BoxStats, VoxelLayout, VoxelOctree};
use aerorem_spatial::{Aabb, Vec3};

use crate::query::{Query, Response};

/// Construction-time configuration of a [`RemStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreConfig {
    /// Cells per brick edge; bricks are `brick_edge`³ cells. Minimum 1.
    pub brick_edge: usize,
    /// Number of shards bricks are distributed over. Minimum 1.
    pub shard_count: usize,
}

impl Default for StoreConfig {
    /// 8³-cell bricks (4 KiB of f64 per AP — half a typical L1 line
    /// budget) over 4 shards.
    fn default() -> Self {
        StoreConfig {
            brick_edge: 8,
            shard_count: 4,
        }
    }
}

/// Why a snapshot could not be ingested.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// The snapshot holds no grids.
    EmptySnapshot,
    /// Grid `index` disagrees with grid 0 on volume or dimensions.
    MismatchedGrid {
        /// Index of the disagreeing grid.
        index: usize,
    },
    /// Two grids share a MAC address.
    DuplicateMac(MacAddress),
    /// `brick_edge` or `shard_count` was zero.
    BadConfig,
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::EmptySnapshot => write!(f, "snapshot holds no grids"),
            StoreError::MismatchedGrid { index } => write!(
                f,
                "grid {index} disagrees with grid 0 on volume or dimensions"
            ),
            StoreError::DuplicateMac(mac) => write!(f, "duplicate grid for {mac}"),
            StoreError::BadConfig => write!(f, "brick_edge and shard_count must be >= 1"),
        }
    }
}

impl std::error::Error for StoreError {}

/// One shard: the bricks it owns, per AP, slot-major.
///
/// Shard `s` owns bricks `s, s + shard_count, s + 2·shard_count, …`; the
/// brick with global id `b` sits at local slot `b / shard_count`. Each
/// brick is `brick_edge`³ values; cells beyond the lattice edge are
/// NaN-padded so every brick has the same stride.
#[derive(Debug, Clone)]
struct Shard {
    /// `per_ap[ap][slot * brick_volume + offset]`.
    per_ap: Vec<Vec<f64>>,
}

/// A read-only, sharded, octree-indexed store of one REM snapshot.
///
/// # Examples
///
/// ```
/// use aerorem_core::rem::RemGrid;
/// use aerorem_core::snapshot::RemSnapshot;
/// use aerorem_propagation::ap::MacAddress;
/// use aerorem_serve::{Query, RemStore, StoreConfig};
/// use aerorem_spatial::{Aabb, Vec3};
/// use aerorem_numerics::ExecPolicy;
///
/// let grid = RemGrid::from_parts(
///     MacAddress::from_index(1),
///     Aabb::paper_volume(),
///     (8, 8, 4),
///     (0..256).map(|i| -40.0 - (i % 30) as f64).collect(),
/// ).unwrap();
/// let snap = RemSnapshot::new(vec![grid]).unwrap();
/// let store = RemStore::build(&snap, StoreConfig::default()).unwrap();
/// let q = Query::Point { pos: Vec3::new(1.0, 1.0, 1.0), ap: MacAddress::from_index(1) };
/// let resp = store.submit_batch(&[q], ExecPolicy::Serial).unwrap();
/// assert_eq!(resp.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct RemStore {
    layout: VoxelLayout,
    /// Sorted ascending; index here is the AP index everywhere else.
    macs: Vec<MacAddress>,
    /// Per-AP row-major value arrays, aligned with `macs`.
    flat: Vec<Vec<f64>>,
    /// Per-AP aggregate octrees over `flat`, aligned with `macs`.
    octrees: Vec<VoxelOctree>,
    shards: Vec<Shard>,
    brick_edge: usize,
    /// Brick-grid dimensions (bricks per axis).
    brick_dims: (usize, usize, usize),
    /// Test hook: queries naming this AP panic inside [`RemStore::answer`],
    /// letting tests prove a worker panic fails the batch, not the process.
    #[cfg(test)]
    pub(crate) panic_mac: Option<MacAddress>,
}

impl RemStore {
    /// Ingests a snapshot.
    ///
    /// All grids must share one volume and one lattice shape, and carry
    /// distinct MAC addresses. Grids are re-sorted by MAC so AP iteration
    /// order (and thus best-AP tie-breaking) is independent of snapshot
    /// order.
    ///
    /// # Errors
    ///
    /// Returns the specific [`StoreError`] for empty snapshots, shape
    /// mismatches, duplicate MACs, or a zero in the config.
    pub fn build(snapshot: &RemSnapshot, config: StoreConfig) -> Result<Self, StoreError> {
        if config.brick_edge == 0 || config.shard_count == 0 {
            return Err(StoreError::BadConfig);
        }
        let grids = snapshot.grids();
        let first = grids.first().ok_or(StoreError::EmptySnapshot)?;
        for (index, g) in grids.iter().enumerate() {
            if g.volume() != first.volume() || g.dims() != first.dims() {
                return Err(StoreError::MismatchedGrid { index });
            }
        }
        let mut order: Vec<usize> = (0..grids.len()).collect();
        order.sort_by_key(|&i| grids[i].mac().octets());
        for w in order.windows(2) {
            if grids[w[0]].mac() == grids[w[1]].mac() {
                return Err(StoreError::DuplicateMac(grids[w[0]].mac()));
            }
        }

        let layout = VoxelLayout::new(first.volume(), first.dims())
            .ok_or(StoreError::MismatchedGrid { index: 0 })?;
        let macs: Vec<MacAddress> = order.iter().map(|&i| grids[i].mac()).collect();
        let flat: Vec<Vec<f64>> = order.iter().map(|&i| grids[i].values().to_vec()).collect();
        let octrees: Vec<VoxelOctree> = flat
            .iter()
            .map(|v| VoxelOctree::build(layout, v).ok_or(StoreError::MismatchedGrid { index: 0 }))
            .collect::<Result<_, _>>()?;

        let b = config.brick_edge;
        let (nx, ny, nz) = layout.dims();
        let brick_dims = (nx.div_ceil(b), ny.div_ceil(b), nz.div_ceil(b));
        let total_bricks = brick_dims.0 * brick_dims.1 * brick_dims.2;
        let brick_vol = b * b * b;

        let mut shards: Vec<Shard> = (0..config.shard_count)
            .map(|s| {
                let local = (total_bricks + config.shard_count - 1 - s) / config.shard_count;
                Shard {
                    per_ap: vec![vec![f64::NAN; local * brick_vol]; macs.len()],
                }
            })
            .collect();
        for brick_id in 0..total_bricks {
            let shard_idx = brick_id % config.shard_count;
            let slot = brick_id / config.shard_count;
            let bx = brick_id % brick_dims.0;
            let by = (brick_id / brick_dims.0) % brick_dims.1;
            let bz = brick_id / (brick_dims.0 * brick_dims.1);
            for (ap, values) in flat.iter().enumerate() {
                let dst = &mut shards[shard_idx].per_ap[ap];
                for lz in 0..b.min(nz - bz * b) {
                    for ly in 0..b.min(ny - by * b) {
                        for lx in 0..b.min(nx - bx * b) {
                            let (ix, iy, iz) = (bx * b + lx, by * b + ly, bz * b + lz);
                            let src = iz * nx * ny + iy * nx + ix;
                            let off = lz * b * b + ly * b + lx;
                            dst[slot * brick_vol + off] = values[src];
                        }
                    }
                }
            }
        }

        Ok(RemStore {
            layout,
            macs,
            flat,
            octrees,
            shards,
            brick_edge: b,
            brick_dims,
            #[cfg(test)]
            panic_mac: None,
        })
    }

    /// The shared lattice layout.
    pub fn layout(&self) -> &VoxelLayout {
        &self.layout
    }

    /// The served volume.
    pub fn volume(&self) -> Aabb {
        self.layout.volume()
    }

    /// AP MAC addresses, sorted ascending.
    pub fn macs(&self) -> &[MacAddress] {
        &self.macs
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Cells per brick edge.
    pub fn brick_edge(&self) -> usize {
        self.brick_edge
    }

    /// Index of `mac` in [`RemStore::macs`], `None` when unknown.
    fn ap_index(&self, mac: MacAddress) -> Option<usize> {
        self.macs.binary_search_by_key(&mac.octets(), |m| m.octets()).ok()
    }

    /// Global brick id and in-brick offset of a flat cell index.
    fn brick_of(&self, cell: usize) -> (usize, usize) {
        let b = self.brick_edge;
        let (ix, iy, iz) = self.layout.cell_coords(cell);
        let (bdx, bdy, _) = self.brick_dims;
        let brick = (iz / b) * bdx * bdy + (iy / b) * bdx + (ix / b);
        let off = (iz % b) * b * b + (iy % b) * b + (ix % b);
        (brick, off)
    }

    /// Shard index owning the brick of a flat cell index — the routing
    /// key the batch engine uses for point-shaped queries.
    pub(crate) fn shard_of_cell(&self, cell: usize) -> usize {
        self.brick_of(cell).0 % self.shards.len()
    }

    /// Reads one (cell, ap) value through the bricked shard layout.
    fn brick_value(&self, cell: usize, ap: usize) -> f64 {
        let (brick, off) = self.brick_of(cell);
        let shard = &self.shards[brick % self.shards.len()]; // lint:allow(panic-reach) — index is reduced `% shards.len()`, and build() rejects shard_count == 0
        let slot = brick / self.shards.len();
        let brick_vol = self.brick_edge * self.brick_edge * self.brick_edge;
        shard.per_ap[ap][slot * brick_vol + off] // lint:allow(panic-reach) — ap comes from ap_index(); build() sizes each shard to its ceil-divided brick share, so slot·vol+off is in range
    }

    /// Point lookup: predicted RSS of `ap` at `pos`, `None` outside the
    /// volume, for an unknown AP, or where the map has no finite value.
    /// Served from the bricked shards (the hot path the bench drives).
    pub fn point(&self, pos: Vec3, ap: MacAddress) -> Option<f64> {
        let ap = self.ap_index(ap)?;
        let cell = self.layout.cell_index_of(pos)?;
        let v = self.brick_value(cell, ap);
        v.is_finite().then_some(v)
    }

    /// Best AP at `pos`: the strongest finite prediction, ties toward the
    /// lowest MAC. All APs of one cell live in the same brick, so this
    /// stays a single-shard read.
    pub fn best_ap(&self, pos: Vec3) -> Option<(MacAddress, f64)> {
        let cell = self.layout.cell_index_of(pos)?;
        let mut best: Option<(MacAddress, f64)> = None;
        for (ap, &mac) in self.macs.iter().enumerate() {
            let v = self.brick_value(cell, ap);
            if v.is_finite() && best.is_none_or(|(_, bv)| v > bv) {
                best = Some((mac, v));
            }
        }
        best
    }

    /// Exact finite-value aggregates of `ap` over `region` (octree path).
    /// [`BoxStats::empty`] for an unknown AP.
    pub fn box_stats(&self, region: &Aabb, ap: MacAddress) -> BoxStats {
        match self.ap_index(ap) {
            Some(i) => self.octrees[i].box_stats(region, &self.flat[i]), // lint:allow(panic-reach) — ap_index() returns positions in macs; octrees/flat are built aligned with macs
            None => BoxStats::empty(),
        }
    }

    /// Flat cell indices where `ap` delivers at least `threshold_dbm`
    /// (octree isosurface path). Empty for an unknown AP.
    pub fn coverage_cells(&self, threshold_dbm: f64, ap: MacAddress) -> Vec<usize> {
        match self.ap_index(ap) {
            Some(i) => self.octrees[i].cells_above(threshold_dbm, &self.flat[i]), // lint:allow(panic-reach) — ap_index() returns positions in macs; octrees/flat are built aligned with macs
            None => Vec::new(),
        }
    }

    /// Answers one query. Every [`Response`] is a pure function of the
    /// store and the query — the batch engine relies on that to scatter
    /// work across workers without changing any answer.
    pub fn answer(&self, query: &Query) -> Response {
        #[cfg(test)]
        {
            let named = match *query {
                Query::Point { ap, .. }
                | Query::BoxStats { ap, .. }
                | Query::Coverage { ap, .. } => Some(ap),
                Query::BestAp { .. } => None,
            };
            if named.is_some() && named == self.panic_mac {
                panic!("test hook: query named the poisoned AP");
            }
        }
        match *query {
            Query::Point { pos, ap } => Response::Value(self.point(pos, ap)),
            Query::BestAp { pos } => Response::Best(self.best_ap(pos)),
            Query::BoxStats { region, ap } => Response::Stats(self.box_stats(&region, ap)),
            Query::Coverage { threshold_dbm, ap } => {
                let cells = self.coverage_cells(threshold_dbm, ap).len();
                let total = match self.ap_index(ap) {
                    Some(i) => self.octrees[i].root_stats().count, // lint:allow(panic-reach) — ap_index() returns positions in macs; octrees is built aligned with macs
                    None => 0,
                };
                let fraction = if total == 0 {
                    0.0
                } else {
                    cells as f64 / total as f64
                };
                Response::Covered { cells, fraction }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aerorem_core::rem::RemGrid;

    fn synth_grid(mac_index: u32, dims: (usize, usize, usize), phase: f64) -> RemGrid {
        let (nx, ny, nz) = dims;
        let values = (0..nx * ny * nz)
            .map(|i| -35.0 - ((i as f64 + phase) * 0.613).sin() * 30.0)
            .collect();
        RemGrid::from_parts(
            MacAddress::from_index(mac_index),
            Aabb::paper_volume(),
            dims,
            values,
        )
        .unwrap()
    }

    fn two_ap_store(config: StoreConfig) -> RemStore {
        let snap = RemSnapshot::new(vec![
            synth_grid(2, (13, 11, 7), 5.0),
            synth_grid(1, (13, 11, 7), 0.0),
        ])
        .unwrap();
        RemStore::build(&snap, config).unwrap()
    }

    #[test]
    fn build_validates_inputs() {
        let mismatched = RemSnapshot::new(vec![
            synth_grid(1, (4, 4, 4), 0.0),
            synth_grid(2, (5, 4, 4), 0.0),
        ])
        .unwrap();
        let err = RemStore::build(&mismatched, StoreConfig::default()).unwrap_err();
        assert_eq!(err, StoreError::MismatchedGrid { index: 1 });
        let dup = RemSnapshot::new(vec![
            synth_grid(1, (4, 4, 4), 0.0),
            synth_grid(1, (4, 4, 4), 3.0),
        ])
        .unwrap();
        let err = RemStore::build(&dup, StoreConfig::default()).unwrap_err();
        assert_eq!(err, StoreError::DuplicateMac(MacAddress::from_index(1)));
        let snap = RemSnapshot::new(vec![synth_grid(1, (4, 4, 4), 0.0)]).unwrap();
        let err = RemStore::build(
            &snap,
            StoreConfig {
                brick_edge: 0,
                shard_count: 1,
            },
        )
        .unwrap_err();
        assert_eq!(err, StoreError::BadConfig);
    }

    #[test]
    fn macs_are_sorted_regardless_of_snapshot_order() {
        let store = two_ap_store(StoreConfig::default());
        assert_eq!(
            store.macs(),
            &[MacAddress::from_index(1), MacAddress::from_index(2)]
        );
    }

    #[test]
    fn brick_reads_match_flat_reads_for_every_cell_and_config() {
        // Brick edges that divide the dims unevenly, shard counts from 1
        // (degenerate) past the brick count.
        for &(brick_edge, shard_count) in
            &[(1, 1), (3, 2), (4, 4), (8, 3), (5, 7), (16, 64)]
        {
            let store = two_ap_store(StoreConfig {
                brick_edge,
                shard_count,
            });
            for ap in 0..store.macs.len() {
                for cell in 0..store.layout.cell_count() {
                    let flat = store.flat[ap][cell];
                    let brick = store.brick_value(cell, ap);
                    assert_eq!(
                        flat.to_bits(),
                        brick.to_bits(),
                        "cell {cell} ap {ap} edge {brick_edge} shards {shard_count}"
                    );
                }
            }
        }
    }

    #[test]
    fn point_queries_answer_from_shards() {
        let store = two_ap_store(StoreConfig::default());
        let mac = MacAddress::from_index(1);
        let pos = Vec3::new(1.0, 1.3, 0.9);
        let cell = store.layout.cell_index_of(pos).unwrap();
        assert_eq!(store.point(pos, mac), Some(store.flat[0][cell]));
        // Outside the volume and unknown APs are None.
        assert_eq!(store.point(Vec3::new(-1.0, 0.0, 0.0), mac), None);
        assert_eq!(store.point(pos, MacAddress::from_index(99)), None);
    }

    #[test]
    fn best_ap_is_the_argmax_with_low_mac_ties() {
        let store = two_ap_store(StoreConfig::default());
        let pos = Vec3::new(2.0, 2.0, 1.0);
        let cell = store.layout.cell_index_of(pos).unwrap();
        let (mac, v) = store.best_ap(pos).unwrap();
        let v1 = store.flat[0][cell];
        let v2 = store.flat[1][cell];
        assert_eq!(v, v1.max(v2));
        let expect = if v1 >= v2 {
            MacAddress::from_index(1)
        } else {
            MacAddress::from_index(2)
        };
        assert_eq!(mac, expect, "ties go to the lower MAC");
        assert!(store.best_ap(Vec3::new(9.0, 9.0, 9.0)).is_none());
    }

    #[test]
    fn region_queries_delegate_to_the_octree() {
        let store = two_ap_store(StoreConfig::default());
        let mac = MacAddress::from_index(2);
        let region = Aabb::new(Vec3::new(0.4, 0.4, 0.3), Vec3::new(2.9, 2.7, 1.8)).unwrap();
        let stats = store.box_stats(&region, mac);
        assert!(stats.count > 0);
        assert!(stats.min <= stats.max);
        // Unknown AP → empty aggregate, not a panic.
        assert_eq!(store.box_stats(&region, MacAddress::from_index(9)).count, 0);

        let cells = store.coverage_cells(-40.0, mac);
        assert!(cells.windows(2).all(|w| w[0] < w[1]), "sorted ascending");
        let Response::Covered { cells: n, fraction } = store.answer(&Query::Coverage {
            threshold_dbm: -40.0,
            ap: mac,
        }) else {
            panic!("wrong response shape")
        };
        assert_eq!(n, cells.len());
        assert!((0.0..=1.0).contains(&fraction));
    }
}
