//! The AeroREM wire format: length-prefixed, CRC-protected frames over a
//! byte stream.
//!
//! Byte-level spec: `docs/WIRE_FORMAT.md` — every offset, constant, and
//! rejection rule in this module is normative there. The short version:
//! a 32-byte frame header (magic `ARWF`, version, kind, namespace id,
//! sequence number, payload length, payload CRC-32, header CRC-32)
//! followed by `payload_len` payload bytes. Payloads carry [`Message`]s,
//! which in turn carry the serving layer's [`Query`]/[`Response`] types
//! encoded with the same [`aerorem_numerics::codec`] primitives as the
//! snapshot format — floats travel as raw IEEE-754 bits, so a response
//! decoded from the wire is **bit-identical** to the in-process answer.
//!
//! Decoding is hostile-input safe by construction: every multi-byte field
//! is covered by a checksum or checked literally, declared lengths are
//! capped *before* any allocation is sized from them, and every reject
//! path is a typed [`WireError`] — never a panic (test-enforced over
//! single-byte flips, truncations, and oversized lengths in
//! `tests/wire.rs`).

use std::fmt;

use aerorem_numerics::codec::{crc32, ByteReader, ByteWriter, CodecError};
use aerorem_propagation::ap::MacAddress;
use aerorem_spatial::octree::BoxStats;
use aerorem_spatial::{Aabb, Vec3};

use crate::query::{Query, Response};

/// Frame magic: ASCII `ARWF` ("AeroRem Wire Format").
pub const WIRE_MAGIC: [u8; 4] = *b"ARWF";

/// Current (and only) wire format version. Readers reject any other.
pub const WIRE_VERSION: u16 = 1;

/// Frame header size in bytes; a frame is exactly this plus its payload.
pub const FRAME_HEADER_LEN: usize = 32;

/// Hard cap on a frame's declared payload length (1 GiB). A header
/// declaring more is rejected before any payload byte is read or any
/// allocation is sized, so hostile lengths cannot OOM a peer.
pub const MAX_PAYLOAD: u32 = 1 << 30;

/// Cap on an error frame's detail string.
const MAX_ERROR_DETAIL: usize = 1 << 16;

/// Cap on a namespace name.
const MAX_NAME: usize = 255;

/// Initial capacity clamp when decoding counted sequences: allocation
/// grows with bytes actually read, never with a hostile declared count.
const PREALLOC_CLAMP: usize = 4096;

/// What a frame carries — byte 6 of the header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum FrameKind {
    /// Client → server: a batch of queries against one namespace.
    Request = 1,
    /// Server → client: the answers to one request, in slot order.
    Response = 2,
    /// Server → client: the request it echoes (by `seq`) failed.
    Error = 3,
    /// Client → server: load (or hot-swap) a snapshot into a namespace.
    Load = 4,
    /// Server → client: the snapshot was installed.
    Loaded = 5,
    /// Client → server: enumerate namespaces.
    List = 6,
    /// Server → client: the namespace table.
    Listing = 7,
    /// Client → server: stop the daemon.
    Shutdown = 8,
    /// Server → client: shutdown acknowledged; the connection closes.
    Bye = 9,
}

impl FrameKind {
    fn from_u8(v: u8) -> Option<FrameKind> {
        Some(match v {
            1 => FrameKind::Request,
            2 => FrameKind::Response,
            3 => FrameKind::Error,
            4 => FrameKind::Load,
            5 => FrameKind::Loaded,
            6 => FrameKind::List,
            7 => FrameKind::Listing,
            8 => FrameKind::Shutdown,
            9 => FrameKind::Bye,
            _ => return None,
        })
    }
}

/// Error frame codes — `code` field of [`Message::Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u16)]
pub enum ErrorCode {
    /// The frame named a namespace id the daemon does not serve.
    UnknownNamespace = 1,
    /// The frame's payload failed to decode as its kind's message.
    BadPayload = 2,
    /// A `Load` carried bytes that are not a valid snapshot.
    SnapshotRejected = 3,
    /// A decoded snapshot failed [`crate::RemStore::build`] validation.
    StoreRejected = 4,
    /// The batch failed inside the engine (see [`crate::ServeError`]).
    BatchFailed = 5,
}

impl ErrorCode {
    fn from_u16(v: u16) -> Option<ErrorCode> {
        Some(match v {
            1 => ErrorCode::UnknownNamespace,
            2 => ErrorCode::BadPayload,
            3 => ErrorCode::SnapshotRejected,
            4 => ErrorCode::StoreRejected,
            5 => ErrorCode::BatchFailed,
            _ => return None,
        })
    }
}

/// Every way a byte sequence can fail to be a frame or message. Decoding
/// never panics; hostile input lands in exactly one of these.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The first four bytes are not [`WIRE_MAGIC`].
    BadMagic {
        /// The bytes found instead.
        found: [u8; 4],
    },
    /// The header declared a version this reader does not speak.
    UnsupportedVersion {
        /// The version found.
        found: u16,
    },
    /// The header CRC-32 does not match bytes 0–27 — some header field
    /// (kind, flags, namespace, seq, lengths, or the CRC itself) flipped.
    HeaderChecksum,
    /// The (checksum-valid) kind byte is not a known [`FrameKind`].
    BadKind {
        /// The byte found.
        found: u8,
    },
    /// The flags byte is not zero; v1 defines no flags.
    BadFlags {
        /// The byte found.
        found: u8,
    },
    /// The header declared a payload longer than [`MAX_PAYLOAD`].
    Oversized {
        /// Declared payload length.
        declared: u64,
        /// The cap it exceeded.
        max: u64,
    },
    /// The payload CRC-32 does not match the payload bytes.
    PayloadChecksum,
    /// The input ended mid-frame or mid-field.
    Truncated(CodecError),
    /// Bytes remained after the structure the payload declared.
    TrailingBytes {
        /// How many bytes were left over.
        extra: usize,
    },
    /// A query record's tag byte is not a known query kind.
    BadQueryTag {
        /// The byte found.
        found: u8,
    },
    /// A response record's tag byte is not a known response kind.
    BadResponseTag {
        /// The byte found.
        found: u8,
    },
    /// An option-presence byte was neither 0 nor 1.
    BadPresence {
        /// The byte found.
        found: u8,
    },
    /// A box-stats region decoded to a box with non-positive extent.
    BadBounds,
    /// A name field was not valid UTF-8 or exceeded its length cap.
    BadName,
    /// An error frame carried an unknown [`ErrorCode`].
    BadErrorCode {
        /// The code found.
        found: u16,
    },
    /// The payload's message does not match the frame's kind byte.
    KindMismatch,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::BadMagic { found } => {
                write!(f, "bad frame magic {found:02X?}, expected {WIRE_MAGIC:02X?}")
            }
            WireError::UnsupportedVersion { found } => {
                write!(f, "unsupported wire version {found}, this reader speaks {WIRE_VERSION}")
            }
            WireError::HeaderChecksum => write!(f, "frame header CRC-32 mismatch"),
            WireError::BadKind { found } => write!(f, "unknown frame kind byte {found:#04x}"),
            WireError::BadFlags { found } => {
                write!(f, "flags byte {found:#04x} is not zero; v1 defines no flags")
            }
            WireError::Oversized { declared, max } => {
                write!(f, "declared payload of {declared} bytes exceeds the {max}-byte cap")
            }
            WireError::PayloadChecksum => write!(f, "frame payload CRC-32 mismatch"),
            WireError::Truncated(e) => write!(f, "truncated frame: {e}"),
            WireError::TrailingBytes { extra } => {
                write!(f, "{extra} byte(s) after the end of the declared payload structure")
            }
            WireError::BadQueryTag { found } => write!(f, "unknown query tag {found:#04x}"),
            WireError::BadResponseTag { found } => {
                write!(f, "unknown response tag {found:#04x}")
            }
            WireError::BadPresence { found } => {
                write!(f, "presence byte {found:#04x} is neither 0 nor 1")
            }
            WireError::BadBounds => write!(f, "region bounds have non-positive extent"),
            WireError::BadName => write!(f, "name is not valid UTF-8 or exceeds the length cap"),
            WireError::BadErrorCode { found } => write!(f, "unknown error code {found}"),
            WireError::KindMismatch => {
                write!(f, "payload message does not match the frame kind byte")
            }
        }
    }
}

impl std::error::Error for WireError {}

impl From<CodecError> for WireError {
    fn from(e: CodecError) -> Self {
        WireError::Truncated(e)
    }
}

/// One frame: the header's routing fields plus the raw payload bytes.
///
/// [`Frame::encode`] and the decode functions are exact inverses; the
/// payload is opaque at this layer — [`Message`] gives it meaning.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    /// What the payload carries.
    pub kind: FrameKind,
    /// Namespace the frame addresses (requests/loads); writers set 0
    /// when the kind does not address one.
    pub namespace: u32,
    /// Correlation id: servers echo the request's `seq` in every reply.
    pub seq: u64,
    /// The message bytes (see [`Message`]).
    pub payload: Vec<u8>,
}

impl Frame {
    /// Encodes the frame: 32-byte header + payload.
    ///
    /// # Panics
    ///
    /// If `payload` exceeds [`MAX_PAYLOAD`] — writers construct payloads
    /// and must keep them under the protocol cap.
    pub fn encode(&self) -> Vec<u8> {
        assert!(
            self.payload.len() <= MAX_PAYLOAD as usize,
            "payload exceeds the protocol cap"
        );
        let mut w = ByteWriter::with_capacity(FRAME_HEADER_LEN + self.payload.len());
        w.put_bytes(&WIRE_MAGIC);
        w.put_u16(WIRE_VERSION);
        w.put_u8(self.kind as u8);
        w.put_u8(0); // flags, reserved
        w.put_u32(self.namespace);
        w.put_u64(self.seq);
        w.put_u32(self.payload.len() as u32);
        w.put_u32(crc32(&self.payload));
        let header_crc = crc32(w.as_slice());
        w.put_u32(header_crc);
        w.put_bytes(&self.payload);
        w.into_bytes()
    }

    /// Decodes one frame from the front of a stream buffer.
    ///
    /// Returns `Ok(None)` when `buf` holds a valid-so-far prefix that
    /// needs more bytes, and `Ok(Some((frame, consumed)))` when a full
    /// frame was decoded — the caller drains `consumed` bytes and may call
    /// again for pipelined frames.
    ///
    /// # Errors
    ///
    /// Any malformed header or payload is a [`WireError`]; the connection
    /// is then unsynchronized and should be closed. Header fields are
    /// validated as soon as the 32 header bytes are present, so an
    /// oversized declared length fails **before** waiting for (or
    /// allocating) payload bytes.
    pub fn decode_stream(buf: &[u8]) -> Result<Option<(Frame, usize)>, WireError> {
        if buf.len() < FRAME_HEADER_LEN {
            return Ok(None);
        }
        let header = Self::check_header(buf)?;
        let total = FRAME_HEADER_LEN + header.payload_len as usize;
        if buf.len() < total {
            return Ok(None);
        }
        let payload = &buf[FRAME_HEADER_LEN..total]; // lint:allow(panic-reach) — the two guards above return Ok(None) unless buf.len() ≥ total ≥ FRAME_HEADER_LEN
        if crc32(payload) != header.payload_crc {
            return Err(WireError::PayloadChecksum);
        }
        Ok(Some((
            Frame {
                kind: header.kind,
                namespace: header.namespace,
                seq: header.seq,
                payload: payload.to_vec(),
            },
            total,
        )))
    }

    /// Decodes a buffer that must hold exactly one frame.
    ///
    /// # Errors
    ///
    /// Everything [`Frame::decode_stream`] rejects, plus
    /// [`WireError::Truncated`] for an incomplete frame and
    /// [`WireError::TrailingBytes`] for bytes after it.
    pub fn decode_exact(buf: &[u8]) -> Result<Frame, WireError> {
        match Self::decode_stream(buf)? {
            Some((frame, consumed)) if consumed == buf.len() => Ok(frame),
            Some((_, consumed)) => Err(WireError::TrailingBytes {
                extra: buf.len() - consumed,
            }),
            None => Err(WireError::Truncated(CodecError::UnexpectedEof {
                offset: 0,
                wanted: FRAME_HEADER_LEN,
                remaining: buf.len(),
            })),
        }
    }

    /// Validates the 32 header bytes at the front of `buf` (which must be
    /// at least [`FRAME_HEADER_LEN`] long) and extracts its fields.
    ///
    /// Order matters for typed rejection: magic and version are checked
    /// literally first (they identify the protocol), then the header CRC
    /// (so a flip in *any* other header byte is `HeaderChecksum`), and
    /// only then the semantic validity of checksum-correct fields.
    fn check_header(buf: &[u8]) -> Result<Header, WireError> {
        let magic: [u8; 4] = buf[0..4].try_into().expect("4-byte slice"); // lint:allow(panic-reach) — a 4-byte range into a [u8; 4] cannot fail; callers guarantee FRAME_HEADER_LEN bytes
        if magic != WIRE_MAGIC {
            return Err(WireError::BadMagic { found: magic });
        }
        let version = u16::from_le_bytes([buf[4], buf[5]]);
        if version != WIRE_VERSION {
            return Err(WireError::UnsupportedVersion { found: version });
        }
        let declared_crc = u32::from_le_bytes([buf[28], buf[29], buf[30], buf[31]]);
        if crc32(&buf[..28]) != declared_crc {
            return Err(WireError::HeaderChecksum);
        }
        let kind = FrameKind::from_u8(buf[6]).ok_or(WireError::BadKind { found: buf[6] })?;
        if buf[7] != 0 {
            return Err(WireError::BadFlags { found: buf[7] });
        }
        let namespace = u32::from_le_bytes([buf[8], buf[9], buf[10], buf[11]]);
        let seq = u64::from_le_bytes([
            buf[12], buf[13], buf[14], buf[15], buf[16], buf[17], buf[18], buf[19],
        ]);
        let payload_len = u32::from_le_bytes([buf[20], buf[21], buf[22], buf[23]]);
        if payload_len > MAX_PAYLOAD {
            return Err(WireError::Oversized {
                declared: payload_len as u64,
                max: MAX_PAYLOAD as u64,
            });
        }
        let payload_crc = u32::from_le_bytes([buf[24], buf[25], buf[26], buf[27]]);
        Ok(Header {
            kind,
            namespace,
            seq,
            payload_len,
            payload_crc,
        })
    }
}

/// A validated frame header's fields.
struct Header {
    kind: FrameKind,
    namespace: u32,
    seq: u64,
    payload_len: u32,
    payload_crc: u32,
}

/// One row of a [`Message::Listing`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NamespaceInfo {
    /// Namespace id — the value request frames put in their header.
    pub id: u32,
    /// Snapshot generation currently served (bumps on every hot-swap).
    pub generation: u64,
    /// APs in the served snapshot.
    pub aps: u32,
    /// Voxel cells per AP grid.
    pub cells: u64,
    /// Human-chosen namespace name (≤ 255 bytes of UTF-8).
    pub name: String,
}

/// The meaning of a frame's payload, by [`FrameKind`].
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// A batch of queries against the frame's namespace.
    Request {
        /// Queries, answered in order.
        queries: Vec<Query>,
    },
    /// The answers to one request.
    Response {
        /// Store generation that answered — lets clients observe
        /// hot-swaps.
        generation: u64,
        /// One response per query, in request order.
        responses: Vec<Response>,
    },
    /// The request this frame echoes (by seq) failed.
    Error {
        /// Machine-readable failure class.
        code: ErrorCode,
        /// Human-readable detail.
        detail: String,
    },
    /// Install `snapshot` under `name`: a new namespace if the name is
    /// unknown, a hot-swap of the existing one otherwise.
    Load {
        /// Namespace name.
        name: String,
        /// A complete `docs/SNAPSHOT_FORMAT.md` image.
        snapshot: Vec<u8>,
    },
    /// A [`Message::Load`] succeeded.
    Loaded {
        /// Id assigned to (or already held by) the namespace.
        namespace: u32,
        /// Generation now being served.
        generation: u64,
        /// APs in the installed snapshot.
        aps: u32,
        /// Voxel cells per AP grid.
        cells: u64,
    },
    /// Enumerate namespaces.
    List,
    /// The namespace table.
    Listing {
        /// One row per namespace, ascending by id.
        namespaces: Vec<NamespaceInfo>,
    },
    /// Stop the daemon.
    Shutdown,
    /// Shutdown acknowledged.
    Bye,
}

impl Message {
    /// The frame kind this message travels under.
    pub fn kind(&self) -> FrameKind {
        match self {
            Message::Request { .. } => FrameKind::Request,
            Message::Response { .. } => FrameKind::Response,
            Message::Error { .. } => FrameKind::Error,
            Message::Load { .. } => FrameKind::Load,
            Message::Loaded { .. } => FrameKind::Loaded,
            Message::List => FrameKind::List,
            Message::Listing { .. } => FrameKind::Listing,
            Message::Shutdown => FrameKind::Shutdown,
            Message::Bye => FrameKind::Bye,
        }
    }

    /// Encodes the message into a frame addressed at `namespace` with
    /// correlation id `seq`.
    pub fn into_frame(self, namespace: u32, seq: u64) -> Frame {
        let mut w = ByteWriter::new();
        let kind = self.kind();
        match self {
            Message::Request { queries } => {
                w.put_u32(queries.len() as u32);
                for q in &queries {
                    encode_query(&mut w, q);
                }
            }
            Message::Response {
                generation,
                responses,
            } => {
                w.put_u64(generation);
                w.put_u32(responses.len() as u32);
                for r in &responses {
                    encode_response(&mut w, r);
                }
            }
            Message::Error { code, detail } => {
                w.put_u16(code as u16);
                let mut detail = detail.into_bytes();
                detail.truncate(MAX_ERROR_DETAIL);
                w.put_len_bytes(&detail);
            }
            Message::Load { name, snapshot } => {
                w.put_len_bytes(name.as_bytes());
                w.put_len_bytes(&snapshot);
            }
            Message::Loaded {
                namespace,
                generation,
                aps,
                cells,
            } => {
                w.put_u32(namespace);
                w.put_u64(generation);
                w.put_u32(aps);
                w.put_u64(cells);
            }
            Message::List | Message::Shutdown | Message::Bye => {}
            Message::Listing { namespaces } => {
                w.put_u32(namespaces.len() as u32);
                for ns in &namespaces {
                    w.put_u32(ns.id);
                    w.put_u64(ns.generation);
                    w.put_u32(ns.aps);
                    w.put_u64(ns.cells);
                    w.put_len_bytes(ns.name.as_bytes());
                }
            }
        }
        Frame {
            kind,
            namespace,
            seq,
            payload: w.into_bytes(),
        }
    }

    /// Decodes a frame's payload according to its kind byte.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] when the payload ends mid-field,
    /// [`WireError::TrailingBytes`] when bytes remain after the declared
    /// structure, and the payload-specific variants (bad tags, presence
    /// bytes, bounds, names, error codes) for semantic rejects.
    pub fn from_frame(frame: &Frame) -> Result<Message, WireError> {
        let mut r = ByteReader::new(&frame.payload);
        let msg = match frame.kind {
            FrameKind::Request => {
                let count = r.take_u32()? as usize;
                let mut queries = Vec::with_capacity(count.min(PREALLOC_CLAMP));
                for _ in 0..count {
                    queries.push(decode_query(&mut r)?);
                }
                Message::Request { queries }
            }
            FrameKind::Response => {
                let generation = r.take_u64()?;
                let count = r.take_u32()? as usize;
                let mut responses = Vec::with_capacity(count.min(PREALLOC_CLAMP));
                for _ in 0..count {
                    responses.push(decode_response(&mut r)?);
                }
                Message::Response {
                    generation,
                    responses,
                }
            }
            FrameKind::Error => {
                let raw = r.take_u16()?;
                let code =
                    ErrorCode::from_u16(raw).ok_or(WireError::BadErrorCode { found: raw })?;
                let detail = r.take_len_bytes(MAX_ERROR_DETAIL)?;
                let detail =
                    String::from_utf8(detail.to_vec()).map_err(|_| WireError::BadName)?;
                Message::Error { code, detail }
            }
            FrameKind::Load => {
                let name = take_name(&mut r)?;
                let snapshot = r.take_len_bytes(MAX_PAYLOAD as usize)?.to_vec();
                Message::Load { name, snapshot }
            }
            FrameKind::Loaded => Message::Loaded {
                namespace: r.take_u32()?,
                generation: r.take_u64()?,
                aps: r.take_u32()?,
                cells: r.take_u64()?,
            },
            FrameKind::List => Message::List,
            FrameKind::Listing => {
                let count = r.take_u32()? as usize;
                let mut namespaces = Vec::with_capacity(count.min(PREALLOC_CLAMP));
                for _ in 0..count {
                    let id = r.take_u32()?;
                    let generation = r.take_u64()?;
                    let aps = r.take_u32()?;
                    let cells = r.take_u64()?;
                    let name = take_name(&mut r)?;
                    namespaces.push(NamespaceInfo {
                        id,
                        generation,
                        aps,
                        cells,
                        name,
                    });
                }
                Message::Listing { namespaces }
            }
            FrameKind::Shutdown => Message::Shutdown,
            FrameKind::Bye => Message::Bye,
        };
        if !r.is_empty() {
            return Err(WireError::TrailingBytes {
                extra: r.remaining(),
            });
        }
        Ok(msg)
    }
}

/// Reads a length-prefixed, cap-checked, UTF-8 name.
fn take_name(r: &mut ByteReader<'_>) -> Result<String, WireError> {
    let bytes = match r.take_len_bytes(MAX_NAME) {
        Ok(b) => b,
        Err(CodecError::OverlongField { .. }) => return Err(WireError::BadName),
        Err(e) => return Err(WireError::Truncated(e)),
    };
    String::from_utf8(bytes.to_vec()).map_err(|_| WireError::BadName)
}

fn put_vec3(w: &mut ByteWriter, v: Vec3) {
    w.put_f64(v.x);
    w.put_f64(v.y);
    w.put_f64(v.z);
}

fn take_vec3(r: &mut ByteReader<'_>) -> Result<Vec3, CodecError> {
    Ok(Vec3::new(r.take_f64()?, r.take_f64()?, r.take_f64()?))
}

fn put_mac(w: &mut ByteWriter, mac: MacAddress) {
    w.put_bytes(&mac.octets());
}

fn take_mac(r: &mut ByteReader<'_>) -> Result<MacAddress, CodecError> {
    let b = r.take_bytes(6)?;
    Ok(MacAddress([b[0], b[1], b[2], b[3], b[4], b[5]]))
}

/// Query record tags (first byte of each query record).
const QUERY_POINT: u8 = 1;
const QUERY_BEST_AP: u8 = 2;
const QUERY_BOX_STATS: u8 = 3;
const QUERY_COVERAGE: u8 = 4;

/// Encodes one query record (tag byte + fields).
pub(crate) fn encode_query(w: &mut ByteWriter, q: &Query) {
    match *q {
        Query::Point { pos, ap } => {
            w.put_u8(QUERY_POINT);
            put_vec3(w, pos);
            put_mac(w, ap);
        }
        Query::BestAp { pos } => {
            w.put_u8(QUERY_BEST_AP);
            put_vec3(w, pos);
        }
        Query::BoxStats { region, ap } => {
            w.put_u8(QUERY_BOX_STATS);
            put_vec3(w, region.min());
            put_vec3(w, region.max());
            put_mac(w, ap);
        }
        Query::Coverage { threshold_dbm, ap } => {
            w.put_u8(QUERY_COVERAGE);
            w.put_f64(threshold_dbm);
            put_mac(w, ap);
        }
    }
}

/// Decodes one query record.
pub(crate) fn decode_query(r: &mut ByteReader<'_>) -> Result<Query, WireError> {
    let tag = r.take_u8()?;
    Ok(match tag {
        QUERY_POINT => Query::Point {
            pos: take_vec3(r)?,
            ap: take_mac(r)?,
        },
        QUERY_BEST_AP => Query::BestAp { pos: take_vec3(r)? },
        QUERY_BOX_STATS => {
            let min = take_vec3(r)?;
            let max = take_vec3(r)?;
            let ap = take_mac(r)?;
            let region = Aabb::new(min, max).ok_or(WireError::BadBounds)?;
            Query::BoxStats { region, ap }
        }
        QUERY_COVERAGE => Query::Coverage {
            threshold_dbm: r.take_f64()?,
            ap: take_mac(r)?,
        },
        _ => return Err(WireError::BadQueryTag { found: tag }),
    })
}

/// Response record tags.
const RESPONSE_VALUE: u8 = 1;
const RESPONSE_BEST: u8 = 2;
const RESPONSE_STATS: u8 = 3;
const RESPONSE_COVERED: u8 = 4;

/// Encodes one response record (tag byte + fields; floats as raw bits).
pub(crate) fn encode_response(w: &mut ByteWriter, resp: &Response) {
    match *resp {
        Response::Value(v) => {
            w.put_u8(RESPONSE_VALUE);
            match v {
                Some(x) => {
                    w.put_u8(1);
                    w.put_f64(x);
                }
                None => w.put_u8(0),
            }
        }
        Response::Best(best) => {
            w.put_u8(RESPONSE_BEST);
            match best {
                Some((mac, v)) => {
                    w.put_u8(1);
                    put_mac(w, mac);
                    w.put_f64(v);
                }
                None => w.put_u8(0),
            }
        }
        Response::Stats(s) => {
            w.put_u8(RESPONSE_STATS);
            w.put_f64(s.min);
            w.put_f64(s.max);
            w.put_f64(s.sum);
            w.put_u64(s.count as u64);
        }
        Response::Covered { cells, fraction } => {
            w.put_u8(RESPONSE_COVERED);
            w.put_u64(cells as u64);
            w.put_f64(fraction);
        }
    }
}

/// Decodes one response record.
pub(crate) fn decode_response(r: &mut ByteReader<'_>) -> Result<Response, WireError> {
    let tag = r.take_u8()?;
    Ok(match tag {
        RESPONSE_VALUE => Response::Value(match r.take_u8()? {
            0 => None,
            1 => Some(r.take_f64()?),
            found => return Err(WireError::BadPresence { found }),
        }),
        RESPONSE_BEST => Response::Best(match r.take_u8()? {
            0 => None,
            1 => Some((take_mac(r)?, r.take_f64()?)),
            found => return Err(WireError::BadPresence { found }),
        }),
        RESPONSE_STATS => Response::Stats(BoxStats {
            min: r.take_f64()?,
            max: r.take_f64()?,
            sum: r.take_f64()?,
            count: r.take_u64()? as usize,
        }),
        RESPONSE_COVERED => Response::Covered {
            cells: r.take_u64()? as usize,
            fraction: r.take_f64()?,
        },
        _ => return Err(WireError::BadResponseTag { found: tag }),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_queries() -> Vec<Query> {
        vec![
            Query::Point {
                pos: Vec3::new(1.25, -2.5, 0.75),
                ap: MacAddress::from_index(3),
            },
            Query::BestAp {
                pos: Vec3::new(0.0, 0.0, 0.0),
            },
            Query::BoxStats {
                region: Aabb::new(Vec3::new(0.0, 0.0, 0.0), Vec3::new(2.0, 3.0, 1.0)).unwrap(),
                ap: MacAddress::from_index(1),
            },
            Query::Coverage {
                threshold_dbm: -62.5,
                ap: MacAddress::from_index(2),
            },
        ]
    }

    fn sample_responses() -> Vec<Response> {
        vec![
            Response::Value(Some(f64::from_bits(0x7FF8_DEAD_BEEF_0001))), // NaN payload
            Response::Value(None),
            Response::Best(Some((MacAddress::from_index(9), -41.5))),
            Response::Best(None),
            Response::Stats(BoxStats {
                min: -88.0,
                max: -30.25,
                sum: -512.75,
                count: 12,
            }),
            Response::Covered {
                cells: 4096,
                fraction: 0.34375,
            },
        ]
    }

    /// Bit-level response equality (PartialEq treats NaN != NaN).
    fn responses_bit_identical(a: &[Response], b: &[Response]) -> bool {
        a.len() == b.len()
            && a.iter().zip(b).all(|(x, y)| match (x, y) {
                (Response::Value(u), Response::Value(v)) => {
                    u.map(f64::to_bits) == v.map(f64::to_bits)
                }
                (Response::Best(u), Response::Best(v)) => {
                    u.map(|(m, x)| (m, x.to_bits())) == v.map(|(m, x)| (m, x.to_bits()))
                }
                (Response::Stats(u), Response::Stats(v)) => {
                    u.min.to_bits() == v.min.to_bits()
                        && u.max.to_bits() == v.max.to_bits()
                        && u.sum.to_bits() == v.sum.to_bits()
                        && u.count == v.count
                }
                (
                    Response::Covered { cells: uc, fraction: uf },
                    Response::Covered { cells: vc, fraction: vf },
                ) => uc == vc && uf.to_bits() == vf.to_bits(),
                _ => false,
            })
    }

    #[test]
    fn frames_round_trip_through_encode_and_both_decoders() {
        let frame = Message::Request {
            queries: sample_queries(),
        }
        .into_frame(7, 42);
        let bytes = frame.encode();
        assert_eq!(Frame::decode_exact(&bytes).unwrap(), frame);
        let (streamed, consumed) = Frame::decode_stream(&bytes).unwrap().unwrap();
        assert_eq!(streamed, frame);
        assert_eq!(consumed, bytes.len());
    }

    #[test]
    fn every_message_round_trips() {
        let messages = vec![
            Message::Request {
                queries: sample_queries(),
            },
            Message::Request { queries: vec![] },
            Message::Response {
                generation: 3,
                responses: sample_responses(),
            },
            Message::Error {
                code: ErrorCode::UnknownNamespace,
                detail: "namespace 9 is not served".into(),
            },
            Message::Load {
                name: "tower-b".into(),
                snapshot: vec![1, 2, 3, 4, 5],
            },
            Message::Loaded {
                namespace: 2,
                generation: 5,
                aps: 3,
                cells: 16384,
            },
            Message::List,
            Message::Listing {
                namespaces: vec![NamespaceInfo {
                    id: 0,
                    generation: 1,
                    aps: 3,
                    cells: 16384,
                    name: "lab".into(),
                }],
            },
            Message::Shutdown,
            Message::Bye,
        ];
        for msg in messages {
            let frame = msg.clone().into_frame(1, 99);
            let bytes = frame.encode();
            let decoded = Frame::decode_exact(&bytes).unwrap();
            let got = Message::from_frame(&decoded).unwrap();
            match (&msg, &got) {
                // Response floats may be NaN; compare at the bit level.
                (
                    Message::Response { responses: a, generation: ga },
                    Message::Response { responses: b, generation: gb },
                ) => {
                    assert_eq!(ga, gb);
                    assert!(responses_bit_identical(a, b));
                }
                _ => assert_eq!(msg, got),
            }
        }
    }

    #[test]
    fn stream_decoder_waits_for_more_bytes_then_yields_pipelined_frames() {
        let f1 = Message::List.into_frame(0, 1).encode();
        let f2 = Message::Shutdown.into_frame(0, 2).encode();
        let mut buf = Vec::new();
        buf.extend_from_slice(&f1);
        buf.extend_from_slice(&f2);
        // Every proper prefix of the first frame is "need more bytes".
        for cut in 0..f1.len() {
            assert_eq!(Frame::decode_stream(&buf[..cut]).unwrap(), None);
        }
        let (first, consumed) = Frame::decode_stream(&buf).unwrap().unwrap();
        assert_eq!(first.kind, FrameKind::List);
        assert_eq!(consumed, f1.len());
        let (second, consumed2) = Frame::decode_stream(&buf[consumed..]).unwrap().unwrap();
        assert_eq!(second.kind, FrameKind::Shutdown);
        assert_eq!(consumed + consumed2, buf.len());
    }

    #[test]
    fn oversized_declared_payload_fails_before_payload_bytes_arrive() {
        let mut bytes = Message::List.into_frame(0, 1).encode();
        // Rewrite payload_len (offset 20) to MAX_PAYLOAD + 1 and re-seal
        // the header CRC so only the length is wrong.
        bytes[20..24].copy_from_slice(&(MAX_PAYLOAD + 1).to_le_bytes());
        let crc = crc32(&bytes[..28]);
        bytes[28..32].copy_from_slice(&crc.to_le_bytes());
        assert_eq!(
            Frame::decode_stream(&bytes[..FRAME_HEADER_LEN]).unwrap_err(),
            WireError::Oversized {
                declared: (MAX_PAYLOAD + 1) as u64,
                max: MAX_PAYLOAD as u64,
            }
        );
    }

    #[test]
    fn hostile_request_counts_cannot_oversize_allocations() {
        // A request declaring u32::MAX queries with no bodies must fail
        // with a truncation error, not attempt a u32::MAX allocation.
        let mut w = ByteWriter::new();
        w.put_u32(u32::MAX);
        let frame = Frame {
            kind: FrameKind::Request,
            namespace: 0,
            seq: 0,
            payload: w.into_bytes(),
        };
        let err = Message::from_frame(&frame).unwrap_err();
        assert!(matches!(err, WireError::Truncated(_)));
    }

    #[test]
    fn kind_specific_payload_rejects_are_typed() {
        // Bad query tag.
        let mut w = ByteWriter::new();
        w.put_u32(1);
        w.put_u8(0xEE);
        let frame = Frame {
            kind: FrameKind::Request,
            namespace: 0,
            seq: 0,
            payload: w.into_bytes(),
        };
        assert_eq!(
            Message::from_frame(&frame).unwrap_err(),
            WireError::BadQueryTag { found: 0xEE }
        );

        // Inverted box bounds.
        let inverted = {
            let mut w = ByteWriter::new();
            w.put_u32(1);
            w.put_u8(QUERY_BOX_STATS);
            put_vec3(&mut w, Vec3::new(1.0, 1.0, 1.0));
            put_vec3(&mut w, Vec3::new(0.0, 0.0, 0.0));
            put_mac(&mut w, MacAddress::from_index(1));
            w.into_bytes()
        };
        let frame = Frame {
            kind: FrameKind::Request,
            namespace: 0,
            seq: 0,
            payload: inverted,
        };
        assert_eq!(Message::from_frame(&frame).unwrap_err(), WireError::BadBounds);

        // Bad presence byte in a response.
        let mut w = ByteWriter::new();
        w.put_u64(1);
        w.put_u32(1);
        w.put_u8(RESPONSE_VALUE);
        w.put_u8(7);
        let frame = Frame {
            kind: FrameKind::Response,
            namespace: 0,
            seq: 0,
            payload: w.into_bytes(),
        };
        assert_eq!(
            Message::from_frame(&frame).unwrap_err(),
            WireError::BadPresence { found: 7 }
        );

        // Trailing bytes after the declared structure.
        let mut frame = Message::List.into_frame(0, 0);
        frame.payload.push(0xAB);
        assert_eq!(
            Message::from_frame(&frame).unwrap_err(),
            WireError::TrailingBytes { extra: 1 }
        );
    }
}
