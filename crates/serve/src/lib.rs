//! REM-as-a-service: the sharded in-memory query engine over snapshot
//! grids.
//!
//! The source paper ends where the fine-grained 3D REM has been
//! generated; this crate is the layer that *serves* it. The flow
//! (diagrammed in `ARCHITECTURE.md` §"Serving layer"):
//!
//! ```text
//! rem.snap (docs/SNAPSHOT_FORMAT.md)
//!     │  RemSnapshot::load — versioned, checksummed, endian-stable
//!     ▼
//! RemStore::build
//!     ├─ bricked shards      — point / best-AP lookups, shard-affine
//!     └─ per-AP octrees      — box stats / coverage isosurfaces
//!     ▼
//! RemStore::submit_batch(&[Query], ExecPolicy) → Result<Vec<Response>, ServeError>
//! ```
//!
//! Batches answer under either [`ExecPolicy`] arm with bit-identical
//! results; the `serve` bench drives ≥1M zipfian point queries/s through
//! this path and re-checks that equivalence on every run.
//!
//! # Examples
//!
//! ```
//! use aerorem_core::rem::RemGrid;
//! use aerorem_core::snapshot::RemSnapshot;
//! use aerorem_propagation::ap::MacAddress;
//! use aerorem_serve::{ExecPolicy, Query, RemStore, Response, StoreConfig};
//! use aerorem_spatial::{Aabb, Vec3};
//!
//! let grid = RemGrid::from_parts(
//!     MacAddress::from_index(1),
//!     Aabb::paper_volume(),
//!     (8, 8, 4),
//!     (0..256).map(|i| -40.0 - (i % 30) as f64).collect(),
//! ).unwrap();
//! let snap = RemSnapshot::new(vec![grid]).unwrap();
//! let store = RemStore::build(&snap, StoreConfig::default()).unwrap();
//!
//! let queries = [
//!     Query::Point { pos: Vec3::new(1.0, 1.0, 1.0), ap: MacAddress::from_index(1) },
//!     Query::BestAp { pos: Vec3::new(2.0, 2.0, 1.5) },
//! ];
//! let responses = store.submit_batch(&queries, ExecPolicy::Serial).unwrap();
//! assert!(matches!(responses[0], Response::Value(Some(_))));
//! assert!(matches!(responses[1], Response::Best(Some(_))));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod daemon;
mod engine;
pub mod query;
pub mod store;
pub mod wire;
pub mod workload;

pub use aerorem_numerics::ExecPolicy;
pub use client::{ClientError, WireClient};
pub use daemon::{Daemon, DaemonConfig, Listener, ServerHandle};
pub use engine::{ServeError, SERVE_MIN_QUERIES_PER_SHARD};
pub use query::{Query, Response};
pub use store::{RemStore, StoreConfig, StoreError};
pub use wire::{Frame, FrameKind, Message, WireError};
pub use workload::{point_workload, Distribution, WorkloadConfig};
