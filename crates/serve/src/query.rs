//! Query and response shapes of the REM serving layer.
//!
//! The four query kinds are the user-facing shapes the source paper's
//! fine-grained 3D REMs exist to answer (§I, §V): "how strong is AP k
//! here" (point), "which AP should I associate with here" (best-AP),
//! "summarize signal over this region" (box stats), and "where does AP k
//! deliver at least x dBm" (coverage isosurface).

use aerorem_propagation::ap::MacAddress;
use aerorem_spatial::octree::BoxStats;
use aerorem_spatial::{Aabb, Vec3};

/// One REM query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Query {
    /// Predicted RSS of one AP at one position (nearest-cell lookup).
    Point {
        /// Query position, meters.
        pos: Vec3,
        /// Transmitter of interest.
        ap: MacAddress,
    },
    /// The strongest AP at one position.
    BestAp {
        /// Query position, meters.
        pos: Vec3,
    },
    /// Aggregate statistics over an axis-aligned region for one AP.
    BoxStats {
        /// Query region; cells whose centers fall inside are aggregated.
        region: Aabb,
        /// Transmitter of interest.
        ap: MacAddress,
    },
    /// Coverage isosurface: how much of the volume one AP covers at or
    /// above a threshold.
    Coverage {
        /// Minimum acceptable RSS in dBm.
        threshold_dbm: f64,
        /// Transmitter of interest.
        ap: MacAddress,
    },
}

/// The answer to one [`Query`], in the same batch slot.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Answer to [`Query::Point`]: `None` outside the volume, for an
    /// unknown AP, or where the map holds no finite value.
    Value(Option<f64>),
    /// Answer to [`Query::BestAp`]: the strongest AP and its RSS, `None`
    /// outside the volume or where no AP has a finite value. Ties break
    /// toward the lowest MAC address, so the answer is unique.
    Best(Option<(MacAddress, f64)>),
    /// Answer to [`Query::BoxStats`]: finite-value aggregates over the
    /// region ([`BoxStats::empty`] for an unknown AP or empty region).
    Stats(BoxStats),
    /// Answer to [`Query::Coverage`].
    Covered {
        /// Number of cells at or above the threshold.
        cells: usize,
        /// `cells` over the number of finite cells in the map
        /// (0.0 for an unknown AP).
        fraction: f64,
    },
}
