//! Blocking wire client for `aerorem-served`.
//!
//! [`WireClient`] speaks `docs/WIRE_FORMAT.md` over TCP or a Unix-domain
//! socket. The simple calls ([`WireClient::query`], [`WireClient::load`],
//! [`WireClient::list`], [`WireClient::shutdown`]) are strict
//! request/reply; the split [`WireClient::send_query`] /
//! [`WireClient::recv_response`] pair lets callers pipeline many request
//! frames onto the wire before collecting replies — the daemon coalesces
//! whatever it finds queued into larger `submit_batch` calls, which is
//! what the `wire` bench measures.

use std::io::{self, Read, Write};
use std::net::TcpStream;
#[cfg(unix)]
use std::os::unix::net::UnixStream;
use std::path::Path;

use crate::query::{Query, Response};
use crate::wire::{ErrorCode, Frame, FrameKind, Message, NamespaceInfo, WireError};

/// What loading a snapshot over the wire installed (mirror of the
/// daemon-side [`crate::daemon::LoadInfo`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RemoteLoadInfo {
    /// Namespace id to put in subsequent request frames.
    pub namespace: u32,
    /// Generation now being served.
    pub generation: u64,
    /// APs in the installed snapshot.
    pub aps: u32,
    /// Voxel cells per AP grid.
    pub cells: u64,
}

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// The transport failed.
    Io(io::Error),
    /// The server sent bytes that do not frame or decode.
    Wire(WireError),
    /// The server answered with an error frame.
    Server {
        /// Machine-readable failure class.
        code: ErrorCode,
        /// Human-readable detail from the server.
        detail: String,
    },
    /// The server answered with a well-formed frame of the wrong kind.
    UnexpectedFrame {
        /// The kind that arrived.
        kind: FrameKind,
    },
    /// A reply's sequence number does not match the request it should
    /// answer — the connection has lost request/reply pairing.
    SeqMismatch {
        /// Sequence number sent.
        sent: u64,
        /// Sequence number received.
        got: u64,
    },
    /// The server closed the connection mid-reply.
    Disconnected,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Wire(e) => write!(f, "protocol error: {e}"),
            ClientError::Server { code, detail } => {
                write!(f, "server error ({code:?}): {detail}")
            }
            ClientError::UnexpectedFrame { kind } => {
                write!(f, "unexpected reply frame kind {kind:?}")
            }
            ClientError::SeqMismatch { sent, got } => {
                write!(f, "reply seq {got} does not match request seq {sent}")
            }
            ClientError::Disconnected => write!(f, "server closed the connection"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

enum Transport {
    Tcp(TcpStream),
    #[cfg(unix)]
    Uds(UnixStream),
}

impl Transport {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Transport::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Transport::Uds(s) => s.read(buf),
        }
    }

    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        match self {
            Transport::Tcp(s) => s.write_all(buf).and_then(|()| s.flush()),
            #[cfg(unix)]
            Transport::Uds(s) => s.write_all(buf).and_then(|()| s.flush()),
        }
    }
}

/// One blocking connection to an `aerorem serve` daemon.
pub struct WireClient {
    transport: Transport,
    /// Undecoded bytes read past the last complete frame.
    buf: Vec<u8>,
    next_seq: u64,
}

impl WireClient {
    /// Connects over TCP (e.g. `127.0.0.1:4123`).
    ///
    /// # Errors
    ///
    /// Propagates the OS connect failure.
    pub fn connect_tcp(addr: &str) -> Result<WireClient, ClientError> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Ok(WireClient::new(Transport::Tcp(stream)))
    }

    /// Connects over a Unix-domain socket.
    ///
    /// # Errors
    ///
    /// Propagates the OS connect failure.
    #[cfg(unix)]
    pub fn connect_uds(path: impl AsRef<Path>) -> Result<WireClient, ClientError> {
        Ok(WireClient::new(Transport::Uds(UnixStream::connect(path)?)))
    }

    fn new(transport: Transport) -> WireClient {
        WireClient {
            transport,
            buf: Vec::new(),
            next_seq: 1,
        }
    }

    fn send(&mut self, msg: Message, namespace: u32) -> Result<u64, ClientError> {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.transport
            .write_all(&msg.into_frame(namespace, seq).encode())?;
        Ok(seq)
    }

    /// Reads until one complete frame is buffered and returns it.
    fn recv_frame(&mut self) -> Result<Frame, ClientError> {
        let mut chunk = [0u8; 64 * 1024];
        loop {
            if let Some((frame, consumed)) = Frame::decode_stream(&self.buf)? {
                self.buf.drain(..consumed);
                return Ok(frame);
            }
            let n = match self.transport.read(&mut chunk) {
                Ok(0) => return Err(ClientError::Disconnected),
                Ok(n) => n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(ClientError::Io(e)),
            };
            self.buf.extend_from_slice(&chunk[..n]); // lint:allow(panic-reach) — n is the byte count read() just returned; n ≤ chunk.len() by the Read contract
        }
    }

    /// Receives the reply to `seq`, surfacing server error frames as
    /// [`ClientError::Server`].
    fn recv_reply(&mut self, seq: u64) -> Result<(Frame, Message), ClientError> {
        let frame = self.recv_frame()?;
        if frame.seq != seq {
            return Err(ClientError::SeqMismatch {
                sent: seq,
                got: frame.seq,
            });
        }
        let msg = Message::from_frame(&frame)?;
        if let Message::Error { code, detail } = msg {
            return Err(ClientError::Server { code, detail });
        }
        Ok((frame, msg))
    }

    /// Sends one batch of queries and waits for its answers.
    ///
    /// Returns the answering store's generation (watch it change across
    /// hot-swaps) and one [`Response`] per query, in order — bit-identical
    /// to what [`crate::RemStore::answer`] returns in-process.
    ///
    /// # Errors
    ///
    /// Transport, protocol, or server ([`ClientError::Server`]) failures.
    pub fn query(
        &mut self,
        namespace: u32,
        queries: &[Query],
    ) -> Result<(u64, Vec<Response>), ClientError> {
        let seq = self.send_query(namespace, queries)?;
        self.recv_response(seq)
    }

    /// Fires one request frame without waiting — pair with
    /// [`WireClient::recv_response`] (in send order) to pipeline.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn send_query(&mut self, namespace: u32, queries: &[Query]) -> Result<u64, ClientError> {
        self.send(
            Message::Request {
                queries: queries.to_vec(),
            },
            namespace,
        )
    }

    /// Receives the answers to a previously sent request frame.
    ///
    /// # Errors
    ///
    /// Transport, protocol, or server failures; [`ClientError::SeqMismatch`]
    /// when replies are collected out of send order.
    pub fn recv_response(&mut self, seq: u64) -> Result<(u64, Vec<Response>), ClientError> {
        let (frame, msg) = self.recv_reply(seq)?;
        match msg {
            Message::Response {
                generation,
                responses,
            } => Ok((generation, responses)),
            _ => Err(ClientError::UnexpectedFrame { kind: frame.kind }),
        }
    }

    /// Installs (or hot-swaps) a snapshot image under `name`.
    ///
    /// # Errors
    ///
    /// Transport, protocol, or server failures — a rejected snapshot is
    /// [`ClientError::Server`] with [`ErrorCode::SnapshotRejected`] or
    /// [`ErrorCode::StoreRejected`].
    pub fn load(&mut self, name: &str, snapshot: &[u8]) -> Result<RemoteLoadInfo, ClientError> {
        let seq = self.send(
            Message::Load {
                name: name.to_string(),
                snapshot: snapshot.to_vec(),
            },
            0,
        )?;
        let (frame, msg) = self.recv_reply(seq)?;
        match msg {
            Message::Loaded {
                namespace,
                generation,
                aps,
                cells,
            } => Ok(RemoteLoadInfo {
                namespace,
                generation,
                aps,
                cells,
            }),
            _ => Err(ClientError::UnexpectedFrame { kind: frame.kind }),
        }
    }

    /// Fetches the daemon's namespace table.
    ///
    /// # Errors
    ///
    /// Transport, protocol, or server failures.
    pub fn list(&mut self) -> Result<Vec<NamespaceInfo>, ClientError> {
        let seq = self.send(Message::List, 0)?;
        let (frame, msg) = self.recv_reply(seq)?;
        match msg {
            Message::Listing { namespaces } => Ok(namespaces),
            _ => Err(ClientError::UnexpectedFrame { kind: frame.kind }),
        }
    }

    /// Asks the daemon to stop; resolves when its goodbye arrives.
    ///
    /// # Errors
    ///
    /// Transport, protocol, or server failures.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        let seq = self.send(Message::Shutdown, 0)?;
        let (frame, msg) = self.recv_reply(seq)?;
        match msg {
            Message::Bye => Ok(()),
            _ => Err(ClientError::UnexpectedFrame { kind: frame.kind }),
        }
    }
}
