//! `aerorem-served`: the blocking request loop that puts a [`RemStore`]
//! behind a socket.
//!
//! A [`Daemon`] owns a table of **namespaces** — named stores, one per
//! building — each wrapped in a generation-counted, atomically swappable
//! handle. [`Daemon::start`] spawns one accept thread per bound
//! [`Listener`] (TCP and/or Unix-domain) and one thread per connection;
//! each connection thread reads `docs/WIRE_FORMAT.md` frames, **batches
//! consecutive pipelined request frames into a single
//! [`RemStore::submit_batch`] call per namespace**, and writes replies in
//! arrival order with the request's `seq` echoed.
//!
//! Hot-swap: [`Daemon::load`] decodes and builds the incoming snapshot
//! *outside* every lock, then swaps the namespace's `Arc` under a brief
//! write lock and bumps the generation counter. In-flight batches keep
//! their `Arc` clone, so they finish against the store they started on —
//! a swap never drops or corrupts a batch, it only changes the
//! `generation` echoed by later responses.
//!
//! Failure isolation: a malformed frame poisons only its connection
//! (one final error frame, then close); a failed batch or rejected
//! snapshot answers with a typed error frame and the daemon keeps
//! serving; a worker panic is contained by [`RemStore::submit_batch`]
//! ([`crate::ServeError`]) and reported as [`ErrorCode::BatchFailed`].

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;

use aerorem_core::snapshot::RemSnapshot;
use aerorem_numerics::ExecPolicy;

use crate::query::{Query, Response};
use crate::store::{RemStore, StoreConfig};
use crate::wire::{ErrorCode, Frame, Message, NamespaceInfo};

/// How a [`Daemon`] executes batches and builds stores.
#[derive(Debug, Clone, Copy, Default)]
pub struct DaemonConfig {
    /// Execution policy for every [`RemStore::submit_batch`] call.
    pub policy: ExecPolicy,
    /// Store layout for every snapshot this daemon builds.
    pub store: StoreConfig,
}

/// What [`Daemon::load`] installed — mirrored to clients as
/// [`Message::Loaded`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadInfo {
    /// Namespace id assigned to (or already held by) the name.
    pub namespace: u32,
    /// Generation now being served under that id.
    pub generation: u64,
    /// APs in the installed snapshot.
    pub aps: u32,
    /// Voxel cells per AP grid.
    pub cells: u64,
}

/// Why a [`Daemon::load`] was refused. The daemon state is unchanged.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LoadError {
    /// The bytes are not a valid snapshot image.
    Snapshot(String),
    /// The snapshot decoded but failed store validation.
    Store(String),
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Snapshot(e) => write!(f, "snapshot rejected: {e}"),
            LoadError::Store(e) => write!(f, "store rejected: {e}"),
        }
    }
}

impl std::error::Error for LoadError {}

/// One snapshot generation of one namespace. In-flight batches hold an
/// `Arc` of this, so a hot-swap can never free a store mid-batch.
struct Generation {
    store: RemStore,
    generation: u64,
}

/// A named store slot; `current` is the atomically swappable handle.
struct NamespaceSlot {
    name: String,
    current: RwLock<Arc<Generation>>,
}

/// State shared by the daemon handle, accept threads, and connections.
struct Shared {
    config: DaemonConfig,
    /// Slot index is the namespace id on the wire.
    namespaces: RwLock<Vec<Arc<NamespaceSlot>>>,
    stop: AtomicBool,
    /// Endpoints to poke with a throwaway connect so blocked `accept`
    /// calls wake up and observe `stop`.
    nudge: Mutex<Vec<NudgeTarget>>,
    /// Live connection streams, shut down on stop to unblock reads.
    conns: Mutex<Vec<ConnHandle>>,
}

#[derive(Clone)]
enum NudgeTarget {
    Tcp(SocketAddr),
    #[cfg(unix)]
    Uds(PathBuf),
}

enum ConnHandle {
    Tcp(TcpStream),
    #[cfg(unix)]
    Uds(UnixStream),
}

impl ConnHandle {
    fn hang_up(&self) {
        match self {
            ConnHandle::Tcp(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
            #[cfg(unix)]
            ConnHandle::Uds(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
        }
    }
}

/// A bound, not-yet-serving socket. Binding is separate from
/// [`Daemon::start`] so callers can report (or pick) the actual address —
/// TCP port 0 binds an ephemeral port — before serving begins.
pub enum Listener {
    /// A TCP listener.
    Tcp(TcpListener),
    /// A Unix-domain listener and the path to unlink on drop.
    #[cfg(unix)]
    Uds(UnixListener, PathBuf),
}

impl Listener {
    /// Binds a TCP listener on `addr` (e.g. `127.0.0.1:0`).
    ///
    /// # Errors
    ///
    /// Propagates the OS bind failure.
    pub fn bind_tcp(addr: &str) -> io::Result<Listener> {
        Ok(Listener::Tcp(TcpListener::bind(addr)?))
    }

    /// Binds a Unix-domain listener at `path`, replacing a stale socket
    /// file if one exists.
    ///
    /// # Errors
    ///
    /// Propagates the OS bind failure.
    #[cfg(unix)]
    pub fn bind_uds(path: impl Into<PathBuf>) -> io::Result<Listener> {
        let path = path.into();
        if path.exists() {
            std::fs::remove_file(&path)?;
        }
        Ok(Listener::Uds(UnixListener::bind(&path)?, path))
    }

    /// The bound endpoint, printable: `tcp 127.0.0.1:4123` or
    /// `uds /tmp/aerorem.sock`.
    pub fn endpoint(&self) -> String {
        match self {
            Listener::Tcp(l) => match l.local_addr() {
                Ok(a) => format!("tcp {a}"),
                Err(_) => "tcp <unknown>".to_string(),
            },
            #[cfg(unix)]
            Listener::Uds(_, path) => format!("uds {}", path.display()),
        }
    }
}

/// The serving daemon: namespace table + request loop.
///
/// Cloning is cheap (an `Arc`); every clone addresses the same daemon.
#[derive(Clone)]
pub struct Daemon {
    shared: Arc<Shared>,
}

impl Daemon {
    /// A daemon with no namespaces. Serve something with
    /// [`Daemon::load`], then [`Daemon::start`].
    pub fn new(config: DaemonConfig) -> Daemon {
        Daemon {
            shared: Arc::new(Shared {
                config,
                namespaces: RwLock::new(Vec::new()),
                stop: AtomicBool::new(false),
                nudge: Mutex::new(Vec::new()),
                conns: Mutex::new(Vec::new()),
            }),
        }
    }

    /// Installs `bytes` (a `docs/SNAPSHOT_FORMAT.md` image) under `name`:
    /// a new namespace when the name is unknown, a **hot-swap** of the
    /// existing one otherwise. Decode and store build run outside all
    /// locks; the swap itself is a brief write-lock pointer exchange, so
    /// serving continues (on the previous generation) throughout.
    ///
    /// # Errors
    ///
    /// [`LoadError`] when the bytes or the built store are invalid; the
    /// namespace table is untouched.
    pub fn load(&self, name: &str, bytes: &[u8]) -> Result<LoadInfo, LoadError> {
        let snapshot =
            RemSnapshot::from_bytes(bytes).map_err(|e| LoadError::Snapshot(e.to_string()))?;
        let store = RemStore::build(&snapshot, self.shared.config.store)
            .map_err(|e| LoadError::Store(e.to_string()))?;
        let aps = store.macs().len() as u32;
        let cells = store.layout().cell_count() as u64;

        let mut table = lock_write(&self.shared.namespaces);
        if let Some((id, slot)) = table
            .iter()
            .enumerate()
            .find(|(_, s)| s.name == name)
            .map(|(i, s)| (i as u32, Arc::clone(s)))
        {
            drop(table);
            let mut current = lock_write(&slot.current);
            let generation = current.generation + 1;
            *current = Arc::new(Generation { store, generation });
            return Ok(LoadInfo {
                namespace: id,
                generation,
                aps,
                cells,
            });
        }
        let id = table.len() as u32;
        table.push(Arc::new(NamespaceSlot {
            name: name.to_string(),
            current: RwLock::new(Arc::new(Generation {
                store,
                generation: 1,
            })),
        }));
        Ok(LoadInfo {
            namespace: id,
            generation: 1,
            aps,
            cells,
        })
    }

    /// The namespace table, ascending by id.
    pub fn listing(&self) -> Vec<NamespaceInfo> {
        let table = lock_read(&self.shared.namespaces);
        table
            .iter()
            .enumerate()
            .map(|(id, slot)| {
                let current = lock_read(&slot.current).clone();
                NamespaceInfo {
                    id: id as u32,
                    generation: current.generation,
                    aps: current.store.macs().len() as u32,
                    cells: current.store.layout().cell_count() as u64,
                    name: slot.name.clone(),
                }
            })
            .collect()
    }

    /// The generation handle a batch against `namespace` should run on,
    /// `None` for an unknown id.
    fn generation_of(&self, namespace: u32) -> Option<Arc<Generation>> {
        let table = lock_read(&self.shared.namespaces);
        let slot = table.get(namespace as usize)?.clone();
        drop(table);
        let current = lock_read(&slot.current).clone();
        Some(current)
    }

    /// Answers one batch in-process — the exact code path connections use,
    /// exposed so tests and benches can diff wire answers against it.
    ///
    /// # Errors
    ///
    /// The error-frame code and detail the daemon would send.
    pub fn answer(
        &self,
        namespace: u32,
        queries: &[Query],
    ) -> Result<(u64, Vec<Response>), (ErrorCode, String)> {
        let generation = self.generation_of(namespace).ok_or_else(|| {
            (
                ErrorCode::UnknownNamespace,
                format!("namespace {namespace} is not served"),
            )
        })?;
        let responses = generation
            .store
            .submit_batch(queries, self.shared.config.policy)
            .map_err(|e| (ErrorCode::BatchFailed, e.to_string()))?;
        Ok((generation.generation, responses))
    }

    /// Spawns the accept loops and returns a handle that joins them.
    /// Serving ends when a client sends a shutdown frame or the handle's
    /// [`ServerHandle::shutdown`] is called.
    pub fn start(&self, listeners: Vec<Listener>) -> ServerHandle {
        let mut threads = Vec::with_capacity(listeners.len());
        for listener in listeners {
            let daemon = self.clone();
            match listener {
                Listener::Tcp(l) => {
                    if let Ok(addr) = l.local_addr() {
                        lock_mutex(&self.shared.nudge).push(NudgeTarget::Tcp(addr));
                    }
                    threads.push(std::thread::spawn(move || daemon.accept_tcp(l)));
                }
                #[cfg(unix)]
                Listener::Uds(l, path) => {
                    lock_mutex(&self.shared.nudge).push(NudgeTarget::Uds(path.clone()));
                    threads.push(std::thread::spawn(move || daemon.accept_uds(l, path)));
                }
            }
        }
        ServerHandle {
            daemon: self.clone(),
            accept_threads: threads,
        }
    }

    fn accept_tcp(&self, listener: TcpListener) {
        let mut conn_threads = Vec::new();
        for stream in listener.incoming() {
            if self.shared.stop.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = stream else { continue };
            let _ = stream.set_nodelay(true);
            if let Ok(clone) = stream.try_clone() {
                lock_mutex(&self.shared.conns).push(ConnHandle::Tcp(clone));
            }
            let daemon = self.clone();
            conn_threads.push(std::thread::spawn(move || daemon.serve_connection(stream)));
        }
        for t in conn_threads {
            let _ = t.join();
        }
    }

    #[cfg(unix)]
    fn accept_uds(&self, listener: UnixListener, path: PathBuf) {
        let mut conn_threads = Vec::new();
        for stream in listener.incoming() {
            if self.shared.stop.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = stream else { continue };
            if let Ok(clone) = stream.try_clone() {
                lock_mutex(&self.shared.conns).push(ConnHandle::Uds(clone));
            }
            let daemon = self.clone();
            conn_threads.push(std::thread::spawn(move || daemon.serve_connection(stream)));
        }
        for t in conn_threads {
            let _ = t.join();
        }
        let _ = std::fs::remove_file(&path);
    }

    /// Stops serving: flips the stop flag, hangs up every live
    /// connection, and wakes every blocked accept loop.
    fn initiate_shutdown(&self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        for conn in lock_mutex(&self.shared.conns).iter() {
            conn.hang_up();
        }
        // Snapshot the targets and drop the guard before connecting: a
        // wake-up connect can block (half-dead listener, backlogged
        // socket), and every accept loop takes this mutex to register.
        let targets: Vec<NudgeTarget> = lock_mutex(&self.shared.nudge).clone();
        for target in targets {
            match target {
                NudgeTarget::Tcp(addr) => {
                    let _ = TcpStream::connect(addr);
                }
                #[cfg(unix)]
                NudgeTarget::Uds(path) => {
                    let _ = UnixStream::connect(path);
                }
            }
        }
    }

    /// The per-connection request loop: read, frame, batch, reply.
    fn serve_connection<S: Read + Write>(&self, mut stream: S) {
        let mut buf: Vec<u8> = Vec::new();
        let mut chunk = vec![0u8; 64 * 1024];
        loop {
            if self.shared.stop.load(Ordering::SeqCst) {
                return;
            }
            let n = match stream.read(&mut chunk) {
                Ok(0) => return,
                Ok(n) => n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return,
            };
            buf.extend_from_slice(&chunk[..n]); // lint:allow(panic-reach) — n is the byte count read() just returned; n ≤ chunk.len() by the Read contract

            // Drain every complete frame the buffer holds — everything a
            // pipelining client managed to get onto the wire before we
            // looked — so consecutive requests coalesce into one batch.
            let mut frames = Vec::new();
            loop {
                match Frame::decode_stream(&buf) {
                    Ok(Some((frame, consumed))) => {
                        buf.drain(..consumed);
                        frames.push(frame);
                    }
                    Ok(None) => break,
                    Err(e) => {
                        // The stream is unsynchronized; one last typed
                        // error (seq u64::MAX: no request to echo), then
                        // hang up. Only this connection dies.
                        let reply = Message::Error {
                            code: ErrorCode::BadPayload,
                            detail: format!("unframeable input: {e}"),
                        }
                        .into_frame(0, u64::MAX);
                        let _ = stream.write_all(&reply.encode());
                        return;
                    }
                }
            }
            if self.process_frames(frames, &mut stream).is_err() {
                return;
            }
        }
    }

    /// Handles one drain's worth of frames. Consecutive request frames
    /// are grouped by namespace and answered with one `submit_batch`
    /// each; replies go out in frame arrival order. `Err(())` means the
    /// connection should close (write failure or shutdown).
    fn process_frames<S: Write>(&self, frames: Vec<Frame>, stream: &mut S) -> Result<(), ()> {
        let mut pending: Vec<(u32, u64, Vec<Query>)> = Vec::new();
        for frame in frames {
            let msg = match Message::from_frame(&frame) {
                Ok(msg) => msg,
                Err(e) => {
                    self.flush_requests(std::mem::take(&mut pending), stream)?;
                    let reply = Message::Error {
                        code: ErrorCode::BadPayload,
                        detail: format!("bad {:?} payload: {e}", frame.kind),
                    }
                    .into_frame(frame.namespace, frame.seq);
                    write_frame(stream, &reply)?;
                    continue;
                }
            };
            match msg {
                Message::Request { queries } => {
                    pending.push((frame.namespace, frame.seq, queries));
                }
                other => {
                    // A control frame is a barrier: answer everything
                    // queued ahead of it first, preserving reply order.
                    self.flush_requests(std::mem::take(&mut pending), stream)?;
                    self.handle_control(other, &frame, stream)?;
                }
            }
        }
        self.flush_requests(pending, stream)
    }

    /// Answers queued request frames: one `submit_batch` per namespace,
    /// replies in arrival order.
    fn flush_requests<S: Write>(
        &self,
        pending: Vec<(u32, u64, Vec<Query>)>,
        stream: &mut S,
    ) -> Result<(), ()> {
        if pending.is_empty() {
            return Ok(());
        }
        // Batch per namespace: concatenate each namespace's queries,
        // answer once, then split responses back per originating frame.
        let mut order: Vec<u32> = Vec::new();
        for &(ns, _, _) in &pending {
            if !order.contains(&ns) {
                order.push(ns);
            }
        }
        let mut replies: Vec<Option<Frame>> = (0..pending.len()).map(|_| None).collect();
        for ns in order {
            let members: Vec<usize> = pending
                .iter()
                .enumerate()
                .filter(|(_, p)| p.0 == ns)
                .map(|(i, _)| i)
                .collect();
            let mut batch: Vec<Query> = Vec::new();
            for &i in &members {
                batch.extend(pending[i].2.iter().copied()); // lint:allow(panic-reach) — i comes from enumerate() over pending
            }
            match self.answer(ns, &batch) {
                Ok((generation, mut responses)) => {
                    for &i in members.iter().rev() {
                        let tail = responses.split_off(responses.len() - pending[i].2.len()); // lint:allow(panic-reach) — i comes from enumerate() over pending; replies is built with pending's length
                        replies[i] = Some(
                            Message::Response {
                                generation,
                                responses: tail,
                            }
                            .into_frame(ns, pending[i].1), // lint:allow(panic-reach) — i comes from enumerate() over pending
                        );
                    }
                }
                Err((code, detail)) => {
                    for &i in &members {
                        replies[i] = Some( // lint:allow(panic-reach) — i comes from enumerate() over pending; replies is built with pending's length
                            Message::Error {
                                code,
                                detail: detail.clone(),
                            }
                            .into_frame(ns, pending[i].1), // lint:allow(panic-reach) — i comes from enumerate() over pending
                        );
                    }
                }
            }
        }
        for reply in replies.into_iter().flatten() {
            write_frame(stream, &reply)?;
        }
        Ok(())
    }

    /// Handles one non-request message.
    fn handle_control<S: Write>(
        &self,
        msg: Message,
        frame: &Frame,
        stream: &mut S,
    ) -> Result<(), ()> {
        let reply = match msg {
            Message::Load { name, snapshot } => match self.load(&name, &snapshot) {
                Ok(info) => Message::Loaded {
                    namespace: info.namespace,
                    generation: info.generation,
                    aps: info.aps,
                    cells: info.cells,
                },
                Err(e) => Message::Error {
                    code: match e {
                        LoadError::Snapshot(_) => ErrorCode::SnapshotRejected,
                        LoadError::Store(_) => ErrorCode::StoreRejected,
                    },
                    detail: e.to_string(),
                },
            },
            Message::List => Message::Listing {
                namespaces: self.listing(),
            },
            Message::Shutdown => {
                write_frame(stream, &Message::Bye.into_frame(0, frame.seq))?;
                self.initiate_shutdown();
                return Err(());
            }
            // Server-to-client kinds arriving at the server are protocol
            // misuse; answer with a typed error and keep the connection.
            other => Message::Error {
                code: ErrorCode::BadPayload,
                detail: format!("frame kind {:?} is not a client request", other.kind()),
            },
        };
        write_frame(stream, &reply.into_frame(frame.namespace, frame.seq))
    }
}

/// Joins a running daemon's accept threads.
pub struct ServerHandle {
    daemon: Daemon,
    accept_threads: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// Requests shutdown as a wire shutdown frame would: stop, hang up
    /// connections, wake accept loops.
    pub fn shutdown(&self) {
        self.daemon.initiate_shutdown();
    }

    /// Blocks until every accept loop (and its connections) exits.
    pub fn join(self) {
        for t in self.accept_threads {
            let _ = t.join();
        }
    }
}

fn write_frame<S: Write>(stream: &mut S, frame: &Frame) -> Result<(), ()> {
    stream
        .write_all(&frame.encode())
        .and_then(|()| stream.flush())
        .map_err(|_| ())
}

/// Lock helpers that survive poisoning: a panicking holder's data is
/// still structurally valid here (swaps are pointer writes), and the
/// daemon must keep serving.
fn lock_read<T>(lock: &RwLock<T>) -> std::sync::RwLockReadGuard<'_, T> {
    lock.read().unwrap_or_else(|e| e.into_inner())
}

fn lock_write<T>(lock: &RwLock<T>) -> std::sync::RwLockWriteGuard<'_, T> {
    lock.write().unwrap_or_else(|e| e.into_inner())
}

fn lock_mutex<T>(lock: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    lock.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use aerorem_core::rem::RemGrid;
    use aerorem_propagation::ap::MacAddress;
    use aerorem_spatial::{Aabb, Vec3};

    fn snapshot_bytes(seedish: u32, dims: (usize, usize, usize)) -> Vec<u8> {
        let grids = (1..=2u32)
            .map(|m| {
                let values = (0..dims.0 * dims.1 * dims.2)
                    .map(|i| -30.0 - (((i as u32 + seedish) * m) as f64 * 0.377).sin() * 35.0)
                    .collect();
                RemGrid::from_parts(
                    MacAddress::from_index(m),
                    Aabb::paper_volume(),
                    dims,
                    values,
                )
                .unwrap()
            })
            .collect();
        RemSnapshot::new(grids).unwrap().to_bytes()
    }

    #[test]
    fn load_assigns_ids_and_hot_swap_bumps_generations() {
        let daemon = Daemon::new(DaemonConfig::default());
        let a = daemon.load("building-a", &snapshot_bytes(0, (6, 5, 4))).unwrap();
        assert_eq!((a.namespace, a.generation), (0, 1));
        let b = daemon.load("building-b", &snapshot_bytes(9, (4, 4, 4))).unwrap();
        assert_eq!((b.namespace, b.generation), (1, 1));
        // Same name again: same id, next generation.
        let a2 = daemon.load("building-a", &snapshot_bytes(7, (6, 5, 4))).unwrap();
        assert_eq!((a2.namespace, a2.generation), (0, 2));
        let listing = daemon.listing();
        assert_eq!(listing.len(), 2);
        assert_eq!(listing[0].name, "building-a");
        assert_eq!(listing[0].generation, 2);
        assert_eq!(listing[1].name, "building-b");
        assert_eq!(listing[1].generation, 1);
    }

    #[test]
    fn bad_loads_leave_the_table_untouched() {
        let daemon = Daemon::new(DaemonConfig::default());
        assert!(matches!(
            daemon.load("x", b"not a snapshot"),
            Err(LoadError::Snapshot(_))
        ));
        // Mismatched grid shapes decode fine but fail store build.
        let mismatched = {
            let g1 = RemGrid::from_parts(
                MacAddress::from_index(1),
                Aabb::paper_volume(),
                (2, 2, 2),
                vec![-40.0; 8],
            )
            .unwrap();
            let g2 = RemGrid::from_parts(
                MacAddress::from_index(2),
                Aabb::paper_volume(),
                (3, 2, 2),
                vec![-40.0; 12],
            )
            .unwrap();
            RemSnapshot::new(vec![g1, g2]).unwrap().to_bytes()
        };
        assert!(matches!(daemon.load("x", &mismatched), Err(LoadError::Store(_))));
        assert!(daemon.listing().is_empty());
    }

    #[test]
    fn answer_reports_unknown_namespaces_and_contains_batch_panics() {
        let daemon = Daemon::new(DaemonConfig::default());
        daemon.load("a", &snapshot_bytes(0, (5, 5, 3))).unwrap();
        let q = [Query::BestAp {
            pos: Vec3::new(1.0, 1.0, 1.0),
        }];
        assert!(daemon.answer(0, &q).is_ok());
        let (code, _) = daemon.answer(3, &q).unwrap_err();
        assert_eq!(code, ErrorCode::UnknownNamespace);

        // Poison the served store through the test hook: the batch fails
        // with a typed code, and the daemon answers the next one fine.
        {
            let slot = lock_read(&daemon.shared.namespaces)[0].clone();
            let mut current = lock_write(&slot.current);
            let mut poisoned = current.store.clone();
            poisoned.panic_mac = Some(MacAddress::from_index(1));
            *current = Arc::new(Generation {
                store: poisoned,
                generation: current.generation,
            });
        }
        let bad = [Query::Point {
            pos: Vec3::new(1.0, 1.0, 1.0),
            ap: MacAddress::from_index(1),
        }];
        let (code, detail) = daemon.answer(0, &bad).unwrap_err();
        assert_eq!(code, ErrorCode::BatchFailed);
        assert!(detail.contains("panicked"));
        assert!(daemon.answer(0, &q).is_ok(), "daemon must survive the panic");
    }

    #[test]
    fn in_flight_generations_outlive_a_hot_swap() {
        let daemon = Daemon::new(DaemonConfig::default());
        daemon.load("a", &snapshot_bytes(0, (6, 5, 4))).unwrap();
        // Simulate an in-flight batch: grab the generation handle, then
        // hot-swap underneath it.
        let held = daemon.generation_of(0).unwrap();
        daemon.load("a", &snapshot_bytes(3, (6, 5, 4))).unwrap();
        assert_eq!(held.generation, 1);
        // The held store still answers (it is not freed by the swap)...
        let q = Query::BestAp {
            pos: Vec3::new(1.0, 1.0, 1.0),
        };
        assert!(held
            .store
            .submit_batch(&[q], ExecPolicy::Serial)
            .is_ok());
        // ...while new batches see the new generation.
        let (generation, _) = daemon.answer(0, &[q]).unwrap();
        assert_eq!(generation, 2);
    }
}
