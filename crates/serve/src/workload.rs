//! Deterministic synthetic query workloads for benchmarking the store.
//!
//! Real REM traffic is not uniform: users cluster at hot spots (desks,
//! couches, doorways), so a serving bench that sprays uniform positions
//! overstates cache-friendliness exactly where it matters least. The
//! generator here draws cells from a **zipfian** rank distribution
//! (`P(rank) ∝ 1 / rank^s`) and scatters ranks across the lattice with a
//! fixed multiplicative permutation, so the hot set is both heavy-tailed
//! and spatially spread — a few hot bricks, many cold ones. A uniform
//! mode is kept as the contrast arm.
//!
//! Everything is seeded: the same `(store shape, config)` always yields
//! the same query sequence, on any host.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::query::Query;
use crate::store::RemStore;

/// Which cell-popularity distribution a workload draws from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Distribution {
    /// Heavy-tailed hot spots: `P(rank) ∝ 1 / rank^s`.
    Zipfian,
    /// Every cell equally likely.
    Uniform,
}

impl std::str::FromStr for Distribution {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "zipfian" => Ok(Distribution::Zipfian),
            "uniform" => Ok(Distribution::Uniform),
            other => Err(format!("unknown distribution {other:?} (zipfian|uniform)")),
        }
    }
}

impl std::fmt::Display for Distribution {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Distribution::Zipfian => "zipfian",
            Distribution::Uniform => "uniform",
        })
    }
}

/// Parameters of a synthetic point-query workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadConfig {
    /// Number of queries to generate.
    pub queries: usize,
    /// RNG seed; same seed → same workload.
    pub seed: u64,
    /// Cell-popularity distribution.
    pub distribution: Distribution,
    /// Zipf exponent `s` (ignored for uniform). `1.0` is classic Zipf;
    /// larger is hotter.
    pub exponent: f64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            queries: 1_000_000,
            seed: 2206,
            distribution: Distribution::Zipfian,
            exponent: 1.0,
        }
    }
}

/// Precomputed sampler over cell ranks.
struct CellSampler {
    /// Cumulative (unnormalized) rank weights; `cdf[r]` covers ranks
    /// `0..=r`. Empty for uniform.
    cdf: Vec<f64>,
    /// Multiplier of the rank→cell permutation (coprime with `cells`).
    stride: usize,
    cells: usize,
}

impl CellSampler {
    fn new(cells: usize, distribution: Distribution, exponent: f64) -> Self {
        let cdf = match distribution {
            Distribution::Uniform => Vec::new(),
            Distribution::Zipfian => {
                let mut acc = 0.0;
                (1..=cells)
                    .map(|rank| {
                        acc += (rank as f64).powf(-exponent);
                        acc
                    })
                    .collect()
            }
        };
        // Scatter ranks across the lattice so the hot set is not one
        // contiguous memory run: cell = rank * stride mod cells, with a
        // stride coprime to the cell count (fall back toward 1, which is
        // always coprime).
        let mut stride = 2_654_435_761 % cells.max(1);
        while stride > 1 && gcd(stride, cells) != 1 {
            stride -= 1;
        }
        CellSampler {
            cdf,
            stride: stride.max(1),
            cells,
        }
    }

    fn draw(&self, rng: &mut StdRng) -> usize {
        let rank = if self.cdf.is_empty() {
            rng.gen_range(0..self.cells)
        } else {
            let total = *self.cdf.last().expect("non-empty cdf");
            let u: f64 = rng.gen::<f64>() * total;
            self.cdf.partition_point(|&c| c < u).min(self.cells - 1)
        };
        (rank * self.stride) % self.cells
    }
}

fn gcd(mut a: usize, mut b: usize) -> usize {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

/// Generates a seeded point-query workload against `store`.
///
/// Each query targets the center of a drawn cell (so every query is an
/// in-volume hit on the hot path) and a uniformly drawn AP.
pub fn point_workload(store: &RemStore, config: &WorkloadConfig) -> Vec<Query> {
    let layout = *store.layout();
    let cells = layout.cell_count();
    let macs = store.macs();
    let sampler = CellSampler::new(cells, config.distribution, config.exponent);
    let mut rng = StdRng::seed_from_u64(config.seed);
    (0..config.queries)
        .map(|_| {
            let cell = sampler.draw(&mut rng);
            let ap = macs[rng.gen_range(0..macs.len())];
            Query::Point {
                pos: layout.cell_center(cell),
                ap,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::StoreConfig;
    use aerorem_core::rem::RemGrid;
    use aerorem_core::snapshot::RemSnapshot;
    use aerorem_propagation::ap::MacAddress;
    use aerorem_spatial::Aabb;

    fn store() -> RemStore {
        let dims = (10, 10, 5);
        let grids = (1..=2)
            .map(|k| {
                let values = (0..500).map(|i| -40.0 - ((i + k) % 37) as f64).collect();
                RemGrid::from_parts(
                    MacAddress::from_index(k as u32),
                    Aabb::paper_volume(),
                    dims,
                    values,
                )
                .unwrap()
            })
            .collect();
        RemStore::build(&RemSnapshot::new(grids).unwrap(), StoreConfig::default()).unwrap()
    }

    #[test]
    fn workloads_are_seed_deterministic() {
        let store = store();
        let cfg = WorkloadConfig {
            queries: 500,
            ..WorkloadConfig::default()
        };
        assert_eq!(point_workload(&store, &cfg), point_workload(&store, &cfg));
        let other = point_workload(
            &store,
            &WorkloadConfig {
                seed: cfg.seed + 1,
                ..cfg
            },
        );
        assert_ne!(point_workload(&store, &cfg), other);
    }

    #[test]
    fn every_query_is_an_in_volume_hit() {
        let store = store();
        for dist in [Distribution::Zipfian, Distribution::Uniform] {
            let batch = point_workload(
                &store,
                &WorkloadConfig {
                    queries: 300,
                    distribution: dist,
                    ..WorkloadConfig::default()
                },
            );
            assert_eq!(batch.len(), 300);
            for q in &batch {
                let Query::Point { pos, ap } = q else {
                    panic!("point workload produced a non-point query")
                };
                assert!(store.point(*pos, *ap).is_some());
            }
        }
    }

    #[test]
    fn zipfian_is_hotter_than_uniform() {
        let store = store();
        let count_distinct = |dist| {
            let batch = point_workload(
                &store,
                &WorkloadConfig {
                    queries: 2000,
                    distribution: dist,
                    ..WorkloadConfig::default()
                },
            );
            let mut cells: Vec<String> = batch
                .iter()
                .map(|q| {
                    let Query::Point { pos, .. } = q else { unreachable!() };
                    format!("{pos:?}")
                })
                .collect();
            cells.sort();
            cells.dedup();
            cells.len()
        };
        let zipf = count_distinct(Distribution::Zipfian);
        let uniform = count_distinct(Distribution::Uniform);
        assert!(
            zipf < uniform,
            "zipfian ({zipf} distinct cells) should concentrate vs uniform ({uniform})"
        );
    }

    #[test]
    fn distribution_parses_and_displays() {
        assert_eq!("zipfian".parse::<Distribution>(), Ok(Distribution::Zipfian));
        assert_eq!("uniform".parse::<Distribution>(), Ok(Distribution::Uniform));
        assert!("pareto".parse::<Distribution>().is_err());
        assert_eq!(Distribution::Zipfian.to_string(), "zipfian");
    }
}
