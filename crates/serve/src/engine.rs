//! Batched query execution: the thread-per-core request loop.
//!
//! Callers submit queries in batches ([`RemStore::submit_batch`]); the
//! engine routes each query to a worker and returns answers in
//! **submission order**. Routing is shard-affine: a point-shaped query
//! (point lookup, best-AP) goes to the worker owning the shard of the
//! brick its cell lives in, so on a multi-core host each brick is read
//! (mostly) by one core; region-shaped queries (box stats, coverage) are
//! spread round-robin since they touch the per-AP octrees, not the
//! shards.
//!
//! Determinism: every answer is a pure function of (store, query) — see
//! [`RemStore::answer`] — and workers scatter answers back into each
//! query's original slot. Worker count and interleaving therefore cannot
//! change any response bit, and `ExecPolicy::Serial` and
//! `ExecPolicy::Parallel` produce identical batches (test-enforced, and
//! re-checked by the `serve` bench on every run).

use std::any::Any;
use std::fmt;
use std::panic::{self, AssertUnwindSafe};

use aerorem_numerics::ExecPolicy;

use crate::query::{Query, Response};
use crate::store::RemStore;

/// Failure answering one batch. The batch is lost but the store — and any
/// daemon serving it — stays alive and keeps answering later batches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// A worker panicked mid-batch; carries the panic message when the
    /// payload was a string, a placeholder otherwise.
    WorkerPanic(String),
    /// A response slot was never filled: the routing invariant (every
    /// query assigned to exactly one worker) broke.
    MissingResponse {
        /// Batch slot whose response went missing.
        slot: usize,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::WorkerPanic(msg) => {
                write!(f, "a serve worker panicked while answering: {msg}")
            }
            ServeError::MissingResponse { slot } => {
                write!(f, "no worker produced a response for batch slot {slot}")
            }
        }
    }
}

impl std::error::Error for ServeError {}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Minimum queries per shard before the parallel arm pays for itself.
///
/// Answering one point query costs well under a microsecond, so a worker
/// thread must receive thousands of them to amortize its spawn/join cost.
/// Below this per-shard load the batch runs inline on the caller's thread
/// even under `ExecPolicy::Parallel` — responses are identical either way
/// (the two arms are bit-identical by contract), only the wall time
/// changes. BENCH_3 measured the crossover: 1024-query batches lost to
/// serial on nearly every variant, 65536-query batches won.
pub const SERVE_MIN_QUERIES_PER_SHARD: usize = 2048;

impl RemStore {
    /// Whether a batch of `batch_len` queries is large enough for the
    /// parallel arm to beat inline serial execution on this store — the
    /// predicate behind [`RemStore::submit_batch`]'s small-batch fallback.
    pub fn parallel_worthwhile(&self, batch_len: usize) -> bool {
        batch_len / self.shard_count().max(1) >= SERVE_MIN_QUERIES_PER_SHARD
    }

    /// Worker index for `query` given `workers` total — shard-affine for
    /// point-shaped queries, round-robin (by batch slot) otherwise.
    fn route(&self, query: &Query, slot: usize, workers: usize) -> usize {
        let cell = match *query {
            Query::Point { pos, .. } | Query::BestAp { pos } => self.layout().cell_index_of(pos),
            _ => None,
        };
        match cell {
            Some(c) => self.shard_of_cell(c) % workers,
            None => slot % workers,
        }
    }

    /// Answers a batch of queries, preserving order: `result[i]` answers
    /// `queries[i]`.
    ///
    /// Under [`ExecPolicy::Serial`] (or a single-threaded pool) the batch
    /// runs inline on the caller's thread — as do small parallel batches
    /// below [`SERVE_MIN_QUERIES_PER_SHARD`] queries per shard, where
    /// thread spawn/join overhead would exceed the query work. Otherwise
    /// one scoped worker thread per available core drains its routed share
    /// of the batch. All arms return bit-identical responses.
    ///
    /// # Errors
    ///
    /// A panic inside [`RemStore::answer`] — on any worker, in any arm —
    /// is caught and surfaced as [`ServeError::WorkerPanic`]: that batch
    /// fails, the process does not. The store stays usable afterwards.
    pub fn submit_batch(
        &self,
        queries: &[Query],
        policy: ExecPolicy,
    ) -> Result<Vec<Response>, ServeError> {
        let workers = match policy {
            ExecPolicy::Serial => 1,
            ExecPolicy::Parallel if !self.parallel_worthwhile(queries.len()) => 1,
            ExecPolicy::Parallel => policy.threads(),
        }
        .min(queries.len())
        .max(1);
        if workers == 1 {
            return panic::catch_unwind(AssertUnwindSafe(|| {
                queries.iter().map(|q| self.answer(q)).collect()
            }))
            .map_err(|payload| ServeError::WorkerPanic(panic_message(payload.as_ref())));
        }

        let mut assignment: Vec<Vec<usize>> = vec![Vec::new(); workers];
        for (slot, q) in queries.iter().enumerate() {
            assignment[self.route(q, slot, workers)].push(slot); // lint:allow(panic-reach) — route() ends in `% workers`; assignment has exactly `workers` buckets
        }

        let mut results: Vec<Option<Response>> = vec![None; queries.len()];
        let joined = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = assignment
                .iter()
                .map(|slots| {
                    scope.spawn(move |_| {
                        slots
                            .iter()
                            .map(|&slot| (slot, self.answer(&queries[slot]))) // lint:allow(panic-reach) — slots come from enumerate() over queries
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            // Join every handle so a panicking worker cannot leak into the
            // scope teardown; panics surface here as per-handle Errs.
            handles.into_iter().map(|h| h.join()).collect::<Vec<_>>()
        })
        .map_err(|payload| ServeError::WorkerPanic(panic_message(payload.as_ref())))?;
        for join in joined {
            let output = join
                .map_err(|payload| ServeError::WorkerPanic(panic_message(payload.as_ref())))?;
            for (slot, response) in output {
                results[slot] = Some(response); // lint:allow(panic-reach) — slot comes from enumerate() over queries; results is built with queries.len()
            }
        }
        results
            .into_iter()
            .enumerate()
            .map(|(slot, r)| r.ok_or(ServeError::MissingResponse { slot }))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::StoreConfig;
    use crate::workload::{point_workload, Distribution, WorkloadConfig};
    use aerorem_core::rem::RemGrid;
    use aerorem_core::snapshot::RemSnapshot;
    use aerorem_propagation::ap::MacAddress;
    use aerorem_spatial::{Aabb, Vec3};

    fn store() -> RemStore {
        let dims = (16, 14, 9);
        let grids = (1..=3)
            .map(|k| {
                let values = (0..dims.0 * dims.1 * dims.2)
                    .map(|i| -30.0 - ((i * k) as f64 * 0.377).sin() * 35.0)
                    .collect();
                RemGrid::from_parts(
                    MacAddress::from_index(k as u32),
                    Aabb::paper_volume(),
                    dims,
                    values,
                )
                .unwrap()
            })
            .collect();
        RemStore::build(
            &RemSnapshot::new(grids).unwrap(),
            StoreConfig {
                brick_edge: 4,
                shard_count: 3,
            },
        )
        .unwrap()
    }

    fn mixed_batch(store: &RemStore) -> Vec<Query> {
        let mut batch = point_workload(
            store,
            &WorkloadConfig {
                queries: 400,
                seed: 7,
                distribution: Distribution::Zipfian,
                exponent: 1.0,
            },
        );
        batch.push(Query::BestAp {
            pos: Vec3::new(1.0, 1.0, 1.0),
        });
        batch.push(Query::BoxStats {
            region: Aabb::new(Vec3::new(0.2, 0.2, 0.2), Vec3::new(3.0, 2.9, 1.9)).unwrap(),
            ap: MacAddress::from_index(2),
        });
        batch.push(Query::Coverage {
            threshold_dbm: -45.0,
            ap: MacAddress::from_index(3),
        });
        batch.push(Query::Point {
            pos: Vec3::new(-4.0, 0.0, 0.0), // out of volume
            ap: MacAddress::from_index(1),
        });
        batch
    }

    #[test]
    fn batch_answers_match_one_at_a_time() {
        let store = store();
        let batch = mixed_batch(&store);
        let batched = store.submit_batch(&batch, ExecPolicy::Serial).unwrap();
        let singly: Vec<Response> = batch.iter().map(|q| store.answer(q)).collect();
        assert_eq!(batched, singly);
    }

    #[test]
    fn serial_and_parallel_batches_are_bit_identical() {
        let store = store();
        let batch = mixed_batch(&store);
        let serial = store.submit_batch(&batch, ExecPolicy::Serial).unwrap();
        let parallel = store.submit_batch(&batch, ExecPolicy::Parallel).unwrap();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn empty_batch_is_fine() {
        let store = store();
        assert!(store.submit_batch(&[], ExecPolicy::Parallel).unwrap().is_empty());
        assert!(store.submit_batch(&[], ExecPolicy::Serial).unwrap().is_empty());
    }

    #[test]
    fn small_batches_fall_back_to_serial_at_the_pinned_threshold() {
        // The fixture has 3 shards, so the crossover sits at exactly
        // 3 * SERVE_MIN_QUERIES_PER_SHARD queries.
        let store = store();
        let crossover = 3 * SERVE_MIN_QUERIES_PER_SHARD;
        assert!(!store.parallel_worthwhile(0));
        assert!(!store.parallel_worthwhile(1024));
        assert!(!store.parallel_worthwhile(crossover - 1));
        assert!(store.parallel_worthwhile(crossover));
        assert!(store.parallel_worthwhile(crossover + 1));

        // A sub-threshold batch under Parallel takes the inline serial
        // path; the responses must still bit-match the Serial arm.
        let batch = mixed_batch(&store);
        assert!(batch.len() < crossover);
        assert_eq!(
            store.submit_batch(&batch, ExecPolicy::Parallel).unwrap(),
            store.submit_batch(&batch, ExecPolicy::Serial).unwrap(),
        );
    }

    #[test]
    fn a_panicking_worker_fails_the_batch_not_the_process() {
        let mut store = store();
        store.panic_mac = Some(MacAddress::from_index(2));
        let batch = mixed_batch(&store); // names AP 2 via BoxStats at least
        for policy in [ExecPolicy::Serial, ExecPolicy::Parallel] {
            let err = store.submit_batch(&batch, policy).unwrap_err();
            assert!(
                matches!(err, ServeError::WorkerPanic(ref msg) if msg.contains("poisoned AP")),
                "unexpected error under {policy}: {err}"
            );
        }
        // The store survives the failed batch: queries that avoid the
        // poisoned AP still answer, so a daemon holding this store lives on.
        let safe = vec![
            Query::BestAp {
                pos: Vec3::new(1.0, 1.0, 1.0),
            },
            Query::Point {
                pos: Vec3::new(1.0, 1.0, 1.0),
                ap: MacAddress::from_index(1),
            },
        ];
        let responses = store.submit_batch(&safe, ExecPolicy::Serial).unwrap();
        assert_eq!(responses.len(), 2);
    }

    #[test]
    fn routing_covers_every_query_exactly_once() {
        // Exercise the multi-worker path directly, independent of how
        // many cores the host has.
        let store = store();
        let batch = mixed_batch(&store);
        for workers in [2, 3, 5] {
            let mut seen = vec![0usize; batch.len()];
            for (slot, q) in batch.iter().enumerate() {
                let w = store.route(q, slot, workers);
                assert!(w < workers);
                seen[slot] += 1;
            }
            assert!(seen.iter().all(|&n| n == 1));
        }
    }
}
