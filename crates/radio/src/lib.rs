//! CRTP protocol and Crazyradio link simulation.
//!
//! The base station talks to each Crazyflie through a Crazyradio PA dongle
//! using the Crazy RealTime Protocol (CRTP): 126 radio channels uniformly
//! spread over 2400–2525 MHz (§II-C of the paper). This crate models the
//! three aspects the paper's system actually depends on:
//!
//! * [`crtp`] — the packet format (port/channel header + ≤ 30-byte payload)
//!   used to ship setpoints down and scan results up.
//! * [`link`] — the UAV-side uplink queue and radio on/off state machine.
//!   The paper enlarges `CRTP_TX_QUEUE_SIZE` so that a full scan result can
//!   be buffered while the radio is off; [`link::RadioLink`] reproduces both
//!   the default-size overflow and the patched behaviour.
//! * [`crazyradio`] — the dongle as an *interference source*: while
//!   transmitting it injects the nRF24 carrier of
//!   [`aerorem_propagation::interference`] into the scan model (Figure 5).
//!
//! # Examples
//!
//! ```
//! use aerorem_radio::crtp::{CrtpPacket, CrtpPort};
//! use aerorem_radio::link::{LinkConfig, RadioLink};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut link = RadioLink::new(LinkConfig::paper_patched());
//! link.set_radio_on(false);
//! let pkt = CrtpPacket::new(CrtpPort::Console, 0, b"scan row".to_vec())?;
//! link.enqueue_uplink(pkt)?; // buffered while the radio is off
//! link.set_radio_on(true);
//! assert_eq!(link.drain_uplink().len(), 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod crazyradio;
pub mod crtp;
pub mod link;

pub use crazyradio::Crazyradio;
pub use crtp::{CrtpPacket, CrtpPort};
pub use link::{LinkConfig, LinkError, RadioLink};
