//! The Crazy RealTime Protocol packet format.
//!
//! A CRTP packet is one header byte — `pppp llcc` with `p` = port, `ll` =
//! link bits (always 0b11 on the air), `cc` = channel — followed by up to
//! 30 bytes of payload (the nRF24's 32-byte frame minus header and one
//! reserved byte).

use std::fmt;

use bytes::{BufMut, Bytes, BytesMut};
use serde::{Deserialize, Serialize};

/// Maximum CRTP payload length in bytes.
pub const MAX_PAYLOAD: usize = 30;

/// Bytes of sequencing metadata carried at the front of every fragment
/// payload: `[seq, total]`, each a single byte.
pub const FRAGMENT_HEADER_LEN: usize = 2;

/// Data bytes per fragment once the sequencing header is accounted for.
pub const MAX_FRAGMENT_DATA: usize = MAX_PAYLOAD - FRAGMENT_HEADER_LEN;

/// Largest message `fragment` can ship: 255 fragments of 28 data bytes.
pub const MAX_MESSAGE_LEN: usize = 255 * MAX_FRAGMENT_DATA;

/// The CRTP ports used by the Crazyflie firmware.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum CrtpPort {
    /// Console text output (port 0) — the paper's scan results travel here.
    Console = 0x0,
    /// Parameter read/write (port 2).
    Param = 0x2,
    /// Commander setpoints (port 3) — waypoints go down this port.
    Commander = 0x3,
    /// Memory access (port 4).
    Mem = 0x4,
    /// Log telemetry (port 5).
    Log = 0x5,
    /// Localization data (port 6) — external position input.
    Localization = 0x6,
    /// Generic setpoint (port 7).
    GenericSetpoint = 0x7,
    /// Platform control (port 13).
    Platform = 0xD,
    /// Link-layer services: echo, ack, safelink (port 15).
    LinkLayer = 0xF,
}

impl CrtpPort {
    /// Decodes a port nibble.
    pub fn from_nibble(n: u8) -> Option<Self> {
        Some(match n {
            0x0 => CrtpPort::Console,
            0x2 => CrtpPort::Param,
            0x3 => CrtpPort::Commander,
            0x4 => CrtpPort::Mem,
            0x5 => CrtpPort::Log,
            0x6 => CrtpPort::Localization,
            0x7 => CrtpPort::GenericSetpoint,
            0xD => CrtpPort::Platform,
            0xF => CrtpPort::LinkLayer,
            _ => return None,
        })
    }
}

impl fmt::Display for CrtpPort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// Errors produced by CRTP encoding/decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CrtpError {
    /// Payload exceeded [`MAX_PAYLOAD`] bytes.
    PayloadTooLong {
        /// Actual length supplied.
        len: usize,
    },
    /// Channel number above 3 (only 2 bits on the wire).
    InvalidChannel {
        /// The offending channel value.
        channel: u8,
    },
    /// The input buffer was empty or the port nibble unknown.
    MalformedFrame,
    /// A message longer than [`MAX_MESSAGE_LEN`] cannot be sequenced with
    /// one-byte fragment numbers.
    MessageTooLong {
        /// Actual length supplied.
        len: usize,
    },
}

impl fmt::Display for CrtpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CrtpError::PayloadTooLong { len } => {
                write!(f, "payload of {len} bytes exceeds CRTP maximum of {MAX_PAYLOAD}")
            }
            CrtpError::InvalidChannel { channel } => {
                write!(f, "CRTP channel {channel} out of range 0..=3")
            }
            CrtpError::MalformedFrame => write!(f, "malformed CRTP frame"),
            CrtpError::MessageTooLong { len } => {
                write!(f, "message of {len} bytes exceeds fragmentable maximum of {MAX_MESSAGE_LEN}")
            }
        }
    }
}

impl std::error::Error for CrtpError {}

/// One CRTP packet.
///
/// # Examples
///
/// ```
/// use aerorem_radio::crtp::{CrtpPacket, CrtpPort};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let pkt = CrtpPacket::new(CrtpPort::Commander, 1, vec![1, 2, 3])?;
/// let wire = pkt.encode();
/// assert_eq!(CrtpPacket::decode(&wire)?, pkt);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrtpPacket {
    port: CrtpPort,
    channel: u8,
    payload: Vec<u8>,
}

impl CrtpPacket {
    /// Creates a packet.
    ///
    /// # Errors
    ///
    /// Returns [`CrtpError::PayloadTooLong`] for payloads over 30 bytes and
    /// [`CrtpError::InvalidChannel`] for channels above 3.
    pub fn new(
        port: CrtpPort,
        channel: u8,
        payload: impl Into<Vec<u8>>,
    ) -> Result<Self, CrtpError> {
        let payload = payload.into();
        if payload.len() > MAX_PAYLOAD {
            return Err(CrtpError::PayloadTooLong {
                len: payload.len(),
            });
        }
        if channel > 3 {
            return Err(CrtpError::InvalidChannel { channel });
        }
        Ok(CrtpPacket {
            port,
            channel,
            payload,
        })
    }

    /// The packet's port.
    pub fn port(&self) -> CrtpPort {
        self.port
    }

    /// The packet's 2-bit channel.
    pub fn channel(&self) -> u8 {
        self.channel
    }

    /// The payload bytes.
    pub fn payload(&self) -> &[u8] {
        &self.payload
    }

    /// Total on-air length: header byte plus payload.
    pub fn wire_len(&self) -> usize {
        1 + self.payload.len()
    }

    /// Serializes to the wire format.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.wire_len());
        // Link bits 0b11 per the on-air format.
        let header = ((self.port as u8) << 4) | 0b1100 | self.channel;
        buf.put_u8(header);
        buf.put_slice(&self.payload);
        buf.freeze()
    }

    /// Parses a packet from wire bytes.
    ///
    /// # Errors
    ///
    /// Returns [`CrtpError::MalformedFrame`] for empty buffers or unknown
    /// ports, [`CrtpError::PayloadTooLong`] for over-long frames.
    pub fn decode(wire: &[u8]) -> Result<Self, CrtpError> {
        let (&header, payload) = wire.split_first().ok_or(CrtpError::MalformedFrame)?;
        if payload.len() > MAX_PAYLOAD {
            return Err(CrtpError::PayloadTooLong {
                len: payload.len(),
            });
        }
        let port = CrtpPort::from_nibble(header >> 4).ok_or(CrtpError::MalformedFrame)?;
        let channel = header & 0b11;
        Ok(CrtpPacket {
            port,
            channel,
            payload: payload.to_vec(),
        })
    }

    /// Splits an arbitrarily long byte string into sequence-numbered packets
    /// on the given port/channel — how a multi-row scan result is shipped.
    ///
    /// Each payload starts with a `[seq, total]` header so the receiver can
    /// detect dropped, duplicated, and reordered fragments instead of
    /// silently concatenating whatever arrived. The per-fragment data budget
    /// is therefore [`MAX_FRAGMENT_DATA`] (28) bytes.
    ///
    /// # Errors
    ///
    /// Returns [`CrtpError::InvalidChannel`] for channels above 3 and
    /// [`CrtpError::MessageTooLong`] past [`MAX_MESSAGE_LEN`] bytes (255
    /// one-byte-numbered fragments).
    pub fn fragment(
        port: CrtpPort,
        channel: u8,
        data: &[u8],
    ) -> Result<Vec<CrtpPacket>, CrtpError> {
        if channel > 3 {
            return Err(CrtpError::InvalidChannel { channel });
        }
        if data.len() > MAX_MESSAGE_LEN {
            return Err(CrtpError::MessageTooLong { len: data.len() });
        }
        let total = data.len().div_ceil(MAX_FRAGMENT_DATA).max(1) as u8;
        if data.is_empty() {
            return CrtpPacket::new(port, channel, vec![0, total]).map(|p| vec![p]);
        }
        data.chunks(MAX_FRAGMENT_DATA)
            .enumerate()
            .map(|(seq, c)| {
                let mut payload = Vec::with_capacity(FRAGMENT_HEADER_LEN + c.len());
                payload.push(seq as u8);
                payload.push(total);
                payload.extend_from_slice(c);
                CrtpPacket::new(port, channel, payload)
            })
            .collect()
    }

    /// Reassembles fragments produced by [`CrtpPacket::fragment`],
    /// reporting gaps, duplicates, and reordering instead of silently
    /// merging across losses.
    pub fn reassemble(packets: &[CrtpPacket]) -> Reassembly {
        let mut out = Reassembly::default();
        let mut last_seq: Option<u8> = None;
        for p in packets {
            if p.payload.len() < FRAGMENT_HEADER_LEN {
                out.malformed += 1;
                continue;
            }
            let (seq, total) = (p.payload[0], p.payload[1]);
            if total == 0 || seq >= total {
                out.malformed += 1;
                continue;
            }
            if out.slots.len() < total as usize {
                out.slots.resize(total as usize, None);
            }
            if last_seq.is_some_and(|prev| seq < prev) {
                out.reordered += 1;
            }
            last_seq = Some(seq);
            // lint:allow(slice-index) — seq < total was checked above and slots was resized to total
            let slot = &mut out.slots[seq as usize];
            if slot.is_some() {
                out.duplicates += 1;
            } else {
                // lint:allow(slice-index) — payload.len() ≥ FRAGMENT_HEADER_LEN was checked at the top of the loop
                *slot = Some(p.payload[FRAGMENT_HEADER_LEN..].to_vec());
                out.fragments_received += 1;
            }
        }
        out.fragments_lost = out.slots.iter().filter(|s| s.is_none()).count() as u64;
        out
    }
}

/// The result of [`CrtpPacket::reassemble`]: the surviving byte stream plus
/// an honest account of what the link did to it.
///
/// Dropped fragments leave *gaps*; text rows that straddle a gap must not be
/// trusted, because the tail of one row glued to the head of another can
/// still parse. [`Reassembly::lines`] applies that rule for
/// newline-delimited wire formats.
///
/// # Examples
///
/// ```
/// use aerorem_radio::crtp::{CrtpPacket, CrtpPort};
///
/// let data: Vec<u8> = (0..100).collect();
/// let frags = CrtpPacket::fragment(CrtpPort::Console, 0, &data).unwrap();
/// let whole = CrtpPacket::reassemble(&frags);
/// assert!(whole.is_complete());
/// assert_eq!(whole.contiguous().unwrap(), data);
///
/// let lossy: Vec<_> = frags.iter().skip(1).cloned().collect();
/// let partial = CrtpPacket::reassemble(&lossy);
/// assert!(!partial.is_complete());
/// assert_eq!(partial.fragments_lost, 1);
/// assert!(partial.contiguous().is_none());
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Reassembly {
    /// One slot per declared fragment; `None` marks a gap.
    slots: Vec<Option<Vec<u8>>>,
    /// Distinct fragments that arrived.
    pub fragments_received: u64,
    /// Declared fragments that never arrived (gaps, including lost tails).
    pub fragments_lost: u64,
    /// Re-deliveries of a sequence number already seen.
    pub duplicates: u64,
    /// Arrival-order inversions observed (healed by sequence numbers).
    pub reordered: u64,
    /// Packets too short to carry a fragment header, or with an
    /// inconsistent one.
    pub malformed: u64,
}

impl Reassembly {
    /// True when every declared fragment arrived intact. An empty packet
    /// list reassembles to a trivially complete empty stream — callers who
    /// expected data must compare against their own expected counts.
    pub fn is_complete(&self) -> bool {
        self.fragments_lost == 0 && self.malformed == 0
    }

    /// The full byte stream, available only when [`Self::is_complete`].
    pub fn contiguous(&self) -> Option<Vec<u8>> {
        if !self.is_complete() {
            return None;
        }
        let mut out = Vec::new();
        for slot in &self.slots {
            out.extend_from_slice(slot.as_deref().unwrap_or(&[]));
        }
        Some(out)
    }

    /// Contiguous byte runs between gaps, with gap-adjacency flags.
    fn runs(&self) -> Vec<(Vec<u8>, bool, bool)> {
        let mut runs = Vec::new();
        let mut current: Option<(Vec<u8>, bool)> = None;
        for (i, slot) in self.slots.iter().enumerate() {
            match slot {
                Some(bytes) => {
                    let run = current.get_or_insert_with(|| (Vec::new(), i > 0));
                    run.0.extend_from_slice(bytes);
                }
                None => {
                    if let Some((bytes, preceded)) = current.take() {
                        runs.push((bytes, preceded, true));
                    }
                }
            }
        }
        if let Some((bytes, preceded)) = current {
            runs.push((bytes, preceded, false));
        }
        runs
    }

    /// Extracts the newline-terminated rows that are provably intact and
    /// counts the partial row fragments discarded at gap edges.
    ///
    /// A segment that touches a gap — the text before the first newline of a
    /// gap-preceded run, or after the last newline of a gap-followed run —
    /// may be the surviving piece of a longer row, so it is quarantined
    /// rather than delivered, even if it would parse.
    pub fn lines(&self) -> RecoveredLines {
        let mut out = RecoveredLines::default();
        for (bytes, preceded_by_gap, followed_by_gap) in self.runs() {
            let mut segments: Vec<&[u8]> = bytes.split(|&b| b == b'\n').collect();
            // `split` always yields a final element: the bytes after the
            // last newline (empty when the run ends on a row boundary).
            let tail = segments.pop().unwrap_or(&[]);
            for (i, seg) in segments.iter().enumerate() {
                if i == 0 && preceded_by_gap {
                    if !seg.is_empty() {
                        out.quarantined += 1;
                    }
                    continue;
                }
                if !seg.is_empty() {
                    out.lines.push(String::from_utf8_lossy(seg).into_owned());
                }
            }
            if !tail.is_empty() {
                let suspect =
                    followed_by_gap || (segments.is_empty() && preceded_by_gap);
                if suspect {
                    out.quarantined += 1;
                } else {
                    out.lines.push(String::from_utf8_lossy(tail).into_owned());
                }
            }
        }
        out
    }
}

/// Rows recovered from a lossy reassembly: the intact lines plus a count of
/// quarantined gap-edge fragments (candidate corrupted rows).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveredLines {
    /// Rows whose every byte arrived between two row boundaries.
    pub lines: Vec<String>,
    /// Non-empty partial segments discarded because they touched a gap.
    pub quarantined: u64,
}

impl fmt::Display for CrtpPacket {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CRTP[{:?}.{} {}B]",
            self.port,
            self.channel,
            self.payload.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_ports() {
        for nibble in 0..16u8 {
            if let Some(port) = CrtpPort::from_nibble(nibble) {
                let pkt = CrtpPacket::new(port, 2, vec![0xAB; 7]).unwrap();
                let decoded = CrtpPacket::decode(&pkt.encode()).unwrap();
                assert_eq!(decoded, pkt);
            }
        }
    }

    #[test]
    fn header_layout() {
        let pkt = CrtpPacket::new(CrtpPort::Commander, 1, vec![]).unwrap();
        let wire = pkt.encode();
        assert_eq!(wire.len(), 1);
        // port 3 << 4 | link 0b11 << 2 | channel 1.
        assert_eq!(wire[0], 0x3D);
    }

    #[test]
    fn payload_limit_enforced() {
        assert!(CrtpPacket::new(CrtpPort::Console, 0, vec![0; 30]).is_ok());
        assert!(matches!(
            CrtpPacket::new(CrtpPort::Console, 0, vec![0; 31]),
            Err(CrtpError::PayloadTooLong { len: 31 })
        ));
    }

    #[test]
    fn channel_limit_enforced() {
        assert!(CrtpPacket::new(CrtpPort::Console, 3, vec![]).is_ok());
        assert!(matches!(
            CrtpPacket::new(CrtpPort::Console, 4, vec![]),
            Err(CrtpError::InvalidChannel { channel: 4 })
        ));
    }

    #[test]
    fn decode_rejects_bad_input() {
        assert_eq!(CrtpPacket::decode(&[]), Err(CrtpError::MalformedFrame));
        // Port nibble 0x8 is unassigned.
        assert_eq!(
            CrtpPacket::decode(&[0x8C]),
            Err(CrtpError::MalformedFrame)
        );
        let long = vec![0x0C; 32];
        assert!(matches!(
            CrtpPacket::decode(&long),
            Err(CrtpError::PayloadTooLong { .. })
        ));
    }

    #[test]
    fn fragmentation_round_trip() {
        let data: Vec<u8> = (0..200).map(|i| i as u8).collect();
        let frags = CrtpPacket::fragment(CrtpPort::Console, 0, &data).unwrap();
        assert_eq!(frags.len(), 8); // ceil(200 / 28)
        assert!(frags.iter().all(|f| f.payload().len() <= MAX_PAYLOAD));
        let whole = CrtpPacket::reassemble(&frags);
        assert!(whole.is_complete());
        assert_eq!(whole.fragments_received, 8);
        assert_eq!(whole.contiguous().unwrap(), data);
    }

    #[test]
    fn fragment_empty_data_yields_one_header_only_packet() {
        let frags = CrtpPacket::fragment(CrtpPort::Console, 0, &[]).unwrap();
        assert_eq!(frags.len(), 1);
        assert_eq!(frags[0].payload(), &[0, 1]);
        let whole = CrtpPacket::reassemble(&frags);
        assert!(whole.is_complete());
        assert!(whole.contiguous().unwrap().is_empty());
    }

    #[test]
    fn fragment_validates_channel() {
        assert!(CrtpPacket::fragment(CrtpPort::Console, 7, b"x").is_err());
    }

    #[test]
    fn fragment_rejects_oversized_message() {
        let data = vec![0u8; MAX_MESSAGE_LEN + 1];
        assert!(matches!(
            CrtpPacket::fragment(CrtpPort::Console, 0, &data),
            Err(CrtpError::MessageTooLong { .. })
        ));
        assert!(CrtpPacket::fragment(CrtpPort::Console, 0, &data[..MAX_MESSAGE_LEN]).is_ok());
    }

    #[test]
    fn reassemble_detects_gaps_and_withholds_contiguous() {
        let data: Vec<u8> = (0..200).map(|i| i as u8).collect();
        let mut frags = CrtpPacket::fragment(CrtpPort::Console, 0, &data).unwrap();
        frags.remove(3);
        let partial = CrtpPacket::reassemble(&frags);
        assert!(!partial.is_complete());
        assert_eq!(partial.fragments_lost, 1);
        assert_eq!(partial.fragments_received, 7);
        assert!(partial.contiguous().is_none());
    }

    #[test]
    fn reassemble_detects_lost_tail() {
        let data = vec![7u8; 100];
        let frags = CrtpPacket::fragment(CrtpPort::Console, 0, &data).unwrap();
        let truncated = &frags[..frags.len() - 2];
        let partial = CrtpPacket::reassemble(truncated);
        assert_eq!(partial.fragments_lost, 2);
        assert!(!partial.is_complete());
    }

    #[test]
    fn reassemble_heals_reordering_and_counts_duplicates() {
        let data: Vec<u8> = (0..90).collect();
        let frags = CrtpPacket::fragment(CrtpPort::Console, 0, &data).unwrap();
        let mut shuffled = frags.clone();
        shuffled.reverse();
        shuffled.push(frags[0].clone());
        let whole = CrtpPacket::reassemble(&shuffled);
        assert!(whole.is_complete());
        assert!(whole.reordered > 0);
        assert_eq!(whole.duplicates, 1);
        assert_eq!(whole.contiguous().unwrap(), data);
    }

    #[test]
    fn reassemble_counts_malformed_fragments() {
        // A header-less packet and a seq >= total packet are both rejected.
        let bad_short = CrtpPacket::new(CrtpPort::Console, 0, vec![1]).unwrap();
        let bad_seq = CrtpPacket::new(CrtpPort::Console, 0, vec![5, 2, b'x']).unwrap();
        let out = CrtpPacket::reassemble(&[bad_short, bad_seq]);
        assert_eq!(out.malformed, 2);
        assert!(!out.is_complete());
    }

    #[test]
    fn lines_quarantines_rows_straddling_gaps() {
        let wire = b"row-one\nrow-two\nrow-three\nrow-four\nrow-five\n".repeat(3);
        let mut frags = CrtpPacket::fragment(CrtpPort::Console, 0, &wire).unwrap();
        frags.remove(2); // drop a mid-stream fragment
        let recovered = CrtpPacket::reassemble(&frags).lines();
        // Every delivered line is one of the sent rows, never a splice.
        for line in &recovered.lines {
            assert!(
                ["row-one", "row-two", "row-three", "row-four", "row-five"]
                    .contains(&line.as_str()),
                "spliced row leaked through: {line:?}"
            );
        }
        assert!(recovered.quarantined > 0);
    }

    #[test]
    fn lines_on_complete_stream_delivers_everything() {
        let wire = b"alpha\nbeta\ngamma\n";
        let frags = CrtpPacket::fragment(CrtpPort::Console, 0, wire).unwrap();
        let recovered = CrtpPacket::reassemble(&frags).lines();
        assert_eq!(recovered.lines, vec!["alpha", "beta", "gamma"]);
        assert_eq!(recovered.quarantined, 0);
    }

    #[test]
    fn wire_len() {
        let pkt = CrtpPacket::new(CrtpPort::Log, 0, vec![0; 10]).unwrap();
        assert_eq!(pkt.wire_len(), 11);
        assert_eq!(pkt.encode().len(), 11);
    }

    #[test]
    fn accessors_and_display() {
        let pkt = CrtpPacket::new(CrtpPort::Param, 2, vec![9]).unwrap();
        assert_eq!(pkt.port(), CrtpPort::Param);
        assert_eq!(pkt.channel(), 2);
        assert_eq!(pkt.payload(), &[9]);
        assert!(format!("{pkt}").contains("Param"));
        assert!(CrtpError::MalformedFrame.to_string().contains("malformed"));
    }
}
