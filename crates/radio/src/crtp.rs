//! The Crazy RealTime Protocol packet format.
//!
//! A CRTP packet is one header byte — `pppp llcc` with `p` = port, `ll` =
//! link bits (always 0b11 on the air), `cc` = channel — followed by up to
//! 30 bytes of payload (the nRF24's 32-byte frame minus header and one
//! reserved byte).

use std::fmt;

use bytes::{BufMut, Bytes, BytesMut};
use serde::{Deserialize, Serialize};

/// Maximum CRTP payload length in bytes.
pub const MAX_PAYLOAD: usize = 30;

/// The CRTP ports used by the Crazyflie firmware.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum CrtpPort {
    /// Console text output (port 0) — the paper's scan results travel here.
    Console = 0x0,
    /// Parameter read/write (port 2).
    Param = 0x2,
    /// Commander setpoints (port 3) — waypoints go down this port.
    Commander = 0x3,
    /// Memory access (port 4).
    Mem = 0x4,
    /// Log telemetry (port 5).
    Log = 0x5,
    /// Localization data (port 6) — external position input.
    Localization = 0x6,
    /// Generic setpoint (port 7).
    GenericSetpoint = 0x7,
    /// Platform control (port 13).
    Platform = 0xD,
    /// Link-layer services: echo, ack, safelink (port 15).
    LinkLayer = 0xF,
}

impl CrtpPort {
    /// Decodes a port nibble.
    pub fn from_nibble(n: u8) -> Option<Self> {
        Some(match n {
            0x0 => CrtpPort::Console,
            0x2 => CrtpPort::Param,
            0x3 => CrtpPort::Commander,
            0x4 => CrtpPort::Mem,
            0x5 => CrtpPort::Log,
            0x6 => CrtpPort::Localization,
            0x7 => CrtpPort::GenericSetpoint,
            0xD => CrtpPort::Platform,
            0xF => CrtpPort::LinkLayer,
            _ => return None,
        })
    }
}

impl fmt::Display for CrtpPort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// Errors produced by CRTP encoding/decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CrtpError {
    /// Payload exceeded [`MAX_PAYLOAD`] bytes.
    PayloadTooLong {
        /// Actual length supplied.
        len: usize,
    },
    /// Channel number above 3 (only 2 bits on the wire).
    InvalidChannel {
        /// The offending channel value.
        channel: u8,
    },
    /// The input buffer was empty or the port nibble unknown.
    MalformedFrame,
}

impl fmt::Display for CrtpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CrtpError::PayloadTooLong { len } => {
                write!(f, "payload of {len} bytes exceeds CRTP maximum of {MAX_PAYLOAD}")
            }
            CrtpError::InvalidChannel { channel } => {
                write!(f, "CRTP channel {channel} out of range 0..=3")
            }
            CrtpError::MalformedFrame => write!(f, "malformed CRTP frame"),
        }
    }
}

impl std::error::Error for CrtpError {}

/// One CRTP packet.
///
/// # Examples
///
/// ```
/// use aerorem_radio::crtp::{CrtpPacket, CrtpPort};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let pkt = CrtpPacket::new(CrtpPort::Commander, 1, vec![1, 2, 3])?;
/// let wire = pkt.encode();
/// assert_eq!(CrtpPacket::decode(&wire)?, pkt);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrtpPacket {
    port: CrtpPort,
    channel: u8,
    payload: Vec<u8>,
}

impl CrtpPacket {
    /// Creates a packet.
    ///
    /// # Errors
    ///
    /// Returns [`CrtpError::PayloadTooLong`] for payloads over 30 bytes and
    /// [`CrtpError::InvalidChannel`] for channels above 3.
    pub fn new(
        port: CrtpPort,
        channel: u8,
        payload: impl Into<Vec<u8>>,
    ) -> Result<Self, CrtpError> {
        let payload = payload.into();
        if payload.len() > MAX_PAYLOAD {
            return Err(CrtpError::PayloadTooLong {
                len: payload.len(),
            });
        }
        if channel > 3 {
            return Err(CrtpError::InvalidChannel { channel });
        }
        Ok(CrtpPacket {
            port,
            channel,
            payload,
        })
    }

    /// The packet's port.
    pub fn port(&self) -> CrtpPort {
        self.port
    }

    /// The packet's 2-bit channel.
    pub fn channel(&self) -> u8 {
        self.channel
    }

    /// The payload bytes.
    pub fn payload(&self) -> &[u8] {
        &self.payload
    }

    /// Total on-air length: header byte plus payload.
    pub fn wire_len(&self) -> usize {
        1 + self.payload.len()
    }

    /// Serializes to the wire format.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.wire_len());
        // Link bits 0b11 per the on-air format.
        let header = ((self.port as u8) << 4) | 0b1100 | self.channel;
        buf.put_u8(header);
        buf.put_slice(&self.payload);
        buf.freeze()
    }

    /// Parses a packet from wire bytes.
    ///
    /// # Errors
    ///
    /// Returns [`CrtpError::MalformedFrame`] for empty buffers or unknown
    /// ports, [`CrtpError::PayloadTooLong`] for over-long frames.
    pub fn decode(wire: &[u8]) -> Result<Self, CrtpError> {
        let (&header, payload) = wire.split_first().ok_or(CrtpError::MalformedFrame)?;
        if payload.len() > MAX_PAYLOAD {
            return Err(CrtpError::PayloadTooLong {
                len: payload.len(),
            });
        }
        let port = CrtpPort::from_nibble(header >> 4).ok_or(CrtpError::MalformedFrame)?;
        let channel = header & 0b11;
        Ok(CrtpPacket {
            port,
            channel,
            payload: payload.to_vec(),
        })
    }

    /// Splits an arbitrarily long byte string into consecutive packets on
    /// the given port/channel — how a multi-row scan result is shipped.
    pub fn fragment(
        port: CrtpPort,
        channel: u8,
        data: &[u8],
    ) -> Result<Vec<CrtpPacket>, CrtpError> {
        if channel > 3 {
            return Err(CrtpError::InvalidChannel { channel });
        }
        if data.is_empty() {
            return Ok(vec![CrtpPacket::new(port, channel, Vec::new())?]);
        }
        data.chunks(MAX_PAYLOAD)
            .map(|c| CrtpPacket::new(port, channel, c.to_vec()))
            .collect()
    }

    /// Reassembles fragments produced by [`CrtpPacket::fragment`].
    pub fn reassemble(packets: &[CrtpPacket]) -> Vec<u8> {
        let mut out = Vec::with_capacity(packets.iter().map(|p| p.payload.len()).sum());
        for p in packets {
            out.extend_from_slice(&p.payload);
        }
        out
    }
}

impl fmt::Display for CrtpPacket {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CRTP[{:?}.{} {}B]",
            self.port,
            self.channel,
            self.payload.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_ports() {
        for nibble in 0..16u8 {
            if let Some(port) = CrtpPort::from_nibble(nibble) {
                let pkt = CrtpPacket::new(port, 2, vec![0xAB; 7]).unwrap();
                let decoded = CrtpPacket::decode(&pkt.encode()).unwrap();
                assert_eq!(decoded, pkt);
            }
        }
    }

    #[test]
    fn header_layout() {
        let pkt = CrtpPacket::new(CrtpPort::Commander, 1, vec![]).unwrap();
        let wire = pkt.encode();
        assert_eq!(wire.len(), 1);
        // port 3 << 4 | link 0b11 << 2 | channel 1.
        assert_eq!(wire[0], 0x3D);
    }

    #[test]
    fn payload_limit_enforced() {
        assert!(CrtpPacket::new(CrtpPort::Console, 0, vec![0; 30]).is_ok());
        assert!(matches!(
            CrtpPacket::new(CrtpPort::Console, 0, vec![0; 31]),
            Err(CrtpError::PayloadTooLong { len: 31 })
        ));
    }

    #[test]
    fn channel_limit_enforced() {
        assert!(CrtpPacket::new(CrtpPort::Console, 3, vec![]).is_ok());
        assert!(matches!(
            CrtpPacket::new(CrtpPort::Console, 4, vec![]),
            Err(CrtpError::InvalidChannel { channel: 4 })
        ));
    }

    #[test]
    fn decode_rejects_bad_input() {
        assert_eq!(CrtpPacket::decode(&[]), Err(CrtpError::MalformedFrame));
        // Port nibble 0x8 is unassigned.
        assert_eq!(
            CrtpPacket::decode(&[0x8C]),
            Err(CrtpError::MalformedFrame)
        );
        let long = vec![0x0C; 32];
        assert!(matches!(
            CrtpPacket::decode(&long),
            Err(CrtpError::PayloadTooLong { .. })
        ));
    }

    #[test]
    fn fragmentation_round_trip() {
        let data: Vec<u8> = (0..200).map(|i| i as u8).collect();
        let frags = CrtpPacket::fragment(CrtpPort::Console, 0, &data).unwrap();
        assert_eq!(frags.len(), 7); // ceil(200 / 30)
        assert!(frags.iter().all(|f| f.payload().len() <= MAX_PAYLOAD));
        assert_eq!(CrtpPacket::reassemble(&frags), data);
    }

    #[test]
    fn fragment_empty_data_yields_one_empty_packet() {
        let frags = CrtpPacket::fragment(CrtpPort::Console, 0, &[]).unwrap();
        assert_eq!(frags.len(), 1);
        assert!(frags[0].payload().is_empty());
    }

    #[test]
    fn fragment_validates_channel() {
        assert!(CrtpPacket::fragment(CrtpPort::Console, 7, b"x").is_err());
    }

    #[test]
    fn wire_len() {
        let pkt = CrtpPacket::new(CrtpPort::Log, 0, vec![0; 10]).unwrap();
        assert_eq!(pkt.wire_len(), 11);
        assert_eq!(pkt.encode().len(), 11);
    }

    #[test]
    fn accessors_and_display() {
        let pkt = CrtpPacket::new(CrtpPort::Param, 2, vec![9]).unwrap();
        assert_eq!(pkt.port(), CrtpPort::Param);
        assert_eq!(pkt.channel(), 2);
        assert_eq!(pkt.payload(), &[9]);
        assert!(format!("{pkt}").contains("Param"));
        assert!(CrtpError::MalformedFrame.to_string().contains("malformed"));
    }
}
