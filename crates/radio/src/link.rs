//! The UAV-side radio link: uplink queue + radio on/off state machine.
//!
//! §II-C of the paper: "the radio is shut down right before the scan starts
//! and restarted again after the scan has finished", and
//! "`CRTP_TX_QUEUE_SIZE` was increased so that full scan results can be
//! temporarily stored until the radio comes back online". [`RadioLink`]
//! models exactly that: while the radio is off, uplink packets accumulate in
//! a bounded queue; with the stock queue size a full scan result overflows
//! (packets are lost), with the paper's patched size it fits.

use std::collections::VecDeque;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::crtp::CrtpPacket;

/// The Crazyflie 2021.06 stock uplink queue depth (packets).
pub const DEFAULT_TX_QUEUE_SIZE: usize = 16;

/// The paper's enlarged uplink queue depth (packets), sized so a full
/// multi-row scan result fits while the radio is down.
pub const PATCHED_TX_QUEUE_SIZE: usize = 128;

/// Link configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkConfig {
    /// Uplink (UAV → base station) queue depth in packets.
    pub tx_queue_size: usize,
    /// One-way link latency in milliseconds while the radio is on.
    pub latency_ms: f64,
}

impl LinkConfig {
    /// Stock firmware: 16-packet queue.
    pub fn firmware_default() -> Self {
        LinkConfig {
            tx_queue_size: DEFAULT_TX_QUEUE_SIZE,
            latency_ms: 4.0,
        }
    }

    /// The paper's patched firmware: 128-packet queue.
    pub fn paper_patched() -> Self {
        LinkConfig {
            tx_queue_size: PATCHED_TX_QUEUE_SIZE,
            latency_ms: 4.0,
        }
    }
}

impl Default for LinkConfig {
    fn default() -> Self {
        Self::paper_patched()
    }
}

/// Errors from link operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinkError {
    /// The uplink queue is full; the packet was dropped.
    QueueFull {
        /// The configured queue capacity.
        capacity: usize,
    },
}

impl fmt::Display for LinkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinkError::QueueFull { capacity } => {
                write!(f, "uplink queue full (capacity {capacity} packets)")
            }
        }
    }
}

impl std::error::Error for LinkError {}

/// The UAV's CRTP link endpoint.
///
/// # Examples
///
/// Demonstrating the overflow the paper's firmware patch fixes:
///
/// ```
/// use aerorem_radio::crtp::{CrtpPacket, CrtpPort};
/// use aerorem_radio::link::{LinkConfig, RadioLink};
///
/// let mut stock = RadioLink::new(LinkConfig::firmware_default());
/// stock.set_radio_on(false);
/// let row = CrtpPacket::new(CrtpPort::Console, 0, vec![0u8; 30]).unwrap();
/// let mut dropped = 0;
/// for _ in 0..60 {
///     if stock.enqueue_uplink(row.clone()).is_err() { dropped += 1; }
/// }
/// assert!(dropped > 0, "stock queue cannot hold a full scan result");
/// ```
#[derive(Debug, Clone)]
pub struct RadioLink {
    config: LinkConfig,
    radio_on: bool,
    uplink: VecDeque<CrtpPacket>,
    dropped: u64,
    delivered: u64,
}

impl RadioLink {
    /// Creates a link with the radio on and an empty queue.
    ///
    /// # Panics
    ///
    /// Panics if the configured queue size is zero.
    pub fn new(config: LinkConfig) -> Self {
        assert!(config.tx_queue_size > 0, "queue size must be positive");
        RadioLink {
            config,
            radio_on: true,
            uplink: VecDeque::with_capacity(config.tx_queue_size),
            dropped: 0,
            delivered: 0,
        }
    }

    /// The link configuration.
    pub fn config(&self) -> LinkConfig {
        self.config
    }

    /// Whether the radio is currently powered.
    pub fn is_radio_on(&self) -> bool {
        self.radio_on
    }

    /// Powers the radio on or off. Turning it off does not discard queued
    /// packets — that is the whole point of the uplink buffer.
    pub fn set_radio_on(&mut self, on: bool) {
        self.radio_on = on;
    }

    /// Queues a packet for uplink.
    ///
    /// # Errors
    ///
    /// Returns [`LinkError::QueueFull`] when the buffer is at capacity; the
    /// packet is dropped, mirroring the firmware's behaviour.
    pub fn enqueue_uplink(&mut self, packet: CrtpPacket) -> Result<(), LinkError> {
        if self.uplink.len() >= self.config.tx_queue_size {
            self.dropped += 1;
            return Err(LinkError::QueueFull {
                capacity: self.config.tx_queue_size,
            });
        }
        self.uplink.push_back(packet);
        Ok(())
    }

    /// Number of packets waiting in the uplink queue.
    pub fn uplink_pending(&self) -> usize {
        self.uplink.len()
    }

    /// Packets dropped so far due to queue overflow.
    pub fn uplink_dropped(&self) -> u64 {
        self.dropped
    }

    /// Packets successfully drained so far.
    pub fn uplink_delivered(&self) -> u64 {
        self.delivered
    }

    /// Drains every queued packet to the base station. Returns an empty
    /// vector while the radio is off (nothing can leave the UAV).
    pub fn drain_uplink(&mut self) -> Vec<CrtpPacket> {
        if !self.radio_on {
            return Vec::new();
        }
        let out: Vec<CrtpPacket> = self.uplink.drain(..).collect();
        self.delivered += out.len() as u64;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crtp::CrtpPort;

    fn row(i: u8) -> CrtpPacket {
        CrtpPacket::new(CrtpPort::Console, 0, vec![i; 20]).expect("valid packet")
    }

    #[test]
    fn radio_off_buffers_packets() {
        let mut link = RadioLink::new(LinkConfig::paper_patched());
        link.set_radio_on(false);
        for i in 0..50 {
            link.enqueue_uplink(row(i)).unwrap();
        }
        assert_eq!(link.uplink_pending(), 50);
        assert!(link.drain_uplink().is_empty(), "radio is off");
        link.set_radio_on(true);
        let drained = link.drain_uplink();
        assert_eq!(drained.len(), 50);
        assert_eq!(link.uplink_delivered(), 50);
        assert_eq!(link.uplink_pending(), 0);
    }

    #[test]
    fn fifo_order_preserved() {
        let mut link = RadioLink::new(LinkConfig::paper_patched());
        for i in 0..10 {
            link.enqueue_uplink(row(i)).unwrap();
        }
        let out = link.drain_uplink();
        for (i, p) in out.iter().enumerate() {
            assert_eq!(p.payload()[0], i as u8);
        }
    }

    #[test]
    fn stock_queue_overflows_on_full_scan() {
        // ~37 detected APs × ~40 B per row / 30 B per packet ≈ 50 packets.
        let mut stock = RadioLink::new(LinkConfig::firmware_default());
        stock.set_radio_on(false);
        let mut dropped = 0;
        for i in 0..50 {
            if stock.enqueue_uplink(row(i)).is_err() {
                dropped += 1;
            }
        }
        assert_eq!(dropped, 50 - DEFAULT_TX_QUEUE_SIZE);
        assert_eq!(stock.uplink_dropped(), dropped as u64);
    }

    #[test]
    fn patched_queue_holds_full_scan() {
        let mut patched = RadioLink::new(LinkConfig::paper_patched());
        patched.set_radio_on(false);
        for i in 0..50 {
            patched.enqueue_uplink(row(i)).unwrap();
        }
        assert_eq!(patched.uplink_dropped(), 0);
    }

    #[test]
    fn error_display() {
        let e = LinkError::QueueFull { capacity: 16 };
        assert!(e.to_string().contains("16"));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_queue_size_panics() {
        RadioLink::new(LinkConfig {
            tx_queue_size: 0,
            latency_ms: 1.0,
        });
    }

    #[test]
    fn defaults() {
        assert_eq!(LinkConfig::default(), LinkConfig::paper_patched());
        let link = RadioLink::new(LinkConfig::default());
        assert!(link.is_radio_on());
        assert_eq!(link.config().tx_queue_size, PATCHED_TX_QUEUE_SIZE);
    }
}
